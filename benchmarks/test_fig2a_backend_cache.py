"""Figure 2a + Table 2: impact of the BlueStore caching scheme.

Paper numbers (normalised recovery time, RS(12,9) / Clay(12,9,11)):
kv-optimized ~1.05/1.11, data-optimized ~1.03/1.05, autotune 1.00/1.03.
Findings reproduced: autotune is the fastest scheme for each code, the
kv-optimized scheme the slowest, and Clay is more cache-sensitive than
RS.  This panel runs at the paper's full workload scale (10,000 x 64 MB)
because the cache working sets only bind at realistic data volumes.
"""

from conftest import MB, clay_profile, emit, recovery_time, rs_profile

from repro.analysis import normalised_series, render_figure2_panel, render_table
from repro.cluster import CACHE_SCHEMES
from repro.workload import Workload

SCHEMES = ["kv-optimized", "data-optimized", "autotune"]
PAPER = {
    "rs": {"kv-optimized": 1.05, "data-optimized": 1.03, "autotune": 1.00},
    "clay": {"kv-optimized": 1.11, "data-optimized": 1.05, "autotune": 1.03},
}


def run_panel():
    workload = Workload(num_objects=10_000, object_size=64 * MB)
    raw = {}
    for key, factory in (("rs", rs_profile), ("clay", clay_profile)):
        for scheme in SCHEMES:
            profile = factory(cache_scheme=scheme)
            raw[f"{key}/{scheme}"] = recovery_time(profile, workload)
    return normalised_series(raw)


def test_fig2a_backend_cache(benchmark, capsys):
    norm = benchmark.pedantic(run_panel, rounds=1, iterations=1)
    rs = {s: norm[f"rs/{s}"] for s in SCHEMES}
    clay = {s: norm[f"clay/{s}"] for s in SCHEMES}

    table2 = render_table(
        "Table 2: Three Caching Configurations",
        ["ID", "Caching Scheme", "KV-ratio", "Metadata-ratio", "Data-ratio"],
        [
            [f"C{i}", cfg.name, f"{cfg.kv_ratio:.0%}", f"{cfg.meta_ratio:.0%}",
             f"{cfg.data_ratio:.0%}"]
            for i, cfg in enumerate(
                (CACHE_SCHEMES[s] for s in SCHEMES), start=1
            )
        ],
    )
    figure = render_figure2_panel("a", SCHEMES, rs, clay)
    paper_rows = [
        (f"{code} {scheme}", PAPER[code][scheme],
         f"{ {'rs': rs, 'clay': clay}[code][scheme]:.3f}")
        for code in ("rs", "clay")
        for scheme in SCHEMES
    ]
    comparison = render_table(
        "Fig 2a paper vs measured (normalised recovery time)",
        ["configuration", "paper", "measured"],
        [list(r) for r in paper_rows],
    )
    emit(capsys, "fig2a_backend_cache", "\n\n".join([table2, figure, comparison]))

    # Shape: autotune fastest within each code.
    assert rs["autotune"] == min(rs.values())
    assert clay["autotune"] == min(clay.values())
    # Shape: kv-optimized slowest within each code.
    assert rs["kv-optimized"] == max(rs.values())
    assert clay["kv-optimized"] == max(clay.values())
    # Magnitude: the whole panel stays within the paper's ~1.0-1.11 band
    # (allowing slack for the simulated substrate).
    assert max(norm.values()) < 1.25
