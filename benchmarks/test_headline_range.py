"""§1/§4.2 headline: configurations move EC recovery time 101%-426%.

The abstract's summary number: across the studied configurations the
recovery-time impact ranges from barely measurable (101% = a 1% swing)
up to 426% (Clay at a 4 KB stripe unit vs the best case).  This
benchmark measures the per-axis impact (max/min within each swept
configuration axis) on a common workload and reports the spanned range.
"""

from conftest import KB, MB, clay_profile, emit, recovery_time, rs_profile

from repro.analysis import impact_range_percent, render_table
from repro.workload import Workload


def run_axes():
    workload = Workload(num_objects=4000, object_size=64 * MB)
    small = Workload(num_objects=1000, object_size=64 * MB)
    axes = {}

    cache = {}
    for scheme in ("kv-optimized", "data-optimized", "autotune"):
        cache[scheme] = recovery_time(rs_profile(cache_scheme=scheme), workload)
    axes["backend cache (RS)"] = impact_range_percent(cache)

    pgs = {}
    for pg_num in (1, 16, 256):
        pgs[pg_num] = recovery_time(clay_profile(pg_num=pg_num), small)
    axes["placement groups (Clay)"] = impact_range_percent(pgs)

    stripes = {}
    for unit in (4 * KB, 4 * MB):
        stripes[unit] = recovery_time(clay_profile(stripe_unit=unit), workload)
    stripes["rs-4KB"] = recovery_time(rs_profile(stripe_unit=4 * KB), workload)
    axes["stripe unit (Clay vs best)"] = impact_range_percent(stripes)

    return axes


def test_headline_configuration_impact_range(benchmark, capsys):
    axes = benchmark.pedantic(run_axes, rounds=1, iterations=1)
    low = min(axes.values())
    high = max(axes.values())

    table = render_table(
        "Configuration impact on recovery time, per axis "
        "(paper headline: 101% to 426%)",
        ["configuration axis", "impact (worst/best x100)"],
        [[axis, f"{value:.0f}%"] for axis, value in sorted(axes.items())]
        + [["=> spanned range", f"{low:.0f}% - {high:.0f}%"]],
    )
    emit(capsys, "headline_range", table)

    # Shape: some axis barely matters (~low hundred %), some axis is a
    # multiple-x swing — the paper's "101% to 426%" spread.
    assert low < 130.0
    assert high > 250.0
    assert high / low > 2.0
