"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation (§4): it runs the experiments through the public API, prints
the figure (normalised, like the paper) next to the paper's reported
numbers, asserts the qualitative shape, and appends the rendered output
to ``benchmarks/results/`` so the comparison survives output capture.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Sequence

import pytest

from repro.core import ExperimentProfile, FaultSpec, run_experiment
from repro.workload import Workload

KB = 1024
MB = 1024 * 1024

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The paper's §4.1 defaults.
RS_PARAMS = {"k": 9, "m": 3}
CLAY_PARAMS = {"k": 9, "m": 3, "d": 11}


def rs_profile(**overrides) -> ExperimentProfile:
    """RS(12,9) baseline profile (§4.1)."""
    settings = dict(name="rs-12-9", ec_plugin="jerasure", ec_params=dict(RS_PARAMS))
    settings.update(overrides)
    return ExperimentProfile(**settings)


def clay_profile(**overrides) -> ExperimentProfile:
    """Clay(12,9,11) baseline profile (§4.1)."""
    settings = dict(name="clay-12-9-11", ec_plugin="clay", ec_params=dict(CLAY_PARAMS))
    settings.update(overrides)
    return ExperimentProfile(**settings)


def recovery_time(
    profile: ExperimentProfile,
    workload: Workload,
    faults: Optional[Sequence[FaultSpec]] = None,
    seed: int = 3,
) -> float:
    """Total system recovery time (detection -> finished) for one run."""
    outcome = run_experiment(
        profile,
        workload,
        list(faults) if faults is not None else [FaultSpec(level="node", count=1)],
        seed=seed,
    )
    return outcome.total_recovery_time


def emit(capsys, name: str, text: str) -> None:
    """Print a rendered result uncaptured and persist it to results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    with capsys.disabled():
        print()
        print(text)


@pytest.fixture
def bench_workload() -> Workload:
    """The scaled default workload most panels run on."""
    return Workload(num_objects=4000, object_size=64 * MB)
