"""Failure-mode axis: transient outages — delta recovery vs backfill.

The paper's failure-mode axis (§4.2) varies *what* fails; this panel
varies *how long* it stays failed.  A host that returns before the
``mon_osd_down_out_interval`` is repaired from the PG write logs (only
the objects dirtied during the outage move), while one marked out pays
a full backfill of everything it held.  We sweep the fraction of the
pool overwritten during the outage and compare the two paths on bytes
moved and wall-clock recovery time.

Expected shape: backfill cost is flat in the write fraction (it rebuilds
every resident shard regardless), delta cost starts near zero and grows
linearly with it, and the two converge as the outage write set
approaches the whole pool.
"""

from conftest import MB, emit

from repro.analysis import render_table
from repro.cluster import (
    CACHE_SCHEMES,
    CephCluster,
    CephConfig,
    RadosClient,
    check_health,
)
from repro.ec import ReedSolomon
from repro.sim import Environment, SeedSequence

OBJECTS = 64
OBJECT_SIZE = 64 * MB
FRACTIONS = (0.05, 0.15, 0.30, 0.60, 1.00)


def run_outage(fraction: float, transient: bool) -> dict:
    """One host outage with ``fraction`` of the pool rewritten during it."""
    down_out = 10_000.0 if transient else 60.0
    env = Environment()
    cluster = CephCluster(
        env,
        ReedSolomon(4, 2),
        CACHE_SCHEMES["autotune"],
        config=CephConfig(mon_osd_down_out_interval=down_out),
        num_hosts=10,
        pg_num=16,
    )
    for i in range(OBJECTS):
        cluster.ingest_object(f"obj-{i}", OBJECT_SIZE)
    client = RadosClient(cluster, seeds=SeedSequence(1))
    env.run(until=10.0)

    stats = cluster.recovery.stats

    def moved():
        return (stats.delta_bytes_read + stats.delta_bytes_written
                + stats.bytes_read + stats.bytes_written)

    # The repair window: the span over which recovery is actually moving
    # bytes.  Backfill runs *during* the outage (once the host is out),
    # delta runs *after* restore — polling the counters catches both.
    window = {"first": None, "last": None, "prev": moved()}

    def poll():
        current = moved()
        if current != window["prev"]:
            if window["first"] is None:
                window["first"] = env.now
            window["last"] = env.now
            window["prev"] = current

    pg = cluster.pool.pg_of("obj-0")
    victim = cluster.topology.osds[pg.acting[0]].host_id
    for osd_id in cluster.topology.hosts[victim].osd_ids:
        cluster.osds[osd_id].host_running = False
    while env.now < 300.0:  # marked down; when not transient, also out
        env.run(until=env.now + 5.0)
        poll()

    # Overwrite a deterministic slice of the pool while the host is away.
    for i in range(int(round(fraction * OBJECTS))):
        env.run_until_process(client.write_object(f"obj-{i}"))
        poll()

    for osd_id in cluster.topology.hosts[victim].osd_ids:
        cluster.osds[osd_id].host_running = True

    report = None
    for _ in range(2000):
        env.run(until=env.now + 5.0)
        poll()
        if cluster.recovery.kick_stale():
            continue
        report = check_health(cluster)
        if report.status == "HEALTH_OK":
            break
    assert report is not None and report.status == "HEALTH_OK", report

    if window["first"] is None:
        repair_window = 0.0
    else:
        repair_window = window["last"] - window["first"] + 5.0
    return {
        "bytes": moved(),
        "recovery_time": repair_window,
        "objects_delta": stats.objects_delta_recovered,
        "pgs_backfilled": stats.pgs_recovered,
    }


def run_panel():
    results = {}
    for fraction in FRACTIONS:
        results[fraction] = {
            "delta": run_outage(fraction, transient=True),
            "backfill": run_outage(fraction, transient=False),
        }
    return results


def test_failure_mode_delta(benchmark, capsys):
    results = benchmark.pedantic(run_panel, rounds=1, iterations=1)

    rows = []
    for fraction in FRACTIONS:
        delta = results[fraction]["delta"]
        backfill = results[fraction]["backfill"]
        rows.append([
            f"{fraction:.0%}",
            f"{delta['bytes'] / MB:.0f}",
            f"{backfill['bytes'] / MB:.0f}",
            f"{backfill['bytes'] / max(1, delta['bytes']):.1f}x",
            f"{delta['recovery_time']:.0f}",
            f"{backfill['recovery_time']:.0f}",
        ])
    table = render_table(
        "Transient outage: delta recovery vs full backfill "
        f"({OBJECTS} x {OBJECT_SIZE // MB} MB objects, RS(4,2))",
        ["written during outage", "delta MB", "backfill MB",
         "bytes ratio", "delta repair s", "backfill repair s"],
        rows,
    )
    emit(capsys, "failure_mode_delta", table)

    delta_bytes = [results[f]["delta"]["bytes"] for f in FRACTIONS]
    backfill_bytes = [results[f]["backfill"]["bytes"] for f in FRACTIONS]

    # Shape: delta cost grows monotonically with the outage write set.
    assert all(a <= b for a, b in zip(delta_bytes, delta_bytes[1:]))
    # Shape: backfill cost is (near-)flat — it rebuilds resident shards,
    # not dirtied ones.  Allow 25% wiggle for placement variation.
    assert max(backfill_bytes) <= 1.25 * min(backfill_bytes)
    # Shape: delta wins decisively for small write sets...
    assert backfill_bytes[0] / max(1, delta_bytes[0]) >= 10.0
    # ...and still never moves more than backfill at full overwrite
    # (it replays each dirty object once; backfill also re-reads k-wide).
    assert delta_bytes[-1] <= backfill_bytes[-1] * 1.1
    # Delta repairs objects; backfill repairs PGs.
    assert results[FRACTIONS[0]]["delta"]["objects_delta"] > 0
    assert results[FRACTIONS[0]]["delta"]["pgs_backfilled"] == 0
    assert results[FRACTIONS[0]]["backfill"]["pgs_backfilled"] > 0
