"""Figure 2d: impact of the failure mode (count and locality).

Paper numbers (normalised to a single-failure baseline): two concurrent
OSD failures ~1.08-1.12; three ~1.45-1.55; and the locality of three
failures flips the RS-vs-Clay winner (Clay faster when co-located, RS
faster when spread).  The experiment follows §4.2: failure domain = OSD,
a third SSD per host, concurrent device-level faults injected into one
stripe's acting set (the EC-aware targeting of §3.2).

Reproduced shape: recovery time grows with failure count, with the
3-failure cases far above the 2-failure ones, and Clay pays more than RS
when the failures are spread across hosts.  Known deviation (recorded in
EXPERIMENTS.md): our simulator keeps same-host slightly *slower* than
different-host and does not reproduce the paper's small (~3%) Clay win
for co-located triple failures.
"""

from conftest import MB, clay_profile, emit, recovery_time, rs_profile

from repro.analysis import render_figure2_panel, render_table
from repro.core import Colocation, FaultSpec
from repro.workload import Workload

GROUPS = ["2f same host", "2f diff hosts", "3f same host", "3f diff hosts"]
MODES = [
    (2, Colocation.SAME_HOST),
    (2, Colocation.DIFFERENT_HOSTS),
    (3, Colocation.SAME_HOST),
    (3, Colocation.DIFFERENT_HOSTS),
]
PAPER = {
    "rs": dict(zip(GROUPS, (1.08, 1.08, 1.49, 1.51))),
    "clay": dict(zip(GROUPS, (1.09, 1.12, 1.45, 1.55))),
}


def run_panel():
    workload = Workload(num_objects=20_000, object_size=64 * MB)
    results = {}
    for key, factory in (("rs", rs_profile), ("clay", clay_profile)):
        base_profile = factory(failure_domain="osd", osds_per_host=3)
        baseline = recovery_time(
            base_profile, workload, [FaultSpec(level="device", count=1)]
        )
        for group, (count, colocation) in zip(GROUPS, MODES):
            profile = factory(failure_domain="osd", osds_per_host=3)
            total = recovery_time(
                profile,
                workload,
                [FaultSpec(level="device", count=count, colocation=colocation)],
            )
            results[f"{key}/{group}"] = total / baseline
    return results


def test_fig2d_failure_mode(benchmark, capsys):
    norm = benchmark.pedantic(run_panel, rounds=1, iterations=1)
    rs = {g: norm[f"rs/{g}"] for g in GROUPS}
    clay = {g: norm[f"clay/{g}"] for g in GROUPS}

    figure = render_figure2_panel("d", GROUPS, rs, clay)
    comparison = render_table(
        "Fig 2d paper vs measured (recovery time vs 1-failure baseline)",
        ["configuration", "paper", "measured"],
        [
            [f"{code} {group}", PAPER[code][group],
             f"{ {'rs': rs, 'clay': clay}[code][group]:.3f}"]
            for code in ("rs", "clay")
            for group in GROUPS
        ],
    )
    emit(capsys, "fig2d_failure_mode", figure + "\n\n" + comparison)

    # Shape: both codes slow down as the failure count rises.
    for series in (rs, clay):
        assert series["3f same host"] > series["2f same host"] > 1.0
        assert series["3f diff hosts"] > series["2f diff hosts"] > 1.0
    # Shape: the 3-failure cases sit far above the 2-failure ones.
    assert rs["3f same host"] / rs["2f same host"] > 1.15
    # Shape: locality changes the RS-vs-Clay comparison; when the three
    # failures are spread across hosts, RS recovers faster than Clay.
    assert clay["3f diff hosts"] > rs["3f diff hosts"]
    # Magnitude: 3-failure ratios land in the paper's ~1.25-1.6 region.
    assert 1.2 < max(rs["3f same host"], clay["3f same host"]) < 1.8
