"""Extension: client-visible cost of the checking period.

Not a paper figure — a consequence of one.  §4.3 shows that ~600 s of
the recovery cycle passes before any EC recovery I/O; this benchmark
quantifies what clients experience during that window: the fraction of
reads served degraded (k-chunk fetch + on-the-fly decode) and the
latency penalty, for RS(12,9) vs Clay(12,9,11).
"""

from conftest import MB, emit

from repro.analysis import render_table
from repro.cluster import (
    CACHE_SCHEMES,
    CephCluster,
    CephConfig,
    ClientLoadGenerator,
    RadosClient,
)
from repro.ec import ClayCode, ReedSolomon
from repro.sim import Environment, SeedSequence


def run_phases(code):
    env = Environment()
    cluster = CephCluster(
        env,
        code,
        CACHE_SCHEMES["autotune"],
        config=CephConfig(mon_osd_down_out_interval=120.0),
        num_hosts=30,
        pg_num=64,
    )
    for i in range(300):
        cluster.ingest_object(f"obj-{i}", 8 * MB)
    client = RadosClient(cluster)

    def phase(duration, seed):
        generator = ClientLoadGenerator(
            client, interval=0.25, seeds=SeedSequence(seed)
        )
        env.run_until_process(generator.run_for(duration))
        return generator.stats

    healthy = phase(30.0, seed=1)
    victim = cluster.topology.osds[cluster.pool.pgs[0].acting[0]].host_id
    for osd_id in cluster.topology.hosts[victim].osd_ids:
        cluster.osds[osd_id].host_running = False
    checking = phase(60.0, seed=2)
    done = cluster.recovery.wait_all_recovered()
    env.run(until=env.now + 10_000)
    assert done.triggered
    recovered = phase(30.0, seed=3)
    return {"healthy": healthy, "checking": checking, "recovered": recovered}


def run_benchmark():
    return {
        "RS(12,9)": run_phases(ReedSolomon(9, 3)),
        "Clay(12,9,11)": run_phases(ClayCode(9, 3, d=11)),
    }


def test_degraded_reads_during_checking_period(benchmark, capsys):
    results = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)

    rows = []
    for label, phases in results.items():
        for phase_name in ("healthy", "checking", "recovered"):
            stats = phases[phase_name]
            rows.append(
                [
                    label,
                    phase_name,
                    f"{stats.degraded_fraction * 100:.1f}%",
                    f"{stats.mean_latency() * 1000:.1f} ms",
                    f"{stats.latency_percentile(99) * 1000:.1f} ms",
                ]
            )
    table = render_table(
        "Degraded reads across the outage window (extension)",
        ["code", "phase", "degraded reads", "mean latency", "p99"],
        rows,
    )
    emit(capsys, "degraded_reads", table)

    for label, phases in results.items():
        # Degradation appears only during the checking window...
        assert phases["healthy"].degraded_fraction == 0.0
        assert phases["checking"].degraded_fraction > 0.1
        assert phases["recovered"].degraded_fraction == 0.0
        # ...and it costs latency.
        assert (
            phases["checking"].mean_latency()
            > phases["healthy"].mean_latency()
        )
