"""Figure 3 + §4.3: the system-checking period before EC recovery.

Paper numbers: failure detected at 0 s, EC recovery starts at 602 s and
finishes at 1128 s — the System Checking Period is 53.7% of the overall
system recovery time, and sweeping the workload size moves the fraction
across 41%-58%.  The checking period is dominated by Ceph's
``mon_osd_down_out_interval`` (600 s) plus peering, which the paper notes
"has been largely ignored in previous studies".
"""

from conftest import MB, emit, rs_profile

from repro.analysis import render_figure3_timeline, render_table
from repro.core import FaultSpec, run_experiment
from repro.workload import Workload

#: Workload sizes swept for the 41-58% band (§4.3 adjusts workload size
#: "to be the same as previous work").
SWEEP = [8_000, 12_000, 16_000, 20_000]
HEADLINE = 12_000  # lands nearest the paper's 53.7% headline run


def run_sweep():
    results = {}
    for num_objects in SWEEP:
        outcome = run_experiment(
            rs_profile(),
            Workload(num_objects=num_objects, object_size=64 * MB),
            [FaultSpec(level="node", count=1)],
            seed=3,
        )
        results[num_objects] = outcome.timeline
    return results


def test_fig3_timeline(benchmark, capsys):
    timelines = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    headline = timelines[HEADLINE]

    figure = render_figure3_timeline(headline)
    sweep_table = render_table(
        "Checking-period share vs workload size (paper: 41%-58%)",
        ["objects (x64MB)", "checking (s)", "EC recovery (s)", "checking %"],
        [
            [n, f"{tl.checking_period:.0f}", f"{tl.ec_recovery_period:.0f}",
             f"{tl.checking_fraction * 100:.1f}%"]
            for n, tl in sorted(timelines.items())
        ],
    )
    comparison = render_table(
        "Fig 3 paper vs measured (headline run)",
        ["metric", "paper", "measured"],
        [
            ["EC recovery start (s after detection)", 602,
             f"{headline.checking_period:.0f}"],
            ["recovery finished (s after detection)", 1128,
             f"{headline.total_recovery:.0f}"],
            ["checking share of recovery", "53.7%",
             f"{headline.checking_fraction * 100:.1f}%"],
        ],
    )
    emit(capsys, "fig3_timeline", "\n\n".join([figure, sweep_table, comparison]))

    # Shape: the checking period is roughly constant (down/out interval
    # dominated) while EC recovery grows with workload size.
    fractions = [timelines[n].checking_fraction for n in SWEEP]
    assert fractions == sorted(fractions, reverse=True)
    checkings = [timelines[n].checking_period for n in SWEEP]
    assert max(checkings) - min(checkings) < 60.0
    # Magnitude: the headline run lands near the paper's 53.7% and the
    # sweep crosses the 41-58% band.
    assert 0.40 <= headline.checking_fraction <= 0.65
    assert any(0.41 <= f <= 0.58 for f in fractions)
    # The phase ordering of Figure 3's annotations holds.
    assert (
        headline.failure_detected
        <= headline.marked_out
        <= headline.ec_recovery_started
        <= headline.ec_recovery_finished
    )
