"""Tenant QoS axis: what mClock reservations buy during a recovery storm.

A recovery storm is the configuration hazard the paper's single-client
model cannot see: a crashed node puts every surviving OSD to work
pulling helper chunks, while an aggressive batch tenant keeps the disks
near saturation.  The latency-sensitive tenant — a trickle of small
reads with a p99 SLO — pays for both.  The axis compares the same
two-tenant fleet with QoS off (every op straight to the disk queues)
and on (per-OSD mClock admission: the latency tenant holds a
reservation and a 4x weight, recovery holds its own reservation, the
batch tenant gets the leftovers).

The batch storm sits just past the disks' saturation knee: queues build
slowly enough that recovery — whose binding constraint is its own
QoS-rate grant, not the disks — finishes in near-identical time either
way, but the latency tenant's tail crosses its SLO by 4x in the
unprotected run.  Protection is not paid for with recovery time: both
cells rebuild within 10% of each other.

The QoS-on cell runs twice at the same seed and must digest
byte-identically — scheduling is arbitrated, never racy.
"""

from conftest import MB, emit

from repro.analysis import render_table
from repro.cluster import CephConfig
from repro.core import ExperimentProfile, FaultSpec, build_timeline
from repro.tenancy import (
    SloSpec,
    TenantFleetSpec,
    TenantSpec,
    run_tenant_experiment,
)
from repro.workload import Workload

SEED = 11
SLO_P99 = 0.5
STORM_INTERVAL = 0.024


def qos_profile() -> ExperimentProfile:
    return ExperimentProfile(
        name="tenant-qos-axis",
        ec_plugin="jerasure",
        ec_params={"k": 4, "m": 2},
        pg_num=8,
        stripe_unit=1 * MB,
        num_hosts=7,
        osds_per_host=1,
        device_class="hdd",
        ceph=CephConfig(
            mon_osd_down_out_interval=30.0,
            recovery_read_rate=8e6,
            recovery_write_rate=4e6,
        ),
    )


def storm_fleet(qos_enabled: bool) -> TenantFleetSpec:
    return TenantFleetSpec(
        tenants=(
            TenantSpec(
                name="latency",
                interval=0.5,
                reservation=0.15,
                weight=4.0,
                slo=SloSpec(p99_latency=SLO_P99, window=30.0),
            ),
            TenantSpec(
                name="batch",
                interval=STORM_INTERVAL,
                arrival="poisson",
                weight=1.0,
            ),
        ),
        qos_enabled=qos_enabled,
        client_rate=60e6,
        recovery_reservation=0.7,
    )


def run_cell(qos_enabled: bool):
    return run_tenant_experiment(
        qos_profile(),
        Workload(num_objects=32, object_size=8 * MB),
        storm_fleet(qos_enabled),
        faults=[FaultSpec(level="node", count=1)],
        seed=SEED,
        warmup=30.0,
        fault_duration=120.0,
    )


def test_tenant_qos_axis(benchmark, capsys):
    off, on, on_again = benchmark.pedantic(
        lambda: (run_cell(False), run_cell(True), run_cell(True)),
        rounds=1,
        iterations=1,
    )

    recovery = {
        label: build_timeline(o.collector).ec_recovery_period
        for label, o in (("off", off), ("on", on))
    }
    rows = []
    for label, outcome in (("off", off), ("on", on)):
        for report in outcome.reports:
            verdict = "-"
            if report.slo is not None:
                verdict = "violated" if report.slo_violations else "met"
            rows.append(
                [
                    label,
                    report.name,
                    report.reads_ok,
                    f"{report.p50 * 1000:.0f}ms",
                    f"{report.p99 * 1000:.0f}ms",
                    verdict,
                ]
            )
    table = render_table(
        "Tenant QoS axis: recovery storm, latency tenant with "
        f"p99<{SLO_P99:.1f}s SLO (1 node crash, batch read storm)",
        ["qos", "tenant", "reads", "p50", "p99", "slo"],
        rows,
    )
    table += "\n\n" + render_table(
        "Recovery pays (almost) nothing for protection",
        ["qos", "EC recovery", "vs unprotected"],
        [
            ["off", f"{recovery['off']:.2f}s", "1.00x"],
            ["on", f"{recovery['on']:.2f}s",
             f"{recovery['on'] / recovery['off']:.2f}x"],
        ],
    )
    emit(capsys, "tenant_qos_axis", table)

    # Both worlds rebuild fully and drain the fleet.
    assert off.converged and on.converged

    # Protection: the unprotected run blows the SLO, the reserved run
    # holds it — with margin on both sides, not a rounding artifact.
    lat_off, lat_on = off.reports[0], on.reports[0]
    assert lat_off.name == lat_on.name == "latency"
    assert lat_off.p99 > SLO_P99 * 2
    assert lat_off.slo_violations
    assert lat_on.p99 < SLO_P99
    assert not lat_on.slo_violations

    # Price: recovery completion time matches within 10%.
    assert abs(recovery["on"] - recovery["off"]) <= 0.10 * recovery["off"]

    # The scheduler starves nobody and leaves nothing queued.
    totals = on.fleet.qos_class_totals()
    for name, bucket in totals.items():
        assert bucket["served"] == bucket["enqueued"], name
    assert on.fleet.qos_pending() == 0

    # Byte-identical rerun at the same seed.
    assert on.digest_json() == on_again.digest_json()
