"""Cascade recovery axis: what risk-prioritized repair buys a cascade.

The paper treats recovery speed as a configuration outcome; this axis
measures the *ordering* dimension the cascade subsystem adds.  Under a
correlated failure — a whole rack lost at once, then a device
aftershock 30 s later — the recovery queue holds PGs at very different
distances from data loss.  FIFO drains them in arrival order; the
risk-prioritized policy drains lowest redundancy margin first (ties
broken by bytes at risk, degraded-object count, then pg id).

Both policies replay the *same* seeded cascade — identical topology,
workload, failure schedule, and RNG draws — so the only difference is
queue order.  The headline: risk ordering strictly cuts the aggregate
time PGs spend at minimum redundancy (one more loss away from
unavailability), at zero cost to total PGs recovered.  Exposure is
reported alongside as the count of stripes that ever hit the tolerance
floor.  Every cell is deterministic: the risk cell runs twice at the
same seed and must hash byte-identically.
"""

from conftest import emit

from repro.analysis import render_table
from repro.chaos import cascade_scenario, run_campaign

SEED = 7

POLICIES = ("fifo", "risk")


def run_cell(priority: str):
    return run_campaign(cascade_scenario(SEED, recovery_priority=priority))


def test_cascade_recovery_axis(benchmark, capsys):
    results, rerun = benchmark.pedantic(
        lambda: (
            {priority: run_cell(priority) for priority in POLICIES},
            run_cell("risk"),
        ),
        rounds=1,
        iterations=1,
    )

    recovery = {p: results[p].digest["recovery"] for p in POLICIES}
    fifo_t = recovery["fifo"]["time_at_min_redundancy"]
    risk_t = recovery["risk"]["time_at_min_redundancy"]

    rows = []
    for priority in POLICIES:
        stats = recovery[priority]
        t = stats["time_at_min_redundancy"]
        rows.append(
            [
                priority,
                f"{t:.2f} s",
                f"{(fifo_t - t) / fifo_t * 100:.1f}%",
                f"{stats['pgs_at_min_redundancy']}",
                f"{stats['pgs_recovered']}",
                f"{len(results[priority].violations)}",
            ]
        )
    table = render_table(
        "Cascade recovery axis: time at minimum redundancy for one "
        "seeded rack loss + device aftershock (same schedule, only the "
        "recovery queue order differs)",
        ["policy", "time at min", "saved vs fifo", "stripes at tolerance",
         "PGs recovered", "violations"],
        rows,
    )
    emit(capsys, "cascade_recovery_axis", table)

    # Both policies replayed the same cascade cleanly.
    for priority in POLICIES:
        assert not results[priority].violations
        assert recovery[priority]["pgs_at_min_redundancy"] > 0

    # Queue order never changes *what* gets repaired, only *when*.
    assert (recovery["fifo"]["pgs_recovered"]
            == recovery["risk"]["pgs_recovered"])

    # Headline: draining lowest-margin PGs first strictly shrinks the
    # window in which one more failure would mean data loss.
    assert risk_t < fifo_t

    # Determinism: the same seed hashes byte-identically.
    assert rerun.outcome_hash == results["risk"].outcome_hash
