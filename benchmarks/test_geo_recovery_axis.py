"""Geo recovery axis: what repair locality buys a stretch cluster.

The paper's configuration argument gets sharper once the cluster spans
regions: cross-region repair bytes are the expensive resource — they
ride a metered WAN uplink instead of a free top-of-rack switch — and
the erasure-code *configuration* decides how many of them a failure
costs.  The axis rebuilds one region-local host failure under three
codes at equal durability (two losses tolerated) across the same
3-region stretch layout:

- RS(4,2): any-k repair; with 2 of 6 shards per region, most helper
  reads cross the WAN no matter where the primary decodes.
- Clay(4,2,d=5): fractional helper reads (d=5 at 1/2 chunk each) shrink
  every pull, local or not.
- LRC(k=4,l=2,r=1): the code's placement affinity parks each local
  group (data + local parity) inside one region, so a host failure
  repairs entirely from its group — only the rebuilt shard's write can
  cross the WAN.

The headline claim mirrors the paper's Fig. 2 shape on a new axis:
locality-aware reconstruction with a locality-capable code cuts
cross-region repair bytes by at least 2x against plain RS, at equal
fault tolerance.  Every cell is deterministic: the LRC cell runs twice
at the same seed and must digest byte-identically.
"""

from conftest import MB, emit

from repro.analysis import render_table
from repro.core import ExperimentProfile, FaultSpec
from repro.geo import run_stretch_experiment
from repro.workload import Workload

SEED = 7

CODES = (
    ("rs(4,2)", "jerasure", {"k": 4, "m": 2}),
    ("clay(4,2,d=5)", "clay", {"k": 4, "m": 2, "d": 5}),
    ("lrc(4,2,1)", "lrc", {"k": 4, "l": 2, "r": 1}),
)


def stretch_profile(name: str, plugin: str, params: dict) -> ExperimentProfile:
    return ExperimentProfile(
        name=name,
        ec_plugin=plugin,
        ec_params=params,
        num_hosts=12,
        num_regions=3,
        pg_num=32,
        stripe_unit=1 * MB,
    )


def run_cell(name: str, plugin: str, params: dict):
    return run_stretch_experiment(
        stretch_profile(name, plugin, params),
        Workload(num_objects=40, object_size=8 * MB),
        [FaultSpec(level="node", count=1)],
        seed=SEED,
    )


def test_geo_recovery_axis(benchmark, capsys):
    outcomes, rerun = benchmark.pedantic(
        lambda: (
            {name: run_cell(name, plugin, params)
             for name, plugin, params in CODES},
            run_cell(*CODES[-1]),
        ),
        rounds=1,
        iterations=1,
    )

    baseline = outcomes["rs(4,2)"].cross_region_repair_bytes
    rows = []
    for name, _, _ in CODES:
        out = outcomes[name]
        rows.append(
            [
                name,
                f"{out.cross_region_repair_bytes / MB:.0f} MB",
                f"{baseline / out.cross_region_repair_bytes:.2f}x",
                f"{out.cross_region_pulls}/{out.cross_region_pushes}",
                f"${out.egress_cost:.4f}",
            ]
        )
    table = render_table(
        "Geo recovery axis: cross-region repair bytes for one host "
        "failure (3 regions, equal durability m=2, locality-aware)",
        ["code", "WAN repair", "vs rs(4,2)", "pulls/pushes", "egress cost"],
        rows,
    )
    emit(capsys, "geo_recovery_axis", table)

    rs = outcomes["rs(4,2)"]
    clay = outcomes["clay(4,2,d=5)"]
    lrc = outcomes["lrc(4,2,1)"]

    # Every cell actually rebuilt the lost host's shards.
    for out in outcomes.values():
        assert out.objects_recovered > 0
        assert out.cross_region_repair_bytes == out.wan_cross_region_bytes

    # Fractional Clay reads beat full-chunk RS reads over the WAN.
    assert clay.cross_region_repair_bytes < rs.cross_region_repair_bytes

    # Headline: LRC's region-coherent local groups cut WAN repair bytes
    # by at least 2x at equal durability.
    assert rs.cross_region_repair_bytes >= 2 * lrc.cross_region_repair_bytes

    # Cheaper bytes are cheaper dollars on the metered uplink too.
    assert lrc.egress_cost < rs.egress_cost

    # Determinism: the same seed digests byte-identically.
    assert rerun.digest() == lrc.digest()
