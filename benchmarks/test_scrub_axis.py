"""Scrub axis: detection latency vs scrub interval and checksum granularity.

A new configuration axis beyond the paper's §4 panels: silent corruption
is only found when a deep scrub touches the damaged PG, so the scrub
interval directly sets the window of exposure, while the checksum block
size trades onode metadata against repair-read granularity.  The sweep
runs every code family (RS, Clay, LRC, SHEC) over interval x csum-block
and records the full detect-repair cycle.
"""

from conftest import KB, emit

from repro.analysis import render_table
from repro.core import ExperimentProfile, FaultSpec, run_experiment
from repro.cluster import CephConfig
from repro.workload import Workload

CODES = [
    ("rs", "jerasure", {"k": 4, "m": 2}),
    ("clay", "clay", {"k": 4, "m": 2}),
    ("lrc", "lrc", {"k": 4, "l": 2, "r": 2}),
    ("shec", "shec", {"k": 4, "m": 2, "l": 2}),
]
INTERVALS = [60.0, 240.0, 960.0]
CSUM_BLOCKS = [4 * KB, 64 * KB]


def scrub_profile(label, plugin, params, interval, csum_block):
    return ExperimentProfile(
        name=f"{label}/scrub={interval:.0f}s/csum={csum_block // KB}KB",
        ec_plugin=plugin,
        ec_params=dict(params),
        num_hosts=10,
        pg_num=16,
        stripe_unit=64 * KB,
        ceph=CephConfig(mon_osd_down_out_interval=30.0),
        scrub_interval=interval,
        csum_block_size=csum_block,
        integrity_data_plane=True,
    )


def run_axis():
    workload = Workload(num_objects=12, object_size=256 * KB)
    cells = {}
    for label, plugin, params in CODES:
        for interval in INTERVALS:
            for csum_block in CSUM_BLOCKS:
                profile = scrub_profile(label, plugin, params, interval, csum_block)
                outcome = run_experiment(
                    profile,
                    workload,
                    # SHEC only guarantees single-failure recovery, so the
                    # comparable corruption load across codes is one chunk.
                    [FaultSpec(level="corrupt", count=1, corruption="bit_rot")],
                    seed=7,
                    settle_time=30.0,
                    max_sim_time=60_000.0,
                )
                cells[(label, interval, csum_block)] = outcome
    return cells


def test_scrub_axis(benchmark, capsys):
    cells = benchmark.pedantic(run_axis, rounds=1, iterations=1)

    rows = []
    for (label, interval, csum_block), outcome in sorted(cells.items()):
        timeline = outcome.scrub_timeline
        stats = outcome.scrub_stats
        rows.append(
            [
                label,
                f"{interval:.0f}s",
                f"{csum_block // KB}KB",
                stats.errors_detected,
                stats.chunks_repaired,
                f"{timeline.detection_period:.0f}s",
                f"{timeline.total_cycle:.1f}s",
                f"{stats.repair_bytes_read / KB:.0f}KB",
            ]
        )
    table = render_table(
        "Scrub axis: interval x csum block x code (1 bit-rot chunk)",
        ["code", "scrub every", "csum block", "detected", "repaired",
         "detect after", "full cycle", "repair reads"],
        rows,
    )
    emit(capsys, "scrub_axis", table)

    # 100% detection and repair in every cell, for every code family.
    for outcome in cells.values():
        assert outcome.scrub_stats.errors_detected == 1
        assert outcome.scrub_stats.chunks_repaired == 1

    # Shape: the exposure window scales with the scrub interval (RS, Clay).
    for label in ("rs", "clay"):
        for csum_block in CSUM_BLOCKS:
            detect = [
                cells[(label, interval, csum_block)].scrub_timeline.detection_period
                for interval in INTERVALS
            ]
            assert detect[0] < detect[-1]
            assert all(a <= b for a, b in zip(detect, detect[1:]))

    # Shape: finer checksum blocks never read more during repair — the
    # damaged region is bounded by the bad blocks, not the whole chunk.
    for label, _, _ in CODES:
        for interval in INTERVALS:
            fine = cells[(label, interval, 4 * KB)].scrub_stats.repair_bytes_read
            coarse = cells[(label, interval, 64 * KB)].scrub_stats.repair_bytes_read
            assert fine <= coarse
