"""Figure 2c: impact of the stripe unit (basic encoding size).

Paper numbers (normalised): RS with 64MB units is 3.29x slower than RS
with 4KB; Clay with 4KB units is 4.26x slower than the best case; both
codes are slow at 64MB.  Findings reproduced: (1) Clay's
sub-packetization makes tiny stripe units catastrophic — alpha = 81
sub-chunks per 4KB unit degenerate into full reads plus per-fragment CPU
cost; (2) 64MB units zero-pad every chunk of a 64MB object to 64MB (the
§4.4 division-and-padding policy), multiplying recovery volume ~9x.
"""

from conftest import KB, MB, clay_profile, emit, recovery_time, rs_profile

from repro.analysis import normalised_series, render_figure2_panel, render_table
from repro.workload import Workload

UNITS = [4 * KB, 4 * MB, 64 * MB]
GROUPS = ["4KB", "4MB", "64MB"]
PAPER = {
    "rs": {"4KB": 1.00, "4MB": 1.08, "64MB": 3.29},
    "clay": {"4KB": 4.26, "4MB": 1.12, "64MB": 3.50},
}


def run_panel():
    # 4,000 x 64 MB: the largest workload whose 64MB-unit variant still
    # fits the testbed's 100 GB devices (the paper hit the same ceiling:
    # 10,000 x 64 MB at 64MB units would need 7.5 TB on a 6 TB cluster).
    workload = Workload(num_objects=4000, object_size=64 * MB)
    raw = {}
    for key, factory in (("rs", rs_profile), ("clay", clay_profile)):
        for group, unit in zip(GROUPS, UNITS):
            profile = factory(stripe_unit=unit, pg_num=256)
            raw[f"{key}/{group}"] = recovery_time(profile, workload)
    return normalised_series(raw)


def test_fig2c_stripe_unit(benchmark, capsys):
    norm = benchmark.pedantic(run_panel, rounds=1, iterations=1)
    rs = {g: norm[f"rs/{g}"] for g in GROUPS}
    clay = {g: norm[f"clay/{g}"] for g in GROUPS}

    figure = render_figure2_panel("c", GROUPS, rs, clay)
    comparison = render_table(
        "Fig 2c paper vs measured (normalised recovery time)",
        ["configuration", "paper", "measured"],
        [
            [f"{code} {group}", PAPER[code][group],
             f"{ {'rs': rs, 'clay': clay}[code][group]:.3f}"]
            for code in ("rs", "clay")
            for group in GROUPS
        ],
    )
    emit(capsys, "fig2c_stripe_unit", figure + "\n\n" + comparison)

    # Shape: RS at 64MB units is several times slower than RS at 4KB.
    assert rs["64MB"] / rs["4KB"] > 2.0
    # Shape: Clay at 4KB is several times slower than the best case.
    assert clay["4KB"] / min(norm.values()) > 3.0
    # Shape: both codes are slow at 64MB; 4KB ~ 4MB for RS.
    assert clay["64MB"] > 1.5
    assert abs(rs["4MB"] - rs["4KB"]) < 0.35
    # Shape: Clay's 4KB pathology is specific to Clay.
    assert clay["4KB"] > 2.5 * rs["4KB"]
