"""Ablations of the simulator's own design choices (DESIGN.md §4).

Three mechanisms produce the paper's headline shapes; each ablation
switches one off and shows the corresponding effect collapse:

* **sub-packetization costs** — the per-fragment decode CPU cost (plus
  min-IO degeneration of scattered reads) is what makes Clay at 4 KB
  stripe units pathological (Fig 2c).  Zeroing the fragment cost
  collapses most of the gap.
* **recovery QoS rates** — the mClock-style recovery share is what makes
  the EC recovery period comparable to the 600 s checking period
  (Fig 3).  Unthrottled recovery pushes the checking share toward 100%.
* **EC-aware co-occurrence targeting** — injecting multi-device faults
  into one stripe's acting set is what makes 3 concurrent failures
  superlinear (Fig 2d).  Spread random faults behave like three
  independent single failures.
"""

import dataclasses

from conftest import KB, MB, clay_profile, emit, rs_profile

from repro.analysis import render_table
from repro.cluster.osd import CephConfig
from repro.core import Colocation, FaultSpec, run_experiment
from repro.workload import Workload


def _recovery(profile, workload, faults=None, seed=3):
    outcome = run_experiment(
        profile, workload, faults or [FaultSpec(level="node")], seed=seed
    )
    return outcome


def run_ablations():
    results = {}

    # (1) Clay's per-fragment decode cost on vs off at 4 KB units.
    workload = Workload(num_objects=1500, object_size=64 * MB)
    base = clay_profile(stripe_unit=4 * KB)
    no_fragments = clay_profile(
        stripe_unit=4 * KB,
        ceph=dataclasses.replace(CephConfig(), decode_fragment_overhead=0.0),
    )
    results["clay4KB/with-fragments"] = _recovery(base, workload).total_recovery_time
    results["clay4KB/no-fragments"] = _recovery(
        no_fragments, workload
    ).total_recovery_time

    # (2) recovery QoS vs unthrottled recovery.
    throttled = rs_profile()
    unthrottled = rs_profile(
        ceph=dataclasses.replace(
            CephConfig(), recovery_read_rate=10e9, recovery_write_rate=10e9
        )
    )
    wl2 = Workload(num_objects=4000, object_size=64 * MB)
    results["fig3/qos-fraction"] = _recovery(throttled, wl2).timeline.checking_fraction
    results["fig3/unthrottled-fraction"] = _recovery(
        unthrottled, wl2
    ).timeline.checking_fraction

    # (3) EC-aware targeting vs spread random faults.
    wl3 = Workload(num_objects=4000, object_size=64 * MB)
    targeted_profile = rs_profile(failure_domain="osd", osds_per_host=3)
    targeted = _recovery(
        targeted_profile, wl3,
        [FaultSpec(level="device", count=3, colocation=Colocation.DIFFERENT_HOSTS)],
    )
    spread_profile = rs_profile(failure_domain="osd", osds_per_host=3)
    # Explicit far-apart targets: three OSDs that share no acting set.
    spread = _recovery(
        spread_profile, wl3,
        [FaultSpec(level="device", count=3, targets=[0, 31, 62])],
    )
    results["fig2d/targeted-chunks"] = targeted.recovery_stats.chunks_rebuilt
    results["fig2d/spread-chunks"] = spread.recovery_stats.chunks_rebuilt
    results["fig2d/targeted-multiloss"] = (
        targeted.recovery_stats.chunks_rebuilt
        - targeted.recovery_stats.objects_recovered
    )
    results["fig2d/spread-multiloss"] = (
        spread.recovery_stats.chunks_rebuilt
        - spread.recovery_stats.objects_recovered
    )
    return results


def test_model_ablations(benchmark, capsys):
    results = benchmark.pedantic(run_ablations, rounds=1, iterations=1)

    table = render_table(
        "Model ablations: switch one mechanism off, watch the effect go",
        ["ablation", "with mechanism", "without"],
        [
            ["Clay@4KB total recovery (s)",
             f"{results['clay4KB/with-fragments']:.0f}",
             f"{results['clay4KB/no-fragments']:.0f}"],
            ["checking fraction",
             f"{results['fig3/qos-fraction'] * 100:.1f}%",
             f"{results['fig3/unthrottled-fraction'] * 100:.1f}%"],
            ["3-failure multi-loss stripe ops",
             f"{results['fig2d/targeted-multiloss']}",
             f"{results['fig2d/spread-multiloss']}"],
        ],
    )
    emit(capsys, "ablation_model", table)

    # The fragment CPU cost is the dominant Clay@4KB term.
    assert (
        results["clay4KB/with-fragments"]
        > 1.5 * results["clay4KB/no-fragments"]
    )
    # QoS throttling is what keeps the checking share near the paper's 54%.
    assert results["fig3/unthrottled-fraction"] > results["fig3/qos-fraction"]
    assert results["fig3/unthrottled-fraction"] > 0.9
    # EC-aware targeting concentrates losses into shared stripes.
    assert (
        results["fig2d/targeted-multiloss"] > results["fig2d/spread-multiloss"]
    )
