"""Gray-failure axis: recovery time vs slow-disk factor, and what defenses buy.

A configuration axis the paper's crash-only fault model cannot see: a
disk that answers 16x slower is *worse* than a dead one, because the
failure detector never fires (heartbeats are cheap control-plane I/O)
and recovery pulls grind through the slow media.  The sweep crashes one
device, slows every surviving disk by 1x/4x/16x, and records the EC
recovery period.  The recovery-read QoS rate (40 MB/s against 250 MB/s
media) masks modest slowdowns — the axis has a knee: 4x media slowdown
costs almost nothing, 16x pushes the device past the QoS grant and the
recovery period follows the disk.

A second panel runs the flaky-network scenario with and without client
defenses (op timeout + seeded backoff + hedged/redirected reads) and
records the client p50/p99 — the defense's value is tail latency, not
the median.
"""

from conftest import MB, emit

from repro.analysis import render_table
from repro.cluster import CephConfig
from repro.core import (
    Controller,
    ExperimentProfile,
    FaultSpec,
    build_timeline,
    run_gray_experiment,
)
from repro.workload import Workload

FACTORS = [1.0, 4.0, 16.0]
SEED = 11


def gray_profile(**ceph_overrides) -> ExperimentProfile:
    return ExperimentProfile(
        name="gray-axis",
        ec_params={"k": 4, "m": 2},
        num_hosts=8,
        osds_per_host=2,
        pg_num=8,
        stripe_unit=4 * MB,
        ceph=CephConfig(mon_osd_down_out_interval=30.0, **ceph_overrides),
    )


def scout(profile, workload):
    """Probe run: learn placement so the sweep crashes a loaded PG."""
    controller = Controller(profile, seed=SEED)
    controller.coordinator.ingest_workload(workload)
    pg = max(
        controller.cluster.pool.pgs.values(), key=lambda p: len(p.objects)
    )
    victim = pg.acting[0]
    helpers = [o for o in controller.cluster.osds if o != victim]
    return victim, helpers


def run_slow_axis():
    profile = gray_profile()
    workload = Workload(num_objects=3, object_size=64 * MB)
    victim, helpers = scout(profile, workload)
    cells = {}
    for factor in FACTORS:
        faults = [FaultSpec(level="device", targets=[victim])]
        if factor > 1.0:
            faults.append(
                FaultSpec(level="slow_device", factor=factor, targets=helpers)
            )
        cells[factor] = run_gray_experiment(
            profile, workload, faults, seed=SEED, fault_duration=400.0
        )
    return cells


def run_net_panel():
    workload = Workload(num_objects=12, object_size=1 * MB)
    faults = [
        FaultSpec(level="device", count=1),
        FaultSpec(level="net_degrade", latency=2.0, bandwidth_penalty=8.0),
    ]
    cells = {}
    for label, overrides in (
        ("naive", {}),
        ("defended", {"client_op_timeout": 0.4, "client_retry_base": 0.1,
                      "client_hedge_delay": 0.15}),
    ):
        cells[label] = run_gray_experiment(
            gray_profile(**overrides),
            workload,
            faults,
            seed=7,
            fault_duration=400.0,
        )
    return cells


def test_gray_failure_axis(benchmark, capsys):
    slow, net = benchmark.pedantic(
        lambda: (run_slow_axis(), run_net_panel()), rounds=1, iterations=1
    )

    periods = {f: build_timeline(o.collector).ec_recovery_period
               for f, o in slow.items()}
    rows = [
        [
            f"{factor:.0f}x",
            f"{periods[factor]:.2f}s",
            f"{periods[factor] / periods[1.0]:.2f}x",
            slow[factor].markdowns,
            slow[factor].health,
        ]
        for factor in FACTORS
    ]
    table = render_table(
        "Gray axis: EC recovery vs slow-disk factor "
        "(1 device crash, all helpers slowed)",
        ["media slowdown", "EC recovery", "vs healthy media",
         "markdowns", "final health"],
        rows,
    )

    net_rows = [
        [
            label,
            f"{o.read_stats.latency_percentile(50):.3f}s",
            f"{o.read_stats.latency_percentile(99):.3f}s",
            o.client_stats.timeouts,
            o.client_stats.hedges_won,
            o.client_stats.redirects,
        ]
        for label, o in net.items()
    ]
    table += "\n\n" + render_table(
        "Flaky network (2s extra latency, 8x bandwidth penalty on one host)",
        ["client", "p50", "p99", "timeouts", "hedges won", "redirects"],
        net_rows,
    )
    emit(capsys, "gray_failure_axis", table)

    # Shape: recovery inflates monotonically with the media slowdown,
    # with the QoS knee — 4x is nearly free, 16x is not.
    assert periods[1.0] <= periods[4.0] <= periods[16.0]
    assert periods[16.0] > periods[1.0] * 1.2
    assert periods[4.0] < periods[1.0] * 1.15
    # The detector never fires on slow media: the only markdown in every
    # cell is the genuinely crashed device.
    for outcome in slow.values():
        assert outcome.markdowns == 1
        assert outcome.converged

    # Defenses cut the degraded-path tail, and both worlds converge.
    assert (net["defended"].read_stats.latency_percentile(99)
            < net["naive"].read_stats.latency_percentile(99) / 2)
    assert net["defended"].client_stats.hedges_won > 0
    assert net["defended"].client_stats.redirects > 0
    assert net["naive"].client_stats.hedges_issued == 0
    for outcome in net.values():
        assert outcome.converged
