"""Figure 2b: impact of the number of placement groups.

Paper numbers (normalised): pg_num=1 ~1.22 (RS) / 1.35 (Clay, the panel
worst); pg_num=16 ~1.04; pg_num=256 1.00.  Findings reproduced: larger
pg_num recovers faster for both codes (objects spread more evenly, so
recovery parallelises), and Clay with one PG is the worst configuration.
"""

from conftest import MB, clay_profile, emit, recovery_time, rs_profile

from repro.analysis import normalised_series, render_figure2_panel, render_table
from repro.workload import Workload

PG_NUMS = [1, 16, 256]
GROUPS = ["1 PG", "16 PGs", "256 PGs"]
PAPER = {
    "rs": {"1 PG": 1.22, "16 PGs": 1.04, "256 PGs": 1.00},
    "clay": {"1 PG": 1.35, "16 PGs": 1.03, "256 PGs": 1.02},
}


def run_panel():
    # With pg_num=1 the pool lives on a single acting set (12 OSDs), so
    # the workload is sized to fit those devices.
    workload = Workload(num_objects=1000, object_size=64 * MB)
    raw = {}
    for key, factory in (("rs", rs_profile), ("clay", clay_profile)):
        for group, pg_num in zip(GROUPS, PG_NUMS):
            profile = factory(pg_num=pg_num)
            raw[f"{key}/{group}"] = recovery_time(profile, workload)
    return normalised_series(raw)


def test_fig2b_placement_group(benchmark, capsys):
    norm = benchmark.pedantic(run_panel, rounds=1, iterations=1)
    rs = {g: norm[f"rs/{g}"] for g in GROUPS}
    clay = {g: norm[f"clay/{g}"] for g in GROUPS}

    figure = render_figure2_panel("b", GROUPS, rs, clay)
    comparison = render_table(
        "Fig 2b paper vs measured (normalised recovery time)",
        ["configuration", "paper", "measured"],
        [
            [f"{code} {group}", PAPER[code][group],
             f"{ {'rs': rs, 'clay': clay}[code][group]:.3f}"]
            for code in ("rs", "clay")
            for group in GROUPS
        ],
    )
    emit(capsys, "fig2b_placement_group", figure + "\n\n" + comparison)

    # Shape: more PGs -> faster recovery, monotonically, for both codes.
    assert rs["1 PG"] > rs["16 PGs"] > rs["256 PGs"] * 0.999
    assert clay["1 PG"] > clay["16 PGs"] > clay["256 PGs"] * 0.999
    # Shape: a pg_num=1 configuration is the worst in the panel.  (The
    # paper's Clay-vs-RS ordering *within* the pg_num=1 group is a ~10%
    # effect our simulator does not resolve; see EXPERIMENTS.md.)
    assert max(norm.values()) in (clay["1 PG"], rs["1 PG"])
    # Magnitude: the pg_num=1 penalty lands in the paper's 1.2-1.4 band.
    assert 1.1 < rs["1 PG"] < 1.5
    assert 1.1 < clay["1 PG"] < 1.6
