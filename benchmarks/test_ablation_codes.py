"""Ablation: the other Table-1 plugins (LRC, SHEC, ISA) under ECFault.

The paper's Table 1 lists Jerasure, ISA, Clay, LRC and SHEC as available
EC plugins but the case study only sweeps RS and Clay; this ablation
runs the remaining plugins through the identical single-node-failure
experiment, showing the framework is plugin-agnostic and quantifying the
repair-locality advantage LRC/SHEC trade storage for.
"""

from conftest import MB, emit, recovery_time

from repro.analysis import render_table
from repro.core import ExperimentProfile
from repro.ec import create_plugin
from repro.workload import Workload

#: Matched at ~3-failure tolerance / k=9-ish data width where possible.
PLUGINS = {
    "jerasure RS(12,9)": ("jerasure", {"k": 9, "m": 3}),
    "isa RS(12,9)": ("isa", {"k": 9, "m": 3}),
    "clay (12,9,11)": ("clay", {"k": 9, "m": 3, "d": 11}),
    "lrc (9,3,3)": ("lrc", {"k": 9, "l": 3, "r": 3}),
    "shec (9,5,5)": ("shec", {"k": 9, "m": 5, "l": 5}),
}


def run_ablation():
    workload = Workload(num_objects=2000, object_size=64 * MB)
    rows = {}
    for label, (plugin, params) in PLUGINS.items():
        code = create_plugin(plugin, **params)
        single_plan = code.repair_plan([0], list(range(1, code.n)))
        profile = ExperimentProfile(
            name=label, ec_plugin=plugin, ec_params=dict(params)
        )
        rows[label] = {
            "storage": code.storage_overhead,
            "repair_reads": single_plan.read_fraction_total(),
            "recovery": recovery_time(profile, workload),
        }
    return rows


def test_ablation_all_plugins(benchmark, capsys):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    best = min(r["recovery"] for r in rows.values())
    table = render_table(
        "Ablation: every Table-1 EC plugin under the same node failure",
        ["plugin", "storage n/k", "single-repair reads (chunks)",
         "recovery time (norm.)"],
        [
            [
                label,
                f"{r['storage']:.2f}",
                f"{r['repair_reads']:.2f}",
                f"{r['recovery'] / best:.3f}",
            ]
            for label, r in rows.items()
        ],
    )
    emit(capsys, "ablation_codes", table)

    # Locality: LRC and SHEC read fewer chunks than RS for one failure.
    assert rows["lrc (9,3,3)"]["repair_reads"] < 9
    assert rows["shec (9,5,5)"]["repair_reads"] < 9
    # ...but pay for it in storage overhead vs the MDS codes.
    assert rows["lrc (9,3,3)"]["storage"] > rows["jerasure RS(12,9)"]["storage"]
    # Among the MDS codes (same n/k storage), Clay reads the least.
    mds = ("jerasure RS(12,9)", "isa RS(12,9)", "clay (12,9,11)")
    assert rows["clay (12,9,11)"]["repair_reads"] == min(
        rows[label]["repair_reads"] for label in mds
    )
    # Every plugin completes recovery through the same framework.
    assert all(r["recovery"] > 0 for r in rows.values())
