"""Tuner budget: successive halving vs the exhaustive grid.

§6's automatic-tuning suggestion, quantified: on the reference
pg_num x cache x stripe x {RS, Clay} grid, the tuner's successive
halving screens every configuration at low fidelity and promotes only
the top 1/eta per rung, so it reaches the same recommendation as an
exhaustive full-fidelity sweep at a fraction of the simulation budget.
The rendered table compares both paths: budget spent, simulations run,
and the winning configuration.
"""

from conftest import MB, emit

from repro.analysis import render_table
from repro.core import ExperimentProfile
from repro.tuner import (
    CategoricalAxis,
    EcVariantAxis,
    Evaluator,
    Fidelity,
    SuccessiveHalving,
    TuningSpace,
    pool_width_fits,
    stripe_unit_divides,
    tune,
)

RS = ("jerasure", (("k", 9), ("m", 3)))
CLAY = ("clay", (("d", 11), ("k", 9), ("m", 3)))


def reference_space():
    return TuningSpace(
        ExperimentProfile(name="tuner-bench", num_hosts=15),
        axes=[
            CategoricalAxis("pg_num", (16, 64, 256)),
            CategoricalAxis("cache_scheme", ("kv-optimized", "autotune")),
            CategoricalAxis("stripe_unit", (1 * MB, 4 * MB)),
            EcVariantAxis(variants=(RS, CLAY)),
        ],
        constraints=[pool_width_fits(), stripe_unit_divides(8 * MB)],
    )


def run_both():
    space = reference_space()
    full = Fidelity(96, label="full")
    grid = space.enumerate()

    exhaustive = Evaluator(space, object_size=8 * MB, base_seed=42)
    exhaustive_results = exhaustive.evaluate_many(grid, full)

    outcome = tune(
        space,
        SuccessiveHalving(
            [Fidelity(8, label="screen"), Fidelity(24, label="mid"), full],
            eta=4,
        ),
        seed=42,
        object_size=8 * MB,
        budget=len(grid) * full.cost,
    )
    return exhaustive, exhaustive_results, outcome


def test_tuner_budget(benchmark, capsys):
    exhaustive, exhaustive_results, outcome = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    optimum = min(exhaustive_results, key=lambda m: m.recovery_time)
    chosen = outcome.recommendation.chosen

    table = render_table(
        "Tuner budget: successive halving vs exhaustive full-fidelity grid",
        ["path", "object-runs", "simulations", "winner", "recovery (s)"],
        [
            ["exhaustive", exhaustive.spent, exhaustive.simulations,
             optimum.label, f"{optimum.recovery_time:.1f}"],
            ["halving", outcome.spent, outcome.simulations,
             chosen.label, f"{chosen.recovery_time:.1f}"],
        ],
    )
    saved = 1 - outcome.spent / exhaustive.spent
    emit(capsys, "tuner_budget",
         table + f"\n\nhalving spent {saved * 100:.0f}% less than the "
                 "exhaustive grid")

    # The headline claim: within 5% of the optimum at <= 25% of the budget.
    assert outcome.spent <= exhaustive.spent // 4
    assert chosen.recovery_time <= optimum.recovery_time * 1.05
