"""Twin calibration: the analytical model against the DES, at scale.

The tier-1 differential test (``tests/test_twin_differential.py``) runs
the same harness on a small fast grid; this benchmark re-validates at
benchmark scale — 1000 x 64MB objects, the magnitude the figure panels
sweep — and checks in the rendered calibration report so the documented
error envelope travels with the code.
"""

import time

from conftest import MB, emit

from repro.twin import default_grid, render_report, run_differential


def run_sweep():
    started = time.perf_counter()
    report = run_differential(
        cases=default_grid(num_objects=1000, object_size=64 * MB)
    )
    return report, time.perf_counter() - started


def test_twin_calibration(benchmark, capsys):
    report, elapsed = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rendered = render_report(report)
    emit(
        capsys,
        "twin_calibration",
        rendered
        + f"\n\ngrid: {len(report.results)} cases at 1000 x 64MB objects, "
        f"swept (DES + twin) in {elapsed:.0f}s",
    )
    assert report.passed, rendered
    # The envelope the docs advertise, revalidated at benchmark scale.
    summaries = report.summaries
    assert summaries["wa_actual"].max_rel_error <= 0.01
    assert summaries["recovery_time"].max_rel_error <= 0.05
    assert summaries["recovery_time"].rank_spearman >= 0.9
