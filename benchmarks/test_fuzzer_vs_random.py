"""Adversarial fuzzing vs blind chaos sampling, at equal budget.

The coverage-guided fuzzer's claim: with the *same* number of campaign
runs, corpus-guided mutation explores strictly more of the
(fault-level x EC-plugin x PG-state) coverage space and pushes at least
one fitness axis (repair bytes moved — the recovery-pressure proxy)
strictly past anything blind sampling reaches.  This benchmark runs
both at an equal fixed-seed budget and renders the side-by-side.
"""

from conftest import emit

from repro.adversary import run_fuzz
from repro.adversary.fuzzer import MarginProbe, score_run
from repro.chaos.engine import CampaignInvalid, campaign_seed, run_campaign
from repro.chaos.sampler import sample_campaign

ROOT_SEED = 7
BUDGET = 30


def run_blind(root_seed: int, budget: int):
    """What `ecfault chaos` would explore: blind samples, same scoring."""
    coverage = set()
    best_repair = 0.0
    invalid = 0
    for index in range(budget):
        spec = sample_campaign(campaign_seed(root_seed, index))
        probe = MarginProbe()
        try:
            result = run_campaign(spec, extra_checks=(probe,))
        except CampaignInvalid:
            invalid += 1
            continue
        fitness, pairs = score_run(spec, result, probe)
        coverage |= pairs
        best_repair = max(best_repair, fitness["repair_bytes"])
    return coverage, best_repair, invalid


def test_fuzzer_beats_blind_sampling_at_equal_budget(capsys):
    blind_coverage, blind_best, blind_invalid = run_blind(ROOT_SEED, BUDGET)
    report = run_fuzz(ROOT_SEED, BUDGET)
    fuzz_coverage = report.corpus.seen_coverage
    fuzz_best = report.corpus.best_fitness["repair_bytes"]

    lines = [
        "adversarial fuzzing vs blind chaos sampling "
        f"(seed {ROOT_SEED}, {BUDGET} campaign runs each)",
        "",
        f"{'':24s}{'blind sampling':>16s}{'fuzzer':>16s}",
        f"{'coverage pairs':24s}{len(blind_coverage):>16d}"
        f"{len(fuzz_coverage):>16d}",
        f"{'max repair bytes':24s}{blind_best:>16.3e}{fuzz_best:>16.3e}",
        f"{'invalid campaigns':24s}{blind_invalid:>16d}"
        f"{report.invalid:>16d}",
        f"{'corpus entries':24s}{'-':>16s}"
        f"{len(report.corpus.entries):>16d}",
        "",
        "pairs only the fuzzer reached:",
    ]
    for pair in sorted(fuzz_coverage - blind_coverage):
        lines.append(f"  {pair[0]:16s}{pair[1]:12s}{pair[2]}")
    emit(capsys, "fuzzer_vs_random", "\n".join(lines))

    # Guided mutation must strictly dominate on both headline measures.
    assert report.ok, "fuzzing surfaced an invariant violation"
    assert len(fuzz_coverage) > len(blind_coverage)
    assert fuzz_best > blind_best
