"""Table 3 + §4.4: actual write amplification vs the theoretical n/k.

Paper numbers: RS(12,9) theoretical 1.33 vs actual 1.76 (+32.3%);
RS(15,12) theoretical 1.25 vs actual 2.15 (+72.0%) — same fault
tolerance (3), very different real storage cost.

The gap comes from the division-and-padding policy plus per-chunk
metadata.  At 64 MB objects with 4 KB units padding is negligible, so the
paper's +32-72% can only arise when objects are small relative to
k * stripe_unit; this benchmark ingests ~28 KB objects (7 stripe units),
where the paper's own formula predicts 12/7 = 1.71x for RS(12,9) and
15/7 = 2.14x for RS(15,12) before metadata — matching Table 3's
measurements almost exactly (see EXPERIMENTS.md).
"""

from conftest import KB, emit

from repro.analysis import render_table
from repro.core import ExperimentProfile, estimate_wa, run_experiment
from repro.workload import Workload

OBJECT_SIZE = 28 * KB
STRIPE_UNIT = 4 * KB
PAPER = {
    "RS(12,9)": {"theory": 1.33, "actual": 1.76, "diff": "+32.3%"},
    "RS(15,12)": {"theory": 1.25, "actual": 2.15, "diff": "+72.0%"},
}


def measure(k: int, m: int):
    profile = ExperimentProfile(
        name=f"wa-rs-{k + m}-{k}",
        ec_params={"k": k, "m": m},
        stripe_unit=STRIPE_UNIT,
        pg_num=64,
    )
    workload = Workload(num_objects=2000, object_size=OBJECT_SIZE)
    outcome = run_experiment(profile, workload, faults=[])
    return outcome.wa


def run_table():
    return {"RS(12,9)": measure(9, 3), "RS(15,12)": measure(12, 3)}


def test_table3_write_amplification(benchmark, capsys):
    reports = benchmark.pedantic(run_table, rounds=1, iterations=1)

    rows = []
    for label, report in reports.items():
        rows.append(
            [
                label,
                f"{report.theoretical:.2f}",
                f"{report.actual:.2f}",
                f"{report.excess_percent:+.1f}%",
                PAPER[label]["actual"],
                PAPER[label]["diff"],
            ]
        )
    table = render_table(
        "Table 3: Write amplification of RS codes "
        f"(objects {OBJECT_SIZE // KB} KB, stripe_unit {STRIPE_UNIT // KB} KB)",
        ["Code(n,k)", "n/k", "Actual WA", "Diff. %", "paper WA", "paper Diff."],
        rows,
    )
    emit(capsys, "table3_write_amplification", table)

    rs129, rs1512 = reports["RS(12,9)"], reports["RS(15,12)"]
    # Shape: actual always exceeds theoretical, by tens of percent.
    assert rs129.excess_percent > 20
    assert rs1512.excess_percent > 55
    # Shape: the gap grows with k at equal fault tolerance.
    assert rs1512.excess_percent > rs129.excess_percent
    # Magnitude: within a few percent of the paper's Table 3.
    assert abs(rs129.actual - 1.76) < 0.10
    assert abs(rs1512.actual - 2.15) < 0.12
    # The paper's estimation formula lower-bounds both measurements.
    for (k, report) in ((9, rs129), (12, rs1512)):
        estimate = estimate_wa(OBJECT_SIZE, k + 3, k, STRIPE_UNIT)
        assert report.theoretical < estimate <= report.actual
