"""§4.4 formula validation: WA estimation across sizes, (n,k), units.

The paper derives::

    S_chunk = S_unit * ceil(S_object / (k * S_unit))
    WA      = (n * S_chunk + S_meta) / S_object

and validates it "through a set of experiments with a variety of object
size, EC parameter (n, k), and stripe_unit".  This benchmark repeats
that validation: for every combination it ingests the workload, measures
the OSD-level Actual WA Factor, and checks that the formula (with
S_meta = 0) is a tighter lower bound than n/k — never above the
measurement, always at least the theoretical factor.
"""

import itertools

from conftest import KB, MB, emit

from repro.analysis import render_table
from repro.core import (
    ExperimentProfile,
    estimate_wa,
    run_experiment,
    theoretical_wa,
)
from repro.workload import Workload

OBJECT_SIZES = [16 * KB, 28 * KB, 200 * KB, 4 * MB]
CODES = [(9, 3), (12, 3), (6, 2)]
STRIPE_UNITS = [4 * KB, 64 * KB]


def run_validation():
    rows = []
    for size, (k, m), unit in itertools.product(OBJECT_SIZES, CODES, STRIPE_UNITS):
        profile = ExperimentProfile(
            name="wa-sweep", ec_params={"k": k, "m": m},
            stripe_unit=unit, pg_num=32,
        )
        outcome = run_experiment(
            profile, Workload(num_objects=400, object_size=size), faults=[]
        )
        rows.append(
            {
                "size": size,
                "k": k,
                "m": m,
                "unit": unit,
                "theory": theoretical_wa(k + m, k),
                "estimate": estimate_wa(size, k + m, k, unit),
                "actual": outcome.wa.actual,
            }
        )
    return rows


def test_wa_formula_validation(benchmark, capsys):
    rows = benchmark.pedantic(run_validation, rounds=1, iterations=1)

    def label_size(nbytes):
        return f"{nbytes // KB}KB" if nbytes < MB else f"{nbytes // MB}MB"

    table = render_table(
        "WA formula validation: n/k <= estimate <= measured (24 configs)",
        ["object", "RS(n,k)", "stripe_unit", "n/k", "estimate", "measured"],
        [
            [
                label_size(r["size"]),
                f"RS({r['k'] + r['m']},{r['k']})",
                label_size(r["unit"]),
                f"{r['theory']:.3f}",
                f"{r['estimate']:.3f}",
                f"{r['actual']:.3f}",
            ]
            for r in rows
        ],
    )
    emit(capsys, "wa_formula_validation", table)

    for r in rows:
        # The formula is a valid lower bound on the measurement...
        assert r["estimate"] <= r["actual"] * (1 + 1e-9), r
        # ...and at least as tight as the theoretical n/k.
        assert r["estimate"] >= r["theory"] - 1e-9, r
    # It is *strictly* tighter whenever padding is non-trivial.
    tighter = [r for r in rows if r["estimate"] > r["theory"] * 1.01]
    assert len(tighter) >= len(rows) // 3
    # And the measurement tracks the estimate closely (metadata is small).
    for r in rows:
        assert r["actual"] <= r["estimate"] * 1.15 + 0.05, r
