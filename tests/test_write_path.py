"""Client write path: creates, full overwrites, RMWs, degraded writes.

Every test asserts the WA ledger's exact byte-conservation identity
afterwards — the write path maintains the ledger at its write sites and
the BlueStore counters inside the backends independently, so any drift
is a bug one side would hide.
"""

import pytest

from repro.cluster import CACHE_SCHEMES, CephCluster, CephConfig, RadosClient
from repro.cluster.client import (
    ClientLoadGenerator,
    WriteFailedError,
    WriteSample,
)
from repro.ec import ReedSolomon
from repro.sim import Environment

MB = 1024 * 1024


def build(num_hosts=10, pg_num=8, down_out=10_000.0, objects=12):
    env = Environment()
    cluster = CephCluster(
        env,
        ReedSolomon(4, 2),
        CACHE_SCHEMES["autotune"],
        config=CephConfig(mon_osd_down_out_interval=down_out),
        num_hosts=num_hosts,
        pg_num=pg_num,
    )
    for i in range(objects):
        cluster.ingest_object(f"obj-{i}", 4 * MB)
    return env, cluster, RadosClient(cluster)


def run(env, process):
    return env.run_until_process(process)


def assert_conserved(cluster):
    ledger = cluster.ledger
    assert ledger.device_bytes == cluster.used_bytes_total(), (
        f"ledger {ledger.device_bytes} != OSD usage "
        f"{cluster.used_bytes_total()}"
    )


def fail_hosts_of_shards(cluster, pg, shards):
    """Take down the hosts holding the given shard positions of a PG."""
    downed = set()
    for shard in shards:
        host = cluster.topology.osds[pg.acting[shard]].host_id
        if host in downed:
            continue
        downed.add(host)
        for osd_id in cluster.topology.hosts[host].osd_ids:
            cluster.osds[osd_id].host_running = False
    return downed


def test_create_write_stores_object_and_conserves_bytes():
    env, cluster, client = build()
    used_before = cluster.used_bytes_total()
    sample = run(env, client.write_object("fresh", size=4 * MB))
    assert isinstance(sample, WriteSample)
    assert sample.kind == "create"
    assert not sample.degraded
    assert sample.latency > 0
    pg = cluster.pool.pg_of("fresh")
    assert any(obj.name == "fresh" for obj in pg.objects)
    entry = pg.log.entries[-1]
    assert entry.kind == "create" and entry.object_name == "fresh"
    assert cluster.used_bytes_total() > used_before
    assert_conserved(cluster)


def test_full_overwrite_allocates_nothing_new():
    env, cluster, client = build()
    used_before = cluster.used_bytes_total()
    sample = run(env, client.write_object("obj-3"))
    assert sample.kind == "full"
    # In-place rewrite: the chunks already exist, usage is unchanged.
    assert cluster.used_bytes_total() == used_before
    assert cluster.ledger.overwrite_client_bytes == 4 * MB
    assert cluster.ledger.overwrite_stored_bytes > 4 * MB
    assert_conserved(cluster)


def test_rmw_touches_unit_plus_parities():
    env, cluster, client = build()
    pg = cluster.pool.pg_of("obj-3")
    unit = cluster.pool.stripe_unit
    sample = run(env, client.write_stripe_unit("obj-3", data_shard=1))
    assert sample.kind == "rmw"
    assert sample.bytes_written == unit
    # The data unit plus both parity units were rewritten (m = 2).
    assert cluster.ledger.overwrite_client_bytes == unit
    assert cluster.ledger.overwrite_stored_bytes == 3 * unit
    entry = pg.log.entries[-1]
    assert entry.kind == "rmw"
    assert set(entry.touched) == {1, 4, 5}
    assert_conserved(cluster)


def test_degraded_write_succeeds_and_marks_stale():
    env, cluster, client = build()
    pg = cluster.pool.pg_of("obj-3")
    fail_hosts_of_shards(cluster, pg, [0])
    down = {
        s for s, osd_id in enumerate(pg.acting)
        if not cluster.osds[osd_id].is_up()
    }
    assert 1 <= len(down) <= 2
    sample = run(env, client.write_object("obj-3"))
    assert sample.degraded
    assert pg.log.stale_shards("obj-3") == down
    for shard in down:
        assert pg.log.shard_versions["obj-3"][shard] < \
            pg.log.object_version["obj-3"]
    assert_conserved(cluster)


def test_write_beyond_tolerance_fails_and_rolls_back():
    env, cluster, client = build()
    pg = cluster.pool.pg_of("obj-3")
    fail_hosts_of_shards(cluster, pg, [0, 1, 2])
    down = sum(
        1 for osd_id in pg.acting if not cluster.osds[osd_id].is_up()
    )
    assert down > 2
    head_before = pg.log.head
    with pytest.raises(WriteFailedError):
        run(env, client.write_object("obj-3"))
    # The aborted write never entered the log (rollback rule)...
    assert pg.log.head == head_before
    assert pg.log.inflight == 0
    assert client.stats.writes_failed == 1
    # ...and whatever partially landed is flagged divergent for repair,
    # never left silently torn.
    stale = pg.log.stale_shards("obj-3")
    for shard in stale:
        assert cluster.osds[pg.acting[shard]].is_up()
    assert_conserved(cluster)


def test_degraded_create_tracks_unstored_chunks():
    env, cluster, client = build()
    sample = run(env, client.write_object("fresh", size=4 * MB))
    pg = cluster.pool.pg_of("fresh")
    del sample
    fail_hosts_of_shards(cluster, pg, [0])
    down = {
        s for s, osd_id in enumerate(pg.acting)
        if not cluster.osds[osd_id].is_up()
    }
    if len(down) > 2:
        pytest.skip("host holds too many shards of this pg")
    sample = run(env, client.write_object("fresh2", size=4 * MB))
    pg2 = cluster.pool.pg_of("fresh2")
    if pg2 is not pg:
        pytest.skip("second object landed on an unaffected pg")
    assert sample.degraded
    missing = pg2.log.stale_shards("fresh2")
    for shard in missing:
        assert pg2.log.is_unstored("fresh2", shard)
    assert_conserved(cluster)


def test_reads_avoid_stale_shards():
    env, cluster, client = build()
    pg = cluster.pool.pg_of("obj-3")
    fail_hosts_of_shards(cluster, pg, [0])
    down = {
        s for s, osd_id in enumerate(pg.acting)
        if not cluster.osds[osd_id].is_up()
    }
    run(env, client.write_object("obj-3"))
    # Bring the host back: the shards are up again but hold old data.
    for osd_id in pg.acting:
        cluster.osds[osd_id].host_running = True
    assert pg.log.stale_shards("obj-3") == down
    sample = run(env, client.read_object("obj-3"))
    # The read had to treat the stale shards as unavailable.
    assert sample.degraded == bool(down & set(range(4)))


def test_mixed_load_generator_reads_and_writes():
    env, cluster, client = build()
    load = ClientLoadGenerator(
        client, interval=1.0, write_fraction=0.5, rmw_fraction=0.5
    )
    proc = load.run_for(120.0)
    env.run_until_process(proc)
    assert load.stats.count > 0
    assert load.write_stats.count > 0
    kinds = {s.kind for s in load.write_stats.samples}
    assert kinds <= {"full", "rmw"}
    assert load.write_stats.failures == 0
    assert_conserved(cluster)


def test_load_generator_validates_fractions():
    env, cluster, client = build(objects=1)
    with pytest.raises(ValueError):
        ClientLoadGenerator(client, interval=1.0, write_fraction=1.5)
    with pytest.raises(ValueError):
        ClientLoadGenerator(client, interval=1.0, rmw_fraction=-0.1)


def test_read_only_generator_draws_no_write_randomness():
    """write_fraction=0 must consume the same RNG stream as the
    pre-write-path generator: reads pick identical objects."""
    env_a, cluster_a, client_a = build()
    load_a = ClientLoadGenerator(client_a, interval=1.0)
    env_a.run_until_process(load_a.run_for(60.0))
    env_b, cluster_b, client_b = build()
    load_b = ClientLoadGenerator(client_b, interval=1.0, write_fraction=0.0,
                                 rmw_fraction=0.7)
    env_b.run_until_process(load_b.run_for(60.0))
    assert [s.object_name for s in load_a.stats.samples] == \
        [s.object_name for s in load_b.stats.samples]
