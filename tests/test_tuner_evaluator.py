"""Evaluator guarantees: memoisation, budget ceiling, serial==parallel.

The counting stub lives at module level so worker processes can pickle
it; its call counter is only meaningful with ``workers=1`` (children get
their own copy), which is exactly what the caching tests use.  The
parallel tests assert on the artifacts instead — the property that
matters is byte-identity of what a tuning run *persists*.
"""

import json

import pytest

from repro.core import ExperimentProfile
from repro.core.sweep import SweepResult
from repro.tuner import (
    BudgetExhaustedError,
    CategoricalAxis,
    EcVariantAxis,
    Evaluator,
    Fidelity,
    SuccessiveHalving,
    TuningSpace,
    tune,
)

MB = 1024 * 1024

RS = ("jerasure", (("k", 9), ("m", 3)))
CLAY = ("clay", (("d", 11), ("k", 9), ("m", 3)))

CALLS = []


def stub_cell(profile, workload, faults, runs, seed):
    """Deterministic synthetic simulator; records each invocation."""
    CALLS.append((profile.name, workload.num_objects, runs, seed))
    recovery = 1000.0 / (profile.pg_num ** 0.5)
    if profile.ec_plugin == "clay":
        recovery *= 0.8
    if profile.cache_scheme == "kv-optimized":
        recovery *= 1.1
    recovery *= 1.0 + 0.05 * (workload.num_objects % 5)
    return SweepResult(
        label=profile.name,
        settings={},
        recovery_time=recovery,
        checking_fraction=0.5,
        wa_actual=1.4 if profile.ec_plugin == "jerasure" else 1.6,
        runs=runs,
    )


def make_space():
    return TuningSpace(
        ExperimentProfile(name="eval-test"),
        axes=[
            CategoricalAxis("pg_num", (16, 64, 256)),
            CategoricalAxis("cache_scheme", ("kv-optimized", "autotune")),
            EcVariantAxis(variants=(RS, CLAY)),
        ],
    )


@pytest.fixture(autouse=True)
def clear_calls():
    CALLS.clear()


def make_evaluator(**kwargs):
    kwargs.setdefault("run_cell_fn", stub_cell)
    return Evaluator(make_space(), **kwargs)


# -- memoisation ----------------------------------------------------------------


def test_identical_signatures_never_simulated_twice():
    evaluator = make_evaluator()
    space = evaluator.space
    point = {"pg_num": 16, "cache_scheme": "autotune", "ec": RS}
    same_point_reordered = {"ec": RS, "cache_scheme": "autotune", "pg_num": 16}
    first = evaluator.evaluate(point, Fidelity(8))
    second = evaluator.evaluate(same_point_reordered, Fidelity(8))
    assert len(CALLS) == 1
    assert first == second
    assert evaluator.simulations == 1
    # A batch with duplicates still simulates each signature once.
    evaluator.evaluate_many([point, same_point_reordered, point], Fidelity(8))
    assert len(CALLS) == 1
    # A different fidelity is a different cache entry.
    evaluator.evaluate(point, Fidelity(16))
    assert len(CALLS) == 2
    assert space.signature(point) == first.signature


def test_cache_hits_charge_nothing():
    evaluator = make_evaluator(budget=16)
    point = {"pg_num": 16, "cache_scheme": "autotune", "ec": RS}
    evaluator.evaluate(point, Fidelity(16))
    assert evaluator.spent == 16
    assert evaluator.remaining == 0
    # Budget is exhausted, but the cached point still resolves.
    again = evaluator.evaluate(point, Fidelity(16))
    assert again.recovery_time > 0
    assert evaluator.spent == 16


def test_budget_is_checked_before_simulating():
    evaluator = make_evaluator(budget=10)
    with pytest.raises(BudgetExhaustedError, match="object-runs"):
        evaluator.evaluate(
            {"pg_num": 16, "cache_scheme": "autotune", "ec": RS}, Fidelity(11)
        )
    assert CALLS == []
    assert evaluator.spent == 0


def test_batch_budget_is_atomic():
    evaluator = make_evaluator(budget=20)
    points = [
        {"pg_num": pg, "cache_scheme": "autotune", "ec": RS}
        for pg in (16, 64, 256)
    ]
    with pytest.raises(BudgetExhaustedError):
        evaluator.evaluate_many(points, Fidelity(8))  # 24 > 20
    assert evaluator.spent == 0 and CALLS == []


def test_seed_cache_resumes_without_resimulating():
    evaluator = make_evaluator()
    point = {"pg_num": 64, "cache_scheme": "autotune", "ec": CLAY}
    measurement = evaluator.evaluate(point, Fidelity(8))
    fresh = make_evaluator()
    fresh.seed_cache([measurement])
    assert fresh.evaluate(point, Fidelity(8)) == measurement
    assert fresh.simulations == 0
    assert CALLS == [CALLS[0]]


# -- determinism ----------------------------------------------------------------


def test_measurements_identical_regardless_of_evaluation_order():
    space = make_space()
    point_a = {"pg_num": 16, "cache_scheme": "autotune", "ec": RS}
    point_b = {"pg_num": 256, "cache_scheme": "kv-optimized", "ec": CLAY}
    forward = Evaluator(space, run_cell_fn=stub_cell, base_seed=3)
    backward = Evaluator(space, run_cell_fn=stub_cell, base_seed=3)
    fa = forward.evaluate_many([point_a, point_b], Fidelity(8))
    bb = backward.evaluate_many([point_b, point_a], Fidelity(8))
    assert fa[0] == bb[1] and fa[1] == bb[0]


def _tune_artifact(tmp_path, workers, name):
    path = tmp_path / name
    outcome = tune(
        make_space(),
        SuccessiveHalving([Fidelity(4, label="screen"),
                           Fidelity(32, label="full")], eta=4),
        seed=11,
        budget=10_000,
        workers=workers,
        run_cell_fn=stub_cell,
        artifact_path=path,
    )
    return path.read_text(), outcome


def test_workers_produce_byte_identical_artifacts(tmp_path):
    serial_text, serial = _tune_artifact(tmp_path, 1, "serial.json")
    parallel_text, parallel = _tune_artifact(tmp_path, 4, "parallel.json")
    assert serial_text == parallel_text
    assert serial.spent == parallel.spent
    assert serial.recommendation.chosen == parallel.recommendation.chosen
    blob = json.loads(serial_text)
    assert blob["complete"] is True
    assert len(blob["evaluations"]) == serial.simulations


# -- validation -----------------------------------------------------------------


def test_evaluator_validates_arguments():
    with pytest.raises(ValueError, match="workers"):
        make_evaluator(workers=0)
    with pytest.raises(ValueError, match="budget"):
        make_evaluator(budget=0)
    with pytest.raises(ValueError):
        Fidelity(0)
    with pytest.raises(ValueError):
        Fidelity(1, runs=0)


def test_fidelity_cost_and_key():
    fidelity = Fidelity(30, runs=3, label="full")
    assert fidelity.cost == 90
    # The label is cosmetic: it must not split the cache.
    assert fidelity.key() == Fidelity(30, runs=3, label="x").key()
