"""Disk model: service times, queueing, accounting, failure."""

import pytest

from repro.cluster import GP_SSD, Disk, DiskFailedError, DiskSpec
from repro.sim import Environment


def make_spec(**overrides):
    base = dict(
        name="test",
        capacity_bytes=10**9,
        read_bandwidth=100e6,
        write_bandwidth=50e6,
        read_iops=1000.0,
        write_iops=500.0,
        latency=0.001,
    )
    base.update(overrides)
    return DiskSpec(**base)


def test_spec_validation():
    with pytest.raises(ValueError):
        make_spec(capacity_bytes=0)
    with pytest.raises(ValueError):
        make_spec(read_bandwidth=-1)


def test_bandwidth_bound_read():
    env = Environment()
    disk = Disk(env, make_spec())
    # 100 MB sequential: bandwidth term 1.0s dominates 10 ops / 1000 iops.
    assert disk.service_time(10, 100_000_000, write=False) == pytest.approx(1.001)


def test_iops_bound_read():
    env = Environment()
    disk = Disk(env, make_spec())
    # 2000 tiny ops: iops term 2.0s dominates byte term.
    assert disk.service_time(2000, 8_192_000, write=False) == pytest.approx(2.001, rel=1e-3)


def test_write_uses_write_envelope():
    env = Environment()
    disk = Disk(env, make_spec())
    read = disk.service_time(1, 50_000_000, write=False)
    write = disk.service_time(1, 50_000_000, write=True)
    assert write > read


def test_service_time_validation():
    env = Environment()
    disk = Disk(env, make_spec())
    with pytest.raises(ValueError):
        disk.service_time(0, 100, write=False)
    with pytest.raises(ValueError):
        disk.service_time(1, -1, write=False)


def test_submit_queues_and_counts():
    env = Environment()
    disk = Disk(env, make_spec(), queue_depth=1)
    done = []

    def io(name, nbytes):
        yield disk.submit(1, nbytes, write=False)
        done.append((name, env.now))

    env.process(io("a", 100_000_000))  # 1.001 s
    env.process(io("b", 100_000_000))
    env.run()
    assert done[0][0] == "a"
    assert done[1][1] == pytest.approx(2.002)
    assert disk.read_ops == 2
    assert disk.read_bytes == 200_000_000


def test_failed_disk_rejects_io():
    env = Environment()
    disk = Disk(env, make_spec())
    disk.fail()
    with pytest.raises(DiskFailedError):
        disk.submit(1, 100, write=True)
    disk.restore()
    disk.submit(1, 100, write=True)  # works again


def test_allocation_accounting_and_capacity():
    env = Environment()
    disk = Disk(env, make_spec(capacity_bytes=1000))
    disk.allocate(600)
    assert disk.used_bytes == 600
    with pytest.raises(RuntimeError, match="full"):
        disk.allocate(500)
    disk.free(100)
    assert disk.used_bytes == 500
    with pytest.raises(ValueError):
        disk.free(10_000)
    with pytest.raises(ValueError):
        disk.allocate(-1)


def test_gp_ssd_matches_paper_testbed():
    assert GP_SSD.capacity_bytes == 100 * 1024**3
    assert GP_SSD.read_bandwidth >= 200e6  # gp-class streaming
