"""DSS logs, keyword classification, the log bus, and global merge."""

import pytest

from repro.cluster import LogRecord, NodeLog
from repro.core import LogBus, LogCollector, NodeLogger, classify


def test_node_log_emit_and_fields():
    log = NodeLog("host.1")
    record = log.emit(12.5, "osd", "start recovery I/O", pg="1.a", objects=3)
    assert record.time == 12.5
    assert record.node == "host.1"
    assert record.field("pg") == "1.a"
    assert record.field("missing", "default") == "default"
    assert len(log) == 1
    assert "start recovery I/O" in str(record)


def test_classification_keywords():
    def rec(message):
        return LogRecord(0.0, "n", "osd", message)

    assert classify(rec("no heartbeats from osd, marking down")) == "failure"
    assert classify(rec("marking osd out after down interval")) == "osdmap"
    assert classify(rec("start recovery I/O")) == "recovery"
    assert classify(rec("decoding shard 3")) == "decoding"
    assert classify(rec("provisioned virtual NVMe namespaces")) == "provisioning"
    assert classify(rec("unrelated chatter")) is None


def test_logger_filters_irrelevant_entries():
    log = NodeLog("host.0")
    bus = LogBus()
    logger = NodeLogger(log, bus)
    log.emit(1.0, "osd", "start recovery I/O")
    log.emit(2.0, "osd", "something boring")
    shipped = logger.flush()
    assert shipped == 1
    assert logger.dropped == 1
    assert bus.depth("ecfault.logs.recovery", "x") == 1


def test_logger_flush_is_incremental():
    log = NodeLog("host.0")
    bus = LogBus()
    logger = NodeLogger(log, bus)
    log.emit(1.0, "osd", "recovery completed")
    assert logger.flush() == 1
    assert logger.flush() == 0  # nothing new
    log.emit(2.0, "osd", "recovery completed")
    assert logger.flush() == 1


def test_bus_topics_and_offsets():
    bus = LogBus()
    bus.publish("t1", "p", 1.0, "a")
    bus.publish("t1", "p", 2.0, "b")
    got = bus.consume("t1", group="g")
    assert [m.payload for m in got] == ["a", "b"]
    assert bus.consume("t1", group="g") == []
    # Independent group sees everything.
    assert len(bus.consume("t1", group="other")) == 2
    assert bus.peek_all("t1")[0].producer == "p"
    assert bus.topics() == ["t1"]


def test_collector_global_merge_sorts_by_time():
    bus = LogBus()
    log_a, log_b = NodeLog("host.a"), NodeLog("host.b")
    log_a.emit(5.0, "osd", "recovery completed")
    log_b.emit(2.0, "osd", "start recovery I/O")
    log_b.emit(9.0, "osd", "recovery completed")
    for log in (log_a, log_b):
        NodeLogger(log, bus).flush()
    collector = LogCollector(bus)
    assert collector.collect() == 3
    times = [r.time for r in collector.records]
    assert times == sorted(times)


def test_collector_queries():
    bus = LogBus()
    log = NodeLog("mon.0")
    log.emit(1.0, "mon", "no heartbeats from osd, marking down")
    log.emit(3.0, "osd", "start recovery I/O")
    log.emit(7.0, "osd", "recovery completed")
    log.emit(9.0, "osd", "recovery completed")
    NodeLogger(log, bus).flush()
    collector = LogCollector(bus)
    collector.collect()
    assert collector.first_matching("marking down").time == 1.0
    assert collector.last_matching("recovery completed").time == 9.0
    assert collector.first_matching("nonexistent") is None
    assert len(collector.of_class("recovery")) == 3
    assert len(collector.of_class("failure")) == 1


def test_collector_incremental_collect():
    bus = LogBus()
    log = NodeLog("h")
    logger = NodeLogger(log, bus)
    collector = LogCollector(bus)
    log.emit(1.0, "osd", "recovery completed")
    logger.flush()
    assert collector.collect() == 1
    log.emit(2.0, "osd", "recovery completed")
    logger.flush()
    assert collector.collect() == 1
    assert len(collector.records) == 2
