"""The chaos-campaign harness: specs, sampling, engine, determinism."""

import json

import pytest

from repro.chaos import (
    CampaignInvalid,
    CampaignSpec,
    ScheduledAction,
    campaign_seed,
    run_campaign,
    run_chaos,
    sample_campaign,
)
from repro.chaos.engine import hash_digest, outcome_digest

pytestmark = pytest.mark.chaos


def small_spec(**overrides):
    """A fast, converging baseline campaign for unit tests."""
    defaults = dict(
        seed=1234,
        ec_plugin="jerasure",
        ec_params=(("k", 3), ("m", 2)),
        pg_num=4,
        stripe_unit=256 * 1024,
        num_hosts=8,
        osds_per_host=1,
        mon_osd_down_out_interval=30.0,
        num_objects=6,
        object_size=512 * 1024,
        actions=(
            ScheduledAction(at=100.0, kind="inject", level="node", count=1),
            ScheduledAction(at=200.0, kind="restore"),
        ),
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


# -- spec validation and JSON round-trip ---------------------------------------


def test_spec_round_trips_through_json():
    spec = small_spec()
    rebuilt = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rebuilt == spec


def test_spec_rejects_unordered_schedule():
    with pytest.raises(ValueError, match="time-ordered"):
        small_spec(
            actions=(
                ScheduledAction(at=200.0, kind="restore"),
                ScheduledAction(at=100.0, kind="inject", level="node"),
            )
        )


def test_spec_rejects_corruption_without_scrub():
    with pytest.raises(ValueError, match="scrub"):
        small_spec(
            scrub_interval=0.0,
            actions=(
                ScheduledAction(at=100.0, kind="inject", level="corrupt"),
            ),
        )


def test_action_rejects_unknown_kind_and_bad_fault():
    with pytest.raises(ValueError, match="kind"):
        ScheduledAction(at=1.0, kind="explode")
    with pytest.raises(ValueError, match="level"):
        ScheduledAction(at=1.0, kind="inject", level="quantum")


# -- sampler -------------------------------------------------------------------


def test_sampler_is_deterministic():
    assert sample_campaign(999) == sample_campaign(999)
    assert sample_campaign(999) != sample_campaign(1000)


def test_sampler_specs_are_valid_profiles():
    for index in range(30):
        spec = sample_campaign(campaign_seed(5, index))
        profile = spec.to_profile()  # raises on any invalid configuration
        assert profile.num_hosts >= profile.create_code().n
        assert spec.actions, "sampled campaigns always schedule faults"
        # Every campaign ends with a restore so convergence is expected.
        assert spec.actions[-1].kind == "restore"


# -- engine --------------------------------------------------------------------


def test_clean_campaign_converges_without_violations():
    result = run_campaign(small_spec())
    assert result.passed
    assert result.violations == []
    assert result.digest["health"]["status"] == "HEALTH_OK"


def test_same_spec_same_outcome_hash():
    spec = small_spec()
    first = run_campaign(spec)
    second = run_campaign(spec)
    assert first.outcome_hash == second.outcome_hash
    assert first.digest == second.digest


def test_different_seed_different_outcome_hash():
    a = run_campaign(small_spec(seed=1))
    b = run_campaign(small_spec(seed=2))
    assert a.outcome_hash != b.outcome_hash


def test_truncated_settle_reports_convergence_violation():
    # Restore at t=200 but give the cluster essentially no settle time:
    # the monitor cannot even mark the rebooted OSD back in.
    result = run_campaign(small_spec(settle_time=1.0))
    assert not result.passed
    assert {v.invariant for v in result.violations} == {"health-convergence"}


def test_campaign_with_corruption_heals_via_scrub():
    spec = small_spec(
        scrub_interval=150.0,
        actions=(
            ScheduledAction(
                at=100.0, kind="inject", level="corrupt", count=1,
                corruption="bit_rot",
            ),
            ScheduledAction(at=120.0, kind="restore"),
        ),
    )
    result = run_campaign(spec)
    assert result.passed
    assert result.digest["scrub"]["chunks_repaired"] >= 1
    assert result.digest["corrupt_chunks"] == 0


def test_overcommitted_schedule_is_invalid_not_failing():
    # Two node faults against m=1: the injector's white-box guard refuses.
    spec = small_spec(
        ec_params=(("k", 4), ("m", 1)),
        actions=(
            ScheduledAction(at=100.0, kind="inject", level="node", count=1),
            ScheduledAction(at=110.0, kind="inject", level="node", count=1),
            ScheduledAction(at=200.0, kind="restore"),
        ),
    )
    with pytest.raises(CampaignInvalid):
        run_campaign(spec)


def test_extra_checks_feed_the_suite():
    from repro.chaos.invariants import InvariantViolation

    def always_fires(cluster):
        return [InvariantViolation("custom", "planted", cluster.env.now)]

    result = run_campaign(small_spec(), extra_checks=(always_fires,))
    assert not result.passed
    assert all(v.invariant == "custom" for v in result.violations)


def test_outcome_hash_is_canonical_json_sha256():
    digest = {"b": 2, "a": [1.5, "x"]}
    assert hash_digest(digest) == hash_digest({"a": [1.5, "x"], "b": 2})
    assert len(hash_digest(digest)) == 64


# -- bulk runs -----------------------------------------------------------------


def test_run_chaos_small_batch_all_pass():
    report = run_chaos(2024, 10)
    assert report.campaigns == 10
    assert report.passed + report.invalid == 10
    assert report.ok


def test_run_chaos_reports_and_stops_on_planted_failure():
    from repro.chaos.invariants import InvariantViolation

    def planted(cluster):
        return [InvariantViolation("planted", "always fails", cluster.env.now)]

    report = run_chaos(7, 5, extra_checks=(planted,), stop_on_failure=True)
    assert len(report.failures) == 1
    assert report.campaigns < 5 or report.campaigns == 1


@pytest.mark.slow
def test_500_campaigns_zero_invariant_violations():
    """The PR's acceptance gate: a 500-campaign seeded run stays clean."""
    report = run_chaos(20240807, 500)
    details = [
        (r.spec.seed, v.invariant, v.detail)
        for r in report.failures
        for v in r.violations
    ]
    assert not report.failures, details
    assert report.campaigns == 500
    # The sampler should almost never collide with runtime state.
    assert report.invalid <= 10
