"""Geo chaos campaigns: sampler stream safety, validation, invariants."""

import pytest

from repro.chaos.campaign import CampaignSpec, ScheduledAction
from repro.chaos.engine import run_campaign
from repro.chaos.invariants import check_cross_region_accounting
from repro.chaos.sampler import sample_campaign
from repro.core.controller import Controller
from repro.core.fault_injector import GEO_LEVELS
from repro.core.profile import ExperimentProfile
from repro.ec import create_plugin


# -- sampler ------------------------------------------------------------------


def test_geo_flag_leaves_non_geo_stream_untouched():
    """geo draws happen strictly after every existing draw, so
    geo=False campaigns are byte-identical to the pre-geo sampler."""
    for seed in (0, 3, 99):
        assert sample_campaign(seed) == sample_campaign(seed, geo=False)


def test_geo_sampling_is_deterministic():
    for seed in (0, 7, 1234):
        assert sample_campaign(seed, geo=True) == sample_campaign(seed, geo=True)


def test_geo_is_exclusive_with_writes_and_tenants():
    with pytest.raises(ValueError):
        sample_campaign(0, writes=True, geo=True)
    with pytest.raises(ValueError):
        sample_campaign(0, tenants=True, geo=True)


def test_geo_campaigns_are_region_outage_safe():
    """Every sampled geometry keeps ceil(n/3) shards per region at or
    under the code's tolerance, so a whole-region outage is always a
    legal fault — campaigns never die on the white-box guard."""
    for seed in range(25):
        spec = sample_campaign(seed, geo=True)
        assert spec.num_regions == 3
        assert spec.num_hosts % 3 == 0
        assert spec.scrub_interval == 0.0
        assert spec.write_interval == 0.0
        assert spec.tenant_fleet is None
        code = create_plugin(spec.ec_plugin, **dict(spec.ec_params))
        assert -(-code.n // 3) <= code.fault_tolerance()
        for action in spec.actions:
            if action.kind == "inject":
                assert action.level in GEO_LEVELS + ("node",)


def test_sampled_geo_campaigns_pass(subtests=None):
    for seed in (0, 5):
        result = run_campaign(sample_campaign(seed, geo=True))
        assert result.violations == []


def test_same_geo_spec_same_outcome_hash():
    spec = sample_campaign(11, geo=True)
    assert run_campaign(spec).outcome_hash == run_campaign(spec).outcome_hash


def test_geo_digest_has_wan_section():
    result = run_campaign(sample_campaign(0, geo=True))
    wan = result.digest["wan"]
    assert set(wan) >= {
        "cross_region_transfers", "cross_region_bytes",
        "wan_partition_refusals", "egress_bytes_by_region", "egress_cost",
    }
    assert "cross_region_bytes_read" not in result.digest["recovery"] or (
        result.digest["recovery"]["cross_region_bytes_read"] > 0
    )  # zero-valued geo fields are pruned from the recovery section


def test_single_region_digest_has_no_wan_section():
    result = run_campaign(sample_campaign(0))
    assert "wan" not in result.digest


# -- campaign spec validation -------------------------------------------------


def base_spec(**overrides):
    fields = dict(
        seed=1,
        ec_plugin="jerasure",
        ec_params=(("k", 4), ("m", 2)),
        num_hosts=12,
        pg_num=16,
        num_objects=8,
        object_size=1 << 22,
        actions=(ScheduledAction(at=100.0, kind="inject", level="node"),),
        scrub_interval=0.0,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


def test_geo_levels_require_multi_region_spec():
    with pytest.raises(ValueError):
        base_spec(
            actions=(
                ScheduledAction(at=100.0, kind="inject", level="region_outage"),
            )
        )


def test_geo_spec_rejects_scrub_and_writes():
    with pytest.raises(ValueError):
        base_spec(num_regions=3, scrub_interval=900.0)
    with pytest.raises(ValueError):
        base_spec(num_regions=3, write_interval=5.0)


def test_geo_spec_round_trips_through_dict():
    spec = sample_campaign(4, geo=True)
    clone = CampaignSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.num_regions == 3
    assert clone.wan_latency == spec.wan_latency


def test_pre_geo_artifacts_still_load():
    """Old saved artifacts have no geo fields; defaults must apply."""
    payload = base_spec().to_dict()
    for key in list(payload):
        if key.startswith("wan_") or key == "num_regions":
            payload.pop(key)
    spec = CampaignSpec.from_dict(payload)
    assert spec.num_regions == 1


# -- the cross-region-byte invariant -----------------------------------------


def test_cross_region_check_skips_single_region_clusters():
    profile = ExperimentProfile(
        name="flat", ec_plugin="jerasure", ec_params={"k": 4, "m": 2},
        num_hosts=6,
    )
    controller = Controller(profile, seed=0)
    assert check_cross_region_accounting(controller.cluster) == []


def test_cross_region_check_reports_drift():
    profile = ExperimentProfile(
        name="geo", ec_plugin="jerasure", ec_params={"k": 4, "m": 2},
        num_hosts=6, num_regions=3, pg_num=8,
    )
    controller = Controller(profile, seed=0)
    cluster = controller.cluster
    assert check_cross_region_accounting(cluster) == []
    cluster.recovery.stats.cross_region_bytes_read += 4096  # fake drift
    violations = check_cross_region_accounting(cluster)
    assert violations and violations[0].invariant == "cross-region-accounting"
