"""Trace export and anomaly detection (§3.3's analysis back end)."""

import json

import pytest

from repro.cluster import NodeLog
from repro.cluster.osd import CephConfig
from repro.core import ExperimentProfile, FaultSpec, LogBus, LogCollector, NodeLogger, run_experiment
from repro.core.trace import (
    Anomaly,
    export_logs_jsonl,
    export_timeline_csv,
    find_anomalies,
    pg_recovery_spans,
)
from repro.workload import Workload

MB = 1024 * 1024
FAST = CephConfig(mon_osd_down_out_interval=30.0)


@pytest.fixture(scope="module")
def outcome():
    profile = ExperimentProfile(name="trace", pg_num=16, num_hosts=15, ceph=FAST)
    return run_experiment(
        profile,
        Workload(num_objects=60, object_size=8 * MB),
        [FaultSpec(level="node")],
        seed=2,
    )


def collector_from(events):
    log = NodeLog("n")
    for time, message, fields in events:
        log.emit(time, "osd", message, **fields)
    bus = LogBus()
    NodeLogger(log, bus).flush()
    collector = LogCollector(bus)
    collector.collect()
    return collector


def test_export_logs_jsonl_roundtrips(tmp_path, outcome):
    path = tmp_path / "logs.jsonl"
    count = export_logs_jsonl(outcome.collector, path)
    assert count == len(outcome.collector.records) > 0
    lines = path.read_text().splitlines()
    assert len(lines) == count
    first = json.loads(lines[0])
    assert {"time", "node", "class", "message"} <= set(first)
    times = [json.loads(line)["time"] for line in lines]
    assert times == sorted(times)


def test_export_timeline_csv(tmp_path, outcome):
    path = tmp_path / "timeline.csv"
    export_timeline_csv(outcome, path)
    lines = path.read_text().splitlines()
    assert lines[0] == "phase,start_s,end_s,duration_s"
    assert lines[1].startswith("checking,")
    assert lines[2].startswith("ec_recovery,")


def test_export_timeline_requires_timeline(tmp_path, outcome):
    import dataclasses

    no_timeline = dataclasses.replace(outcome, timeline=None)
    with pytest.raises(ValueError):
        export_timeline_csv(no_timeline, tmp_path / "x.csv")


def test_pg_spans_from_real_experiment(outcome):
    spans = pg_recovery_spans(outcome.collector)
    assert len(spans) == outcome.recovery_stats.pgs_recovered
    assert all(span.duration > 0 for span in spans)
    # Sorted by duration, longest first.
    durations = [span.duration for span in spans]
    assert durations == sorted(durations, reverse=True)


def test_pg_spans_ignore_incomplete():
    collector = collector_from(
        [
            (1.0, "collecting missing OSDs, queueing recovery", {"pg": "1.a"}),
            (2.0, "collecting missing OSDs, queueing recovery", {"pg": "1.b"}),
            (5.0, "recovery completed", {"pg": "1.a"}),
            # 1.b never completes.
        ]
    )
    spans = pg_recovery_spans(collector)
    assert [s.pgid for s in spans] == ["1.a"]
    assert spans[0].duration == pytest.approx(4.0)


def test_find_anomalies_flags_straggler():
    events = []
    for i in range(6):
        events.append((float(i), "collecting missing OSDs, queueing recovery",
                       {"pg": f"1.{i}"}))
        events.append((float(i) + 2.0, "recovery completed", {"pg": f"1.{i}"}))
    # One PG takes 10x longer.
    events.append((10.0, "collecting missing OSDs, queueing recovery", {"pg": "1.slow"}))
    events.append((40.0, "recovery completed", {"pg": "1.slow"}))
    anomalies = find_anomalies(collector_from(events))
    assert len(anomalies) == 1
    assert anomalies[0].kind == "straggler-pg"
    assert anomalies[0].subject == "1.slow"
    assert anomalies[0].factor > 3.0
    assert "straggler-pg" in anomalies[0].describe()


def test_find_anomalies_no_false_positives_on_uniform_spans():
    events = []
    for i in range(8):
        events.append((float(i), "collecting missing OSDs, queueing recovery",
                       {"pg": f"1.{i}"}))
        events.append((float(i) + 3.0, "recovery completed", {"pg": f"1.{i}"}))
    assert find_anomalies(collector_from(events)) == []


def test_find_anomalies_hot_device(outcome):
    anomalies = find_anomalies(
        outcome.collector, iostat=outcome.iostat, threshold=2.0
    )
    # Recovery concentrates traffic: at least the kinds are well-formed.
    assert all(isinstance(a, Anomaly) for a in anomalies)
    assert all(a.factor > 2.0 for a in anomalies)


def test_find_anomalies_threshold_validation(outcome):
    with pytest.raises(ValueError):
        find_anomalies(outcome.collector, threshold=1.0)
