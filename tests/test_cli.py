"""The ecfault command-line interface."""

import json

import pytest

from repro.cli import main, parse_size


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_parse_size():
    assert parse_size("4096") == 4096
    assert parse_size("4KB") == 4096
    assert parse_size("4 MB") == 4 * 1024 * 1024
    assert parse_size("1GB") == 1024**3
    with pytest.raises(Exception):
        parse_size("lots")


def test_repair_plan_command(capsys):
    code, out, _ = run_cli(
        capsys, "repair-plan", "--plugin", "clay",
        "--ec-params", "k=9,m=3,d=11", "--lost", "4",
    )
    assert code == 0
    assert "clay(12,9)" in out
    assert "3.67" in out  # d * beta / alpha chunk-equivalents
    assert "conventional RS: 9.00" in out


def test_wa_command(capsys):
    code, out, _ = run_cli(
        capsys, "wa", "--object-size", "28KB", "--stripe-unit", "4KB",
    )
    assert code == 0
    assert "theoretical n/k: 1.3333" in out
    assert "1.7143" in out  # 12 * 4KB / 28KB


def test_autoscale_command(capsys):
    code, out, _ = run_cli(capsys, "autoscale", "--pg-num", "1")
    assert code == 0
    assert "recommended 512" in out
    assert "SCALE" in out


def test_run_command_small_experiment(capsys):
    code, out, _ = run_cli(
        capsys, "run", "--objects", "40", "--object-size", "8MB",
        "--pg-num", "8", "--hosts", "15",
    )
    assert code == 0
    assert "checking period" in out
    assert "write amplification" in out


def test_run_command_without_fault(capsys):
    code, out, _ = run_cli(
        capsys, "run", "--objects", "20", "--object-size", "8MB",
        "--pg-num", "8", "--hosts", "15", "--fault", "none",
    )
    assert code == 0
    assert "checking period" not in out  # no timeline without a fault
    assert "write amplification" in out


def test_sweep_requires_an_axis(capsys):
    code, _, err = run_cli(
        capsys, "sweep", "--objects", "5", "--object-size", "8MB",
    )
    assert code == 2
    assert "nothing to sweep" in err


def test_sweep_and_analyze_pipeline(tmp_path, capsys):
    output = tmp_path / "sweep.json"
    code, out, _ = run_cli(
        capsys, "sweep", "--objects", "30", "--object-size", "8MB",
        "--hosts", "15", "--sweep-pg-num", "4,16",
        "--output", str(output),
    )
    assert code == 0
    assert "sweep results (2 cells" in out
    blob = json.loads(output.read_text())
    assert len(blob["results"]) == 2

    code, out, _ = run_cli(
        capsys, "analyze", str(output), "--axes", "pg_num",
    )
    assert code == 0
    assert "configuration-axis impact" in out
    assert "recommended configuration" in out


def test_bad_ec_params_message():
    import argparse

    with pytest.raises(argparse.ArgumentTypeError, match="not key=value"):
        main(["repair-plan", "--ec-params", "k9"])
