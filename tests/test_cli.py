"""The ecfault command-line interface."""

import json

import pytest

from repro.cli import main, parse_size


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_parse_size():
    assert parse_size("4096") == 4096
    assert parse_size("4KB") == 4096
    assert parse_size("4 MB") == 4 * 1024 * 1024
    assert parse_size("1GB") == 1024**3
    with pytest.raises(Exception):
        parse_size("lots")


def test_repair_plan_command(capsys):
    code, out, _ = run_cli(
        capsys, "repair-plan", "--plugin", "clay",
        "--ec-params", "k=9,m=3,d=11", "--lost", "4",
    )
    assert code == 0
    assert "clay(12,9)" in out
    assert "3.67" in out  # d * beta / alpha chunk-equivalents
    assert "conventional RS: 9.00" in out


def test_wa_command(capsys):
    code, out, _ = run_cli(
        capsys, "wa", "--object-size", "28KB", "--stripe-unit", "4KB",
    )
    assert code == 0
    assert "theoretical n/k: 1.3333" in out
    assert "1.7143" in out  # 12 * 4KB / 28KB


def test_autoscale_command(capsys):
    code, out, _ = run_cli(capsys, "autoscale", "--pg-num", "1")
    assert code == 0
    assert "recommended 512" in out
    assert "SCALE" in out


def test_run_command_small_experiment(capsys):
    code, out, _ = run_cli(
        capsys, "run", "--objects", "40", "--object-size", "8MB",
        "--pg-num", "8", "--hosts", "15",
    )
    assert code == 0
    assert "checking period" in out
    assert "write amplification" in out


def test_run_command_without_fault(capsys):
    code, out, _ = run_cli(
        capsys, "run", "--objects", "20", "--object-size", "8MB",
        "--pg-num", "8", "--hosts", "15", "--fault", "none",
    )
    assert code == 0
    assert "checking period" not in out  # no timeline without a fault
    assert "write amplification" in out


def test_sweep_requires_an_axis(capsys):
    code, _, err = run_cli(
        capsys, "sweep", "--objects", "5", "--object-size", "8MB",
    )
    assert code == 2
    assert "nothing to sweep" in err


def test_sweep_and_analyze_pipeline(tmp_path, capsys):
    output = tmp_path / "sweep.json"
    code, out, _ = run_cli(
        capsys, "sweep", "--objects", "30", "--object-size", "8MB",
        "--hosts", "15", "--sweep-pg-num", "4,16",
        "--output", str(output),
    )
    assert code == 0
    assert "sweep results (2 cells" in out
    blob = json.loads(output.read_text())
    assert len(blob["results"]) == 2

    code, out, _ = run_cli(
        capsys, "analyze", str(output), "--axes", "pg_num",
    )
    assert code == 0
    assert "configuration-axis impact" in out
    assert "recommended configuration" in out


def test_bad_ec_params_message():
    import argparse

    with pytest.raises(argparse.ArgumentTypeError, match="not key=value"):
        main(["repair-plan", "--ec-params", "k9"])


# -- help and argument validation across subcommands ---------------------------


@pytest.mark.parametrize("command", [
    "run", "scrub", "sweep", "analyze", "repair-plan",
    "wa", "autoscale", "chaos", "replay", "tune", "inject", "tenants",
    "fuzz", "cascade",
])
def test_every_subcommand_has_help(capsys, command):
    with pytest.raises(SystemExit) as excinfo:
        main([command, "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "usage: ecfault" in out
    assert command in out


def test_no_subcommand_is_an_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code == 2


@pytest.mark.parametrize("argv", [
    ["run", "--fault", "meteor"],            # not a valid fault level
    ["run", "--pg-num", "lots"],             # not an int
    ["run", "--object-size", "big"],         # not a size
    ["scrub", "--corruption", "gremlins"],   # not a corruption model
    ["chaos", "--campaigns", "many"],        # not an int
    ["replay"],                              # artifact path is required
    ["frobnicate"],                          # unknown subcommand
    ["tune", "--budget", "lots"],            # not an int
    ["tune", "--strategy", "psychic"],       # not a strategy
    ["tune", "--ec-variants", "k=9,m=3"],    # missing plugin: prefix
    ["inject", "--level", "node"],           # not a gray fault level
    ["inject", "--factor", "fast"],          # not a float
    ["fuzz", "--budget", "lots"],            # not an int
    ["fuzz", "--seed", "soon"],              # not an int
    ["cascade", "--priority", "turbo"],      # not a recovery priority
    ["cascade", "--seed", "soon"],           # not an int
])
def test_malformed_arguments_exit_2(capsys, argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    assert "usage:" in capsys.readouterr().err


def test_sweep_json_schema(tmp_path, capsys):
    output = tmp_path / "sweep.json"
    code, _, _ = run_cli(
        capsys, "sweep", "--objects", "20", "--object-size", "8MB",
        "--hosts", "15", "--sweep-pg-num", "4,8", "--output", str(output),
    )
    assert code == 0
    blob = json.loads(output.read_text())
    assert set(blob) >= {"results"}
    for row in blob["results"]:
        assert {"label", "recovery_time", "checking_fraction",
                "wa_actual"} <= set(row)
        assert isinstance(row["recovery_time"], float)


# -- tune -----------------------------------------------------------------------


def test_tune_requires_an_axis(capsys):
    code, _, err = run_cli(
        capsys, "tune", "--objects", "8", "--object-size", "8MB",
    )
    assert code == 2
    assert "nothing to tune" in err


def tune_small(capsys, output, *extra):
    return run_cli(
        capsys, "tune", "--objects", "16", "--object-size", "8MB",
        "--hosts", "15", "--sweep-pg-num", "4,8",
        "--output", str(output), *extra,
    )


def test_tune_artifact_json_schema(tmp_path, capsys):
    output = tmp_path / "tuning.json"
    code, out, _ = tune_small(capsys, output)
    assert code == 0
    assert "recommended configuration" in out
    assert "tuning report saved" in out
    blob = json.loads(output.read_text())
    assert blob["format"] == "ecfault-tuning-report"
    assert blob["version"] == 1
    assert blob["complete"] is True
    assert {"seed", "strategy", "space", "budget", "spent", "evaluations",
            "objectives", "front", "recommendation"} <= set(blob)
    for row in blob["evaluations"]:
        assert {"signature", "settings", "fidelity", "recovery_time",
                "wa_actual", "cost"} <= set(row)
    assert blob["recommendation"]["signature"] in blob["front"]
    assert blob["spent"] == sum(row["cost"] for row in blob["evaluations"])


def test_tune_resumes_from_partial_artifact(tmp_path, capsys):
    output = tmp_path / "tuning.json"
    code, out, err = tune_small(capsys, output)
    assert code == 0
    complete_text = output.read_text()
    total_progress = err.count("recovery")

    # Truncate to the first evaluation, as if the run had been killed.
    blob = json.loads(complete_text)
    blob["evaluations"] = blob["evaluations"][:1]
    blob["spent"] = blob["evaluations"][0]["cost"]
    blob["front"], blob["recommendation"], blob["complete"] = [], None, False
    output.write_text(json.dumps(blob))

    code, out, err = tune_small(capsys, output, "--resume")
    assert code == 0
    assert output.read_text() == complete_text  # same recommendation, byte for byte
    assert err.count("recovery") == total_progress - 1  # nothing re-run


def test_tune_rejects_mismatched_resume(tmp_path, capsys):
    output = tmp_path / "tuning.json"
    assert tune_small(capsys, output)[0] == 0
    code, _, err = tune_small(capsys, output, "--resume", "--seed", "9")
    assert code == 2
    assert "seed" in err


def test_scrub_command_small_experiment(capsys):
    code, out, _ = run_cli(
        capsys, "scrub", "--objects", "20", "--object-size", "8MB",
        "--pg-num", "8", "--hosts", "15", "--scrub-interval", "120",
    )
    assert code == 0
    assert "detection period" in out
    assert "chunks repaired" in out


# -- chaos + replay ------------------------------------------------------------


def test_chaos_command_clean_run(capsys):
    code, out, _ = run_cli(capsys, "chaos", "--campaigns", "5", "--seed", "3")
    assert code == 0
    assert "5 campaigns from seed 3" in out
    assert "0 failed" in out


def test_replay_of_saved_artifact_exits_zero(tmp_path, capsys):
    from repro.chaos import ReproArtifact, run_campaign, save_artifact
    from tests.test_chaos_shrink import failing_spec

    spec = failing_spec()
    result = run_campaign(spec)
    path = save_artifact(
        ReproArtifact(spec=spec, violations=result.violations,
                      outcome_hash=result.outcome_hash),
        tmp_path / "repro.json",
    )
    code, out, _ = run_cli(capsys, "replay", str(path))
    assert code == 0
    assert "failure reproduced exactly" in out
    assert "health-convergence" in out


def test_replay_detects_outcome_divergence(tmp_path, capsys):
    from repro.chaos import ReproArtifact, run_campaign, save_artifact
    from tests.test_chaos_shrink import failing_spec

    spec = failing_spec()
    result = run_campaign(spec)
    path = save_artifact(
        ReproArtifact(spec=spec, violations=result.violations,
                      outcome_hash="0" * 64),
        tmp_path / "repro.json",
    )
    code, _, err = run_cli(capsys, "replay", str(path))
    assert code == 1
    assert "DIVERGED" in err


def test_replay_rejects_malformed_artifact(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"format\": \"nope\"}")
    code, _, err = run_cli(capsys, "replay", str(bad))
    assert code == 2
    assert "not a" in err

    code, _, err = run_cli(capsys, "replay", str(tmp_path / "missing.json"))
    assert code == 2
    assert "cannot read" in err


# -- tenants --------------------------------------------------------------------


def tenants_small(capsys, *extra):
    return run_cli(
        capsys, "tenants", "--hosts", "8", "--osds-per-host", "2",
        "--pg-num", "8", "--ec-params", "k=4,m=2", "--stripe-unit", "1MB",
        "--objects", "12", "--object-size", "1MB", "--duration", "120",
        *extra,
    )


def test_tenants_command_table_output(capsys):
    code, out, _ = tenants_small(capsys)
    assert code == 0
    assert "per-tenant accounting" in out
    assert "QoS classes" in out
    assert "latency" in out and "batch" in out


def test_tenants_json_schema(capsys):
    code, out, _ = tenants_small(capsys, "--json")
    assert code == 0
    blob = json.loads(out)
    assert {"fleet", "converged", "health", "injected_osds",
            "tenants", "qos"} <= set(blob)
    assert {t["name"] for t in blob["tenants"]} == {"latency", "batch"}
    for row in blob["tenants"]:
        assert {"name", "reads_ok", "read_failures", "p50", "p99", "p999",
                "throughput", "wa_attributed", "slo", "slo_met",
                "slo_violations"} <= set(row)
    assert {"recovery", "scrub"} <= set(blob["qos"])


def test_tenants_custom_spec_round_trip(tmp_path, capsys):
    from repro.tenancy import TenantFleetSpec, TenantSpec

    spec = TenantFleetSpec(tenants=(TenantSpec(name="solo", interval=1.0),))
    path = tmp_path / "fleet.json"
    path.write_text(json.dumps(spec.to_dict()))
    code, out, _ = tenants_small(
        capsys, "--spec", str(path), "--fault", "none", "--json",
    )
    assert code == 0
    blob = json.loads(out)
    assert [t["name"] for t in blob["tenants"]] == ["solo"]
    assert "qos" not in blob  # this fleet runs without QoS


def test_tenants_rejects_bad_spec(tmp_path, capsys):
    bad = tmp_path / "fleet.json"
    bad.write_text('{"tenants": "nope"}')
    code, _, err = tenants_small(capsys, "--spec", str(bad))
    assert code == 2
    assert "bad fleet spec" in err

    code, _, err = tenants_small(
        capsys, "--spec", str(tmp_path / "missing.json"),
    )
    assert code == 2
    assert "bad fleet spec" in err


def test_chaos_tenants_and_writes_are_exclusive(capsys):
    code, _, err = run_cli(
        capsys, "chaos", "--campaigns", "1", "--tenants", "--writes",
    )
    assert code == 2
    assert "exclusive" in err


def geo_small(capsys, *extra):
    return run_cli(
        capsys, "geo", "--seed", "3", "--hosts", "12", "--objects", "12",
        "--object-size", "4MB", "--pg-num", "16", "--stripe-unit", "1MB",
        *extra,
    )


def test_geo_command_prints_wan_accounting(capsys):
    code, out, _ = geo_small(capsys)
    assert code == 0
    assert "3 regions" in out
    assert "cross-region repair" in out
    assert "egress cost" in out
    assert "outcome digest" in out


def test_geo_command_digest_is_deterministic(capsys):
    _, first, _ = geo_small(capsys, "--json")
    _, second, _ = geo_small(capsys, "--json")
    assert json.loads(first) == json.loads(second)


def test_geo_naive_flag_changes_the_run(capsys):
    _, aware, _ = geo_small(capsys, "--json")
    _, naive, _ = geo_small(capsys, "--json", "--naive")
    assert json.loads(aware)["locality_aware"] is True
    assert json.loads(naive)["locality_aware"] is False


def test_chaos_geo_is_exclusive_with_writes_and_tenants(capsys):
    for flag in ("--writes", "--tenants"):
        code, _, err = run_cli(
            capsys, "chaos", "--campaigns", "1", "--geo", flag,
        )
        assert code == 2
        assert "exclusive" in err


def test_chaos_geo_clean_run(capsys):
    code, out, _ = run_cli(
        capsys, "chaos", "--campaigns", "2", "--seed", "0", "--geo",
    )
    assert code == 0
    assert "0 failed" in out


# -- byzantine chaos + fuzz -----------------------------------------------------


def test_chaos_byzantine_is_exclusive_with_other_modes(capsys):
    for flag in ("--writes", "--tenants", "--geo"):
        code, _, err = run_cli(
            capsys, "chaos", "--campaigns", "1", "--byzantine", flag,
        )
        assert code == 2
        assert "read-only and single-region" in err


def test_chaos_byzantine_clean_run(capsys):
    code, out, _ = run_cli(
        capsys, "chaos", "--campaigns", "2", "--seed", "0", "--byzantine",
    )
    assert code == 0
    assert "0 failed" in out


def test_fuzz_rejects_a_bad_budget(capsys):
    code, _, err = run_cli(capsys, "fuzz", "--budget", "0")
    assert code == 2
    assert "budget" in err


def test_fuzz_rejects_unknown_levels(capsys):
    code, _, err = run_cli(
        capsys, "fuzz", "--budget", "2", "--levels", "node,meteor",
    )
    assert code == 2
    assert "meteor" in err
    assert "allowed" in err


def test_fuzz_summary_json_schema(tmp_path, capsys):
    corpus_dir = tmp_path / "corpus"
    code, out, _ = run_cli(
        capsys, "fuzz", "--seed", "5", "--budget", "4",
        "--corpus-dir", str(corpus_dir),
    )
    assert code == 0
    summary = json.loads(out)
    assert set(summary) == {
        "root_seed", "budget", "runs", "invalid", "mutants_rejected",
        "failures", "artifacts", "corpus",
    }
    assert summary["root_seed"] == 5
    assert summary["budget"] == 4
    assert summary["runs"] == 4
    assert summary["failures"] == 0
    corpus = summary["corpus"]
    assert set(corpus) == {
        "entries", "considered", "coverage_pairs", "coverage",
        "best_fitness", "lineages",
    }
    assert corpus["coverage_pairs"] == len(corpus["coverage"])
    # The archived corpus on disk matches the printed summary.
    on_disk = json.loads((corpus_dir / "summary.json").read_text())
    assert on_disk == corpus
    assert len(list(corpus_dir.glob("corpus-*.json"))) == corpus["entries"]


def test_fuzz_is_deterministic(tmp_path, capsys):
    _, first, _ = run_cli(capsys, "fuzz", "--seed", "5", "--budget", "3",
                          "--corpus-dir", str(tmp_path / "a"))
    _, second, _ = run_cli(capsys, "fuzz", "--seed", "5", "--budget", "3",
                           "--corpus-dir", str(tmp_path / "b"))
    assert json.loads(first) == json.loads(second)


def test_fuzz_corpus_out_is_an_alias_for_corpus_dir(tmp_path, capsys):
    out_dir = tmp_path / "corpus"
    code, _, _ = run_cli(
        capsys, "fuzz", "--seed", "5", "--budget", "2",
        "--corpus-out", str(out_dir),
    )
    assert code == 0
    assert (out_dir / "summary.json").exists()


def test_fuzz_rejects_missing_corpus_in(tmp_path, capsys):
    code, _, err = run_cli(
        capsys, "fuzz", "--budget", "1",
        "--corpus-in", str(tmp_path / "nowhere"),
        "--corpus-out", str(tmp_path / "out"),
    )
    assert code == 2
    assert "not a directory" in err


def test_fuzz_corpus_in_resumes_deterministically(tmp_path, capsys):
    first_dir = tmp_path / "first"
    assert run_cli(
        capsys, "fuzz", "--seed", "5", "--budget", "3",
        "--corpus-out", str(first_dir),
    )[0] == 0
    resumed = [
        run_cli(
            capsys, "fuzz", "--seed", "6", "--budget", "2",
            "--corpus-in", str(first_dir),
            "--corpus-out", str(tmp_path / f"resume-{i}"),
        )[1]
        for i in range(2)
    ]
    assert json.loads(resumed[0]) == json.loads(resumed[1])


# -- cascade -------------------------------------------------------------------


def test_chaos_cascade_is_exclusive_with_other_streams(capsys):
    for other in ("--writes", "--tenants", "--geo", "--byzantine"):
        code, _, err = run_cli(
            capsys, "chaos", "--cascade", other, "--campaigns", "1",
        )
        assert code == 2
        assert "exclusive" in err


def test_chaos_cascade_small_batch_clean(capsys):
    code, out, _ = run_cli(
        capsys, "chaos", "--cascade", "--campaigns", "3", "--seed", "5",
    )
    assert code == 0
    assert "3 campaigns from seed 5" in out
    assert "0 failed" in out


def test_cascade_command_compare_reports_the_saving(capsys):
    code, out, _ = run_cli(capsys, "cascade", "--seed", "7", "--compare")
    assert code == 0
    assert "recovery priority fifo" in out
    assert "recovery priority risk" in out
    assert "risk-prioritized recovery saved" in out
    assert "time at min redundancy" in out


def test_cascade_command_json_is_deterministic(capsys):
    _, first, _ = run_cli(capsys, "cascade", "--seed", "7", "--json")
    _, second, _ = run_cli(capsys, "cascade", "--seed", "7", "--json")
    assert json.loads(first) == json.loads(second)
    blob = json.loads(first)
    assert set(blob) == {"risk"}
    assert {"outcome_hash", "violations", "time_at_min_redundancy",
            "pgs_at_min_redundancy", "pgs_recovered",
            "pgs_toofull_requeued"} <= set(blob["risk"])
