"""Matrix algebra over GF(256): inversion, rank, and MDS constructions."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ec.galois import gf_mul
from repro.ec.matrix import (
    SingularMatrixError,
    cauchy,
    identity,
    invert,
    mat_vec_apply,
    matmul,
    rank,
    solve,
    systematic_vandermonde_generator,
)


def random_matrix(rng, rows, cols):
    return rng.integers(0, 256, (rows, cols), dtype=np.uint8)


def test_identity_shape_and_values():
    eye = identity(3)
    assert eye.dtype == np.uint8
    assert np.array_equal(eye, np.identity(3, dtype=np.uint8))


def test_matmul_against_manual():
    a = np.array([[1, 2], [3, 4]], dtype=np.uint8)
    b = np.array([[5, 6], [7, 8]], dtype=np.uint8)
    out = matmul(a, b)
    expected_00 = gf_mul(1, 5) ^ gf_mul(2, 7)
    assert out[0, 0] == expected_00


def test_matmul_shape_mismatch():
    with pytest.raises(ValueError):
        matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 2), dtype=np.uint8))


def test_matmul_identity_is_noop():
    rng = np.random.default_rng(1)
    a = random_matrix(rng, 4, 4)
    assert np.array_equal(matmul(identity(4), a), a)
    assert np.array_equal(matmul(a, identity(4)), a)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=6))
def test_invert_roundtrip(seed, size):
    rng = np.random.default_rng(seed)
    # Rejection-sample an invertible matrix.
    for _ in range(50):
        m = random_matrix(rng, size, size)
        try:
            inv = invert(m)
        except SingularMatrixError:
            continue
        assert np.array_equal(matmul(m, inv), identity(size))
        assert np.array_equal(matmul(inv, m), identity(size))
        return
    pytest.skip("no invertible sample found (vanishingly unlikely)")


def test_invert_singular_raises():
    singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
    with pytest.raises(SingularMatrixError):
        invert(singular)


def test_invert_non_square_rejected():
    with pytest.raises(ValueError):
        invert(np.zeros((2, 3), dtype=np.uint8))


def test_rank_full_and_deficient():
    assert rank(identity(4)) == 4
    dup = np.array([[1, 2, 3], [1, 2, 3], [0, 0, 1]], dtype=np.uint8)
    assert rank(dup) == 2
    assert rank(np.zeros((3, 3), dtype=np.uint8)) == 0


def test_rank_rectangular():
    wide = np.array([[1, 0, 1, 1], [0, 1, 1, 0]], dtype=np.uint8)
    assert rank(wide) == 2


def test_solve_recovers_blocks():
    rng = np.random.default_rng(7)
    m = systematic_vandermonde_generator(5, 3)[[0, 3, 4]]
    blocks = [rng.integers(0, 256, 16, dtype=np.uint8) for _ in range(3)]
    rhs = mat_vec_apply(m, blocks)
    solved = solve(m, rhs)
    for got, want in zip(solved, blocks):
        assert np.array_equal(got, want)


def test_mat_vec_apply_validates_shapes():
    m = identity(2)
    with pytest.raises(ValueError):
        mat_vec_apply(m, [np.zeros(4, dtype=np.uint8)])
    with pytest.raises(ValueError):
        mat_vec_apply(
            m,
            [np.zeros(4, dtype=np.uint8), np.zeros(5, dtype=np.uint8)],
        )


def test_cauchy_every_square_submatrix_invertible():
    m, k = 3, 4
    c = cauchy(m, k)
    for size in (1, 2, 3):
        for rows in itertools.combinations(range(m), size):
            for cols in itertools.combinations(range(k), size):
                sub = c[np.ix_(rows, cols)]
                invert(sub)  # must not raise


def test_cauchy_distinctness_enforced():
    with pytest.raises(ValueError):
        cauchy(2, 2, x_values=[0, 1], y_values=[1, 2])


def test_systematic_generator_top_is_identity():
    gen = systematic_vandermonde_generator(12, 9)
    assert np.array_equal(gen[:9], identity(9))


def test_systematic_generator_is_mds():
    """Every k x k row subset of the generator must be invertible."""
    n, k = 8, 5
    gen = systematic_vandermonde_generator(n, k)
    for rows in itertools.combinations(range(n), k):
        invert(gen[list(rows)])  # must not raise


def test_systematic_generator_bad_dims():
    with pytest.raises(ValueError):
        systematic_vandermonde_generator(3, 5)
    with pytest.raises(ValueError):
        systematic_vandermonde_generator(300, 5)
