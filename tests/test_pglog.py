"""Property tests for the per-PG write log (pg_log).

The delta-recovery machinery leans on three log guarantees, exercised
here under arbitrary interleavings of commits, aborts, repairs and trims:

* **Version monotonicity & convergence** — versions are strictly
  increasing; at every point the set of shards whose applied version
  lags the object version is exactly the log's stale set, and once every
  stale shard is repaired all live shards agree on the object version.
* **Divergence-floor trim** — the log never trims an entry some stale
  shard still needs, unless the hard cap forces it, in which case the
  blocking shards are marked backfill-required *first* (their delta
  claim is surrendered, never silently dropped).
* **Rollback invisibility** — an aborted (staged, never committed)
  write changes nothing observable: no version burned, no entry, no
  staleness.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.pglog import PgLog, PgLogEntry


def _check_core_invariants(log: PgLog) -> None:
    """The always-true facts, asserted after every operation."""
    # Entries are version-sorted, strictly increasing, all newer than tail.
    versions = [entry.version for entry in log.entries]
    assert versions == sorted(versions)
    assert len(set(versions)) == len(versions)
    assert all(v > log.tail for v in versions)
    if versions:
        assert versions[-1] == log.head
    # Bounded length: trim keeps the log within the hard cap.
    assert len(log.entries) <= log.hard_limit
    # The divergence floor is honoured: any entry a non-backfill stale
    # shard still needs is retained (tail strictly below the floor).
    floor = log.divergence_floor()
    if floor is not None:
        assert log.tail < floor, (
            f"log trimmed past divergence floor {floor} (tail={log.tail}) "
            "without marking the shard backfill-required"
        )
    # Staleness <=> version lag, per object and shard.
    for name, version in log.object_version.items():
        stale = log.stale_shards(name)
        lagging = {
            shard
            for shard, applied in enumerate(log.shard_versions[name])
            if applied != version
        }
        assert stale == lagging
        for shard in stale:
            since = log.stale_since(name, shard)
            assert since is not None and since <= version


@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_any_interleaving_is_monotone_and_convergent(data):
    n = data.draw(st.integers(min_value=2, max_value=6), label="n_shards")
    max_entries = data.draw(st.integers(min_value=1, max_value=25),
                            label="max_entries")
    log = PgLog(n, max_entries=max_entries)
    names = [f"o{i}" for i in range(data.draw(
        st.integers(min_value=1, max_value=4), label="objects"))]
    committed_heads = []

    for _ in range(data.draw(st.integers(min_value=1, max_value=50),
                             label="steps")):
        op = data.draw(
            st.sampled_from(("create", "full", "rmw", "rollback", "repair")),
            label="op",
        )
        name = data.draw(st.sampled_from(names), label="name")
        if op == "rollback":
            # A staged-then-aborted write must be invisible.
            before = (
                log.head,
                dict(log.object_version),
                {m: log.stale_shards(m) for m in names},
                len(log.entries),
            )
            log.stage()
            log.rollback()
            after = (
                log.head,
                dict(log.object_version),
                {m: log.stale_shards(m) for m in names},
                len(log.entries),
            )
            assert before == after
        elif op == "repair":
            dirty = sorted(
                (m, s) for m in log.object_version
                for s in log.stale_shards(m)
            )
            if dirty:
                m, s = data.draw(st.sampled_from(dirty), label="repair_target")
                current = log.object_version[m]
                raced = data.draw(st.booleans(), label="raced")
                if raced and current > 1:
                    # Content captured at an older version: the repair
                    # must be refused and the shard stays stale.
                    assert log.record_repair(m, s, current - 1) is False
                    assert s in log.stale_shards(m)
                else:
                    assert log.record_repair(m, s, current) is True
                    assert s not in log.stale_shards(m)
        else:
            exists = name in log.object_version
            if op == "create" and exists:
                op = "full"
            elif op in ("full", "rmw") and not exists:
                op = "create"
            if op == "rmw":
                touched = sorted(data.draw(
                    st.sets(st.integers(min_value=0, max_value=n - 1),
                            min_size=1, max_size=n),
                    label="touched",
                ))
            else:
                touched = list(range(n))
            missing = sorted(data.draw(
                st.sets(st.sampled_from(touched), max_size=len(touched)),
                label="missing",
            ))
            log.stage()
            head_before = log.head
            entry = log.commit(name, op, tuple(touched), tuple(missing),
                               at=float(len(committed_heads)))
            assert isinstance(entry, PgLogEntry)
            assert entry.version == head_before + 1 == log.head
            committed_heads.append(log.head)
        _check_core_invariants(log)

    # Versions were assigned strictly monotonically across the run.
    assert committed_heads == sorted(committed_heads)
    assert len(set(committed_heads)) == len(committed_heads)

    # Drain every remaining divergence the way recovery would: backfill
    # the surrendered shards, delta-repair the rest — afterwards all
    # shards agree on every object's version (convergence).
    for shard in sorted(log.backfill_shards):
        for name in list(log.object_version):
            if shard in log.stale_shards(name):
                assert log.record_repair(name, shard,
                                         log.object_version[name])
        log.clear_backfill(shard)
    for name in list(log.object_version):
        for shard in sorted(log.stale_shards(name)):
            assert log.record_repair(name, shard, log.object_version[name])
    assert not log.dirty_shards()
    for name, version in log.object_version.items():
        assert all(v == version for v in log.shard_versions[name])
    _check_core_invariants(log)


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_trim_never_drops_entries_a_divergent_peer_needs(data):
    """Sustained divergence: the floor holds until the hard cap, and the
    hard cap surrenders the blocking shard to backfill before dropping."""
    n = data.draw(st.integers(min_value=2, max_value=5), label="n_shards")
    max_entries = data.draw(st.integers(min_value=1, max_value=8),
                            label="max_entries")
    hard_limit = data.draw(
        st.integers(min_value=max_entries, max_value=3 * max_entries),
        label="hard_limit",
    )
    log = PgLog(n, max_entries=max_entries, hard_limit=hard_limit)
    stale_shard = data.draw(st.integers(min_value=0, max_value=n - 1),
                            label="stale_shard")
    writes = data.draw(st.integers(min_value=2, max_value=4 * hard_limit),
                       label="writes")

    log.stage()
    log.commit("obj", "create", tuple(range(n)), (stale_shard,), at=0.0)
    divergence_version = log.head
    for i in range(writes):
        log.stage()
        # Later writes miss nothing; the first miss stays unresolved.
        log.commit("obj", "full",
                   tuple(s for s in range(n) if s != stale_shard), (),
                   at=float(i + 1))
        if stale_shard not in log.backfill_shards:
            # While the shard still holds a delta claim, the entry that
            # first missed it must be retained.
            assert log.tail < divergence_version
            entries = log.entries_since(divergence_version - 1)
            assert entries is not None
            assert entries[0].version == divergence_version
            assert log.delta_objects(stale_shard) == ["obj"]
        else:
            # Hard cap reached: the claim was surrendered, delta recovery
            # must report "fall back to backfill" for this shard.
            assert log.delta_objects(stale_shard) is None
        assert len(log.entries) <= hard_limit

    if writes + 1 > hard_limit:
        assert stale_shard in log.backfill_shards


def test_first_entry_must_be_create():
    log = PgLog(4)
    log.stage()
    with pytest.raises(ValueError, match="must be a create"):
        log.commit("obj", "full", (0, 1, 2, 3), (), at=0.0)


def test_missing_must_be_subset_of_touched():
    log = PgLog(4)
    log.stage()
    log.commit("obj", "create", (0, 1, 2, 3), (), at=0.0)
    log.stage()
    with pytest.raises(ValueError, match="not in touched"):
        log.commit("obj", "rmw", (0, 3), (1,), at=1.0)


def test_note_divergent_marks_committed_objects_only():
    log = PgLog(4)
    # Aborted create: nothing committed, nothing to repair.
    log.note_divergent("ghost", 2)
    assert not log.dirty_shards()
    log.stage()
    log.commit("obj", "create", (0, 1, 2, 3), (), at=0.0)
    log.note_divergent("obj", 2)
    assert log.stale_shards("obj") == {2}
    assert log.stale_since("obj", 2) == log.object_version["obj"]


def test_full_overwrite_refreshes_stale_shard():
    log = PgLog(4)
    log.stage()
    log.commit("obj", "create", (0, 1, 2, 3), (1,), at=0.0)
    assert log.stale_shards("obj") == {1}
    log.stage()
    log.commit("obj", "full", (0, 1, 2, 3), (), at=1.0)
    assert not log.stale_shards("obj")
    assert all(v == log.object_version["obj"]
               for v in log.shard_versions["obj"])
