"""Cross-code property tests: invariants every plugin must satisfy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ec import (
    ClayCode,
    LocallyRepairableCode,
    ReedSolomon,
    ShingledErasureCode,
)

ALL_CODES = [
    ReedSolomon(4, 2),
    ReedSolomon(9, 3),
    ClayCode(2, 2),
    ClayCode(4, 2),
    ClayCode(9, 3, d=11),
    LocallyRepairableCode(6, l=2, r=2),
    ShingledErasureCode(6, 3, l=4),
]


@pytest.fixture(params=ALL_CODES, ids=lambda c: f"{c.plugin_name}-{c.n}-{c.k}")
def code(request):
    return request.param


def test_encode_produces_n_equal_chunks(code):
    chunks = code.encode(bytes(range(256)) * 3)
    assert len(chunks) == code.n
    assert len({len(c) for c in chunks}) == 1
    assert all(c.dtype == np.uint8 for c in chunks)


def test_systematic_prefix(code):
    """Chunks 0..k-1 concatenate back to the (padded) payload."""
    data = bytes(range(200))
    chunks = code.encode(data)
    joined = b"".join(c.tobytes() for c in chunks[: code.k])
    assert joined[: len(data)] == data


def test_all_data_present_decode_is_identity(code):
    data = bytes(range(100))
    chunks = code.encode(data)
    available = {i: chunks[i] for i in range(code.k)}
    assert code.decode(available, len(data)) == data


def test_single_erasure_always_recoverable(code):
    data = bytes(reversed(range(231)))
    chunks = code.encode(data)
    for lost in range(code.n):
        available = {i: chunks[i] for i in range(code.n) if i != lost}
        rebuilt = code.decode_chunks(available, [lost])
        assert np.array_equal(rebuilt[lost], chunks[lost])


def test_guaranteed_tolerance_patterns_decode(code):
    """Adjacent erasures up to fault_tolerance() must always decode."""
    tolerance = code.fault_tolerance()
    data = bytes(range(173))
    chunks = code.encode(data)
    for start in range(code.n):
        erased = [(start + i) % code.n for i in range(tolerance)]
        available = {i: chunks[i] for i in range(code.n) if i not in erased}
        rebuilt = code.decode_chunks(available, erased)
        for idx in erased:
            assert np.array_equal(rebuilt[idx], chunks[idx]), (code.plugin_name, erased)


def test_single_loss_repair_plan_is_consistent(code):
    for lost in range(code.n):
        alive = [i for i in range(code.n) if i != lost]
        plan = code.repair_plan([lost], alive)
        assert plan.lost == (lost,)
        assert lost not in {read.chunk_index for read in plan.reads}
        assert all(0 < read.fraction <= 1.0 for read in plan.reads)
        assert all(read.io_ops >= 1 for read in plan.reads)
        # Nobody reads less than ~1 chunk-equivalent or more than n - 1.
        assert 0.99 <= plan.read_fraction_total() <= code.n - 1


@settings(max_examples=20, deadline=None)
@given(data=st.binary(min_size=0, max_size=1500))
def test_property_rs_roundtrip_worst_pattern(data):
    """Lose all parity-adjacent chunks; decode must still be exact."""
    code = ReedSolomon(5, 3)
    chunks = code.encode(data)
    erased = {4, 5, 6}  # one data + two parity... indices 4 (data last), 5, 6
    available = {i: chunks[i] for i in range(code.n) if i not in erased}
    assert code.decode(available, len(data)) == data


@settings(max_examples=10, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=6),
    m=st.integers(min_value=1, max_value=3),
    data=st.binary(min_size=1, max_size=400),
)
def test_property_rs_any_dimension_roundtrip(k, m, data):
    code = ReedSolomon(k, m)
    chunks = code.encode(data)
    # Drop the last m chunks (maximal parity-heavy erasure).
    available = {i: chunks[i] for i in range(code.n - m)}
    assert code.decode(available, len(data)) == data


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_clay_repair_equals_decode(seed):
    """Optimal repair and full decode must agree on the rebuilt chunk."""
    clay = ClayCode(4, 2)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, 333, dtype=np.uint8).tobytes()
    chunks = clay.encode(data)
    lost = int(rng.integers(0, clay.n))
    planes = clay.repair_plane_indices(lost)
    helpers = {
        node: chunks[node].reshape(clay.alpha, -1)[planes]
        for node in range(clay.n)
        if node != lost
    }
    via_repair = clay.repair_chunk(lost, helpers)
    available = {i: chunks[i] for i in range(clay.n) if i != lost}
    via_decode = clay.decode_chunks(available, [lost])[lost]
    assert np.array_equal(via_repair, via_decode)
    assert np.array_equal(via_repair, chunks[lost])
