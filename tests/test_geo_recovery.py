"""Stretch-cluster recovery: locality, WAN accounting, determinism."""

import hashlib
import json
from dataclasses import asdict

import pytest

from repro.chaos.engine import run_campaign
from repro.chaos.sampler import sample_campaign
from repro.cluster.recovery import CASCADE_STAT_KEYS, GEO_STAT_KEYS
from repro.core.experiment import run_experiment
from repro.core.fault_injector import FaultSpec
from repro.core.profile import PAPER_RS_PROFILE, ExperimentProfile
from repro.geo.experiment import GeoOutcome, run_stretch_experiment
from repro.workload.generator import Workload

WORKLOAD = Workload(num_objects=40, object_size=8 << 20)


def stretch_profile(name, plugin, params, num_hosts=12):
    return ExperimentProfile(
        name=name,
        ec_plugin=plugin,
        ec_params=params,
        num_hosts=num_hosts,
        num_regions=3,
        pg_num=32,
        stripe_unit=1 << 20,
    )


def run_stretch(profile, fault_level="node", **kwargs):
    return run_stretch_experiment(
        profile, WORKLOAD, [FaultSpec(level=fault_level)], seed=7, **kwargs
    )


# -- API contract -------------------------------------------------------------


def test_single_region_profile_rejected():
    profile = ExperimentProfile(name="flat", num_hosts=6)
    with pytest.raises(ValueError):
        run_stretch_experiment(profile, WORKLOAD)


def test_outcome_digest_is_canonical_json_sha256():
    out = run_stretch(stretch_profile("rs", "jerasure", {"k": 4, "m": 2}))
    payload = json.dumps(
        out.to_dict(), sort_keys=True, separators=(",", ":"),
        ensure_ascii=True,
    )
    assert out.digest() == hashlib.sha256(payload.encode("utf-8")).hexdigest()
    assert out.cross_region_repair_bytes == (
        out.cross_region_bytes_read + out.cross_region_bytes_written
    )


def test_same_seed_same_digest():
    profile = stretch_profile("rs", "jerasure", {"k": 4, "m": 2})
    assert run_stretch(profile).digest() == run_stretch(profile).digest()


# -- cross-region accounting --------------------------------------------------


def test_recovery_counters_match_wan_ledger():
    """The recovery manager's cross-region read+write bytes must equal
    what the WAN fabric actually delivered (read-only run, no scrub)."""
    for plugin, params in (
        ("jerasure", {"k": 4, "m": 2}),
        ("clay", {"k": 4, "m": 2, "d": 5}),
        ("lrc", {"k": 4, "l": 2, "r": 1}),
    ):
        out = run_stretch(stretch_profile(plugin, plugin, params))
        assert out.cross_region_repair_bytes == out.wan_cross_region_bytes
        assert out.objects_recovered > 0


def test_egress_ledger_covers_all_cross_bytes():
    out = run_stretch(stretch_profile("rs", "jerasure", {"k": 4, "m": 2}))
    assert sum(out.egress_bytes_by_region) == out.wan_cross_region_bytes
    assert len(out.egress_bytes_by_region) == 3
    assert out.egress_cost > 0


# -- locality-aware reconstruction -------------------------------------------


def test_locality_cuts_lrc_cross_region_bytes_vs_rs():
    """The headline geo claim: at equal durability (m=2), LRC's
    region-coherent local groups repair a host failure with at least 2x
    fewer cross-region bytes than plain RS."""
    rs = run_stretch(stretch_profile("rs", "jerasure", {"k": 4, "m": 2}))
    lrc = run_stretch(stretch_profile("lrc", "lrc", {"k": 4, "l": 2, "r": 1}))
    assert rs.cross_region_repair_bytes >= 2 * lrc.cross_region_repair_bytes


def test_clay_fractional_reads_cut_cross_region_bytes_vs_rs():
    rs = run_stretch(stretch_profile("rs", "jerasure", {"k": 4, "m": 2}))
    clay = run_stretch(stretch_profile("clay", "clay", {"k": 4, "m": 2, "d": 5}))
    assert clay.cross_region_repair_bytes < rs.cross_region_repair_bytes


def test_locality_aware_beats_naive_on_region_rebuild():
    """Rebuilding a restored region: the plan-aware primary keeps helper
    pulls next to the surviving shards instead of hauling full reads
    into the recovering region."""
    profile = stretch_profile("clay", "clay", {"k": 4, "m": 2, "d": 5})
    aware = run_stretch(profile, "region_outage", restore_after=900.0)
    naive = run_stretch(
        profile, "region_outage", restore_after=900.0, locality_aware=False
    )
    assert aware.objects_recovered == naive.objects_recovered > 0
    assert aware.cross_region_repair_bytes < naive.cross_region_repair_bytes
    assert aware.egress_cost < naive.egress_cost


def test_locality_toggle_changes_only_the_flagged_field():
    profile = stretch_profile("rs", "jerasure", {"k": 4, "m": 2})
    aware = run_stretch(profile)
    naive = run_stretch(profile, locality_aware=False)
    assert aware.locality_aware and not naive.locality_aware
    # MDS invariance: with balanced blocks, any-k repair moves the same
    # number of cross-region bytes wherever the primary sits — only the
    # pull/push split shifts.
    assert aware.cross_region_repair_bytes == naive.cross_region_repair_bytes
    assert (aware.cross_region_pulls, aware.cross_region_pushes) != (
        naive.cross_region_pulls, naive.cross_region_pushes,
    )


# -- single-region regression pins -------------------------------------------
#
# Captured on the pre-geo tree: the geo subsystem must leave every
# region-less path byte-identical, and the cascade subsystem every
# fifo/untracked path.  RecoveryStats grew four always-zero geo fields
# and three always-zero cascade fields, so raw asdict() digests prune
# GEO_STAT_KEYS and CASCADE_STAT_KEYS first — the same pruning the
# chaos engine applies.

PINNED_CHAOS_HASHES = {
    11: "80a706388b3f585ca36c3dc2f402799a14d0511e241e0760d070582a765a26d6",
    42: "1ee085806db7f5f691e843e8fab02e566d4a564965a94d6da9f64d982ee3f25e",
}
PINNED_INJECT_HASH = (
    "3a34c2dd4ce5dad407bd01f077023d88077468326206e375c3b77fc9a690fd0f"
)


@pytest.mark.parametrize("seed", sorted(PINNED_CHAOS_HASHES))
def test_single_region_chaos_digest_pinned(seed):
    result = run_campaign(sample_campaign(seed))
    assert result.outcome_hash == PINNED_CHAOS_HASHES[seed]


def test_single_region_inject_digest_pinned():
    profile = PAPER_RS_PROFILE.with_overrides(num_hosts=15, pg_num=64)
    out = run_experiment(
        profile, WORKLOAD, [FaultSpec(level="node")], seed=3
    )
    recovery = asdict(out.recovery_stats)
    for key in GEO_STAT_KEYS:
        assert recovery.pop(key) == 0  # single-region runs never geo-count
    for key in CASCADE_STAT_KEYS:
        assert recovery.pop(key) == 0  # fifo runs never risk-account
    payload = {
        "recovery": recovery,
        "t": out.total_recovery_time,
        "wa": asdict(out.wa),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    ).hexdigest()
    assert digest == PINNED_INJECT_HASH


# -- outcome dataclass --------------------------------------------------------


def test_outcome_to_dict_round_trips():
    out = run_stretch(stretch_profile("rs", "jerasure", {"k": 4, "m": 2}))
    data = out.to_dict()
    clone = GeoOutcome(
        **{
            **data,
            "egress_bytes_by_region": tuple(data["egress_bytes_by_region"]),
        }
    )
    assert clone == out
    assert clone.digest() == out.digest()
