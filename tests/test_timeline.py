"""Timeline segmentation: Figure 3's phases from classified logs."""

import pytest

from repro.cluster import NodeLog
from repro.core import LogBus, LogCollector, NodeLogger, TimelineError, build_timeline
from repro.core.timeline import RecoveryTimeline


def collector_from(events):
    log = NodeLog("mixed")
    for time, message in events:
        log.emit(time, "osd", message)
    bus = LogBus()
    NodeLogger(log, bus).flush()
    collector = LogCollector(bus)
    collector.collect()
    return collector


FULL_CYCLE = [
    (50.0, "node shutdown requested"),
    (75.0, "no heartbeats from osd, marking down"),
    (675.0, "marking osd out after down interval"),
    (675.0, "collecting missing OSDs, queueing recovery"),
    (675.2, "check recovery resource"),
    (677.0, "start recovery I/O"),
    (900.0, "recovery completed"),
    (1203.0, "recovery completed"),
]


def test_full_cycle_segmentation():
    timeline = build_timeline(collector_from(FULL_CYCLE))
    assert timeline.fault_injected == 50.0
    assert timeline.failure_detected == 75.0
    assert timeline.marked_out == 675.0
    assert timeline.ec_recovery_started == 677.0
    assert timeline.ec_recovery_finished == 1203.0
    assert timeline.checking_period == pytest.approx(602.0)
    assert timeline.ec_recovery_period == pytest.approx(526.0)
    assert timeline.total_recovery == pytest.approx(1128.0)
    # The paper's Figure 3 numbers: 602 / 1128 = 53.4%.
    assert timeline.checking_fraction == pytest.approx(0.5337, abs=0.001)


def test_paper_figure3_exact_shape():
    """The same run as the paper's Figure 3: 0 / 602 / 1128 seconds."""
    timeline = RecoveryTimeline(
        fault_injected=None,
        failure_detected=0.0,
        marked_out=600.0,
        recovery_queued=600.0,
        ec_recovery_started=602.0,
        ec_recovery_finished=1128.0,
    )
    assert timeline.checking_fraction * 100 == pytest.approx(53.4, abs=0.1)


def test_annotations_are_relative_to_detection():
    timeline = build_timeline(collector_from(FULL_CYCLE))
    labels = dict((label, t) for t, label in timeline.annotations())
    assert labels["Failure detected"] == 0.0
    assert labels["EC Recovery started"] == pytest.approx(602.0)
    assert labels["EC Recovery finished"] == pytest.approx(1128.0)


def test_missing_phase_raises():
    incomplete = [e for e in FULL_CYCLE if "start recovery" not in e[1]]
    with pytest.raises(TimelineError, match="recovery start"):
        build_timeline(collector_from(incomplete))


def test_missing_detection_raises():
    incomplete = [e for e in FULL_CYCLE if "marking down" not in e[1]]
    with pytest.raises(TimelineError, match="failure detection"):
        build_timeline(collector_from(incomplete))


def test_device_fault_injection_marker():
    events = [(10.0, "removed NVMe subsystem")] + FULL_CYCLE[1:]
    timeline = build_timeline(collector_from(events))
    assert timeline.fault_injected == 10.0


def test_zero_duration_fraction_guard():
    timeline = RecoveryTimeline(None, 5.0, 5.0, 5.0, 5.0, 5.0)
    assert timeline.checking_fraction == 0.0
