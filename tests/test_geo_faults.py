"""Region fault levels: selection, white-box guards, inject/restore."""

import pytest

from repro.core.controller import Controller
from repro.core.fault_injector import FaultSpec, FaultToleranceError, GEO_LEVELS
from repro.core.profile import ExperimentProfile
from repro.workload.generator import Workload


def make_controller(plugin="jerasure", params=None, num_hosts=12,
                    num_regions=3, seed=0, **overrides):
    profile = ExperimentProfile(
        name="geo-fault-test",
        ec_plugin=plugin,
        ec_params=params or {"k": 4, "m": 2},
        num_hosts=num_hosts,
        num_regions=num_regions,
        pg_num=16,
        stripe_unit=1 << 20,
        **overrides,
    )
    controller = Controller(profile, seed=seed)
    controller.coordinator.ingest_workload(
        Workload(num_objects=12, object_size=4 << 20)
    )
    return controller


def test_geo_levels_registered():
    assert GEO_LEVELS == ("wan_partition", "region_outage")


def test_geo_levels_need_multi_region_topology():
    controller = make_controller(num_regions=1)
    for level in GEO_LEVELS:
        with pytest.raises(ValueError):
            controller.fault_injector.inject(FaultSpec(level=level))


def test_region_outage_downs_every_host_in_region():
    controller = make_controller()
    cluster = controller.cluster
    affected = controller.fault_injector.inject(
        FaultSpec(level="region_outage", targets=[1])
    )
    assert affected
    for host in cluster.topology.hosts_in_region(1):
        for osd_id in host.osd_ids:
            assert not cluster.osds[osd_id].is_up()
    # Other regions untouched.
    for host in cluster.topology.hosts_in_region(0):
        for osd_id in host.osd_ids:
            assert cluster.osds[osd_id].is_up()


def test_wan_partition_severs_uplink_and_restores():
    controller = make_controller()
    wan = controller.cluster.topology.wan
    controller.fault_injector.inject(
        FaultSpec(level="wan_partition", targets=[2])
    )
    assert wan.partitioned_regions() == [2]
    # Daemons stay up — only the uplink is cut.
    assert all(o.is_up() for o in controller.cluster.osds.values())
    controller.fault_injector.restore_all()
    assert wan.partitioned_regions() == []


def test_unknown_region_target_rejected():
    controller = make_controller()
    with pytest.raises(ValueError):
        controller.fault_injector.inject(
            FaultSpec(level="region_outage", targets=[7])
        )


def test_region_outage_guard_rejects_over_tolerance():
    """A balanced 3-region RS(4,2) stripe has 2 shards per region: one
    region outage is exactly tolerable, two at once are not."""
    controller = make_controller()
    with pytest.raises(FaultToleranceError):
        controller.fault_injector.inject(
            FaultSpec(level="region_outage", count=2, targets=[0, 1])
        )


def test_wan_partition_stacks_with_live_damage():
    """A second region-level fault must count the first one's damage."""
    controller = make_controller()
    controller.fault_injector.inject(
        FaultSpec(level="wan_partition", targets=[0])
    )
    with pytest.raises(FaultToleranceError):
        controller.fault_injector.inject(
            FaultSpec(level="region_outage", targets=[1])
        )


def test_region_outage_guard_accounts_for_affinity_layout():
    """LRC(4,2,1) under code affinity parks 3 shards of some stripes in
    one region — more than its tolerance of 2, so the white-box guard
    must refuse the outage outright."""
    controller = make_controller(
        plugin="lrc", params={"k": 4, "l": 2, "r": 1}
    )
    with pytest.raises(FaultToleranceError):
        controller.fault_injector.inject(
            FaultSpec(level="region_outage", targets=[0])
        )


def test_region_selection_is_deterministic():
    a = make_controller(seed=5)
    b = make_controller(seed=5)
    assert a.fault_injector.inject(FaultSpec(level="region_outage")) == \
        b.fault_injector.inject(FaultSpec(level="region_outage"))
