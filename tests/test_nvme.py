"""Virtual NVMe-oF provisioning: the device-fault control plane."""

import pytest

from repro.cluster import Disk, GP_SSD, NvmeTarget, SubsystemNotFoundError
from repro.cluster.nvme import default_nqn
from repro.sim import Environment


@pytest.fixture
def target():
    return NvmeTarget("host.0")


def make_disk():
    return Disk(Environment(), GP_SSD)


def test_create_and_connect(target):
    disk = make_disk()
    sub = target.create_subsystem("nqn.test:ns0", disk)
    assert not sub.connected
    got = target.connect("nqn.test:ns0", osd_id=7)
    assert got is disk
    assert sub.attached_osd == 7
    assert sub.connected


def test_duplicate_nqn_rejected(target):
    target.create_subsystem("nqn.x", make_disk())
    with pytest.raises(ValueError, match="already exists"):
        target.create_subsystem("nqn.x", make_disk())


def test_double_connect_rejected(target):
    target.create_subsystem("nqn.x", make_disk())
    target.connect("nqn.x", 1)
    with pytest.raises(ValueError, match="already attached"):
        target.connect("nqn.x", 2)


def test_unknown_nqn(target):
    with pytest.raises(SubsystemNotFoundError):
        target.connect("nqn.ghost", 1)
    with pytest.raises(SubsystemNotFoundError):
        target.remove_subsystem("nqn.ghost")


def test_remove_fails_backing_disk(target):
    """Removing the subsystem IS the device-level fault (§3.2)."""
    disk = make_disk()
    target.create_subsystem("nqn.x", disk)
    target.connect("nqn.x", 3)
    sub = target.remove_subsystem("nqn.x")
    assert disk.failed
    assert "nqn.x" not in target.subsystems
    assert target.removed_nqns == ["nqn.x"]
    # Restore brings it back healthy.
    target.restore_subsystem(sub)
    assert not disk.failed
    assert "nqn.x" in target.subsystems


def test_restore_duplicate_rejected(target):
    disk = make_disk()
    sub = target.create_subsystem("nqn.x", disk)
    with pytest.raises(ValueError, match="already present"):
        target.restore_subsystem(sub)


def test_default_nqn_convention():
    nqn = default_nqn("host.3", 1)
    assert nqn.startswith("nqn.2024-07.io.ecfault:")
    assert "host.3" in nqn and nqn.endswith("ns1")
