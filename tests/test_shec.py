"""Shingled Erasure Code: windows, local repair, recoverability."""

import itertools

import numpy as np
import pytest

from repro.ec import InsufficientChunksError, ShingledErasureCode


@pytest.fixture(scope="module")
def shec():
    return ShingledErasureCode(8, 4, 5)


def test_construction_validation():
    with pytest.raises(ValueError):
        ShingledErasureCode(4, 2, 0)
    with pytest.raises(ValueError):
        ShingledErasureCode(4, 2, 5)  # l > k


def test_windows_shingle_and_wrap(shec):
    windows = [shec.window_members(i) for i in range(shec.m)]
    assert windows[0] == [0, 1, 2, 3, 4]
    assert windows[1] == [2, 3, 4, 5, 6]
    assert windows[2] == [4, 5, 6, 7, 0]  # wraps
    # Every data chunk is covered by at least one window.
    covered = set().union(*map(set, windows))
    assert covered == set(range(8))
    with pytest.raises(ValueError):
        shec.window_members(4)


def test_fault_tolerance_conservative(shec):
    assert shec.fault_tolerance() == 1


def test_encode_shape(shec):
    chunks = shec.encode(b"q" * 333)
    assert len(chunks) == 12
    assert len({len(c) for c in chunks}) == 1


def test_parity_row_sparsity(shec):
    for i in range(shec.m):
        row = shec.generator[shec.k + i]
        nonzero = {j for j in range(shec.k) if row[j]}
        assert nonzero == set(shec.window_members(i))


def test_every_single_failure_recovers(shec):
    data = bytes(range(250)) * 2
    chunks = shec.encode(data)
    for idx in range(shec.n):
        available = {i: chunks[i] for i in range(shec.n) if i != idx}
        rebuilt = shec.decode_chunks(available, [idx])
        assert np.array_equal(rebuilt[idx], chunks[idx])


def test_single_repair_plan_is_local(shec):
    alive = [i for i in range(shec.n) if i != 3]
    plan = shec.repair_plan([3], alive)
    # Window reads: l-1 data chunks + 1 parity = l chunks < k.
    assert plan.helpers == shec.window
    assert plan.read_fraction_total() < shec.k


def test_parity_repair_plan_reads_window(shec):
    alive = [i for i in range(shec.n) if i != 9]
    plan = shec.repair_plan([9], alive)
    assert {r.chunk_index for r in plan.reads} == set(shec.window_members(1))


def test_multi_failure_patterns(shec):
    data = bytes(range(199))
    chunks = shec.encode(data)
    recoverable = unrecoverable = 0
    for erased in itertools.combinations(range(shec.n), 3):
        available = {i: chunks[i] for i in range(shec.n) if i not in erased}
        if shec.can_recover(erased):
            recoverable += 1
            rebuilt = shec.decode_chunks(available, list(erased))
            for idx in erased:
                assert np.array_equal(rebuilt[idx], chunks[idx])
        else:
            unrecoverable += 1
            with pytest.raises(InsufficientChunksError):
                shec.decode_chunks(available, list(erased))
    assert recoverable > 0  # shingling recovers many multi-failures...
    assert unrecoverable > 0  # ...but not all (tolerance guarantee is 1)


def test_storage_overhead_between_rep_and_mds(shec):
    assert shec.storage_overhead == pytest.approx(12 / 8)
