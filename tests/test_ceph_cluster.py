"""CephCluster facade: assembly, ingestion accounting, queries."""

import pytest

from repro.cluster import CACHE_SCHEMES, CephCluster, CephConfig
from repro.ec import ReedSolomon
from repro.sim import Environment


@pytest.fixture
def cluster():
    return CephCluster(
        Environment(),
        ReedSolomon(4, 2),
        CACHE_SCHEMES["autotune"],
        num_hosts=8,
        osds_per_host=2,
        pg_num=8,
        stripe_unit=4096,
    )


def test_assembly_wires_recovery_to_monitor(cluster):
    assert cluster.recovery.on_osds_out in cluster.monitor.on_out


def test_ingest_accounts_chunks_on_acting_osds(cluster):
    cluster.ingest_object("obj", 6 * 4096)
    pg = cluster.pool.pg_of("obj")
    layout = pg.objects[0].layout
    for osd_id in pg.acting:
        osd = cluster.osds[osd_id]
        assert osd.backend.num_chunks == 1
        assert osd.disk.used_bytes > 0
        assert osd.backend.data_bytes == layout.chunk_stored_bytes
    # Non-acting OSDs stay empty.
    others = set(cluster.osds) - set(pg.acting)
    assert all(cluster.osds[o].backend.num_chunks == 0 for o in others)


def test_used_bytes_total_sums_allocations(cluster):
    assert cluster.used_bytes_total() == 0
    cluster.ingest_object("a", 100_000)
    cluster.ingest_object("b", 100_000)
    total = cluster.used_bytes_total()
    assert total >= 2 * 6 * 100_000 / 4  # n chunks x padded size, roughly
    assert total == sum(o.used_bytes for o in cluster.osds.values())


def test_up_osds_reflects_faults(cluster):
    assert len(cluster.up_osds()) == 16
    cluster.osds[3].disk.fail()
    cluster.osds[5].host_running = False
    up = cluster.up_osds()
    assert 3 not in up and 5 not in up
    assert len(up) == 14


def test_osds_with_data(cluster):
    assert cluster.osds_with_data() == []
    cluster.ingest_object("x", 1024)
    with_data = cluster.osds_with_data()
    assert sorted(cluster.pool.pg_of("x").acting) == with_data


def test_all_logs_cover_every_node(cluster):
    logs = cluster.all_logs()
    assert len(logs) == 1 + 8  # MON + one per host
    names = {log.node for log in logs}
    assert "mon.0" in names


def test_custom_config_propagates():
    config = CephConfig(mon_osd_down_out_interval=42.0)
    cluster = CephCluster(
        Environment(), ReedSolomon(4, 2), CACHE_SCHEMES["autotune"],
        config=config, num_hosts=8, pg_num=4,
    )
    assert cluster.monitor.config.mon_osd_down_out_interval == 42.0
    assert all(
        osd.config.mon_osd_down_out_interval == 42.0
        for osd in cluster.osds.values()
    )


def test_placement_seed_changes_layout():
    def acting_sets(seed):
        cluster = CephCluster(
            Environment(), ReedSolomon(4, 2), CACHE_SCHEMES["autotune"],
            num_hosts=10, pg_num=8, placement_seed=seed,
        )
        return [tuple(pg.acting) for pg in cluster.pool.pgs.values()]

    assert acting_sets(1) != acting_sets(2)
    assert acting_sets(1) == acting_sets(1)
