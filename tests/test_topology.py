"""Cluster topology: shape, lookup helpers, failure-domain buckets."""

import pytest

from repro.cluster import ClusterTopology, FailureDomain
from repro.sim import Environment


@pytest.fixture
def topo():
    return ClusterTopology(Environment(), num_hosts=6, osds_per_host=2, num_racks=3)


def test_paper_default_shape():
    topo = ClusterTopology(Environment())
    assert topo.num_hosts == 30
    assert topo.num_osds == 60


def test_shape_validation():
    env = Environment()
    with pytest.raises(ValueError):
        ClusterTopology(env, num_hosts=0)
    with pytest.raises(ValueError):
        ClusterTopology(env, num_hosts=2, num_racks=3)


def test_osd_to_host_mapping(topo):
    assert topo.host_of(0).host_id == 0
    assert topo.host_of(1).host_id == 0
    assert topo.host_of(2).host_id == 1
    assert topo.hosts[0].osd_ids == [0, 1]


def test_nic_shared_per_host(topo):
    assert topo.nic_of(0) is topo.nic_of(1)
    assert topo.nic_of(0) is not topo.nic_of(2)


def test_rack_assignment_round_robin(topo):
    assert topo.hosts[0].rack_id == 0
    assert topo.hosts[1].rack_id == 1
    assert topo.hosts[3].rack_id == 0


def test_bucket_of_levels(topo):
    assert topo.bucket_of(3, FailureDomain.OSD) == 3
    assert topo.bucket_of(3, FailureDomain.HOST) == 1
    assert topo.bucket_of(3, FailureDomain.RACK) == 1
    with pytest.raises(ValueError):
        topo.bucket_of(3, "datacenter")


def test_buckets_enumeration(topo):
    assert topo.buckets(FailureDomain.OSD) == list(range(12))
    assert topo.buckets(FailureDomain.HOST) == list(range(6))
    assert topo.buckets(FailureDomain.RACK) == [0, 1, 2]


def test_osds_in_bucket(topo):
    assert topo.osds_in_bucket(1, FailureDomain.HOST) == [2, 3]
    assert topo.osds_in_bucket(5, FailureDomain.OSD) == [5]
    rack0 = topo.osds_in_bucket(0, FailureDomain.RACK)
    assert rack0 == [0, 1, 6, 7]  # hosts 0 and 3


def test_device_names(topo):
    assert topo.osds[4].name == "osd.4"
    assert topo.hosts[2].name == "host.2"
