"""Coordinator and the high-level experiment API: full cycles."""

import pytest

from repro.core import (
    Controller,
    ExperimentProfile,
    FaultSpec,
    repeat_experiment,
    run_experiment,
)
from repro.cluster.osd import CephConfig
from repro.workload import Workload

MB = 1024 * 1024

FAST_CEPH = CephConfig(mon_osd_down_out_interval=60.0)


def small_profile(**overrides):
    settings = dict(
        name="test",
        pg_num=16,
        num_hosts=15,
        osds_per_host=2,
        ceph=FAST_CEPH,
    )
    settings.update(overrides)
    return ExperimentProfile(**settings)


def small_workload(count=60):
    return Workload(num_objects=count, object_size=8 * MB)


def test_full_experiment_produces_timeline():
    outcome = run_experiment(
        small_profile(), small_workload(), [FaultSpec(level="node", count=1)]
    )
    timeline = outcome.timeline
    assert timeline is not None
    # Order of phases is monotonic.
    assert (
        timeline.fault_injected
        <= timeline.failure_detected
        <= timeline.marked_out
        <= timeline.ec_recovery_started
        <= timeline.ec_recovery_finished
    )
    # The down/out interval dominates the checking period.
    assert timeline.checking_period >= 60.0
    assert outcome.total_recovery_time > 0


def test_experiment_without_faults_has_no_timeline():
    outcome = run_experiment(small_profile(), small_workload(20), faults=[])
    assert outcome.timeline is None
    assert outcome.recovery_stats.pgs_queued == 0
    with pytest.raises(RuntimeError):
        outcome.total_recovery_time
    assert outcome.wa.actual > 1.0


def test_experiment_is_deterministic():
    args = (small_profile(), small_workload(), [FaultSpec(level="node")])
    a = run_experiment(*args, seed=7)
    b = run_experiment(*args, seed=7)
    assert a.total_recovery_time == b.total_recovery_time
    assert a.recovery_stats.bytes_read == b.recovery_stats.bytes_read


def test_different_seeds_differ():
    args = (small_profile(), small_workload(), [FaultSpec(level="node")])
    a = run_experiment(*args, seed=1)
    b = run_experiment(*args, seed=2)
    # Different fault targets / placement: byte counts differ generically.
    assert (
        a.recovery_stats.bytes_read != b.recovery_stats.bytes_read
        or a.total_recovery_time != b.total_recovery_time
    )


def test_controller_is_single_use():
    controller = Controller(small_profile())
    controller.run_experiment(small_workload(10), [])
    with pytest.raises(RuntimeError, match="fresh"):
        controller.run_experiment(small_workload(10), [])


def test_repeat_experiment_averages():
    result = repeat_experiment(
        small_profile(),
        small_workload(40),
        [FaultSpec(level="node")],
        runs=3,
    )
    assert len(result.outcomes) == 3
    times = result.recovery_times
    assert min(times) <= result.mean_recovery_time <= max(times)
    assert result.stdev_recovery_time >= 0
    assert 0 < result.mean_checking_fraction < 1


def test_repeat_experiment_validation():
    with pytest.raises(ValueError):
        repeat_experiment(small_profile(), small_workload(1), [], runs=0)


def test_iostat_collected_during_experiment():
    outcome = run_experiment(
        small_profile(), small_workload(), [FaultSpec(level="node")]
    )
    assert outcome.iostat is not None
    assert len(outcome.iostat.samples) > 0
    busiest = outcome.iostat.busiest_devices(top=3)
    assert busiest  # recovery moved bytes somewhere


def test_device_level_experiment():
    profile = small_profile(failure_domain="osd", osds_per_host=3)
    outcome = run_experiment(
        profile,
        small_workload(),
        [FaultSpec(level="device", count=2, colocation="same_host")],
    )
    assert len(outcome.injected_osds) == 2
    assert outcome.timeline is not None
    assert outcome.recovery_stats.pgs_recovered > 0


def test_logs_flow_through_bus():
    controller = Controller(small_profile())
    controller.run_experiment(small_workload(), [FaultSpec(level="node")])
    collector = controller.coordinator.collector
    assert collector.of_class("failure")
    assert collector.of_class("recovery")
    assert collector.of_class("osdmap")
    # Bus topics were actually used.
    assert any(t.startswith("ecfault.logs.") for t in controller.coordinator.bus.topics())
