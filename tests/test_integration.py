"""Cross-module integration scenarios at test (small) scale.

These exercise the paper's qualitative effects end-to-end through the
public API — scaled down so the whole file stays fast, asserting
orderings rather than magnitudes (the benchmarks check magnitudes).
"""

import pytest

from repro.cluster.osd import CephConfig
from repro.core import (
    Colocation,
    ExperimentProfile,
    FaultSpec,
    run_experiment,
)
from repro.workload import Workload

KB = 1024
MB = 1024 * 1024

FAST = CephConfig(mon_osd_down_out_interval=30.0)


def total_time(profile, workload, faults=None, seed=5):
    outcome = run_experiment(
        profile, workload, faults or [FaultSpec(level="node")], seed=seed
    )
    return outcome


def test_pg1_recovers_slower_than_pg256():
    workload = Workload(num_objects=150, object_size=16 * MB)
    times = {}
    for pg_num in (1, 256):
        profile = ExperimentProfile(name=f"pg{pg_num}", pg_num=pg_num, ceph=FAST)
        times[pg_num] = total_time(profile, workload).timeline.ec_recovery_period
    assert times[1] > times[256]


def test_clay_small_stripe_unit_pathology():
    """Clay at 4KB stripe units is much slower than Clay at 4MB."""
    workload = Workload(num_objects=120, object_size=16 * MB)
    times = {}
    for unit in (4 * KB, 4 * MB):
        profile = ExperimentProfile(
            name=f"clay-{unit}", ec_plugin="clay",
            ec_params={"k": 9, "m": 3, "d": 11}, stripe_unit=unit, ceph=FAST,
        )
        times[unit] = total_time(profile, workload).timeline.ec_recovery_period
    assert times[4 * KB] > 2.0 * times[4 * MB]


def test_large_stripe_unit_inflates_recovery_volume():
    workload = Workload(num_objects=100, object_size=16 * MB)
    read_bytes = {}
    for unit in (4 * KB, 16 * MB):
        profile = ExperimentProfile(name=f"su{unit}", stripe_unit=unit, ceph=FAST)
        outcome = total_time(profile, workload)
        read_bytes[unit] = outcome.recovery_stats.bytes_read
    # 16MB units pad every chunk of a 16MB object to 16MB: ~9x volume.
    assert read_bytes[16 * MB] > 5 * read_bytes[4 * KB]


def test_more_failures_take_longer():
    workload = Workload(num_objects=200, object_size=8 * MB)
    times = {}
    for count in (1, 3):
        profile = ExperimentProfile(
            name=f"f{count}", failure_domain="osd", osds_per_host=3, ceph=FAST
        )
        outcome = total_time(
            profile, workload,
            [FaultSpec(level="device", count=count,
                       colocation=Colocation.DIFFERENT_HOSTS)],
        )
        times[count] = outcome.timeline.ec_recovery_period
    assert times[3] > times[1]


def test_checking_fraction_falls_with_workload_size():
    fractions = {}
    for count in (50, 400):
        profile = ExperimentProfile(name=f"w{count}", ceph=FAST)
        outcome = total_time(profile, Workload(num_objects=count, object_size=16 * MB))
        fractions[count] = outcome.timeline.checking_fraction
    assert fractions[400] < fractions[50]


def test_wa_grows_when_objects_shrink():
    was = {}
    for size in (28 * KB, 16 * MB):
        profile = ExperimentProfile(name=f"s{size}", stripe_unit=4 * KB, ceph=FAST)
        outcome = run_experiment(
            profile, Workload(num_objects=60, object_size=size), faults=[]
        )
        was[size] = outcome.wa.actual
    assert was[28 * KB] > was[16 * MB] > 4 / 3


def test_node_and_device_faults_both_complete():
    workload = Workload(num_objects=80, object_size=8 * MB)
    for spec in (FaultSpec(level="node"), FaultSpec(level="device")):
        profile = ExperimentProfile(
            name=spec.level, failure_domain="osd", osds_per_host=3, ceph=FAST
        )
        outcome = total_time(profile, workload, [spec])
        assert outcome.recovery_stats.pgs_recovered > 0
        assert outcome.timeline is not None


def test_lrc_recovers_through_full_stack():
    profile = ExperimentProfile(
        name="lrc", ec_plugin="lrc", ec_params={"k": 9, "l": 3, "r": 3},
        ceph=FAST,
    )
    outcome = total_time(profile, Workload(num_objects=80, object_size=8 * MB))
    assert outcome.recovery_stats.pgs_recovered > 0


def test_shec_recovers_through_full_stack():
    profile = ExperimentProfile(
        name="shec", ec_plugin="shec", ec_params={"k": 8, "m": 4, "l": 5},
        ceph=FAST,
    )
    outcome = total_time(profile, Workload(num_objects=80, object_size=8 * MB))
    assert outcome.recovery_stats.pgs_recovered > 0


def test_filestore_backend_profile_runs():
    profile = ExperimentProfile(name="filestore", backend="filestore", ceph=FAST)
    outcome = total_time(profile, Workload(num_objects=60, object_size=8 * MB))
    assert outcome.recovery_stats.pgs_recovered > 0


def test_clay_repair_traffic_less_than_rs_at_default_unit():
    """Single-failure repair bytes: Clay's MSR saving shows up in the
    cluster's measured read volume, not just in the plan."""
    workload = Workload(num_objects=150, object_size=16 * MB)
    reads = {}
    for name, plugin, params in (
        ("rs", "jerasure", {"k": 9, "m": 3}),
        ("clay", "clay", {"k": 9, "m": 3, "d": 11}),
    ):
        profile = ExperimentProfile(
            name=name, ec_plugin=plugin, ec_params=params, ceph=FAST
        )
        outcome = total_time(profile, workload)
        stats = outcome.recovery_stats
        reads[name] = stats.bytes_read / max(1, stats.chunks_rebuilt)
    assert reads["clay"] < reads["rs"]


def test_hdd_device_class_recovers_slower_than_ssd():
    """Table 1 row 8: the device class changes recovery time."""
    workload = Workload(num_objects=80, object_size=8 * MB)
    times = {}
    for device_class in ("ssd", "hdd"):
        profile = ExperimentProfile(
            name=device_class, device_class=device_class, ceph=FAST
        )
        times[device_class] = total_time(
            profile, workload
        ).timeline.ec_recovery_period
    assert times["hdd"] > times["ssd"]


def test_rack_failure_domain_spreads_across_racks():
    """Table 1 row 7: rack-level failure domains place one shard/rack."""
    profile = ExperimentProfile(
        name="rack",
        ec_plugin="jerasure",
        ec_params={"k": 4, "m": 2},
        failure_domain="rack",
        num_hosts=18,
        num_racks=6,
        pg_num=8,
        ceph=FAST,
    )
    from repro.core import Controller

    controller = Controller(profile)
    topology = controller.cluster.topology
    for pg in controller.cluster.pool.pgs.values():
        racks = {topology.host_of(osd).rack_id for osd in pg.acting}
        assert len(racks) == 6  # one shard per rack
