"""Locally Repairable Codes: locality, cascading repair, global solve."""

import itertools

import numpy as np
import pytest

from repro.ec import InsufficientChunksError, LocallyRepairableCode


@pytest.fixture(scope="module")
def lrc():
    return LocallyRepairableCode(6, l=2, r=2)  # n = 10


def test_construction_validation():
    with pytest.raises(ValueError):
        LocallyRepairableCode(5, l=2, r=2)  # l must divide k
    with pytest.raises(ValueError):
        LocallyRepairableCode(4, l=0, r=2)


def test_layout(lrc):
    assert lrc.n == 10
    assert lrc.k == 6
    assert lrc.locality == 2
    assert lrc.group_size == 3
    assert lrc.group_of(0) == 0
    assert lrc.group_of(5) == 1
    assert lrc.group_of(6) == 0  # first local parity
    assert lrc.group_of(7) == 1
    assert lrc.group_of(8) == -1  # global parity
    assert lrc.group_members(0) == [0, 1, 2, 6]


def test_fault_tolerance(lrc):
    assert lrc.fault_tolerance() == 3  # r + 1


def test_local_parity_is_group_xor(lrc):
    data = bytes(range(180))
    chunks = lrc.encode(data)
    expected = chunks[0] ^ chunks[1] ^ chunks[2]
    assert np.array_equal(chunks[6], expected)


def test_single_failure_local_repair(lrc):
    data = bytes(range(200))
    chunks = lrc.encode(data)
    for idx in range(lrc.n):
        available = {i: chunks[i] for i in range(lrc.n) if i != idx}
        rebuilt = lrc.decode_chunks(available, [idx])
        assert np.array_equal(rebuilt[idx], chunks[idx])


def test_local_repair_plan_reads_group_only(lrc):
    alive = [i for i in range(10) if i != 1]
    plan = lrc.repair_plan([1], alive)
    assert plan.helpers == 3  # group size - 1 data + local parity
    assert {r.chunk_index for r in plan.reads} == {0, 2, 6}
    assert plan.decode_work < 1.0  # XOR repair is cheaper than RS decode


def test_global_parity_loss_plan_reads_k(lrc):
    alive = [i for i in range(10) if i != 8]
    plan = lrc.repair_plan([8], alive)
    assert plan.helpers == lrc.k


def test_multi_failure_same_group_uses_global(lrc):
    data = bytes(range(240))
    chunks = lrc.encode(data)
    erased = (0, 1)  # two in group 0: local repair impossible
    available = {i: chunks[i] for i in range(10) if i not in erased}
    rebuilt = lrc.decode_chunks(available, list(erased))
    for idx in erased:
        assert np.array_equal(rebuilt[idx], chunks[idx])


def test_cascading_local_repairs(lrc):
    """One failure per group: two independent local repairs."""
    data = bytes(range(100))
    chunks = lrc.encode(data)
    erased = (0, 4)
    available = {i: chunks[i] for i in range(10) if i not in erased}
    rebuilt = lrc.decode_chunks(available, list(erased))
    for idx in erased:
        assert np.array_equal(rebuilt[idx], chunks[idx])


def test_all_triple_failures_recoverable(lrc):
    """The r+1 = 3 guarantee: every 3-failure pattern decodes."""
    data = bytes(range(120))
    chunks = lrc.encode(data)
    for erased in itertools.combinations(range(10), 3):
        assert lrc.can_recover(erased), erased
        available = {i: chunks[i] for i in range(10) if i not in erased}
        rebuilt = lrc.decode_chunks(available, list(erased))
        for idx in erased:
            assert np.array_equal(rebuilt[idx], chunks[idx])


def test_some_quadruple_failures_recoverable_some_not(lrc):
    recoverable = 0
    unrecoverable = 0
    for erased in itertools.combinations(range(10), 4):
        if lrc.can_recover(erased):
            recoverable += 1
        else:
            unrecoverable += 1
    assert recoverable > 0
    assert unrecoverable > 0


def test_unrecoverable_pattern_raises(lrc):
    data = bytes(range(60))
    chunks = lrc.encode(data)
    # Find an unrecoverable 5-failure pattern.
    for erased in itertools.combinations(range(10), 5):
        if not lrc.can_recover(erased):
            available = {
                i: chunks[i] for i in range(10) if i not in erased
            }
            with pytest.raises(InsufficientChunksError):
                lrc.decode_chunks(available, list(erased))
            return
    pytest.fail("expected at least one unrecoverable 5-failure pattern")


def test_repair_bandwidth_beats_rs_for_single_failure(lrc):
    """The locality win: 3 reads instead of k=6."""
    alive = [i for i in range(10) if i != 0]
    plan = lrc.repair_plan([0], alive)
    assert plan.read_fraction_total() == pytest.approx(3.0)


def test_azure_style_12_2_2():
    code = LocallyRepairableCode(12, l=2, r=2)
    data = bytes(range(251)) * 3
    chunks = code.encode(data)
    available = {i: chunks[i] for i in range(code.n) if i not in (0, 6, 13)}
    rebuilt = code.decode_chunks(available, [0, 6, 13])
    for idx in (0, 6, 13):
        assert np.array_equal(rebuilt[idx], chunks[idx])
