"""Unit tests for Resource, ServiceCenter, and Store."""

import pytest

from repro.sim import Environment, Resource, ServiceCenter, Store


# -- Resource -----------------------------------------------------------------


def test_resource_capacity_validated():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, 0)


def test_resource_immediate_acquire_under_capacity():
    env = Environment()
    res = Resource(env, 2)
    a = res.acquire()
    b = res.acquire()
    assert a.triggered and b.triggered
    assert res.in_use == 2


def test_resource_blocks_at_capacity_and_fifo_handoff():
    env = Environment()
    res = Resource(env, 1)
    order = []

    def user(name, hold):
        yield res.acquire()
        order.append(("got", name, env.now))
        yield env.timeout(hold)
        res.release()

    env.process(user("a", 3))
    env.process(user("b", 1))
    env.process(user("c", 1))
    env.run()
    assert order == [("got", "a", 0.0), ("got", "b", 3.0), ("got", "c", 4.0)]


def test_resource_release_without_acquire_rejected():
    env = Environment()
    res = Resource(env, 1)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_queue_length():
    env = Environment()
    res = Resource(env, 1)
    res.acquire()
    res.acquire()
    res.acquire()
    assert res.queue_length == 2


# -- ServiceCenter --------------------------------------------------------------


def test_service_center_serial_service():
    env = Environment()
    center = ServiceCenter(env, servers=1)
    done = []

    def job(name, service):
        yield center.request(service)
        done.append((name, env.now))

    env.process(job("a", 2.0))
    env.process(job("b", 3.0))
    env.run()
    assert done == [("a", 2.0), ("b", 5.0)]


def test_service_center_parallel_servers():
    env = Environment()
    center = ServiceCenter(env, servers=2)
    done = []

    def job(name, service):
        yield center.request(service)
        done.append((name, env.now))

    for name in ("a", "b", "c"):
        env.process(job(name, 2.0))
    env.run()
    assert done == [("a", 2.0), ("b", 2.0), ("c", 4.0)]


def test_service_center_negative_time_rejected():
    env = Environment()
    center = ServiceCenter(env)
    with pytest.raises(ValueError):
        center.request(-1.0)


def test_service_center_tracks_busy_time_and_jobs():
    env = Environment()
    center = ServiceCenter(env, servers=1)

    def job():
        yield center.request(4.0)

    env.process(job())
    env.run()
    assert center.busy_time == 4.0
    assert center.jobs_served == 1
    assert center.utilisation(8.0) == pytest.approx(0.5)


def test_service_center_utilisation_zero_elapsed():
    env = Environment()
    center = ServiceCenter(env)
    assert center.utilisation(0.0) == 0.0


# -- Store -------------------------------------------------------------------------


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("x")

    def getter():
        value = yield store.get()
        return value

    p = env.process(getter())
    assert env.run_until_process(p) == "x"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    result = []

    def getter():
        value = yield store.get()
        result.append((env.now, value))

    def putter():
        yield env.timeout(5.0)
        store.put("late")

    env.process(getter())
    env.process(putter())
    env.run()
    assert result == [(5.0, "late")]


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    for item in (1, 2, 3):
        store.put(item)
    got = []

    def getter():
        for _ in range(3):
            value = yield store.get()
            got.append(value)

    env.process(getter())
    env.run()
    assert got == [1, 2, 3]


def test_store_drain():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    assert store.drain() == ["a", "b"]
    assert len(store) == 0
