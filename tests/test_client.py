"""Client read path: normal reads, degraded reads, load generation."""

import pytest

from repro.cluster import CACHE_SCHEMES, CephCluster, CephConfig, RadosClient
from repro.cluster.client import (
    ClientLoadGenerator,
    ObjectNotFoundError,
    ReadFailedError,
    ReadSample,
    ReadStats,
)
from repro.ec import ReedSolomon
from repro.sim import Environment, SeedSequence

MB = 1024 * 1024


def build(num_hosts=10, pg_num=8, down_out=10_000.0):
    env = Environment()
    cluster = CephCluster(
        env,
        ReedSolomon(4, 2),
        CACHE_SCHEMES["autotune"],
        config=CephConfig(mon_osd_down_out_interval=down_out),
        num_hosts=num_hosts,
        pg_num=pg_num,
    )
    for i in range(30):
        cluster.ingest_object(f"obj-{i}", 4 * MB)
    return env, cluster, RadosClient(cluster)


def read(env, client, name):
    process = client.read_object(name)
    return env.run_until_process(process)


def test_normal_read_returns_sample():
    env, cluster, client = build()
    sample = read(env, client, "obj-3")
    assert isinstance(sample, ReadSample)
    assert not sample.degraded
    assert sample.latency > 0
    assert sample.bytes_read == 4 * MB


def test_unknown_object_rejected():
    env, cluster, client = build()
    with pytest.raises(ObjectNotFoundError):
        read(env, client, "ghost")


def test_degraded_read_when_data_shard_down():
    env, cluster, client = build()
    pg = cluster.pool.pg_of("obj-3")
    # Kill a *data* shard's host (shard 0..k-1).
    victim = cluster.topology.osds[pg.acting[0]].host_id
    for osd_id in cluster.topology.hosts[victim].osd_ids:
        cluster.osds[osd_id].host_running = False
    sample = read(env, client, "obj-3")
    assert sample.degraded


def test_parity_shard_loss_does_not_degrade_reads():
    env, cluster, client = build()
    pg = cluster.pool.pg_of("obj-3")
    victim_osd = pg.acting[5]  # parity shard (k=4, shards 4-5 are parity)
    cluster.osds[victim_osd].disk.fail()
    # Ensure the parity host does not share data-shard OSDs.
    data_osds = {pg.acting[s] for s in range(4)}
    if victim_osd not in data_osds:
        sample = read(env, client, "obj-3")
        assert not sample.degraded


def test_degraded_read_slower_than_normal():
    env, cluster, client = build()
    normal = read(env, client, "obj-3")
    pg = cluster.pool.pg_of("obj-3")
    victim = cluster.topology.osds[pg.acting[0]].host_id
    for osd_id in cluster.topology.hosts[victim].osd_ids:
        cluster.osds[osd_id].host_running = False
    degraded = read(env, client, "obj-3")
    assert degraded.latency > normal.latency


def test_read_fails_below_k_shards():
    env, cluster, client = build()
    pg = cluster.pool.pg_of("obj-3")
    # Kill 3 of 6 shards: below k=4 survivors.
    for shard in (0, 1, 2):
        cluster.osds[pg.acting[shard]].disk.fail()
    with pytest.raises(ReadFailedError):
        read(env, client, "obj-3")


def test_load_generator_collects_samples():
    env, cluster, client = build()
    generator = ClientLoadGenerator(client, interval=0.5, seeds=SeedSequence(3))
    done = generator.run_for(20.0)
    env.run_until_process(done)
    stats = generator.stats
    assert stats.count >= 35  # ~40 issued over 20s
    assert stats.degraded_fraction == 0.0
    assert stats.mean_latency() > 0
    assert stats.latency_percentile(99) >= stats.latency_percentile(50)


def test_load_generator_sees_degradation_during_outage():
    env, cluster, client = build(down_out=10_000.0)  # never marked out
    victim = cluster.topology.osds[
        cluster.pool.pg_of("obj-0").acting[0]
    ].host_id
    for osd_id in cluster.topology.hosts[victim].osd_ids:
        cluster.osds[osd_id].host_running = False
    generator = ClientLoadGenerator(client, interval=0.5, seeds=SeedSequence(4))
    env.run_until_process(generator.run_for(30.0))
    stats = generator.stats
    # Some objects map to PGs using the dead host: degraded reads happen.
    assert stats.degraded_count > 0
    assert 0 < stats.degraded_fraction < 1
    assert stats.mean_latency(degraded=True) > stats.mean_latency(degraded=False)


def test_degradation_clears_after_recovery():
    env, cluster, client = build(down_out=30.0)
    victim = cluster.topology.osds[
        cluster.pool.pg_of("obj-0").acting[0]
    ].host_id
    for osd_id in cluster.topology.hosts[victim].osd_ids:
        cluster.osds[osd_id].host_running = False
    done = cluster.recovery.wait_all_recovered()
    env.run(until=2000)
    assert done.triggered
    generator = ClientLoadGenerator(client, interval=0.5, seeds=SeedSequence(5))
    env.run_until_process(generator.run_for(20.0))
    assert generator.stats.degraded_fraction == 0.0


def test_stats_validation():
    stats = ReadStats()
    with pytest.raises(ValueError):
        stats.latency_percentile(0)
    with pytest.raises(ValueError):
        stats.latency_percentile(50)
    with pytest.raises(ValueError):
        stats.mean_latency()


def test_generator_validation():
    env, cluster, client = build()
    with pytest.raises(ValueError):
        ClientLoadGenerator(client, interval=0)
    generator = ClientLoadGenerator(client, interval=1.0)
    with pytest.raises(ValueError):
        generator.run_for(0)
