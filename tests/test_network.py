"""NIC and fabric model: transfer times, contention, loopback."""

import pytest

from repro.cluster import Fabric, M5_NIC, Nic, NicSpec
from repro.sim import Environment


def make_nic(env, name="n", bandwidth=1e9, latency=0.001, overhead=0.0001):
    return Nic(env, NicSpec(name, bandwidth, latency, overhead), name=name)


def test_spec_validation():
    with pytest.raises(ValueError):
        NicSpec("bad", 0, 0.0, 0.0)


def test_wire_time():
    env = Environment()
    nic = make_nic(env)
    assert nic.wire_time(1_000_000) == pytest.approx(0.0011)
    with pytest.raises(ValueError):
        nic.wire_time(-1)


def test_transfer_charges_both_ends():
    env = Environment()
    a, b = make_nic(env, "a"), make_nic(env, "b")
    fabric = Fabric(env)
    done = []

    def xfer():
        yield fabric.transfer(a, b, 1_000_000)
        done.append(env.now)

    env.process(xfer())
    env.run()
    # egress 0.0011 + latency 0.001 + ingress 0.0011
    assert done[0] == pytest.approx(0.0032)
    assert a.sent_bytes == 1_000_000
    assert b.received_bytes == 1_000_000


def test_loopback_is_cheap():
    env = Environment()
    a = make_nic(env, "a")
    fabric = Fabric(env)
    done = []

    def xfer():
        yield fabric.transfer(a, a, 10**9)
        done.append(env.now)

    env.process(xfer())
    env.run()
    assert done[0] == pytest.approx(a.spec.message_overhead)
    assert a.sent_bytes == 0  # loopback bypasses the NIC


def test_ingress_contention_serialises():
    """Two senders into one receiver share its ingress queue."""
    env = Environment()
    dst = make_nic(env, "dst")
    srcs = [make_nic(env, f"s{i}") for i in range(2)]
    fabric = Fabric(env)
    done = []

    def xfer(src):
        yield fabric.transfer(src, dst, 1_000_000_000)  # ~1 s wire time
        done.append(env.now)

    for src in srcs:
        env.process(xfer(src))
    env.run()
    # First arrival ~2s (egress+ingress), second waits on dst ingress.
    assert done[1] - done[0] == pytest.approx(1.0001, rel=1e-3)
    assert fabric.transfers == 2


def test_m5_nic_is_10gbit():
    assert M5_NIC.bandwidth == pytest.approx(1.25e9)
