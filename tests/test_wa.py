"""Write amplification: the paper's formula and OSD-level measurement."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    ExperimentProfile,
    chunk_stored_size,
    estimate_wa,
    measure_wa,
    run_experiment,
    theoretical_wa,
)
from repro.workload import Workload

KB = 1024
MB = 1024 * 1024


def test_theoretical_wa():
    assert theoretical_wa(12, 9) == pytest.approx(4 / 3)
    assert theoretical_wa(15, 12) == pytest.approx(1.25)
    with pytest.raises(ValueError):
        theoretical_wa(9, 9)


def test_chunk_stored_size_matches_formula():
    assert chunk_stored_size(64 * MB, 9, 4 * KB) == 4 * KB * math.ceil(
        64 * MB / (9 * 4 * KB)
    )
    assert chunk_stored_size(0, 9, 4 * KB) == 4 * KB  # onode anchors a unit
    with pytest.raises(ValueError):
        chunk_stored_size(100, 0, 4096)


def test_estimate_wa_lower_bounds_and_exceeds_theory():
    """The estimate sits between n/k and the measured WA."""
    estimate = estimate_wa(28 * KB, 12, 9, 4 * KB)
    assert estimate > theoretical_wa(12, 9)
    # 28 KB objects: chunk padded to 4 KB -> 12 * 4 / 28.
    assert estimate == pytest.approx(12 * 4 / 28)


def test_estimate_wa_with_metadata_term():
    base = estimate_wa(28 * KB, 12, 9, 4 * KB)
    with_meta = estimate_wa(28 * KB, 12, 9, 4 * KB, meta_bytes=1024)
    assert with_meta == pytest.approx(base + 1024 / (28 * KB))
    with pytest.raises(ValueError):
        estimate_wa(28 * KB, 12, 9, 4 * KB, meta_bytes=-1)


def test_estimate_wa_validation():
    with pytest.raises(ValueError):
        estimate_wa(0, 12, 9, 4096)
    with pytest.raises(ValueError):
        estimate_wa(100, 9, 12, 4096)


@given(
    size=st.integers(min_value=1, max_value=10**8),
    k=st.integers(min_value=2, max_value=16),
    m=st.integers(min_value=1, max_value=4),
    unit=st.sampled_from([4 * KB, 64 * KB, 4 * MB]),
)
def test_property_estimate_never_below_theory(size, k, m, unit):
    assert estimate_wa(size, k + m, k, unit) >= theoretical_wa(k + m, k) - 1e-9


@given(
    size=st.integers(min_value=1, max_value=10**7),
    k=st.integers(min_value=2, max_value=12),
)
def test_property_estimate_converges_for_large_objects(size, k):
    """For objects >> k * stripe_unit, the estimate approaches n/k."""
    unit = 4 * KB
    big = size + 50 * k * unit
    estimate = estimate_wa(big, k + 3, k, unit)
    theory = theoretical_wa(k + 3, k)
    assert estimate <= theory * (1 + 1.0 / 50)


def test_measured_wa_exceeds_estimate_exceeds_theory():
    """measured >= estimate >= n/k: the §4.4 ordering, end to end."""
    profile = ExperimentProfile(pg_num=16, num_hosts=15, stripe_unit=4 * KB)
    workload = Workload(num_objects=60, object_size=28 * KB)
    outcome = run_experiment(profile, workload, faults=[])
    actual = outcome.wa.actual
    estimate = estimate_wa(28 * KB, 12, 9, 4 * KB)
    assert actual >= estimate > theoretical_wa(12, 9)
    # Metadata keeps actual strictly above the padding-only estimate.
    assert actual > estimate


def test_wa_report_percentages():
    profile = ExperimentProfile(pg_num=8, num_hosts=15, stripe_unit=4 * KB)
    workload = Workload(num_objects=40, object_size=28 * KB)
    outcome = run_experiment(profile, workload, faults=[])
    report = outcome.wa
    assert report.theoretical == pytest.approx(4 / 3)
    assert report.excess_percent > 0
    assert report.n == 12 and report.k == 9


def test_wa_large_objects_near_theory():
    """64 MB objects at 4 KB units: padding is negligible (~n/k)."""
    profile = ExperimentProfile(pg_num=8, num_hosts=15, stripe_unit=4 * KB)
    workload = Workload(num_objects=20, object_size=64 * MB)
    outcome = run_experiment(profile, workload, faults=[])
    assert outcome.wa.actual == pytest.approx(4 / 3, rel=0.02)


def test_measure_wa_validation():
    from repro.cluster import CACHE_SCHEMES, CephCluster
    from repro.ec import ReedSolomon
    from repro.sim import Environment

    cluster = CephCluster(
        Environment(), ReedSolomon(4, 2), CACHE_SCHEMES["autotune"],
        num_hosts=8, pg_num=4,
    )
    with pytest.raises(ValueError):
        measure_wa(cluster, -1)
    report = measure_wa(cluster, 0)
    assert report.actual == 0.0
