"""Log-based delta recovery vs full backfill for transient failures.

An OSD that comes back *up* before the down->out interval elapses is
repaired by pg_log delta recovery — peering diffs shard versions and
replays only the objects dirtied during the outage — instead of the
reservation-and-full-rebuild backfill path an *out* OSD pays for.
"""

import pytest

from repro.cluster import CACHE_SCHEMES, CephCluster, CephConfig, RadosClient
from repro.ec import ReedSolomon
from repro.sim import Environment

MB = 1024 * 1024


def build(down_out=10_000.0, num_hosts=10, pg_num=8, objects=16, **ceph):
    env = Environment()
    cluster = CephCluster(
        env,
        ReedSolomon(4, 2),
        CACHE_SCHEMES["autotune"],
        config=CephConfig(mon_osd_down_out_interval=down_out, **ceph),
        num_hosts=num_hosts,
        pg_num=pg_num,
    )
    for i in range(objects):
        cluster.ingest_object(f"obj-{i}", 1 * MB)
    return env, cluster, RadosClient(cluster)


def set_host(cluster, host_id, running):
    for osd_id in cluster.topology.hosts[host_id].osd_ids:
        cluster.osds[osd_id].host_running = running


def host_of_shard(cluster, pg, shard):
    return cluster.topology.osds[pg.acting[shard]].host_id


def dirty_objects_on(cluster, pg):
    return {
        obj.name for obj in pg.objects if pg.log.stale_shards(obj.name)
    }


def drain(env, cluster, limit):
    env.run(until=limit)
    while cluster.recovery.kick_stale():
        env.run(until=env.now + 500.0)


def converged(cluster):
    return all(
        not pg.log.dirty_shards() for pg in cluster.pool.pgs.values()
    )


def test_transient_outage_is_delta_recovered_not_backfilled():
    env, cluster, client = build()
    env.run(until=10)
    pg = cluster.pool.pg_of("obj-0")
    victim = host_of_shard(cluster, pg, 0)
    set_host(cluster, victim, False)
    # Let the monitor mark it down (grace 20 s + tick), then write a few
    # objects degraded while it is out of service.
    env.run(until=60)
    assert any(
        osd_id in cluster.monitor.down_since
        for osd_id in cluster.topology.hosts[victim].osd_ids
    )
    written = []
    for i in range(5):
        env.run_until_process(client.write_object(f"obj-{i}"))
        written.append(f"obj-{i}")
    dirtied = {
        name for name in written
        if cluster.pool.pg_of(name).log.stale_shards(name)
    }
    assert dirtied, "no write went degraded — victim host holds no shards"
    backfill_before = cluster.recovery.stats.bytes_written
    # Back up well before the 10_000 s down->out interval.
    set_host(cluster, victim, True)
    drain(env, cluster, env.now + 2000)
    stats = cluster.recovery.stats
    assert stats.pgs_delta_recovered > 0
    assert stats.objects_delta_recovered >= len(dirtied)
    assert stats.delta_bytes_written > 0
    # Delta recovery, not backfill: no full-rebuild bytes were moved.
    assert stats.bytes_written == backfill_before
    # The log-bounded-repair invariant: spent <= accrued allowance.
    assert stats.delta_bytes_read + stats.delta_bytes_written \
        <= stats.delta_budget_bytes
    assert converged(cluster)
    for name in dirtied:
        log = cluster.pool.pg_of(name).log
        assert all(v == log.object_version[name]
                   for v in log.shard_versions[name])


def test_outage_past_down_out_interval_backfills():
    env, cluster, client = build(down_out=60.0)
    env.run(until=10)
    pg = cluster.pool.pg_of("obj-0")
    victim = host_of_shard(cluster, pg, 0)
    set_host(cluster, victim, False)
    env.run(until=60)
    env.run_until_process(client.write_object("obj-0"))
    # Stay down past the interval: the monitor marks the OSDs out and
    # recovery takes the full backfill path.
    env.run(until=400)
    assert all(
        cluster.monitor.is_out(osd_id)
        for osd_id in cluster.topology.hosts[victim].osd_ids
    )
    set_host(cluster, victim, True)
    drain(env, cluster, 3000)
    stats = cluster.recovery.stats
    assert stats.pgs_recovered > 0
    assert stats.bytes_written > 0
    assert converged(cluster)


def test_trimmed_log_falls_back_to_backfill_per_shard():
    # A tiny log: the writes during the outage overflow the hard cap,
    # the victim's delta claim is surrendered, and recovery reports the
    # per-shard fallback instead of replaying the log.
    env, cluster, client = build(
        osd_pg_log_max_entries=2, osd_pg_log_hard_limit=4, pg_num=2,
        objects=8,
    )
    env.run(until=10)
    pg = cluster.pool.pg_of("obj-0")
    victim = host_of_shard(cluster, pg, 0)
    set_host(cluster, victim, False)
    env.run(until=60)
    on_pg = [obj.name for obj in pg.objects]
    for _ in range(3):
        for name in on_pg:
            env.run_until_process(client.write_object(name))
    assert pg.log.backfill_shards, "hard cap never tripped"
    set_host(cluster, victim, True)
    drain(env, cluster, env.now + 4000)
    stats = cluster.recovery.stats
    assert stats.delta_fallback_backfills > 0
    assert converged(cluster)
    messages = [r.message for log in cluster.all_logs() for r in log]
    assert any("falling back to backfill" in m for m in messages)


def test_kick_stale_repairs_silent_staleness():
    # The host comes back within the heartbeat grace: the monitor never
    # marks it down, so no down->up event fires — kick_stale() is the
    # only path that notices the dirty log.
    env, cluster, client = build()
    env.run(until=10)
    pg = cluster.pool.pg_of("obj-0")
    victim = host_of_shard(cluster, pg, 0)
    set_host(cluster, victim, False)
    env.run_until_process(client.write_object("obj-0"))
    set_host(cluster, victim, True)
    env.run(until=20)
    assert not cluster.monitor.down_since
    assert pg.log.stale_shards("obj-0")
    assert cluster.recovery.kick_stale() is True
    env.run(until=1000)
    assert not pg.log.stale_shards("obj-0")
    assert cluster.recovery.stats.pgs_delta_recovered >= 1


def test_helper_rejoin_requeues_abandoned_pgs():
    # RS(4,2) on 7 hosts: losing two hosts leaves 5 < n = 6 up buckets,
    # so PG recovery is unplaceable and abandoned.  One host rejoining
    # (marked in) must requeue those PGs against the still-out host.
    env, cluster, client = build(down_out=60.0, num_hosts=7, pg_num=4)
    env.run(until=10)
    pg = cluster.pool.pg_of("obj-0")
    host_a = host_of_shard(cluster, pg, 0)
    host_b = host_of_shard(cluster, pg, 1)
    assert host_a != host_b
    set_host(cluster, host_a, False)
    set_host(cluster, host_b, False)
    env.run(until=400)  # both marked out; recovery abandoned (5 hosts)
    assert cluster.recovery.stats.pgs_unplaceable > 0 \
        or cluster.recovery.stats.pgs_abandoned > 0
    set_host(cluster, host_b, True)
    env.run(until=3000)
    stats = cluster.recovery.stats
    assert stats.pgs_requeued > 0
    assert stats.pgs_recovered > 0
    # The still-out host's shards were rebuilt elsewhere.
    out = set(cluster.monitor.out_osds)
    for pg in cluster.pool.pgs.values():
        if pg.objects:
            assert not out & set(pg.acting)


def test_pin_expiry_bumps_epoch_and_logs_rejoin():
    env, cluster, client = build(
        mon_osd_markdown_count=2, mon_osd_markdown_period=10_000.0,
        mon_osd_markdown_pin=200.0,
    )
    env.run(until=10)
    pg = cluster.pool.pg_of("obj-0")
    victim_osd = pg.acting[0]
    # Flap the daemon until the monitor pins it.
    for _ in range(3):
        cluster.osds[victim_osd].daemon_up = False
        env.run(until=env.now + 40)
        cluster.osds[victim_osd].daemon_up = True
        env.run(until=env.now + 40)
        if cluster.monitor.pinned_until.get(victim_osd):
            break
    assert cluster.monitor.pins_total >= 1
    epoch_before = cluster.monitor.osdmap_epoch
    env.run(until=env.now + 500)  # pin expires, daemon healthy
    assert not cluster.monitor.active_pins()
    assert victim_osd not in cluster.monitor.pinned_until
    assert cluster.monitor.osdmap_epoch > epoch_before
    messages = [r.message for r in cluster.monitor.log]
    assert "flap pin expired, osd rejoining" in messages
