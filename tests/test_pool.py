"""Pools and placement groups: hashing, acting sets, bookkeeping."""

import pytest

from repro.cluster import ClusterTopology, CrushMap, FailureDomain, Pool
from repro.ec import ReedSolomon
from repro.sim import Environment


@pytest.fixture
def pool():
    topo = ClusterTopology(Environment(), num_hosts=15, osds_per_host=2)
    return Pool(
        pool_id=1,
        name="ecpool",
        code=ReedSolomon(9, 3),
        crush=CrushMap(topo, seed=7),
        pg_num=16,
        stripe_unit=4096,
        failure_domain=FailureDomain.HOST,
    )


def test_pg_creation(pool):
    assert len(pool.pgs) == 16
    for pg in pool.pgs.values():
        assert len(pg.acting) == 12
        assert pg.pgid.startswith("1.")


def test_pool_validation():
    topo = ClusterTopology(Environment(), num_hosts=15, osds_per_host=2)
    crush = CrushMap(topo)
    with pytest.raises(ValueError):
        Pool(1, "p", ReedSolomon(9, 3), crush, pg_num=0)
    with pytest.raises(ValueError):
        Pool(1, "p", ReedSolomon(9, 3), crush, pg_num=4, stripe_unit=0)


def test_object_hashing_stable(pool):
    assert pool.pg_of("obj-1") is pool.pg_of("obj-1")


def test_objects_spread_over_pgs(pool):
    pgs = {pool.pg_of(f"obj-{i}").pg_id for i in range(200)}
    assert len(pgs) == 16  # all PGs used at this object count


def test_put_object_records_and_layout(pool):
    pg = pool.put_object("obj-0", 64 * 1024 * 1024)
    assert len(pg.objects) == 1
    obj = pg.objects[0]
    assert obj.layout.k == 9
    assert obj.layout.chunk_stored_bytes % 4096 == 0
    assert pool.total_objects() == 1
    assert pool.total_logical_bytes() == 64 * 1024 * 1024


def test_shards_on(pool):
    pg = pool.pgs[0]
    osd = pg.acting[5]
    assert pg.shards_on([osd]) == [5]
    assert pg.shards_on([-1]) == []


def test_pgs_using_osd(pool):
    osd = pool.pgs[3].acting[0]
    hits = pool.pgs_using_osd([osd])
    assert pool.pgs[3] in hits
    for pg in hits:
        assert osd in pg.acting


def test_stored_bytes_per_shard(pool):
    pg = pool.put_object("obj-x", 36 * 4096 * 9)
    assert pg.stored_bytes() == 36 * 4096


def test_pg_num_one_uses_single_acting_set():
    topo = ClusterTopology(Environment(), num_hosts=15, osds_per_host=2)
    pool = Pool(1, "p", ReedSolomon(9, 3), CrushMap(topo), pg_num=1)
    for i in range(50):
        pool.put_object(f"o{i}", 1024)
    assert len(pool.pgs[0].objects) == 50
