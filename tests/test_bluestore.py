"""BlueStore model: cache schemes, autotune, allocation accounting."""

import pytest

from repro.cluster import CACHE_SCHEMES, BlueStore, BlueStoreCacheModel, CacheConfig
from repro.cluster.bluestore import WorkingSets


def test_paper_table2_schemes():
    c1 = CACHE_SCHEMES["kv-optimized"]
    assert (c1.kv_ratio, c1.meta_ratio, c1.data_ratio) == (0.70, 0.20, 0.10)
    c2 = CACHE_SCHEMES["data-optimized"]
    assert (c2.kv_ratio, c2.meta_ratio, c2.data_ratio) == (0.20, 0.20, 0.60)
    c3 = CACHE_SCHEMES["autotune"]
    assert (c3.kv_ratio, c3.meta_ratio, c3.data_ratio) == (0.45, 0.45, 0.10)
    assert c3.autotune and not c1.autotune


def test_ratio_validation():
    with pytest.raises(ValueError):
        CacheConfig("bad", 0.5, 0.5, 0.5)
    with pytest.raises(ValueError):
        CacheConfig("bad", -0.1, 0.6, 0.5)


def test_fixed_partitions_follow_ratios():
    model = BlueStoreCacheModel(CACHE_SCHEMES["kv-optimized"], cache_bytes=1000.0)
    kv, meta, data = model.partitions(WorkingSets(1, 1, 1))
    assert (kv, meta, data) == (700.0, 200.0, 100.0)


def test_autotune_partitions_near_ideal_per_class():
    """The priority resizer gives every class near-full effective size."""
    model = BlueStoreCacheModel(CACHE_SCHEMES["autotune"], cache_bytes=1000.0)
    ws = WorkingSets(meta_bytes=100.0, kv_bytes=300.0, data_bytes=600.0)
    kv, meta, data = model.partitions(ws)
    assert kv == meta == data == pytest.approx(0.92 * 1000)


def test_autotune_beats_fixed_schemes_on_every_class():
    ws = WorkingSets(meta_bytes=100.0, kv_bytes=300.0, data_bytes=600.0)
    auto = BlueStoreCacheModel(CACHE_SCHEMES["autotune"], 1000.0).hit_rates(ws)
    for name in ("kv-optimized", "data-optimized"):
        fixed = BlueStoreCacheModel(CACHE_SCHEMES[name], 1000.0).hit_rates(ws)
        assert all(a >= f for a, f in zip(auto, fixed))


def test_hit_rates_saturating():
    model = BlueStoreCacheModel(CACHE_SCHEMES["kv-optimized"], cache_bytes=1000.0)
    ws = WorkingSets(meta_bytes=200.0, kv_bytes=700.0, data_bytes=100.0)
    kv, meta, data = model.hit_rates(ws)
    assert kv == pytest.approx(0.5)
    assert meta == pytest.approx(0.5)
    assert data == pytest.approx(0.5)
    # Empty working set -> perfect hit rate.
    assert model.hit_rates(WorkingSets())[0] == 1.0


def test_cache_bytes_validation():
    with pytest.raises(ValueError):
        BlueStoreCacheModel(CACHE_SCHEMES["autotune"], cache_bytes=0)


# -- BlueStore accounting ---------------------------------------------------------


def make_store(scheme="autotune"):
    return BlueStore(CACHE_SCHEMES[scheme], cache_bytes=1e9)


def test_chunk_allocation_min_alloc_rounding():
    store = make_store()
    allocated, metadata = store.chunk_allocation(stored_bytes=5000, units=2)
    assert allocated == 8192  # rounded to two 4 KiB granules
    assert metadata == store.onode_bytes + store.ec_attr_bytes + 2 * store.extent_entry_bytes


def test_chunk_allocation_validation():
    store = make_store()
    with pytest.raises(ValueError):
        store.chunk_allocation(-1, 1)
    with pytest.raises(ValueError):
        store.chunk_allocation(100, 0)


def test_store_and_remove_chunk_roundtrip():
    store = make_store()
    consumed = store.store_chunk(4096, 1)
    assert store.num_chunks == 1
    assert store.used_bytes == consumed
    released = store.remove_chunk(4096, 1)
    assert released == consumed
    assert store.used_bytes == 0
    assert store.num_chunks == 0


def test_used_bytes_exceed_data_bytes():
    """Metadata + min_alloc rounding means usage > logical data (WA)."""
    store = make_store()
    store.store_chunk(5000, 2)
    assert store.used_bytes > 5000


def test_write_coalescing_ordering():
    """More data cache -> stronger coalescing (smaller multiplier)."""
    stores = {name: make_store(name) for name in CACHE_SCHEMES}
    for store in stores.values():
        for _ in range(1000):
            store.store_chunk(4 * 1024 * 1024, 1024)
    kv_opt = stores["kv-optimized"].write_coalescing()
    data_opt = stores["data-optimized"].write_coalescing()
    assert data_opt < kv_opt  # data-optimized coalesces better
    assert 0.5 <= kv_opt <= 1.0


def test_read_overhead_ordering():
    """kv-starved scheme pays more read-side metadata overhead."""
    stores = {name: make_store(name) for name in ("kv-optimized", "data-optimized")}
    for store in stores.values():
        for _ in range(5000):
            store.store_chunk(4 * 1024 * 1024, 1024)
    assert (
        stores["data-optimized"].read_overhead_ops(8 * 1024 * 1024)
        > stores["kv-optimized"].read_overhead_ops(8 * 1024 * 1024)
    )


def test_read_overhead_scales_with_bytes_and_runs():
    store = make_store("kv-optimized")
    for _ in range(5000):
        store.store_chunk(4 * 1024 * 1024, 1024)
    assert store.read_overhead_ops(8_000_000) > store.read_overhead_ops(64_000)
    assert (
        store.read_overhead_ops(64_000, scatter_runs=50)
        > store.read_overhead_ops(64_000)
    )
