"""Multi-tenant fleet: specs, accounting, seed stability, chaos wiring.

The load-bearing test here is the seed-stability regression: a
legacy-equivalent fleet (one default tenant, uniform arrivals, QoS off)
must produce a digest **byte-identical** to the pre-tenancy
single-client gray experiment at the same seed — adding the tenancy
subsystem must not perturb a single RNG draw of the old path.
"""

from collections import namedtuple

import pytest

from repro.chaos.campaign import CampaignSpec
from repro.chaos.engine import run_chaos
from repro.chaos.sampler import sample_campaign
from repro.cluster import CephConfig
from repro.core.fault_injector import FaultSpec
from repro.core.gray import run_gray_experiment
from repro.core.profile import ExperimentProfile
from repro.core.timeline import TimelineError, build_tenant_slo_timeline
from repro.tenancy import (
    LEGACY_TENANT_NAME,
    SloSpec,
    TenantFleetSpec,
    TenantSpec,
    merge_windows,
    run_tenant_experiment,
    slo_violation_windows,
    tenant_class_name,
    windows_overlap,
)
from repro.workload.generator import Workload

MB = 1024 * 1024


def small_profile(name="tenancy"):
    return ExperimentProfile(
        name=name,
        ec_plugin="jerasure",
        ec_params={"k": 4, "m": 2},
        pg_num=8,
        stripe_unit=1 * MB,
        num_hosts=8,
        osds_per_host=2,
        ceph=CephConfig(),
    )


def small_workload(objects=12):
    return Workload(num_objects=objects, object_size=1 * MB)


# -- spec validation and round-trips --------------------------------------------


def test_tenant_spec_validation():
    with pytest.raises(ValueError, match="name"):
        TenantSpec(name="")
    with pytest.raises(ValueError, match="name"):
        TenantSpec(name="a:b")  # ':' is the QoS class separator
    with pytest.raises(ValueError, match="interval"):
        TenantSpec(name="a", interval=0.0)
    with pytest.raises(ValueError, match="arrival"):
        TenantSpec(name="a", arrival="bursty")
    with pytest.raises(ValueError, match="write_fraction"):
        TenantSpec(name="a", write_fraction=1.5)
    with pytest.raises(ValueError, match="limit must be >= reservation"):
        TenantSpec(name="a", reservation=0.5, limit=0.1)


def test_fleet_spec_validation():
    with pytest.raises(ValueError, match="at least one"):
        TenantFleetSpec(tenants=())
    with pytest.raises(ValueError, match="duplicate"):
        TenantFleetSpec(tenants=(TenantSpec(name="a"), TenantSpec(name="a")))
    with pytest.raises(ValueError, match="oversubscribe"):
        TenantFleetSpec(
            tenants=(
                TenantSpec(name="a", reservation=0.2),
                TenantSpec(name="b", reservation=0.2),
            ),
            qos_enabled=True,
            recovery_reservation=0.7,
        )
    # The same reservations are fine with QoS off (carried but inert).
    TenantFleetSpec(
        tenants=(
            TenantSpec(name="a", reservation=0.2),
            TenantSpec(name="b", reservation=0.2),
        ),
    )


def test_fleet_spec_round_trips_through_json_dict():
    spec = TenantFleetSpec(
        tenants=(
            TenantSpec(name="latency", interval=1.0, reservation=0.15,
                       weight=4.0, slo=SloSpec(p99_latency=0.25, window=30.0)),
            TenantSpec(name="batch", interval=0.5, arrival="poisson",
                       write_fraction=0.5, rmw_fraction=0.25, limit=0.25),
        ),
        qos_enabled=True,
        client_rate=100e6,
    )
    assert TenantFleetSpec.from_dict(spec.to_dict()) == spec


def test_legacy_equivalence_detection():
    assert TenantFleetSpec.legacy().is_legacy_equivalent()
    # An SLO may ride along without breaking equivalence (no extra draws).
    assert TenantFleetSpec.legacy(slo=SloSpec(p99_latency=1.0)).is_legacy_equivalent()
    renamed = TenantFleetSpec(tenants=(TenantSpec(name="solo"),))
    assert not renamed.is_legacy_equivalent()
    poisson = TenantFleetSpec(
        tenants=(TenantSpec(name=LEGACY_TENANT_NAME, arrival="poisson"),)
    )
    assert not poisson.is_legacy_equivalent()
    qos = TenantFleetSpec(
        tenants=(TenantSpec(name=LEGACY_TENANT_NAME),), qos_enabled=True
    )
    assert not qos.is_legacy_equivalent()


def test_fleet_qos_classes_cover_background_and_tenants():
    spec = TenantFleetSpec(
        tenants=(TenantSpec(name="a"), TenantSpec(name="b")), qos_enabled=True
    )
    names = [qos_class.name for qos_class in spec.read_classes()]
    assert names == ["recovery", "scrub", "tenant:a", "tenant:b"]
    assert tenant_class_name("a") == "tenant:a"


# -- accounting windows ---------------------------------------------------------

Sample = namedtuple("Sample", "issued_at latency bytes_read")


def test_merge_windows_coalesces_touching_intervals():
    assert merge_windows([(10.0, 20.0), (0.0, 5.0), (20.0, 30.0)]) == [
        (0.0, 5.0),
        (10.0, 30.0),
    ]
    assert merge_windows([]) == []


def test_windows_overlap():
    assert windows_overlap((5.0, 10.0), [(0.0, 6.0)])
    assert windows_overlap((5.0, 10.0), [(10.0, 20.0)])  # touching counts
    assert not windows_overlap((5.0, 10.0), [(11.0, 20.0)])
    assert not windows_overlap((5.0, 10.0), [])


def test_slo_windows_flag_p99_breaches_and_merge():
    slo = SloSpec(p99_latency=0.1, window=10.0)
    samples = [
        Sample(issued_at=1.0, latency=0.05, bytes_read=MB),   # window 0: fine
        Sample(issued_at=12.0, latency=0.5, bytes_read=MB),   # window 1: slow
        Sample(issued_at=22.0, latency=0.5, bytes_read=MB),   # window 2: slow
        Sample(issued_at=35.0, latency=0.01, bytes_read=MB),  # window 3: fine
    ]
    windows = slo_violation_windows(samples, slo, started_at=0.0, duration=40.0)
    assert windows == [(10.0, 30.0)]  # two adjacent breaches merged


def test_empty_windows_only_violate_a_throughput_floor():
    # No floor: an idle tenant cannot miss a latency bound.
    slo = SloSpec(p99_latency=0.1, window=10.0)
    assert slo_violation_windows([], slo, started_at=0.0, duration=20.0) == []
    # With a floor, empty windows are violations.
    floored = SloSpec(p99_latency=0.1, window=10.0, throughput_floor=1.0)
    assert slo_violation_windows([], floored, started_at=0.0, duration=20.0) == [
        (0.0, 20.0)
    ]


def test_slo_windows_degenerate_duration():
    slo = SloSpec(p99_latency=0.1)
    assert slo_violation_windows([], slo, started_at=0.0, duration=0.0) == []


def test_slo_spec_validation():
    with pytest.raises(ValueError):
        SloSpec(p99_latency=0.0)
    with pytest.raises(ValueError):
        SloSpec(p99_latency=1.0, throughput_floor=-1.0)
    with pytest.raises(ValueError):
        SloSpec(p99_latency=1.0, window=0.0)


# -- SLO timeline ---------------------------------------------------------------


def test_tenant_slo_timeline_rejects_empty_span():
    with pytest.raises(TimelineError):
        build_tenant_slo_timeline([("a", [])], started_at=0.0, duration=0.0)


def test_tenant_slo_timeline_reports_violators():
    timeline = build_tenant_slo_timeline(
        [("quiet", []), ("loud", [(60.0, 120.0)])],
        started_at=50.0,
        duration=600.0,
        fault_window=(55.0, 200.0),
    )
    assert timeline.violated_tenants == ["loud"]
    assert timeline.annotations()


# -- seed stability: the legacy fleet IS the old single-client path -------------


def test_legacy_fleet_digest_matches_single_client_path():
    """Byte-identical digests: tenancy must not perturb the legacy RNG."""
    profile = small_profile()
    workload = small_workload()
    faults = [FaultSpec(level="slow_device", factor=16.0)]
    gray = run_gray_experiment(
        profile, workload, faults, seed=11, fault_duration=300.0,
        load_interval=2.0, write_fraction=0.4, rmw_fraction=0.5,
    )
    tenant = run_tenant_experiment(
        profile, workload,
        TenantFleetSpec.legacy(interval=2.0, write_fraction=0.4,
                               rmw_fraction=0.5),
        faults=faults, seed=11, fault_duration=300.0,
    )
    assert tenant.digest_json() == gray.digest_json()


# -- multi-tenant experiments ---------------------------------------------------


def qos_fleet():
    return TenantFleetSpec(
        tenants=(
            TenantSpec(name="latency", interval=1.0, reservation=0.15,
                       weight=4.0, slo=SloSpec(p99_latency=0.5)),
            TenantSpec(name="batch", interval=0.5, arrival="poisson",
                       write_fraction=0.5, limit=0.25),
        ),
        qos_enabled=True,
    )


def test_multi_tenant_qos_experiment():
    outcome = run_tenant_experiment(
        small_profile(), small_workload(), qos_fleet(),
        faults=[FaultSpec(level="node", count=1)],
        seed=7, fault_duration=200.0,
    )
    assert outcome.converged
    assert [report.name for report in outcome.reports] == ["latency", "batch"]
    latency, batch = outcome.reports
    assert latency.reads_ok > 0 and latency.p99 is not None
    assert latency.slo_met is not None  # declared an SLO
    assert batch.slo_met is None  # no SLO declared
    assert batch.writes_ok > 0
    assert batch.wa_attributed > 1.0  # EC writes store more than logical
    # The schedulers drained: everything enqueued was served.
    assert outcome.fleet.qos_pending() == 0
    totals = outcome.fleet.qos_class_totals()
    assert "recovery" in totals and tenant_class_name("latency") in totals
    for counters in totals.values():
        assert counters["served"] == counters["enqueued"]
    # Fault window covers injection through settle.
    assert outcome.fault_window is not None
    start, end = outcome.fault_window
    assert start < end == outcome.finished_at
    # Digest carries per-tenant sections + QoS totals, not the legacy shape.
    digest = outcome.digest()
    assert set(digest["tenants"]) == {"latency", "batch"}
    assert "qos" in digest and "client" not in digest
    timeline = outcome.slo_timeline()
    assert {name for name, _ in timeline.tenants} == {"latency", "batch"}


def test_multi_tenant_digest_is_deterministic():
    def run_once():
        return run_tenant_experiment(
            small_profile(), small_workload(8), qos_fleet(),
            seed=3, fault_duration=100.0,
        ).digest_json()

    assert run_once() == run_once()


def test_tenant_experiment_rejects_bad_duration():
    with pytest.raises(ValueError, match="fault_duration"):
        run_tenant_experiment(
            small_profile(), small_workload(), qos_fleet(), fault_duration=0.0
        )


# -- chaos wiring ---------------------------------------------------------------


def test_campaign_spec_tenant_validation():
    fleet = qos_fleet()
    with pytest.raises(ValueError, match="tenant_duration"):
        CampaignSpec(seed=1, tenant_fleet=fleet)
    with pytest.raises(ValueError, match="exclusive"):
        CampaignSpec(
            seed=1, tenant_fleet=fleet, tenant_duration=100.0,
            write_interval=2.0, write_duration=50.0,
        )


def test_sampled_tenant_campaign_round_trips():
    spec = sample_campaign(42, tenants=True)
    assert spec.tenant_fleet is not None
    assert spec.tenant_fleet.qos_enabled
    assert {t.name for t in spec.tenant_fleet.tenants} == {
        "latency", "batch", "scan"
    }
    assert spec.tenant_duration > 0
    assert CampaignSpec.from_dict(spec.to_dict()) == spec


def test_tenant_sampling_leaves_the_legacy_stream_untouched():
    """tenants=False draws exactly what the pre-tenancy sampler drew."""
    assert sample_campaign(42) == sample_campaign(42, tenants=False)
    assert sample_campaign(42).tenant_fleet is None


def test_sampler_rejects_tenants_with_writes():
    with pytest.raises(ValueError, match="exclusive"):
        sample_campaign(42, tenants=True, writes=True)


def test_tenant_chaos_campaigns_hold_the_fairness_invariant():
    report = run_chaos(7, campaigns=2, tenants=True)
    assert report.campaigns == 2
    assert report.ok, [
        violation.to_dict()
        for result in report.failures
        for violation in result.violations
    ]
