"""The tuner's parameter-space DSL: axes, constraints, signatures."""

import pytest

from repro.core import ExperimentProfile
from repro.sim.rng import SeedSequence
from repro.tuner import (
    CategoricalAxis,
    EcVariantAxis,
    IntRangeAxis,
    LogScaleAxis,
    PowerOfTwoAxis,
    TuningSpace,
    pool_width_fits,
    stripe_unit_divides,
)

MB = 1024 * 1024

RS = ("jerasure", (("k", 9), ("m", 3)))
CLAY = ("clay", (("d", 11), ("k", 9), ("m", 3)))
WIDE_RS = ("jerasure", (("k", 20), ("m", 4)))


def small_space(base=None, constraints=()):
    return TuningSpace(
        base or ExperimentProfile(name="t"),
        axes=[
            CategoricalAxis("pg_num", (16, 256)),
            CategoricalAxis("cache_scheme", ("kv-optimized", "autotune")),
            EcVariantAxis(variants=(RS, CLAY)),
        ],
        constraints=constraints,
    )


# -- axes -----------------------------------------------------------------------


def test_categorical_axis_values_and_validation():
    axis = CategoricalAxis("cache_scheme", ("a", "b"))
    assert axis.values() == ("a", "b")
    assert axis.contains("a") and not axis.contains("c")
    with pytest.raises(ValueError, match="no values"):
        CategoricalAxis("x", ())
    with pytest.raises(ValueError, match="duplicate"):
        CategoricalAxis("x", ("a", "a"))


def test_int_range_axis():
    assert IntRangeAxis("n", 2, 8, step=3).values() == (2, 5, 8)
    with pytest.raises(ValueError):
        IntRangeAxis("n", 5, 2)


def test_power_of_two_axis():
    assert PowerOfTwoAxis("pg_num", 16, 256).values() == (16, 32, 64, 128, 256)
    assert PowerOfTwoAxis("pg_num", 3, 9).values() == (4, 8)
    with pytest.raises(ValueError, match="no powers of two"):
        PowerOfTwoAxis("pg_num", 5, 7)


def test_log_scale_axis_hits_endpoints():
    values = LogScaleAxis("stripe_unit", 4 * 1024, 64 * MB, points=5).values()
    assert values[0] == 4 * 1024
    assert values[-1] == 64 * MB
    assert list(values) == sorted(values)
    # Geometric, not linear: each step grows by a roughly constant ratio.
    ratios = [b / a for a, b in zip(values, values[1:])]
    assert max(ratios) / min(ratios) < 1.5


def test_ec_axis_requires_reserved_name():
    with pytest.raises(ValueError, match="must be named"):
        EcVariantAxis(variants=(RS,), name="codes")


# -- space geometry -------------------------------------------------------------


def test_enumerate_covers_the_grid_deterministically():
    space = small_space()
    points = space.enumerate()
    assert len(points) == 8 == space.size()
    assert points == space.enumerate()  # stable order
    signatures = {space.signature(p) for p in points}
    assert len(signatures) == 8


def test_constraints_filter_enumeration():
    # 12 OSDs on 6 hosts: width-12 codes fit the OSD count but not a
    # host failure domain; width-24 fits neither.
    base = ExperimentProfile(name="t", num_hosts=6, pg_num=16)
    space = TuningSpace(
        base,
        axes=[EcVariantAxis(variants=(RS, WIDE_RS))],
        constraints=[pool_width_fits()],
    )
    assert space.enumerate() == []
    rack_base = base.with_overrides(failure_domain="osd")
    space = TuningSpace(
        rack_base,
        axes=[EcVariantAxis(variants=(RS, WIDE_RS))],
        constraints=[pool_width_fits()],
    )
    points = space.enumerate()
    assert len(points) == 1 and points[0]["ec"][0] == "jerasure"


def test_stripe_unit_divisibility_constraint():
    base = ExperimentProfile(name="t")
    space = TuningSpace(
        base,
        axes=[CategoricalAxis("stripe_unit", (1 * MB, 3 * MB, 4 * MB))],
        constraints=[stripe_unit_divides(8 * MB)],
    )
    kept = [p["stripe_unit"] for p in space.enumerate()]
    assert kept == [1 * MB, 4 * MB]
    assert space.violated({"stripe_unit": 3 * MB}) == ["stripe-unit-divides"]


def test_violated_rejects_off_axis_values_and_unknown_axes():
    space = small_space()
    with pytest.raises(ValueError, match="not on axis"):
        space.violated({"pg_num": 17})
    with pytest.raises(KeyError, match="unknown axis"):
        space.violated({"nonsense": 1})
    with pytest.raises(ValueError, match="unknown profile field"):
        TuningSpace(ExperimentProfile(name="t"),
                    axes=[CategoricalAxis("warp_factor", (9,))])


def test_sample_is_seeded_distinct_and_valid():
    space = small_space(constraints=[pool_width_fits()])
    rng_a = SeedSequence(7).stream("sample")
    rng_b = SeedSequence(7).stream("sample")
    sample_a = space.sample(rng_a, 5)
    sample_b = space.sample(rng_b, 5)
    assert sample_a == sample_b  # deterministic per seed
    signatures = {space.signature(p) for p in sample_a}
    assert len(signatures) == 5
    assert all(space.is_valid(p) for p in sample_a)
    with pytest.raises(ValueError, match="could not sample"):
        space.sample(SeedSequence(1).stream("s"), 9)  # only 8 points exist


# -- rendering ------------------------------------------------------------------


def test_to_profile_expands_ec_axis():
    space = small_space()
    profile = space.to_profile(
        {"pg_num": 16, "cache_scheme": "autotune", "ec": CLAY}
    )
    assert profile.ec_plugin == "clay"
    assert profile.ec_params == {"k": 9, "m": 3, "d": 11}
    assert profile.pg_num == 16
    assert "clay" in profile.name and "pg_num=16" in profile.name


def test_signature_is_order_and_representation_independent():
    space = small_space()
    sig_a = space.signature({"pg_num": 16, "cache_scheme": "autotune", "ec": CLAY})
    sig_b = space.signature({"ec": CLAY, "cache_scheme": "autotune", "pg_num": 16})
    assert sig_a == sig_b
    # Partial points fill from the base profile.
    sig_partial = space.signature({"pg_num": 256})
    assert "256" in sig_partial


def test_fingerprint_survives_json_roundtrip():
    import json

    space = small_space(constraints=[pool_width_fits()])
    assert json.loads(json.dumps(space.describe())) == space.describe()
