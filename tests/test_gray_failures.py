"""Gray-failure axis: slow disks, flaky networks, flapping OSDs + defenses.

Covers the injector's three gray levels and their white-box budget
rules, the monitor's flap dampening, the client's retry/timeout/hedge
defenses, recovery's retry-under-drops behaviour, the gray experiment
driver's determinism contract, and the chaos sampler's gray rounds.
"""

import random

import pytest
from hypothesis import given, strategies as st

from repro.chaos.engine import run_chaos
from repro.chaos.invariants import check_converged
from repro.chaos.sampler import sample_campaign
from repro.cluster import (
    CACHE_SCHEMES,
    CephCluster,
    CephConfig,
    NetDegradation,
    RadosClient,
    ReadFailedError,
)
from repro.cluster.retry import DEFAULT_BACKOFF_CAP, retry_schedule
from repro.core import GRAY_LEVELS, FaultSpec, FaultToleranceError
from repro.core.fault_injector import FaultInjector
from repro.core.gray import run_gray_experiment
from repro.core.profile import ExperimentProfile
from repro.core.worker import deploy_workers
from repro.ec import ReedSolomon
from repro.sim import Environment
from repro.workload.generator import Workload

MB = 1024 * 1024


def build(num_hosts=8, osds_per_host=2, down_out=10_000.0, objects=15,
          **config_overrides):
    env = Environment()
    cluster = CephCluster(
        env,
        ReedSolomon(4, 2),
        CACHE_SCHEMES["autotune"],
        config=CephConfig(
            mon_osd_down_out_interval=down_out, **config_overrides
        ),
        num_hosts=num_hosts,
        osds_per_host=osds_per_host,
        pg_num=8,
    )
    for i in range(objects):
        cluster.ingest_object(f"o{i}", 1 * MB)
    workers = deploy_workers(cluster)
    return env, cluster, FaultInjector(cluster, workers)


# -- FaultSpec validation -------------------------------------------------------


def test_gray_spec_validation():
    with pytest.raises(ValueError, match="factor"):
        FaultSpec(level="slow_device", factor=1.0)
    with pytest.raises(ValueError):
        FaultSpec(level="net_degrade")  # degrades nothing
    with pytest.raises(ValueError):
        FaultSpec(level="net_degrade", loss=1.5)
    with pytest.raises(ValueError):
        FaultSpec(level="net_degrade", loss=0.1, colocation="same_host")
    with pytest.raises(ValueError, match="flap"):
        FaultSpec(level="flap", flap_interval=0.0)
    # Valid specs of each gray level construct fine.
    FaultSpec(level="slow_device", factor=16.0)
    FaultSpec(level="net_degrade", partition=True)
    FaultSpec(level="net_degrade", loss=0.2, latency=0.002)
    FaultSpec(level="flap", flap_interval=30.0)


# -- injector: slow_device ------------------------------------------------------


def test_slow_device_inflates_service_time_and_stays_up():
    env, cluster, injector = build()
    [victim] = injector.inject(FaultSpec(level="slow_device", factor=16.0))
    disk = cluster.osds[victim].disk
    assert disk.slow_factor == 16.0
    assert cluster.osds[victim].is_up()
    assert injector.slowed_osds == {victim}
    # Slow devices consume no crash budget: m = 2 node faults still fit.
    injector.inject(FaultSpec(level="node", count=2))
    with pytest.raises(FaultToleranceError):
        injector.inject(FaultSpec(level="node", count=1))


def test_slow_device_cannot_be_slowed_twice():
    env, cluster, injector = build()
    [victim] = injector.inject(FaultSpec(level="slow_device", factor=4.0))
    with pytest.raises(ValueError, match="already slowed"):
        injector.inject(
            FaultSpec(level="slow_device", factor=8.0, targets=[victim])
        )


def test_slow_device_restore_resets_speed():
    env, cluster, injector = build()
    [victim] = injector.inject(FaultSpec(level="slow_device", factor=16.0))
    injector.restore_all()
    assert cluster.osds[victim].disk.slow_factor == 1.0
    assert injector.slowed_osds == set()


def test_slow_device_never_marked_down():
    env, cluster, injector = build()
    env.run(until=50)
    injector.inject(FaultSpec(level="slow_device", factor=16.0))
    env.run(until=650)
    # A slow disk still heartbeats: the failure detector must stay quiet.
    assert cluster.monitor.markdowns_total == 0
    assert not cluster.monitor.down_since


# -- injector: net_degrade ------------------------------------------------------


def test_net_degrade_counts_against_tolerance():
    env, cluster, injector = build()
    affected = injector.inject(FaultSpec(level="net_degrade", loss=0.2))
    assert len(affected) == 2  # whole host: both its OSDs
    host = cluster.topology.osds[affected[0]].host_id
    assert cluster.topology.hosts[host].nic.degradation is not None
    injector.inject(FaultSpec(level="node", count=1))
    with pytest.raises(FaultToleranceError):
        injector.inject(FaultSpec(level="node", count=1))


def test_net_degrade_partition_detected_by_silence_and_heals():
    env, cluster, injector = build()
    env.run(until=50)
    affected = injector.inject(FaultSpec(level="net_degrade", partition=True))
    env.run(until=200)
    # No heartbeats cross a partition: the monitor marks the host down.
    assert set(affected) <= set(cluster.monitor.down_since)
    injector.restore_all()
    host = cluster.topology.osds[affected[0]].host_id
    assert cluster.topology.hosts[host].nic.degradation is None
    env.run(until=300)
    assert not cluster.monitor.down_since


# -- injector: flap -------------------------------------------------------------


def test_flap_oscillates_daemon_and_restore_stops_it():
    env, cluster, injector = build()
    env.run(until=10)
    [victim] = injector.inject(FaultSpec(level="flap", flap_interval=10.0))
    assert victim in injector.injected_osds  # costs a tolerance slot
    env.run(until=100)
    host = cluster.topology.osds[victim].host_id
    log = cluster.host_logs[host]
    downs = [r for r in log.records if "flapped down" in r.message]
    ups = [r for r in log.records if "flapped up" in r.message]
    assert downs and ups
    injector.restore_all()
    assert cluster.osds[victim].daemon_up
    count = len([r for r in log.records if "flapped" in r.message])
    env.run(until=200)
    after = len([r for r in log.records if "flapped" in r.message])
    assert after == count  # oscillation stopped


def test_same_instant_flap_inject_and_restore_leaves_daemon_up():
    # Regression: the flap loop's first down-phase runs *after* a
    # same-instant restore() already re-raised the daemon (the loop
    # process bootstraps at the current instant, the interrupt lands
    # behind it).  The interrupt handler must re-raise the daemon or
    # the OSD stays down forever with nothing left to restore it.
    env, cluster, injector = build()
    env.run(until=10)
    [victim] = injector.inject(FaultSpec(level="flap", flap_interval=10.0))
    injector.restore_all()  # same sim instant — no env.run in between
    env.run(until=200)
    assert cluster.osds[victim].daemon_up
    assert cluster.osds[victim].is_up()
    assert not cluster.monitor.down_since


def test_flap_dampening_pins_then_converges():
    env, cluster, injector = build(
        down_out=60.0, mon_osd_markdown_count=3, mon_osd_markdown_pin=120.0
    )
    env.run(until=50)
    [victim] = injector.inject(FaultSpec(level="flap", flap_interval=15.0))
    env.run(until=1500)
    assert cluster.monitor.markdowns_total >= 3
    assert cluster.monitor.pins_total >= 1
    injector.restore_all()
    env.run(until=2200)  # pins expire (<= 120 s), heartbeats mark back up
    assert not cluster.monitor.active_pins()
    assert not cluster.monitor.down_since
    assert not cluster.monitor.out_osds


def test_gray_selection_is_deterministic():
    _, _, injector_a = build()
    _, _, injector_b = build()
    for level in ("slow_device", "net_degrade", "flap"):
        spec = (
            FaultSpec(level=level, loss=0.2)
            if level == "net_degrade"
            else FaultSpec(level=level)
        )
        assert injector_a.inject(spec) == injector_b.inject(spec)
        injector_a.restore_all()
        injector_b.restore_all()


# -- monitor: seeded heartbeat phase offsets (regression) -----------------------


def test_heartbeat_phase_offsets_pin_detection_times():
    times = {}
    for attempt in range(2):
        env, cluster, _ = build()
        env.run(until=100)
        for osd_id in cluster.topology.hosts[2].osd_ids:
            cluster.osds[osd_id].host_running = False
        env.run(until=200)
        times[attempt] = dict(cluster.monitor.down_since)
    # Byte-identical across same-seed runs, inside the grace window...
    assert times[0] == times[1]
    assert len(times[0]) == 2
    grace = cluster.config.osd_heartbeat_grace
    for t in times[0].values():
        assert 100 + grace <= t <= 100 + grace + 40
    # ...and the seeded per-OSD phases are distinct and bounded by the
    # interval, so heartbeats never arrive in lockstep (the old bug:
    # every loop started at t=0 and beat in perfect phase).
    phases = cluster.monitor._phase
    assert len(set(phases.values())) == len(phases)
    interval = cluster.config.osd_heartbeat_interval
    assert all(0.0 <= p < interval for p in phases.values())


# -- retry policy (hypothesis) --------------------------------------------------


@given(
    seed=st.integers(0, 2**32 - 1),
    attempts=st.integers(0, 12),
    base=st.floats(0.05, 5.0),
)
def test_retry_schedule_monotone_bounded_deterministic(seed, attempts, base):
    schedule = retry_schedule(attempts, base, random.Random(seed))
    again = retry_schedule(attempts, base, random.Random(seed))
    assert schedule == again  # byte-identical for a fixed seed
    assert len(schedule) == attempts  # bounded by the retry budget
    assert all(delay <= DEFAULT_BACKOFF_CAP for delay in schedule)
    assert all(b >= a for a, b in zip(schedule, schedule[1:]))  # monotone


def test_retry_schedule_validation():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        retry_schedule(-1, 0.25, rng)
    with pytest.raises(ValueError):
        retry_schedule(3, 0.0, rng)
    with pytest.raises(ValueError):
        retry_schedule(3, 0.25, rng, cap=0.0)


# -- client defenses ------------------------------------------------------------


def test_client_exhausts_retry_budget_against_partitioned_shard():
    env, cluster, _ = build(client_retry_max=3)
    client = RadosClient(cluster)
    pg = cluster.pool.pg_of("o3")
    host = cluster.topology.osds[pg.acting[0]].host_id
    cluster.topology.hosts[host].nic.degrade(NetDegradation(partition=True))
    with pytest.raises(ReadFailedError, match="gave up after 4 attempts"):
        env.run_until_process(client.read_object("o3"))
    assert client.stats.retries == 3
    assert client.stats.reads_failed == 1
    assert client.stats.drops_seen >= 4  # one refused transfer per attempt


def test_hedged_read_rescues_straggler_and_accounts_waste():
    env, cluster, _ = build(client_hedge_delay=0.05)
    client = RadosClient(cluster)
    pg = cluster.pool.pg_of("o3")
    obj = next(o for o in pg.objects if o.name == "o3")
    cluster.osds[pg.acting[0]].disk.set_slow_factor(1000.0)
    ledger_before = cluster.ledger.device_bytes
    sample = env.run_until_process(client.read_object("o3"))
    assert sample.hedged
    assert sample.attempts == 1
    # One hedge for the straggling shard; the spare copy won the race.
    assert client.stats.hedges_issued == 1
    assert client.stats.hedges_won == 1
    # No double counting: the sample carries the object's bytes once and
    # the duplicate fetch lands in hedge waste, not in the WA ledger.
    assert sample.bytes_read == obj.size
    assert client.stats.hedge_wasted_bytes == obj.layout.chunk_stored_bytes
    assert cluster.ledger.device_bytes == ledger_before


def test_unhedged_read_waits_for_straggler():
    env, cluster, _ = build()
    client = RadosClient(cluster)
    pg = cluster.pool.pg_of("o3")
    cluster.osds[pg.acting[0]].disk.set_slow_factor(1000.0)
    sample = env.run_until_process(client.read_object("o3"))
    assert not sample.hedged
    assert client.stats.hedges_issued == 0
    assert sample.latency > 1.0  # stuck behind the x1000 slow disk


def test_healthy_reads_draw_nothing_from_defense_rngs():
    env, cluster, _ = build(
        client_op_timeout=30.0, client_hedge_delay=5.0, client_retry_max=5
    )
    client = RadosClient(cluster)
    for name in ("o1", "o2", "o3"):
        env.run_until_process(client.read_object(name))
    assert client.stats.retries == 0
    assert client.stats.timeouts == 0
    assert client.stats.hedges_issued == 0
    assert client.stats.redirects == 0


# -- recovery under gray faults -------------------------------------------------


def test_recovery_retries_through_lossy_network_and_converges():
    env, cluster, injector = build(down_out=30.0, objects=20)
    env.run(until=20)
    injector.inject(FaultSpec(level="net_degrade", loss=0.4))
    [victim] = injector.inject(FaultSpec(level="device", count=1))
    env.run(until=3000)
    stats = cluster.recovery.stats
    assert cluster.topology.fabric.drops > 0
    # Dropped pulls/pushes cost retries, but the seeded backoff loop
    # pushes recovery through (or abandons cleanly — never wedges).
    assert stats.op_retries > 0 or stats.ops_abandoned > 0
    assert cluster.recovery.idle
    injector.restore_all()
    env.run(until=3400)
    assert all(osd.is_up() for osd in cluster.osds.values())


# -- the gray experiment driver -------------------------------------------------


def _profile(**ceph_overrides):
    return ExperimentProfile(
        name="gray-test",
        ec_plugin="jerasure",
        ec_params={"k": 4, "m": 2},
        pg_num=8,
        stripe_unit=1 * MB,
        num_hosts=8,
        osds_per_host=2,
        ceph=CephConfig(**ceph_overrides),
    )


def test_gray_experiment_slow_device_converges_without_markdown():
    outcome = run_gray_experiment(
        _profile(),
        Workload(num_objects=12, object_size=1 * MB),
        [FaultSpec(level="slow_device", factor=16.0)],
        seed=3,
        fault_duration=300.0,
    )
    assert outcome.slowed_osds and outcome.markdowns == 0
    assert outcome.converged and outcome.health == "HEALTH_OK"
    assert outcome.read_stats.count > 0 and outcome.read_stats.failures == 0


def test_gray_experiment_flap_produces_timeline_and_digest_is_stable():
    def run():
        return run_gray_experiment(
            _profile(mon_osd_markdown_count=3),
            Workload(num_objects=12, object_size=1 * MB),
            [FaultSpec(level="flap", flap_interval=15.0)],
            seed=5,
            fault_duration=900.0,
        )

    outcome = run()
    assert outcome.pins >= 1 and outcome.converged
    timeline = outcome.flap_timeline
    assert timeline is not None
    assert timeline.markdowns_before_pin >= 3
    assert timeline.thrash_period >= 0
    assert run().digest_json() == outcome.digest_json()


# -- chaos integration ----------------------------------------------------------


def test_sampler_levels_filter_restricts_draws():
    for seed in range(12):
        spec = sample_campaign(seed, levels=GRAY_LEVELS)
        injects = [a for a in spec.actions if a.kind == "inject"]
        assert injects, "gray-only campaigns must still schedule faults"
        assert all(a.level in GRAY_LEVELS for a in injects)
        assert spec.actions[-1].kind == "restore"


def test_sampler_rejects_bad_levels():
    with pytest.raises(ValueError, match="unknown fault levels"):
        sample_campaign(0, levels=("bogus",))
    with pytest.raises(ValueError, match="at least one"):
        sample_campaign(0, levels=())


def test_default_sampler_draws_every_gray_level():
    seen = set()
    for seed in range(60):
        for action in sample_campaign(seed).actions:
            if action.kind == "inject":
                seen.add(action.level)
    assert set(GRAY_LEVELS) <= seen


def test_gray_action_round_trips_through_json():
    spec = sample_campaign(11, levels=GRAY_LEVELS)
    from repro.chaos.campaign import CampaignSpec

    assert CampaignSpec.from_dict(spec.to_dict()) == spec


@pytest.mark.chaos
def test_gray_only_chaos_batch_converges():
    report = run_chaos(5, 3, levels=GRAY_LEVELS)
    assert report.ok
    assert report.passed + report.invalid == 3


def test_converged_check_flags_pin_leak():
    env, cluster, _ = build()
    cluster.monitor.pinned_until[3] = env.now + 500.0
    violations = check_converged(cluster)
    assert any("pins still active" in v.detail for v in violations)
