"""Failure-path behaviour: toofull targets, unplaceable PGs, cascades."""

import pytest

from repro.cluster import CACHE_SCHEMES, CephCluster, CephConfig, DiskSpec
from repro.cluster.devices import GP_SSD
from repro.ec import ReedSolomon
from repro.sim import Environment

MB = 1024 * 1024


def tiny_disk_spec(capacity_mb: int) -> DiskSpec:
    return DiskSpec(
        name="tiny",
        capacity_bytes=capacity_mb * MB,
        read_bandwidth=GP_SSD.read_bandwidth,
        write_bandwidth=GP_SSD.write_bandwidth,
        read_iops=GP_SSD.read_iops,
        write_iops=GP_SSD.write_iops,
        latency=GP_SSD.latency,
    )


def build(num_hosts=8, pg_num=8, disk_spec=GP_SSD, osds_per_host=2):
    env = Environment()
    cluster = CephCluster(
        env,
        ReedSolomon(4, 2),
        CACHE_SCHEMES["autotune"],
        config=CephConfig(mon_osd_down_out_interval=30.0),
        num_hosts=num_hosts,
        osds_per_host=osds_per_host,
        pg_num=pg_num,
        disk_spec=disk_spec,
    )
    return env, cluster


def fail_host(cluster, host_id):
    for osd_id in cluster.topology.hosts[host_id].osd_ids:
        cluster.osds[osd_id].host_running = False


def test_backfill_toofull_leaves_shard_degraded_without_crashing():
    env, cluster = build(disk_spec=tiny_disk_spec(150), pg_num=32)
    for i in range(60):
        cluster.ingest_object(f"o{i}", 8 * MB)
    env.run(until=10)
    victim = cluster.topology.osds[
        next(pg for pg in cluster.pool.pgs.values() if pg.objects).acting[0]
    ].host_id
    # Pre-fill every surviving disk to ~98%: no target has headroom for
    # a rebuilt 2 MB chunk, exactly Ceph's backfill_toofull situation.
    for osd in cluster.osds.values():
        if osd.device.host_id == victim:
            continue
        ballast = int(osd.disk.spec.capacity_bytes * 0.98) - osd.disk.used_bytes
        if ballast > 0:
            osd.disk.allocate(ballast)
    fail_host(cluster, victim)
    done = cluster.recovery.wait_all_recovered()
    env.run(until=3000)
    assert done.triggered
    stats = cluster.recovery.stats
    assert stats.chunks_toofull > 0
    assert any(
        "backfill toofull" in record.message for record in cluster.mon_log
    )
    # No disk exceeded its capacity.
    for osd in cluster.osds.values():
        assert osd.disk.used_bytes <= osd.disk.spec.capacity_bytes


def test_unplaceable_pg_reported_not_hung():
    """With exactly n failure-domain buckets, losing one leaves the PG
    with nowhere to go: it must be reported degraded, not deadlock."""
    env, cluster = build(num_hosts=6, pg_num=2)  # width 6 == hosts
    cluster.ingest_object("o", 8 * MB)
    env.run(until=10)
    pg = cluster.pool.pg_of("o")
    fail_host(cluster, cluster.topology.osds[pg.acting[0]].host_id)
    done = cluster.recovery.wait_all_recovered()
    env.run(until=2000)
    assert done.triggered
    assert cluster.recovery.stats.pgs_unplaceable >= 1
    assert any(
        "no placement" in record.message for record in cluster.mon_log
    )


def test_cascading_second_failure_during_recovery():
    """A second host failure after recovery began still converges."""
    env, cluster = build(num_hosts=10, pg_num=16)
    for i in range(60):
        cluster.ingest_object(f"o{i}", 8 * MB)
    env.run(until=10)
    pg = next(pg for pg in cluster.pool.pgs.values() if pg.objects)
    first = cluster.topology.osds[pg.acting[0]].host_id
    second = cluster.topology.osds[pg.acting[1]].host_id
    fail_host(cluster, first)
    env.run(until=80)  # first failure is out, recovery underway
    fail_host(cluster, second)
    done = cluster.recovery.wait_all_recovered()
    env.run(until=20_000)
    assert done.triggered
    stats = cluster.recovery.stats
    assert stats.pgs_recovered + stats.pgs_unplaceable == stats.pgs_queued
    # Both hosts' OSDs are out of every acting set.
    dead = set(cluster.topology.hosts[first].osd_ids)
    dead |= set(cluster.topology.hosts[second].osd_ids)
    for pg in cluster.pool.pgs.values():
        assert not dead & set(pg.acting)


def test_recovery_restores_full_redundancy_accounting():
    """After recovery, cluster-wide chunk count matches pre-failure."""
    env, cluster = build(num_hosts=10, pg_num=8)
    for i in range(40):
        cluster.ingest_object(f"o{i}", 8 * MB)
    expected_chunks = 40 * cluster.pool.code.n
    before = sum(o.backend.num_chunks for o in cluster.osds.values())
    assert before == expected_chunks
    env.run(until=10)
    victim = cluster.topology.osds[
        next(pg for pg in cluster.pool.pgs.values() if pg.objects).acting[0]
    ].host_id
    dead_osds = set(cluster.topology.hosts[victim].osd_ids)
    lost_chunks = sum(cluster.osds[o].backend.num_chunks for o in dead_osds)
    fail_host(cluster, victim)
    done = cluster.recovery.wait_all_recovered()
    env.run(until=5000)
    assert done.triggered
    alive_chunks = sum(
        o.backend.num_chunks
        for osd_id, o in cluster.osds.items()
        if osd_id not in dead_osds
    )
    # Every lost chunk was rebuilt somewhere among the survivors.
    assert alive_chunks == expected_chunks
    assert cluster.recovery.stats.chunks_rebuilt == lost_chunks
