"""Property tests: any tolerable corruption is detected and repaired.

For every code family the repo models, corrupting up to
``fault_tolerance()`` chunks of a stripe with any of the three
corruption models must (a) trip the per-block crc32c checksums on every
damaged chunk and (b) be repairable bit-identically by decoding from the
clean chunks — the invariant the scrub subsystem's auto-repair relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.objectstore import block_checksums, crc32c
from repro.ec import (
    ClayCode,
    LocallyRepairableCode,
    ReedSolomon,
    ShingledErasureCode,
)

CSUM_BLOCK = 512

CODES = {
    "rs": lambda: ReedSolomon(4, 2),
    "clay": lambda: ClayCode(4, 2),
    "lrc": lambda: LocallyRepairableCode(4, 2, 2),
    "shec": lambda: ShingledErasureCode(8, 4, 5),
}

MODELS = ("bit_rot", "torn_write", "misdirected_write")


def _corrupt(chunks, shard, model, draw):
    """Damage one chunk's bytes; returns the corrupted copy."""
    buf = bytearray(chunks[shard])
    if model == "bit_rot":
        bit = draw(st.integers(min_value=0, max_value=len(buf) * 8 - 1))
        buf[bit // 8] ^= 1 << (bit % 8)
    elif model == "torn_write":
        start = draw(st.integers(min_value=0, max_value=len(buf) - 1))
        for i in range(start, len(buf)):
            buf[i] = 0
    else:  # misdirected_write: another chunk's bytes land here
        donor = chunks[(shard + 1) % len(chunks)]
        buf = bytearray(donor[: len(buf)].ljust(len(buf), b"\0"))
    if bytes(buf) == chunks[shard]:
        buf[0] ^= 0xFF  # the draw happened to be a no-op; force damage
    return bytes(buf)


@pytest.mark.parametrize("family", sorted(CODES))
@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_tolerable_corruption_always_detected_and_repaired(family, data):
    code = CODES[family]()
    payload = data.draw(st.binary(min_size=1, max_size=2048))
    chunks = [
        np.asarray(chunk, dtype=np.uint8).tobytes() for chunk in code.encode(payload)
    ]
    expected = [block_checksums(chunk, CSUM_BLOCK) for chunk in chunks]

    count = data.draw(st.integers(min_value=1, max_value=code.fault_tolerance()))
    shards = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=code.n - 1),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    model = data.draw(st.sampled_from(MODELS))
    corrupted = {shard: _corrupt(chunks, shard, model, data.draw) for shard in shards}

    # (a) detection: every damaged chunk fails its stored checksums.
    for shard in shards:
        assert block_checksums(corrupted[shard], CSUM_BLOCK) != expected[shard]

    # (b) repair: decoding from the clean chunks is bit-identical.
    available = {
        index: np.frombuffer(chunks[index], dtype=np.uint8)
        for index in range(code.n)
        if index not in corrupted
    }
    decoded = code.decode_chunks(available, sorted(corrupted))
    for shard in shards:
        repaired = np.asarray(decoded[shard], dtype=np.uint8).tobytes()
        assert repaired == chunks[shard]
        assert block_checksums(repaired, CSUM_BLOCK) == expected[shard]


@settings(max_examples=50, deadline=None)
@given(
    head=st.binary(max_size=512),
    tail=st.binary(max_size=512),
)
def test_crc32c_streams(head, tail):
    # Continuing a crc from a prefix equals checksumming the whole buffer.
    assert crc32c(tail, crc32c(head)) == crc32c(head + tail)
