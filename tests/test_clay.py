"""Clay codes: geometry, coupling, layered decode, and optimal repair."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ec import ClayCode, InsufficientChunksError


@pytest.fixture(scope="module")
def clay_small():
    return ClayCode(2, 2)  # q=2, t=2, alpha=4


@pytest.fixture(scope="module")
def clay_paper():
    return ClayCode(9, 3, d=11)  # the paper's Clay(12,9,11)


# -- construction & geometry ---------------------------------------------------


def test_paper_parameters(clay_paper):
    assert (clay_paper.n, clay_paper.k, clay_paper.d) == (12, 9, 11)
    assert clay_paper.q == 3
    assert clay_paper.t == 4
    assert clay_paper.alpha == 81
    assert clay_paper.beta == 27
    assert clay_paper.sub_chunk_count == 81


def test_default_d_is_n_minus_1():
    clay = ClayCode(2, 2)
    assert clay.d == 3


def test_invalid_d_rejected():
    with pytest.raises(ValueError):
        ClayCode(9, 3, d=12)  # d > n-1
    with pytest.raises(ValueError):
        ClayCode(9, 3, d=8)  # d < k


def test_q_must_divide_n():
    # k=3, m=2 -> n=5, d=4 -> q=2 does not divide 5.
    with pytest.raises(ValueError, match="divide"):
        ClayCode(3, 2)


def test_gamma_validation():
    with pytest.raises(ValueError):
        ClayCode(2, 2, d=2, gamma=1)


def test_node_coords_roundtrip(clay_paper):
    for node in range(clay_paper.n):
        x, y = clay_paper.node_coords(node)
        assert 0 <= x < clay_paper.q
        assert 0 <= y < clay_paper.t
        assert clay_paper.coords_node(x, y) == node
    with pytest.raises(ValueError):
        clay_paper.node_coords(12)


def test_planes_count_and_index(clay_small):
    planes = clay_small.planes()
    assert len(planes) == clay_small.alpha
    indices = [clay_small.plane_index(z) for z in planes]
    assert indices == sorted(indices) == list(range(clay_small.alpha))


def test_companion_is_involution(clay_paper):
    for z in clay_paper.planes()[:10]:
        for node in range(clay_paper.n):
            x, y = clay_paper.node_coords(node)
            if clay_paper.is_unpaired(x, y, z):
                continue
            cx, cy, cz = clay_paper.companion(x, y, z)
            assert cy == y
            back = clay_paper.companion(cx, cy, cz)
            assert back == (x, y, z)


def test_intersection_score_bounds(clay_small):
    erased = [0, 3]
    scores = [clay_small.intersection_score(z, erased) for z in clay_small.planes()]
    assert min(scores) >= 0
    assert max(scores) <= len(erased)
    # Every score class 0..e must be populated for a spanning erasure set.
    assert set(scores) == {0, 1, 2}


def test_repair_plane_count(clay_paper):
    for node in range(clay_paper.n):
        planes = clay_paper.repair_plane_indices(node)
        assert len(planes) == clay_paper.beta
        assert planes == sorted(planes)


# -- encode/decode --------------------------------------------------------------


def test_encode_chunk_alignment(clay_small):
    chunks = clay_small.encode(b"z" * 37)
    assert len(chunks) == 4
    for chunk in chunks:
        assert len(chunk) % clay_small.alpha == 0


def test_exhaustive_decode_small():
    clay = ClayCode(2, 2)
    rng = np.random.default_rng(5)
    data = rng.integers(0, 256, 161, dtype=np.uint8).tobytes()
    chunks = clay.encode(data)
    for count in (1, 2):
        for erased in itertools.combinations(range(4), count):
            available = {i: chunks[i] for i in range(4) if i not in erased}
            rebuilt = clay.decode_chunks(available, list(erased))
            for idx in erased:
                assert np.array_equal(rebuilt[idx], chunks[idx])
            assert clay.decode(available, len(data)) == data


def test_decode_medium_clay_6_4():
    clay = ClayCode(4, 2)  # q=2, t=3, alpha=8
    rng = np.random.default_rng(6)
    data = rng.integers(0, 256, 1000, dtype=np.uint8).tobytes()
    chunks = clay.encode(data)
    for erased in itertools.combinations(range(6), 2):
        available = {i: chunks[i] for i in range(6) if i not in erased}
        rebuilt = clay.decode_chunks(available, list(erased))
        for idx in erased:
            assert np.array_equal(rebuilt[idx], chunks[idx])


def test_paper_clay_multi_failure_decode(clay_paper):
    rng = np.random.default_rng(7)
    data = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
    chunks = clay_paper.encode(data)
    for erased in [(0,), (11,), (0, 6), (2, 5, 9), (9, 10, 11)]:
        available = {i: chunks[i] for i in range(12) if i not in erased}
        rebuilt = clay_paper.decode_chunks(available, list(erased))
        for idx in erased:
            assert np.array_equal(rebuilt[idx], chunks[idx])


def test_decode_insufficient_chunks(clay_small):
    chunks = clay_small.encode(b"payload!")
    with pytest.raises(InsufficientChunksError):
        clay_small.decode_chunks({0: chunks[0]}, [1, 2, 3])


def test_decode_misaligned_chunk_rejected(clay_small):
    bad = {i: np.zeros(7, dtype=np.uint8) for i in range(3)}
    with pytest.raises(ValueError, match="multiple of alpha"):
        clay_small.decode_chunks(bad, [3])


@settings(max_examples=15, deadline=None)
@given(data=st.binary(min_size=1, max_size=600))
def test_property_roundtrip_random_data(data):
    clay = ClayCode(2, 2)
    chunks = clay.encode(data)
    available = {i: chunks[i] for i in (1, 3)}  # lose one data, one parity
    assert clay.decode(available, len(data)) == data


# -- optimal single-node repair -----------------------------------------------------


def _repair_inputs(clay, chunks, lost):
    planes = clay.repair_plane_indices(lost)
    return {
        node: chunks[node].reshape(clay.alpha, -1)[planes]
        for node in range(clay.n)
        if node != lost
    }


def test_repair_every_node_small(clay_small):
    rng = np.random.default_rng(8)
    data = rng.integers(0, 256, 128, dtype=np.uint8).tobytes()
    chunks = clay_small.encode(data)
    for lost in range(clay_small.n):
        rebuilt = clay_small.repair_chunk(lost, _repair_inputs(clay_small, chunks, lost))
        assert np.array_equal(rebuilt, chunks[lost])


def test_repair_every_node_paper(clay_paper):
    rng = np.random.default_rng(9)
    data = rng.integers(0, 256, 2 * 81 * 9, dtype=np.uint8).tobytes()
    chunks = clay_paper.encode(data)
    for lost in range(clay_paper.n):
        rebuilt = clay_paper.repair_chunk(lost, _repair_inputs(clay_paper, chunks, lost))
        assert np.array_equal(rebuilt, chunks[lost])


def test_repair_needs_all_helpers(clay_small):
    chunks = clay_small.encode(b"x" * 64)
    helpers = _repair_inputs(clay_small, chunks, 0)
    del helpers[2]
    with pytest.raises(InsufficientChunksError):
        clay_small.repair_chunk(0, helpers)


def test_repair_reads_beta_per_helper(clay_paper):
    """The MSR bandwidth optimum: beta = alpha/q sub-chunks per helper."""
    plan = clay_paper.repair_plan([4], [i for i in range(12) if i != 4])
    assert plan.helpers == clay_paper.d == 11
    for read in plan.reads:
        assert read.fraction == pytest.approx(1.0 / clay_paper.q)
    # Total traffic: d * beta / alpha = 11/3 chunks vs 9 chunks for RS.
    assert plan.read_fraction_total() == pytest.approx(11 / 3)
    assert plan.read_fraction_total() < 9.0


def test_multi_failure_plan_reads_plane_union(clay_paper):
    alive = [i for i in range(12) if i not in (3, 7)]
    plan = clay_paper.repair_plan([3, 7], alive)
    assert plan.helpers == 10
    # Union of two repair-plane sets: 1 - (1 - 1/q)^2 = 5/9 of each chunk.
    for read in plan.reads:
        assert read.fraction == pytest.approx(5 / 9)
    assert plan.read_fraction_total() == pytest.approx(10 * 5 / 9)


def test_repair_bandwidth_advantage_fades_with_failures(clay_paper):
    """The §4.2 trend: Clay/RS read ratio climbs toward 1 as f grows."""
    ratios = []
    for lost in ([3], [3, 7], [3, 7, 11]):
        alive = [i for i in range(12) if i not in lost]
        plan = clay_paper.repair_plan(lost, alive)
        ratios.append(plan.read_fraction_total() / 9.0)
    assert ratios[0] < ratios[1] < ratios[2]
    assert ratios[0] == pytest.approx(11 / 27)
    assert ratios[2] == pytest.approx(9 * (19 / 27) / 9)


def test_repair_plan_single_with_too_few_helpers_degrades(clay_paper):
    """With fewer than d survivors the plan falls back to full reads."""
    alive = list(range(9))  # 9 survivors < d=11
    plan = clay_paper.repair_plan([9], alive)
    assert all(read.fraction == 1.0 for read in plan.reads)


def test_repair_io_ops_reflect_scatter(clay_paper):
    """Sub-chunk reads are scattered: more than one contiguous run for
    most failed nodes (y0 > 0 gives q^{t-1-y0}... runs vary by node)."""
    runs = []
    for node in range(clay_paper.n):
        plan = clay_paper.repair_plan(
            [node], [i for i in range(12) if i != node]
        )
        runs.append(plan.reads[0].io_ops)
    assert max(runs) > 1
    assert all(r >= 1 for r in runs)


def test_gamma_autosearch_produces_invertible_systems():
    """Every constructible Clay code must pass its own repair validation."""
    for (k, m) in [(2, 2), (4, 2), (9, 3), (6, 3)]:
        clay = ClayCode(k, m)
        assert clay.gamma not in (0, 1)
        assert len(clay._repair_inverse) == clay.n
