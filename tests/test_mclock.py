"""mClock QoS scheduler: tag algebra, reservations, limits, fairness.

Property tests (hypothesis) pin the scheduler's contract: tags are
monotone per class, a nonzero reservation is never starved under
saturating competition, the server is work-conserving while backlogged,
limits cap a class's share, and dispatch is byte-deterministic.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Environment
from repro.tenancy.mclock import MClockScheduler, QosClass

costs = st.floats(min_value=0.01, max_value=2.0,
                  allow_nan=False, allow_infinity=False)


def saturate(scheduler, name, total_work, cost):
    """Queue enough ``cost``-second jobs to cover ``total_work`` seconds."""
    for _ in range(math.ceil(total_work / cost)):
        scheduler.submit(name, cost)


# -- QosClass validation --------------------------------------------------------


def test_qos_class_validation():
    with pytest.raises(ValueError, match="non-empty"):
        QosClass(name="")
    with pytest.raises(ValueError, match="reservation"):
        QosClass(name="a", reservation=-0.1)
    with pytest.raises(ValueError, match="limit"):
        QosClass(name="a", limit=-1.0)
    with pytest.raises(ValueError, match="limit must be >= reservation"):
        QosClass(name="a", reservation=0.5, limit=0.2)
    with pytest.raises(ValueError, match="weight"):
        QosClass(name="a", weight=0.0)
    # limit=0 means unlimited, so it never conflicts with a reservation.
    QosClass(name="a", reservation=0.5, limit=0.0)


def test_scheduler_rejects_bad_inputs():
    env = Environment()
    with pytest.raises(ValueError, match="client_rate"):
        MClockScheduler(env, client_rate=0.0)
    with pytest.raises(ValueError, match="duplicate"):
        MClockScheduler(env, classes=(QosClass("a"), QosClass("a")))
    scheduler = MClockScheduler(env)
    with pytest.raises(ValueError, match="negative"):
        scheduler.submit("a", -1.0)


def test_unknown_class_is_admitted_with_defaults():
    env = Environment()
    scheduler = MClockScheduler(env, classes=(QosClass("known"),))
    done = scheduler.submit("surprise", 0.5)
    env.run(until=2.0)
    assert done.triggered
    assert scheduler.classes["surprise"].served == 1


def test_client_cost_converts_bytes_to_service_time():
    env = Environment()
    scheduler = MClockScheduler(env, client_rate=100e6)
    assert scheduler.client_cost(50_000_000) == pytest.approx(0.5)


# -- tag monotonicity -----------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    job_costs=st.lists(costs, min_size=2, max_size=20),
    reservation=st.floats(min_value=0.05, max_value=1.0),
    limit=st.sampled_from([0.0, 1.0, 2.0]),
)
def test_tags_are_monotone_per_class(job_costs, reservation, limit):
    env = Environment()
    scheduler = MClockScheduler(
        env,
        classes=(
            QosClass("a", reservation=reservation, weight=1.5, limit=limit),
        ),
    )
    for cost in job_costs:
        scheduler.submit("a", cost)
    queued = list(scheduler._classes["a"].queue)
    assert len(queued) == len(job_costs)
    for prev, job in zip(queued, queued[1:]):
        assert job.r_tag >= prev.r_tag
        assert job.p_tag >= prev.p_tag
        assert job.l_tag >= prev.l_tag
        assert job.seqno > prev.seqno


# -- reservations: no starvation ------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    reservation=st.sampled_from([0.1, 0.25, 0.5]),
    cost=st.sampled_from([0.25, 0.5, 1.0]),
    hog_weight=st.sampled_from([1.0, 10.0, 100.0]),
)
def test_nonzero_reservation_is_never_starved(reservation, cost, hog_weight):
    """A backlogged class with reservation r gets >= r of the server.

    The competing class holds an arbitrarily large weight but no
    reservation, so only the constraint phase protects the reserved
    class.
    """
    horizon = 40.0
    env = Environment()
    scheduler = MClockScheduler(
        env,
        classes=(
            QosClass("reserved", reservation=reservation, weight=1.0),
            QosClass("hog", weight=hog_weight),
        ),
    )
    saturate(scheduler, "reserved", horizon * reservation + 4 * cost, cost)
    saturate(scheduler, "hog", 2 * horizon, cost)
    env.run(until=horizon)
    busy = scheduler.classes["reserved"].busy_time
    # Slack of two job slots: one in-flight job plus startup alignment.
    assert busy >= reservation * horizon - 2 * cost


# -- work conservation ----------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    cost=st.sampled_from([0.2, 0.5, 1.0]),
    reservation=st.sampled_from([0.0, 0.3]),
)
def test_work_conservation_under_backlog(cost, reservation):
    """With unlimited backlogged classes the server never idles."""
    horizon = 30.0
    env = Environment()
    scheduler = MClockScheduler(
        env,
        classes=(
            QosClass("a", reservation=reservation, weight=2.0),
            QosClass("b", weight=1.0),
        ),
    )
    saturate(scheduler, "a", 2 * horizon, cost)
    saturate(scheduler, "b", 2 * horizon, cost)
    env.run(until=horizon)
    total_busy = sum(s.busy_time for s in scheduler.classes.values())
    assert total_busy <= horizon + 1e-9
    assert total_busy >= horizon - cost - 1e-9


# -- limits ---------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    limit=st.sampled_from([0.1, 0.25, 0.5]),
    cost=st.sampled_from([0.25, 0.5]),
)
def test_limit_caps_a_backlogged_class(limit, cost):
    """Even alone on the server, a limited class gets at most its limit."""
    horizon = 40.0
    env = Environment()
    scheduler = MClockScheduler(
        env, classes=(QosClass("capped", weight=5.0, limit=limit),)
    )
    saturate(scheduler, "capped", 2 * horizon, cost)
    env.run(until=horizon)
    busy = scheduler.classes["capped"].busy_time
    assert busy <= limit * horizon + cost + 1e-9


# -- weight phase ---------------------------------------------------------------


def test_spare_capacity_splits_by_weight():
    """Two unreserved backlogged classes share roughly by weight."""
    horizon = 60.0
    cost = 0.5
    env = Environment()
    scheduler = MClockScheduler(
        env,
        classes=(
            QosClass("heavy", weight=3.0),
            QosClass("light", weight=1.0),
        ),
    )
    saturate(scheduler, "heavy", 2 * horizon, cost)
    saturate(scheduler, "light", 2 * horizon, cost)
    env.run(until=horizon)
    heavy = scheduler.classes["heavy"].busy_time
    light = scheduler.classes["light"].busy_time
    assert heavy / light == pytest.approx(3.0, rel=0.15)


def test_weight_phase_service_credits_reservation_tags():
    """Weight-phase service must not be double-charged against R tags.

    One class holding both a reservation and the dominant weight: it
    wins weight-phase dispatch when its R tag is not yet due, and the
    mClock credit keeps those early services from pushing its later R
    deadlines out.  Net effect: it must end up with MORE than its bare
    reservation share.
    """
    horizon = 40.0
    cost = 0.5
    env = Environment()
    scheduler = MClockScheduler(
        env,
        classes=(
            QosClass("vip", reservation=0.2, weight=9.0),
            QosClass("other", weight=1.0),
        ),
    )
    saturate(scheduler, "vip", 2 * horizon, cost)
    saturate(scheduler, "other", 2 * horizon, cost)
    env.run(until=horizon)
    vip = scheduler.classes["vip"].busy_time
    assert vip > 0.2 * horizon + 2 * cost


# -- determinism ----------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(job_costs=st.lists(costs, min_size=1, max_size=15))
def test_dispatch_is_deterministic(job_costs):
    def run_once():
        env = Environment()
        scheduler = MClockScheduler(
            env,
            classes=(
                QosClass("a", reservation=0.3, weight=2.0),
                QosClass("b", weight=1.0, limit=0.6),
            ),
        )
        for index, cost in enumerate(job_costs):
            scheduler.submit("a" if index % 2 == 0 else "b", cost)
        env.run(until=60.0)
        return {
            name: (s.enqueued, s.served, s.busy_time, s.total_wait, s.max_wait)
            for name, s in scheduler.classes.items()
        }

    assert run_once() == run_once()


def test_all_submitted_work_eventually_drains():
    env = Environment()
    scheduler = MClockScheduler(
        env,
        classes=(
            QosClass("a", reservation=0.4, weight=1.0),
            QosClass("b", weight=2.0, limit=0.5),
        ),
    )
    events = [scheduler.submit("a", 0.3) for _ in range(20)]
    events += [scheduler.submit("b", 0.3) for _ in range(20)]
    env.run(until=200.0)
    assert all(event.triggered for event in events)
    assert scheduler.pending == 0
    for stats in scheduler.classes.values():
        assert stats.served == stats.enqueued
        assert stats.in_flight == 0
