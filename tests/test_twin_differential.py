"""Differential validation: the analytical twin against the DES.

Tier-1 runs the full default grid — thirteen cases spanning the
benchmark axes (cache schemes, pg counts, stripe units, failure modes,
device classes, a gray case) — through both evaluators and asserts the
documented error envelope: WA exact, total recovery within 5%, the EC
recovery period within 30%, and Spearman rank agreement >= 0.9.  The
same harness renders the checked-in calibration report under
``benchmarks/results/`` (see ``benchmarks/test_twin_validation.py``).
"""

import math

import pytest

from repro.core.fault_injector import FaultSpec
from repro.core.profile import PAPER_RS_PROFILE, ExperimentProfile
from repro.tuner import (
    CategoricalAxis,
    EcVariantAxis,
    Evaluator,
    Fidelity,
    SuccessiveHalving,
    TuningSpace,
    pool_width_fits,
    stripe_unit_divides,
    tune,
)
from repro.twin import (
    DEFAULT_BOUNDS,
    SPEARMAN_THRESHOLD,
    default_grid,
    predict,
    render_report,
    run_differential,
    spearman,
)
from repro.workload.generator import Workload

MB = 1024 * 1024

#: Canonical digest of the twin's prediction for the paper's RS profile
#: at the differential grid's scale.  The twin consumes no wall clock
#: and no RNG, so this is stable across hosts, runs, and Python builds;
#: it moves only when the model (or a calibration constant) changes.
PINNED_RS_DIGEST = (
    "3f07c563f9453a4d243c80912e90522597f196f26ff1f1605ce9397c37dcaca7"
)


@pytest.fixture(scope="module")
def report():
    return run_differential()


def test_differential_grid_passes_documented_bounds(report):
    rendered = render_report(report)
    assert report.passed, rendered
    assert set(report.summaries) == set(DEFAULT_BOUNDS)
    for summary in report.summaries.values():
        assert summary.within_bound, rendered
        assert summary.max_rel_error <= DEFAULT_BOUNDS[summary.metric]
    assert (
        report.summaries["recovery_time"].rank_spearman >= SPEARMAN_THRESHOLD
    )
    assert "PASS" in rendered


def test_differential_grid_covers_benchmark_axes():
    cases = {case.name for case in default_grid()}
    # fig2a cache schemes, fig2b pg counts, fig2c stripe units,
    # fig2d failure modes, table3 codes, gray + HDD device axes.
    assert {"rs-kv-cache", "rs-data-cache"} <= cases
    assert {"rs-pg16", "rs-pg64"} <= cases
    assert {"rs-su-256k", "rs-su-1m"} <= cases
    assert {"rs-device-fault", "rs-two-devices"} <= cases
    assert {"clay-baseline", "lrc-8-2-2"} <= cases
    assert {"rs-hdd", "rs-gray-slow-disk"} <= cases


def test_wa_is_closed_form_exact(report):
    for case in report.results:
        assert case.rel_error("wa_actual") == 0.0, case.name


def test_twin_digest_is_pinned_and_rerun_identical():
    workload = Workload(num_objects=192, object_size=8 * MB)
    faults = [FaultSpec(level="node", count=1)]

    def run():
        return predict(PAPER_RS_PROFILE, workload, faults)

    first, second = run(), run()
    assert first.digest_json() == second.digest_json()
    assert first.digest() == PINNED_RS_DIGEST


def test_spearman_rank_basics():
    assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
    assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)
    # Midranks: ties share their average rank instead of biasing order.
    assert spearman([1, 1, 2], [5, 5, 9]) == pytest.approx(1.0)
    assert spearman([], []) == 0.0
    assert spearman([3.0, 3.0], [1.0, 2.0]) == 0.0
    with pytest.raises(ValueError):
        spearman([1], [1, 2])


def test_relative_error_handles_zero_truth(report):
    # A gray case predicts no recovery; 0-vs-0 must read as exact, not
    # undefined, and a nonzero prediction against zero truth as inf.
    gray = next(c for c in report.results if c.name == "rs-gray-slow-disk")
    assert gray.rel_error("recovery_time") == 0.0
    assert not math.isinf(gray.rel_error("wa_actual"))


# -- tuner equivalence (the acceptance criterion) ---------------------------------

RS = ("jerasure", (("k", 9), ("m", 3)))
CLAY = ("clay", (("d", 11), ("k", 9), ("m", 3)))


def acceptance_space():
    # The same reference grid as benchmarks/test_tuner_budget.py: the
    # PR 3 acceptance surface the halving strategy was proven on.
    return TuningSpace(
        ExperimentProfile(name="tuner-bench", num_hosts=15),
        axes=[
            CategoricalAxis("pg_num", (16, 64, 256)),
            CategoricalAxis("cache_scheme", ("kv-optimized", "autotune")),
            CategoricalAxis("stripe_unit", (1 * MB, 4 * MB)),
            EcVariantAxis(variants=(RS, CLAY)),
        ],
        constraints=[pool_width_fits(), stripe_unit_divides(8 * MB)],
    )


def test_twin_backed_halving_matches_des_winner_at_half_budget():
    space = acceptance_space()
    full = Fidelity(96, label="full")
    budget = len(space.enumerate()) * full.cost

    des_only = tune(
        space,
        SuccessiveHalving(
            [Fidelity(8, label="screen"), Fidelity(24, label="mid"), full],
            eta=4,
        ),
        seed=42,
        object_size=8 * MB,
        budget=budget,
    )
    twin_backed = tune(
        space,
        SuccessiveHalving(
            [
                Fidelity(8, label="screen", backend="twin"),
                Fidelity(24, label="mid", backend="twin"),
                full,
            ],
            eta=4,
        ),
        seed=42,
        object_size=8 * MB,
        budget=budget,
    )
    assert (
        twin_backed.recommendation.chosen.signature
        == des_only.recommendation.chosen.signature
    )
    # Twin rungs are free, so the DES budget only pays for finalists:
    # strictly no more than half the DES-only object-run spend.
    assert twin_backed.spent <= des_only.spent // 2
    assert twin_backed.spent > 0


def test_twin_fidelity_cost_and_artifact_roundtrip():
    twin_rung = Fidelity(8, label="screen", backend="twin")
    assert twin_rung.cost == 0
    assert "backend=twin" in twin_rung.key()
    assert Fidelity.from_dict(twin_rung.to_dict()) == twin_rung
    des_rung = Fidelity(8, label="screen")
    # DES serialisation is unchanged: pre-twin artifacts stay readable
    # and byte-identical.
    assert "backend" not in des_rung.to_dict()
    assert "backend" not in des_rung.key()
    assert Fidelity.from_dict({"objects": 8, "runs": 1}) == Fidelity(8)
    with pytest.raises(ValueError):
        Fidelity(8, backend="surrogate")


def test_twin_rung_records_probe_predictions():
    from repro.tuner import ReadProbe, TenantProbe

    space = acceptance_space()
    point = space.enumerate()[0]
    evaluator = Evaluator(
        space,
        object_size=8 * MB,
        base_seed=42,
        probe=ReadProbe(),
        tenant_probe=TenantProbe(),
    )
    measurement = evaluator.evaluate(point, Fidelity(8, backend="twin"))
    assert measurement.cost == 0
    assert evaluator.spent == 0
    assert measurement.degraded_p99 is not None and measurement.degraded_p99 > 0
    assert (
        measurement.tenant_slo_p99 is not None
        and measurement.tenant_slo_p99 >= measurement.degraded_p99
    )
