"""MON/MGR: heartbeat-based detection and the down->out interval."""

import pytest

from repro.cluster import CACHE_SCHEMES, CephCluster, CephConfig
from repro.ec import ReedSolomon
from repro.sim import Environment


def make_cluster(**config_overrides):
    env = Environment()
    config = CephConfig(**config_overrides) if config_overrides else CephConfig()
    cluster = CephCluster(
        env,
        ReedSolomon(4, 2),
        CACHE_SCHEMES["autotune"],
        config=config,
        num_hosts=8,
        osds_per_host=2,
        pg_num=8,
    )
    return env, cluster


def fail_host(cluster, host_id):
    for osd_id in cluster.topology.hosts[host_id].osd_ids:
        cluster.osds[osd_id].host_running = False


def test_healthy_cluster_stays_up():
    env, cluster = make_cluster()
    env.run(until=300)
    assert not cluster.monitor.down_since
    assert not cluster.monitor.out_osds


def test_detection_after_grace():
    env, cluster = make_cluster()
    env.run(until=100)
    fail_host(cluster, 2)
    env.run(until=200)
    detected = {4, 5} & set(cluster.monitor.down_since)
    assert detected == {4, 5}
    for osd_id in (4, 5):
        t = cluster.monitor.down_since[osd_id]
        # Detection happens after the grace window, within a few ticks.
        assert 100 + cluster.config.osd_heartbeat_grace <= t <= 140


def test_down_to_out_interval():
    env, cluster = make_cluster(mon_osd_down_out_interval=120.0)
    cluster.ingest_object("o", 1024)
    env.run(until=50)
    fail_host(cluster, 0)
    env.run(until=400)
    assert cluster.monitor.out_osds == {0, 1}
    detect = cluster.monitor.detection_time(0)
    out_record = next(
        r for r in cluster.mon_log if "marking osd out" in r.message
    )
    assert out_record.time - detect >= 120.0
    assert out_record.time - detect <= 135.0


def test_detection_time_from_log_after_out():
    env, cluster = make_cluster(mon_osd_down_out_interval=60.0)
    env.run(until=10)
    fail_host(cluster, 1)
    env.run(until=300)
    assert cluster.monitor.detection_time(2) is not None
    assert cluster.monitor.detection_time(6) is None  # healthy OSD


def test_recovered_osd_marked_up_again():
    env, cluster = make_cluster(mon_osd_down_out_interval=10_000.0)
    env.run(until=20)
    fail_host(cluster, 3)
    env.run(until=100)
    assert set(cluster.topology.hosts[3].osd_ids) <= set(cluster.monitor.down_since)
    # Bring the host back before the out interval elapses.
    for osd_id in cluster.topology.hosts[3].osd_ids:
        cluster.osds[osd_id].host_running = True
    env.run(until=200)
    assert not cluster.monitor.down_since
    assert not cluster.monitor.out_osds
    assert any("marking up" in r.message for r in cluster.mon_log)


def test_osdmap_epoch_increments():
    env, cluster = make_cluster(mon_osd_down_out_interval=30.0)
    initial = cluster.monitor.osdmap_epoch
    env.run(until=20)
    fail_host(cluster, 0)
    env.run(until=200)
    assert cluster.monitor.osdmap_epoch > initial


def test_device_failure_also_detected():
    env, cluster = make_cluster()
    env.run(until=30)
    cluster.osds[6].disk.fail()
    env.run(until=120)
    assert 6 in cluster.monitor.down_since
    assert 7 not in cluster.monitor.down_since  # same host, other OSD fine
