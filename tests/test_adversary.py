"""The adversary layer: corpus retention, mutators, and the fuzz loop."""

import json
import random

import pytest

from repro.adversary import (
    FITNESS_AXES,
    Corpus,
    CorpusEntry,
    MUTATORS,
    mutate,
    run_fuzz,
    splice,
)
from repro.adversary.mutators import _rebuild
from repro.chaos.artifact import load_artifact
from repro.chaos.campaign import CampaignSpec, ScheduledAction
from repro.chaos.sampler import sample_campaign
from repro.core.fault_injector import BYZ_LEVELS
from tests.test_chaos_shrink import failing_spec

pytestmark = pytest.mark.chaos


def entry(spec, fitness, coverage, lineage="seed-0"):
    return CorpusEntry(
        spec=spec,
        fitness=dict(fitness),
        coverage=frozenset(coverage),
        lineage=lineage,
        outcome_hash="0" * 64,
    )


SPEC = sample_campaign(0)
PAIR_A = ("node", "jerasure", "active+clean")
PAIR_B = ("device", "jerasure", "recovering")


# -- corpus retention -----------------------------------------------------------


def test_corpus_keeps_novel_coverage_and_rejects_duplicates():
    corpus = Corpus()
    assert corpus.consider(entry(SPEC, {"repair_bytes": 5.0}, {PAIR_A}))
    # Same coverage, no fitness record: nothing novel, not retained.
    assert not corpus.consider(entry(SPEC, {"repair_bytes": 5.0}, {PAIR_A}))
    # A new coverage pair alone earns retention.
    assert corpus.consider(entry(SPEC, {"repair_bytes": 1.0}, {PAIR_B}))
    assert len(corpus.entries) == 2
    assert corpus.considered == 3
    assert corpus.seen_coverage == {PAIR_A, PAIR_B}


def test_corpus_keeps_strict_fitness_records_only():
    corpus = Corpus()
    corpus.consider(entry(SPEC, {"repair_bytes": 5.0}, {PAIR_A}))
    # A tie is not a record.
    assert not corpus.consider(entry(SPEC, {"repair_bytes": 5.0}, {PAIR_A}))
    # A strictly higher value on any axis is.
    assert corpus.consider(entry(SPEC, {"repair_bytes": 6.0}, {PAIR_A}))
    assert corpus.best_fitness["repair_bytes"] == 6.0


def test_corpus_summary_and_save_schema(tmp_path):
    corpus = Corpus()
    corpus.consider(entry(SPEC, {"repair_bytes": 5.0}, {PAIR_A}))
    summary = corpus.summary()
    assert summary["entries"] == 1
    assert summary["considered"] == 1
    assert summary["coverage_pairs"] == 1
    assert summary["coverage"] == [list(PAIR_A)]
    assert summary["lineages"] == ["seed-0"]

    paths = corpus.save(tmp_path)
    names = sorted(path.name for path in paths)
    assert names == ["corpus-0000.json", "summary.json"]
    blob = json.loads((tmp_path / "corpus-0000.json").read_text())
    assert set(blob) == {"spec", "fitness", "coverage", "lineage",
                        "outcome_hash"}
    # The archived spec is replayable.
    assert CampaignSpec.from_dict(blob["spec"]) == SPEC


# -- mutators -------------------------------------------------------------------


def test_every_mutator_yields_a_valid_spec_or_none():
    rng = random.Random(1)
    specs = [sample_campaign(seed) for seed in range(4)]
    specs.append(sample_campaign(99, byzantine=True))
    for spec in specs:
        for mutator in MUTATORS:
            for _ in range(10):
                mutant = mutator(rng, spec)
                if mutant is None:
                    continue
                # Reconstructing through the validating constructor must
                # not raise, and the seed gene is never touched.
                CampaignSpec.from_dict(mutant.to_dict())
                assert mutant.seed == spec.seed


def test_mutation_is_deterministic_under_a_seeded_rng():
    spec = sample_campaign(3)
    others = [sample_campaign(4), sample_campaign(5)]
    first = [mutate(random.Random(7), spec, others) for _ in range(1)]
    second = [mutate(random.Random(7), spec, others) for _ in range(1)]
    assert first == second


def test_rebuild_appends_restore_after_a_trailing_inject():
    # A mutation that leaves the schedule ending on an inject would trip
    # the convergence oracle trivially; _rebuild keeps mutants in the
    # expected-to-converge family by appending a restore.
    spec = sample_campaign(3)
    dangling = [
        ScheduledAction(at=100.0, kind="inject", level="node", count=1),
    ]
    mutant = _rebuild(spec, dangling)
    assert mutant.actions[-1].kind == "restore"
    assert mutant.actions[-1].at > mutant.actions[0].at


def test_retarget_keeps_byz_mutants_inside_the_byz_family():
    rng = random.Random(2)
    spec = sample_campaign(99, byzantine=True)
    from repro.adversary.mutators import retarget_action

    for _ in range(20):
        mutant = retarget_action(rng, spec)
        if mutant is None:
            continue
        for action in mutant.actions:
            if action.kind == "inject":
                assert action.level in BYZ_LEVELS


def test_splice_rebases_the_suffix_in_time():
    rng = random.Random(5)
    first = sample_campaign(1)
    second = sample_campaign(2)
    for _ in range(10):
        spliced = splice(rng, first, second)
        if spliced is None:
            continue
        times = [action.at for action in spliced.actions]
        assert times == sorted(times)
        assert spliced.seed == first.seed


# -- the fuzz loop --------------------------------------------------------------


def test_run_fuzz_rejects_a_zero_budget():
    with pytest.raises(ValueError, match="budget"):
        run_fuzz(root_seed=0, budget=0)


def test_run_fuzz_is_deterministic():
    first = run_fuzz(root_seed=3, budget=6)
    second = run_fuzz(root_seed=3, budget=6)
    assert first.summary() == second.summary()
    assert first.runs == 6
    assert set(first.corpus.best_fitness) <= set(FITNESS_AXES)


def test_run_fuzz_mixes_seed_and_mutant_lineages():
    kinds = []
    report = run_fuzz(
        root_seed=3, budget=8,
        on_run=lambda index, kind, spec, result, error: kinds.append(kind),
    )
    assert kinds[:2] == ["seed", "seed"]  # SEED_FRACTION of 8
    assert "mutant" in kinds[2:]
    assert report.runs == 8


def test_failures_are_shrunk_into_repro_artifacts(tmp_path, monkeypatch):
    # Make the very first seed sample a known-failing campaign, so the
    # fuzzer's violation path (shrink + artifact emission) runs for real.
    import repro.adversary.fuzzer as fuzzer_mod

    bad = failing_spec()
    monkeypatch.setattr(
        fuzzer_mod, "sample_campaign",
        lambda seed, levels=None, byzantine=False: bad,
    )
    report = run_fuzz(root_seed=0, budget=1, corpus_dir=tmp_path)
    assert not report.ok
    assert len(report.failures) == 1
    [artifact_path] = report.artifacts
    artifact = load_artifact(artifact_path)
    # The artifact carries the 1-minimal schedule plus the original.
    assert len(artifact.spec.actions) == 1
    assert artifact.original_spec == bad
    assert {v.invariant for v in artifact.violations} == {
        "health-convergence"
    }
    # The corpus itself was still archived alongside the repro.
    assert (tmp_path / "summary.json").exists()


# -- press_capacity mutator -----------------------------------------------------


def test_press_capacity_jumps_to_the_data_ceiling():
    from repro.adversary import press_capacity
    from repro.chaos.sampler import _OBJECT_SIZES

    rng = random.Random(2)
    spec = sample_campaign(1)
    mutant = press_capacity(rng, spec)
    assert mutant is not None
    assert mutant.num_objects == 32
    assert mutant.object_size == max(_OBJECT_SIZES)
    # Already at the ceiling: the mutator declines instead of no-oping.
    assert press_capacity(rng, mutant) is None


def test_press_capacity_is_registered():
    from repro.adversary import press_capacity

    assert press_capacity in MUTATORS


# -- corpus archiving and reuse --------------------------------------------------


def test_corpus_entry_round_trips_through_json():
    original = entry(SPEC, {"axis": 1.5}, [PAIR_A, PAIR_B], "mutant-3")
    rebuilt = CorpusEntry.from_dict(
        json.loads(json.dumps(original.to_dict()))
    )
    assert rebuilt == original


def test_load_corpus_reproduces_the_saved_records(tmp_path):
    from repro.adversary import load_corpus

    report = run_fuzz(root_seed=5, budget=4, corpus_dir=tmp_path)
    loaded = load_corpus(tmp_path)
    assert loaded.seen_coverage == report.corpus.seen_coverage
    assert loaded.best_fitness == report.corpus.best_fitness
    assert [e.lineage for e in loaded.entries] == [
        e.lineage for e in report.corpus.entries
    ]
    assert loaded.considered == len(report.corpus.entries)


def test_corpus_in_resumed_session_is_deterministic(tmp_path):
    first_dir = tmp_path / "session-1"
    run_fuzz(root_seed=5, budget=4, corpus_dir=first_dir)

    resumed = [
        run_fuzz(
            root_seed=6, budget=3, corpus_dir=tmp_path / f"resume-{i}",
            corpus_in=first_dir,
        )
        for i in range(2)
    ]
    assert resumed[0].corpus.summary() == resumed[1].corpus.summary()
    assert resumed[0].runs == resumed[1].runs == 3


def test_corpus_in_carries_coverage_so_repeats_are_not_novel(tmp_path):
    first_dir = tmp_path / "session-1"
    first = run_fuzz(root_seed=5, budget=4, corpus_dir=first_dir)

    resumed = run_fuzz(
        root_seed=5, budget=4, corpus_dir=tmp_path / "session-2",
        corpus_in=first_dir,
    )
    # The prior session's discoveries are on the books from run one.
    assert resumed.corpus.seen_coverage >= first.corpus.seen_coverage
    # Replayed entries + this session's novel finds, never duplicates.
    lineages = [e.lineage for e in resumed.corpus.entries]
    assert lineages[: len(first.corpus.entries)] == [
        e.lineage for e in first.corpus.entries
    ]
