"""Configuration sweeps: grids, execution, persistence."""

import pytest

from repro.cluster.osd import CephConfig
from repro.core import ExperimentProfile, FaultSpec, SweepRunner, SweepSpec
from repro.workload import Workload

MB = 1024 * 1024
FAST = CephConfig(mon_osd_down_out_interval=30.0)


def base_profile():
    return ExperimentProfile(name="base", pg_num=16, num_hosts=15, ceph=FAST)


def test_spec_validates_axes():
    with pytest.raises(ValueError, match="unknown profile field"):
        SweepSpec(base=base_profile(), axes={"warp_factor": [1, 2]})
    with pytest.raises(ValueError, match="no values"):
        SweepSpec(base=base_profile(), axes={"pg_num": []})


def test_cells_cartesian_product():
    spec = SweepSpec(
        base=base_profile(),
        axes={"pg_num": [8, 16], "cache_scheme": ["autotune", "kv-optimized"]},
    )
    cells = list(spec.cells())
    assert len(cells) == spec.size() == 4
    combos = {(c.pg_num, c.cache_scheme) for c in cells}
    assert combos == {
        (8, "autotune"), (8, "kv-optimized"),
        (16, "autotune"), (16, "kv-optimized"),
    }
    assert len({c.name for c in cells}) == 4  # labels are unique


def test_ec_variants_axis():
    spec = SweepSpec(
        base=base_profile(),
        axes={"pg_num": [8]},
        ec_variants=[
            ("jerasure", {"k": 9, "m": 3}),
            ("clay", {"k": 9, "m": 3, "d": 11}),
        ],
    )
    cells = list(spec.cells())
    assert len(cells) == spec.size() == 2
    assert {c.ec_plugin for c in cells} == {"jerasure", "clay"}


def test_runner_validates_runs():
    with pytest.raises(ValueError):
        SweepRunner(Workload(num_objects=1), runs=0)


def test_runner_executes_grid_and_reports_progress():
    progress = []
    runner = SweepRunner(
        Workload(num_objects=30, object_size=8 * MB),
        faults=[FaultSpec(level="node")],
        progress=lambda label, i, n: progress.append((i, n)),
    )
    spec = SweepSpec(base=base_profile(), axes={"pg_num": [4, 16]})
    results = runner.run(spec)
    assert len(results) == 2
    assert progress == [(0, 2), (1, 2)]
    for result in results:
        assert result.recovery_time > 0
        assert 0 < result.checking_fraction < 1
        assert result.wa_actual > 1.0
        assert result.runs == 1
    # pg_num is recorded in settings for downstream analysis.
    assert {r.settings["pg_num"] for r in results} == {4, 16}


def test_runner_without_faults_measures_wa_only():
    runner = SweepRunner(
        Workload(num_objects=10, object_size=8 * MB), faults=[]
    )
    spec = SweepSpec(base=base_profile(), axes={"pg_num": [4]})
    (result,) = runner.run(spec)
    assert result.recovery_time == 0.0
    assert result.wa_actual > 1.0


def test_save_and_load_roundtrip(tmp_path):
    runner = SweepRunner(Workload(num_objects=20, object_size=8 * MB))
    spec = SweepSpec(base=base_profile(), axes={"pg_num": [4, 8]})
    results = runner.run(spec)
    path = tmp_path / "sweep.json"
    SweepRunner.save(results, path)
    loaded = SweepRunner.load(path)
    assert loaded == results


def test_load_rejects_unknown_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"version": 99, "results": []}')
    with pytest.raises(ValueError, match="version"):
        SweepRunner.load(path)


def test_runner_validates_workers():
    with pytest.raises(ValueError, match="workers"):
        SweepRunner(Workload(num_objects=1), workers=0)


def test_parallel_sweep_is_byte_identical(tmp_path):
    workload = Workload(num_objects=20, object_size=8 * MB)
    spec = SweepSpec(base=base_profile(), axes={"pg_num": [4, 8]})
    serial = SweepRunner(workload, faults=[FaultSpec(level="node")], base_seed=3)
    parallel = SweepRunner(
        workload, faults=[FaultSpec(level="node")], base_seed=3, workers=2
    )
    serial_results = serial.run(spec)
    parallel_results = parallel.run(spec)
    assert parallel_results == serial_results
    serial_path = tmp_path / "serial.json"
    parallel_path = tmp_path / "parallel.json"
    SweepRunner.save(serial_results, serial_path)
    SweepRunner.save(parallel_results, parallel_path)
    assert serial_path.read_bytes() == parallel_path.read_bytes()


def test_save_replaces_atomically(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text("stale garbage that must disappear")
    SweepRunner.save([], path)
    assert SweepRunner.load(path) == []
    # No temp files left behind.
    assert [p.name for p in tmp_path.iterdir()] == ["sweep.json"]
