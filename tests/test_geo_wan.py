"""WAN fabric: uplink charges, egress ledger, partitions, loopback."""

import pytest

from repro.cluster import Fabric, Nic, NicSpec
from repro.cluster.network import NetworkPartitionedError
from repro.geo.wan import DEFAULT_WAN, EgressLedger, WanFabric, WanSpec
from repro.sim import Environment


def make_nic(env, name="n", bandwidth=1e9, latency=0.001, overhead=0.0001):
    return Nic(env, NicSpec(name, bandwidth, latency, overhead), name=name)


def make_wan(env, num_regions=2, **spec_overrides):
    spec = WanSpec(
        egress_bandwidth=spec_overrides.pop("egress_bandwidth", 5e8),
        ingress_bandwidth=spec_overrides.pop("ingress_bandwidth", 1e9),
        latency=spec_overrides.pop("latency", 0.03),
        egress_cost_per_gib=spec_overrides.pop("egress_cost_per_gib", 0.02),
    )
    return WanFabric(env, spec, num_regions)


def run_transfer(env, fabric, src, dst, nbytes):
    done = []

    def xfer():
        try:
            yield fabric.transfer(src, dst, nbytes)
        except NetworkPartitionedError:
            done.append(None)
        else:
            done.append(env.now)

    env.process(xfer())
    env.run()
    return done[0]


def test_spec_validation():
    with pytest.raises(ValueError):
        WanSpec(egress_bandwidth=0)
    with pytest.raises(ValueError):
        WanSpec(latency=-1.0)
    with pytest.raises(ValueError):
        WanSpec(egress_cost_per_gib=-0.01)


def test_spec_egress_cost_per_gib():
    spec = WanSpec(egress_cost_per_gib=0.02)
    assert spec.egress_cost(1 << 30) == pytest.approx(0.02)
    assert spec.egress_cost(0) == 0.0


def test_loopback_stays_free_on_wan_fabric():
    """Satellite regression: intra-host loopback never pays WAN charges.

    The endpoint-charge refactor must keep the loopback short-circuit
    ahead of any region lookup — a same-NIC transfer costs exactly the
    protocol overhead, moves no NIC bytes, and touches no uplink.
    """
    env = Environment()
    fabric = make_wan(env)
    a = make_nic(env, "a")
    fabric.register_nic(a, 1)  # registered in a non-default region
    finished = run_transfer(env, fabric, a, a, 10**9)
    assert finished == pytest.approx(a.spec.message_overhead)
    assert a.sent_bytes == 0
    assert fabric.cross_region_transfers == 0
    assert fabric.ledger.total_bytes == 0
    assert all(u.egress_bytes == 0 for u in fabric.uplinks)


def test_intra_region_matches_lan_fabric():
    """Same-region transfers cost exactly the single-hop LAN sequence."""
    lan_env = Environment()
    lan = Fabric(lan_env)
    a, b = make_nic(lan_env, "a"), make_nic(lan_env, "b")
    lan_time = run_transfer(lan_env, lan, a, b, 1_000_000)

    wan_env = Environment()
    fabric = make_wan(wan_env)
    c, d = make_nic(wan_env, "c"), make_nic(wan_env, "d")
    fabric.register_nic(c, 1)
    fabric.register_nic(d, 1)
    wan_time = run_transfer(wan_env, fabric, c, d, 1_000_000)

    assert wan_time == pytest.approx(lan_time)
    assert fabric.cross_region_transfers == 0
    assert fabric.ledger.total_bytes == 0


def test_cross_region_pays_uplinks_and_ledger():
    env = Environment()
    fabric = make_wan(env)
    a, b = make_nic(env, "a"), make_nic(env, "b")
    fabric.register_nic(a, 0)
    fabric.register_nic(b, 1)
    nbytes = 1_000_000
    finished = run_transfer(env, fabric, a, b, nbytes)
    # LAN endpoint charges (egress 0.0011, prop 0.001 + WAN 0.03,
    # ingress 0.0011) plus uplink serialisation (tx 0.002, rx 0.001).
    assert finished == pytest.approx(0.0011 + 0.031 + 0.0011 + 0.002 + 0.001)
    assert fabric.cross_region_transfers == 1
    assert fabric.cross_region_bytes == nbytes
    assert fabric.uplinks[0].egress_bytes == nbytes
    assert fabric.uplinks[1].ingress_bytes == nbytes
    assert fabric.ledger.egress_bytes_by_region[0] == nbytes
    assert fabric.ledger.total_cost == pytest.approx(
        fabric.spec.egress_cost(nbytes)
    )


def test_asymmetric_uplink_directions():
    """Egress is the slow direction; reversing regions flips the charge."""
    env = Environment()
    fabric = make_wan(env, egress_bandwidth=1e8, ingress_bandwidth=1e9)
    a, b = make_nic(env, "a"), make_nic(env, "b")
    fabric.register_nic(a, 0)
    fabric.register_nic(b, 1)
    t_ab = run_transfer(env, fabric, a, b, 10_000_000)

    env2 = Environment()
    fabric2 = make_wan(env2, egress_bandwidth=1e9, ingress_bandwidth=1e8)
    c, d = make_nic(env2, "c"), make_nic(env2, "d")
    fabric2.register_nic(c, 0)
    fabric2.register_nic(d, 1)
    t_swapped = run_transfer(env2, fabric2, c, d, 10_000_000)

    assert t_ab == pytest.approx(t_swapped)  # symmetric in the pair
    assert t_ab > 0.1  # dominated by the 100 MB / 1e8 B/s leg


def test_partitioned_uplink_refuses_cross_region():
    env = Environment()
    fabric = make_wan(env)
    a, b = make_nic(env, "a"), make_nic(env, "b")
    fabric.register_nic(a, 0)
    fabric.register_nic(b, 1)
    fabric.partition_region(1)
    assert fabric.partitioned_regions() == [1]
    assert run_transfer(env, fabric, a, b, 1_000_000) is None
    assert fabric.wan_partition_refusals == 1
    assert fabric.cross_region_bytes == 0
    assert fabric.ledger.total_bytes == 0  # refused bytes are never billed


def test_partition_leaves_intra_region_alone():
    env = Environment()
    fabric = make_wan(env)
    a, b = make_nic(env, "a"), make_nic(env, "b")
    fabric.register_nic(a, 1)
    fabric.register_nic(b, 1)
    fabric.partition_region(1)
    assert run_transfer(env, fabric, a, b, 1_000_000) is not None


def test_restore_region_reopens_uplink():
    env = Environment()
    fabric = make_wan(env)
    a, b = make_nic(env, "a"), make_nic(env, "b")
    fabric.register_nic(a, 0)
    fabric.register_nic(b, 1)
    fabric.partition_region(0)
    fabric.restore_region(0)
    assert fabric.partitioned_regions() == []
    assert run_transfer(env, fabric, a, b, 1_000_000) is not None
    assert fabric.cross_region_transfers == 1


def test_unregistered_nic_defaults_to_region_zero():
    env = Environment()
    fabric = make_wan(env)
    a, b = make_nic(env, "a"), make_nic(env, "b")
    fabric.register_nic(b, 1)
    run_transfer(env, fabric, a, b, 1_000)
    assert fabric.ledger.egress_bytes_by_region[0] == 1_000


def test_register_nic_rejects_bad_region():
    env = Environment()
    fabric = make_wan(env, num_regions=2)
    with pytest.raises(ValueError):
        fabric.register_nic(make_nic(env), 2)


def test_ledger_accumulates_per_region():
    ledger = EgressLedger(DEFAULT_WAN)
    ledger.charge(2, 1000)
    ledger.charge(0, 500)
    ledger.charge(2, 250)
    assert ledger.egress_bytes_by_region == [500, 0, 1250]
    assert ledger.total_bytes == 1750
    assert ledger.cost_of(2) == pytest.approx(DEFAULT_WAN.egress_cost(1250))
    assert ledger.cost_of(9) == 0.0
