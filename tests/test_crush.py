"""CRUSH placement: determinism, failure domains, minimal remap."""

import pytest

from repro.cluster import ClusterTopology, CrushMap, FailureDomain, PlacementError
from repro.sim import Environment


@pytest.fixture
def crush():
    topo = ClusterTopology(Environment(), num_hosts=15, osds_per_host=2)
    return CrushMap(topo, seed=42)


def test_placement_is_deterministic(crush):
    a = crush.place_pg(1, 0, 12, FailureDomain.HOST)
    b = crush.place_pg(1, 0, 12, FailureDomain.HOST)
    assert a == b


def test_different_pgs_place_differently(crush):
    sets = {tuple(crush.place_pg(1, pg, 12, FailureDomain.HOST)) for pg in range(16)}
    assert len(sets) > 1


def test_host_domain_spreads_across_hosts(crush):
    acting = crush.place_pg(1, 3, 12, FailureDomain.HOST)
    hosts = {crush.topology.osds[o].host_id for o in acting}
    assert len(hosts) == 12  # one OSD per host


def test_osd_domain_allows_same_host(crush):
    """With enough PGs, osd-level placement co-locates some shards."""
    co_located = False
    for pg in range(64):
        acting = crush.place_pg(1, pg, 12, FailureDomain.OSD)
        hosts = [crush.topology.osds[o].host_id for o in acting]
        if len(set(hosts)) < len(hosts):
            co_located = True
            break
    assert co_located


def test_width_exceeding_buckets_rejected(crush):
    with pytest.raises(PlacementError):
        crush.place_pg(1, 0, 16, FailureDomain.HOST)  # only 15 hosts


def test_unknown_failure_domain(crush):
    with pytest.raises(ValueError):
        crush.place_pg(1, 0, 3, "zone")


def test_no_duplicate_osds(crush):
    for pg in range(32):
        acting = crush.place_pg(1, pg, 12, FailureDomain.OSD)
        assert len(set(acting)) == 12


def test_exclusion_respected(crush):
    base = crush.place_pg(1, 5, 12, FailureDomain.HOST)
    excluded = {base[3]}
    after = crush.place_pg(1, 5, 12, FailureDomain.HOST, excluded_osds=excluded)
    assert base[3] not in after


def test_remap_is_minimal(crush):
    """Only shards on departed OSDs move (straw2 stability)."""
    base = crush.place_pg(1, 7, 12, FailureDomain.HOST)
    out = {base[4]}
    after, moved = crush.remap(1, 7, 12, FailureDomain.HOST, out)
    assert set(moved) == {4}
    for shard in range(12):
        if shard != 4:
            assert after[shard] == base[shard]


def test_remap_within_host_prefers_sibling_osd(crush):
    """Excluding one OSD of a host can fail over to its sibling."""
    base = crush.place_pg(1, 2, 10, FailureDomain.HOST)
    victim = base[0]
    sibling = [
        o
        for o in crush.topology.hosts[crush.topology.osds[victim].host_id].osd_ids
        if o != victim
    ][0]
    after, moved = crush.remap(1, 2, 10, FailureDomain.HOST, {victim})
    assert moved.get(0) == sibling  # same bucket, other device


def test_seed_changes_placement():
    topo = ClusterTopology(Environment(), num_hosts=15, osds_per_host=2)
    a = CrushMap(topo, seed=1).place_pg(1, 0, 12, FailureDomain.HOST)
    b = CrushMap(topo, seed=2).place_pg(1, 0, 12, FailureDomain.HOST)
    assert a != b


def test_placement_roughly_uniform(crush):
    """Primary assignment should touch most hosts over many PGs."""
    primaries = {
        crush.topology.osds[crush.place_pg(1, pg, 12, FailureDomain.HOST)[0]].host_id
        for pg in range(256)
    }
    assert len(primaries) >= 12
