"""Seeded random streams: independence and reproducibility."""

from repro.sim import SeedSequence, substream_seed


def test_substream_seed_is_stable():
    assert substream_seed(1, "a") == substream_seed(1, "a")


def test_substream_seed_varies_with_inputs():
    assert substream_seed(1, "a") != substream_seed(2, "a")
    assert substream_seed(1, "a") != substream_seed(1, "b")


def test_streams_reproducible():
    a = SeedSequence(9).stream("workload")
    b = SeedSequence(9).stream("workload")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_independent():
    """Drawing from one stream must not perturb another."""
    seeds = SeedSequence(3)
    baseline = seeds.stream("faults").random()
    other = seeds.stream("workload")
    for _ in range(100):
        other.random()
    assert seeds.stream("faults").random() == baseline


def test_choice_stream():
    seeds = SeedSequence(4)
    pick_a = seeds.choice_stream("x", [1, 2, 3])
    pick_b = SeedSequence(4).choice_stream("x", [1, 2, 3])
    assert pick_a == pick_b
    assert pick_a in (1, 2, 3)
