"""Property tests: the twin must be monotone where the DES is monotone.

The tuner only needs the twin to *rank* configurations correctly, so
the invariants worth machine-checking are directional: more parity can
never shrink repair traffic, faster media can never slow recovery,
more data can never speed it up, and no output is ever negative.
"""

from hypothesis import given, settings, strategies as st

from repro.core.fault_injector import FaultSpec
from repro.core.profile import ExperimentProfile
from repro.twin import AnalyticalTwin, predict_overwrite_amplification
from repro.workload.generator import Workload

MB = 1024 * 1024
KB = 1024

TWIN = AnalyticalTwin()
NODE_FAULT = [FaultSpec(level="node", count=1)]

ks = st.integers(min_value=2, max_value=6)
ms = st.integers(min_value=1, max_value=3)
pg_nums = st.sampled_from([8, 16, 64, 256])
stripe_units = st.sampled_from([256 * KB, 1 * MB, 4 * MB])
object_counts = st.integers(min_value=1, max_value=64)
object_sizes = st.sampled_from([1 * MB, 4 * MB, 9 * MB])
fault_levels = st.sampled_from(["node", "device"])
device_classes = st.sampled_from(["ssd", "hdd"])


def make_profile(k, m, pg_num, stripe_unit, device_class="ssd", **extra):
    return ExperimentProfile(
        name="twin-prop",
        ec_plugin="jerasure",
        ec_params={"k": k, "m": m},
        num_hosts=12,
        osds_per_host=2,
        pg_num=pg_num,
        stripe_unit=stripe_unit,
        device_class=device_class,
        **extra,
    )


@settings(max_examples=25, deadline=None)
@given(ks, ms, pg_nums, stripe_units, object_counts, object_sizes,
       fault_levels, device_classes)
def test_outputs_never_negative(k, m, pg_num, stripe_unit, objects, size,
                                level, device_class):
    profile = make_profile(k, m, pg_num, stripe_unit, device_class)
    workload = Workload(num_objects=objects, object_size=size)
    prediction = TWIN.predict(profile, workload, [FaultSpec(level=level)])
    assert prediction.recovery_time >= 0.0
    assert prediction.checking_period >= 0.0
    assert prediction.ec_recovery_period >= 0.0
    assert prediction.repair_bytes_read >= 0.0
    assert prediction.repair_bytes_written >= 0.0
    assert prediction.used_bytes >= 0
    assert 0.0 <= prediction.checking_fraction <= 1.0
    assert prediction.recovery_time >= prediction.checking_period
    p99 = TWIN.predict_degraded_p99(profile)
    assert p99 > 0.0


@settings(max_examples=25, deadline=None)
@given(ks, pg_nums, stripe_units, object_counts, object_sizes)
def test_more_parity_never_shrinks_repair_traffic(k, pg_num, stripe_unit,
                                                  objects, size):
    workload = Workload(num_objects=objects, object_size=size)
    written = [
        TWIN.predict(
            make_profile(k, m, pg_num, stripe_unit), workload, NODE_FAULT
        ).repair_bytes_written
        for m in (1, 2, 3)
    ]
    assert written[0] <= written[1] <= written[2]
    # WA is monotone in parity too: every extra parity chunk is stored.
    was = [
        TWIN.predict(
            make_profile(k, m, pg_num, stripe_unit), workload, []
        ).wa_actual
        for m in (1, 2, 3)
    ]
    assert was[0] < was[1] < was[2]


@settings(max_examples=25, deadline=None)
@given(ks, ms, pg_nums, stripe_units, object_counts, object_sizes)
def test_faster_disks_never_slow_recovery(k, m, pg_num, stripe_unit,
                                          objects, size):
    workload = Workload(num_objects=objects, object_size=size)
    ssd = TWIN.predict(
        make_profile(k, m, pg_num, stripe_unit, "ssd"), workload, NODE_FAULT
    )
    hdd = TWIN.predict(
        make_profile(k, m, pg_num, stripe_unit, "hdd"),
        workload,
        NODE_FAULT,
    )
    assert ssd.ec_recovery_period <= hdd.ec_recovery_period
    assert ssd.recovery_time <= hdd.recovery_time


@settings(max_examples=25, deadline=None)
@given(ks, ms, pg_nums, stripe_units, object_sizes)
def test_more_objects_never_speed_recovery(k, m, pg_num, stripe_unit, size):
    profile = make_profile(k, m, pg_num, stripe_unit)
    times = [
        TWIN.predict(
            profile, Workload(num_objects=count, object_size=size), NODE_FAULT
        ).recovery_time
        for count in (8, 32, 128)
    ]
    assert times[0] <= times[1] <= times[2]


@settings(max_examples=25, deadline=None)
@given(ks, ms, pg_nums, stripe_units)
def test_tenant_p99_never_beats_uncontended(k, m, pg_num, stripe_unit):
    profile = make_profile(k, m, pg_num, stripe_unit)
    base = TWIN.predict_degraded_p99(profile, object_size=4 * MB, interval=0.5)
    contended = TWIN.predict_tenant_slo_p99(
        profile, object_size=4 * MB, interval=0.5
    )
    assert contended >= base


@settings(max_examples=25, deadline=None)
@given(ks, ms, st.floats(min_value=0.0, max_value=1.0))
def test_overwrite_amplification_bounded_by_endpoints(k, m, rmw_fraction):
    profile = make_profile(k, m, 64, 1 * MB)
    amp = predict_overwrite_amplification(profile, rmw_fraction)
    lo = min(1.0 + m, (k + m) / k)
    hi = max(1.0 + m, (k + m) / k)
    assert lo <= amp <= hi
