"""Repair-traffic accounting: plans expanded to bytes and operations."""

import pytest

from repro.ec import (
    ClayCode,
    ReedSolomon,
    compare_repair_bandwidth,
    split_traffic_by_region,
    traffic_for_plan,
)


def test_rs_traffic_full_chunks():
    code = ReedSolomon(9, 3)
    plan = code.repair_plan([0], list(range(1, 12)))
    traffic = traffic_for_plan(plan, chunk_bytes=1_000_000, units_per_chunk=10)
    assert traffic.total_read_bytes == 9 * 1_000_000
    assert traffic.total_read_ops == 9 * 10
    assert traffic.write_bytes == 1_000_000
    assert traffic.write_ops == 10
    assert traffic.decode_work == 1.0


def test_clay_single_failure_traffic_is_fractional():
    clay = ClayCode(9, 3, d=11)
    plan = clay.repair_plan([0], list(range(1, 12)))
    traffic = traffic_for_plan(plan, chunk_bytes=81_000, units_per_chunk=1)
    # 11 helpers x 1/3 chunk each.
    assert traffic.total_read_bytes == 11 * 27_000
    assert traffic.write_bytes == 81_000
    # Scattered runs: ops exceed one per helper chunk.
    assert traffic.total_read_ops >= 11


def test_clay_beats_rs_bandwidth_single_failure():
    rs = ReedSolomon(9, 3)
    clay = ClayCode(9, 3, d=11)
    out = compare_repair_bandwidth([rs, clay], lost=[2])
    assert out["jerasure(12,9)"] == pytest.approx(9.0)
    assert out["clay(12,9)"] == pytest.approx(11 / 3)
    assert out["clay(12,9)"] < out["jerasure(12,9)"]


def test_clay_advantage_shrinks_with_multi_failure():
    rs = ReedSolomon(9, 3)
    clay = ClayCode(9, 3, d=11)
    single = compare_repair_bandwidth([rs, clay], lost=[2])
    triple = compare_repair_bandwidth([rs, clay], lost=[2, 7, 11])
    ratio_1f = single["clay(12,9)"] / single["jerasure(12,9)"]
    ratio_3f = triple["clay(12,9)"] / triple["jerasure(12,9)"]
    assert ratio_1f < ratio_3f  # the advantage fades as failures grow


def test_traffic_validates_geometry():
    code = ReedSolomon(4, 2)
    plan = code.repair_plan([0], [1, 2, 3, 4, 5])
    with pytest.raises(ValueError):
        traffic_for_plan(plan, chunk_bytes=0, units_per_chunk=1)
    with pytest.raises(ValueError):
        traffic_for_plan(plan, chunk_bytes=100, units_per_chunk=0)


def test_multi_loss_write_accounting():
    code = ReedSolomon(4, 2)
    plan = code.repair_plan([0, 1], [2, 3, 4, 5])
    traffic = traffic_for_plan(plan, chunk_bytes=500, units_per_chunk=2)
    assert traffic.write_bytes == 1000
    assert traffic.write_ops == 4


def test_split_traffic_by_region_partitions_reads():
    code = ReedSolomon(4, 2)
    plan = code.repair_plan([0], [1, 2, 3, 4, 5])
    traffic = traffic_for_plan(plan, chunk_bytes=1_000_000, units_per_chunk=1)
    split = split_traffic_by_region(
        traffic, region_by_chunk={i: i % 3 for i in range(6)},
        primary_region=0,
    )
    assert split["local_read_bytes"] + split["cross_region_read_bytes"] == \
        traffic.total_read_bytes
    # Helpers 1..4: only chunk 3 lives in the primary's region (3 % 3).
    assert split["local_read_bytes"] == 1_000_000
    assert split["cross_region_read_bytes"] == 3_000_000


def test_split_traffic_defaults_unknown_chunks_to_local():
    code = ReedSolomon(4, 2)
    plan = code.repair_plan([0], [1, 2, 3, 4, 5])
    traffic = traffic_for_plan(plan, chunk_bytes=500_000, units_per_chunk=1)
    split = split_traffic_by_region(traffic, region_by_chunk={},
                                    primary_region=1)
    assert split["cross_region_read_bytes"] == 0
    assert split["local_read_bytes"] == traffic.total_read_bytes
