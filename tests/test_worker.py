"""Workers: provisioning and fault application on one node."""

import pytest

from repro.cluster import CACHE_SCHEMES, CephCluster
from repro.core.worker import Worker, deploy_workers
from repro.ec import ReedSolomon
from repro.sim import Environment


@pytest.fixture
def cluster():
    env = Environment()
    return CephCluster(
        env,
        ReedSolomon(4, 2),
        CACHE_SCHEMES["autotune"],
        num_hosts=6,
        osds_per_host=2,
        pg_num=4,
    )


def test_provision_creates_one_namespace_per_osd(cluster):
    worker = Worker(cluster, host_id=0)
    nqns = worker.provision_disks()
    assert len(nqns) == 2
    for osd_id in cluster.topology.hosts[0].osd_ids:
        assert worker.nqn_of(osd_id) in nqns


def test_double_provision_rejected(cluster):
    worker = Worker(cluster, host_id=0)
    worker.provision_disks()
    with pytest.raises(ValueError):
        worker.provision_disks()


def test_nqn_of_unprovisioned_osd(cluster):
    worker = Worker(cluster, host_id=0)
    with pytest.raises(KeyError):
        worker.nqn_of(0)


def test_shutdown_and_restore_node(cluster):
    worker = Worker(cluster, host_id=1)
    worker.provision_disks()
    worker.shutdown_node()
    for osd_id in cluster.topology.hosts[1].osd_ids:
        assert not cluster.osds[osd_id].is_up()
    worker.restore()
    for osd_id in cluster.topology.hosts[1].osd_ids:
        assert cluster.osds[osd_id].is_up()


def test_remove_and_restore_device(cluster):
    worker = Worker(cluster, host_id=2)
    worker.provision_disks()
    osd_id = cluster.topology.hosts[2].osd_ids[0]
    worker.remove_device(osd_id)
    assert cluster.osds[osd_id].disk.failed
    assert not cluster.osds[osd_id].is_up()
    worker.restore()
    assert cluster.osds[osd_id].is_up()


def test_deploy_workers_covers_all_hosts(cluster):
    workers = deploy_workers(cluster)
    assert set(workers) == set(cluster.topology.hosts)
    # Provisioning happened: every worker has subsystems.
    for worker in workers.values():
        assert len(worker.target.subsystems) == 2


def test_worker_logs_actions(cluster):
    worker = Worker(cluster, host_id=3)
    worker.provision_disks()
    worker.shutdown_node()
    messages = [r.message for r in cluster.host_logs[3]]
    assert any("provisioned" in m for m in messages)
    assert any("shutdown" in m for m in messages)
