"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(5.0)
    assert env.run() == 5.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_run_until_stops_early():
    env = Environment()
    env.timeout(100.0)
    assert env.run(until=10.0) == 10.0
    assert env.now == 10.0


def test_run_until_past_all_events_advances_to_until():
    env = Environment()
    env.timeout(1.0)
    assert env.run(until=50.0) == 50.0


def test_process_sequences_timeouts():
    env = Environment()
    trace = []

    def proc():
        yield env.timeout(1.0)
        trace.append(env.now)
        yield env.timeout(2.0)
        trace.append(env.now)

    env.process(proc())
    env.run()
    assert trace == [1.0, 3.0]


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        return 42

    p = env.process(proc())
    assert env.run_until_process(p) == 42


def test_process_exception_propagates():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    p = env.process(proc())
    with pytest.raises(RuntimeError, match="boom"):
        env.run_until_process(p)


def test_nested_process_wait():
    env = Environment()

    def child():
        yield env.timeout(3.0)
        return "done"

    def parent():
        result = yield env.process(child())
        return (env.now, result)

    p = env.process(parent())
    assert env.run_until_process(p) == (3.0, "done")


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    trace = []

    def waiter():
        value = yield gate
        trace.append((env.now, value))

    def opener():
        yield env.timeout(7.0)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert trace == [(7.0, "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def waiter():
        yield gate

    def failer():
        yield env.timeout(1.0)
        gate.fail(ValueError("nope"))

    p = env.process(waiter())
    env.process(failer())
    with pytest.raises(ValueError, match="nope"):
        env.run_until_process(p)


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_event_value_before_trigger_raises():
    env = Environment()
    with pytest.raises(RuntimeError):
        env.event().value


def test_waiting_on_already_triggered_event():
    env = Environment()
    done = env.event()
    done.succeed(5)

    def proc():
        value = yield done
        return value

    p = env.process(proc())
    assert env.run_until_process(p) == 5


def test_all_of_waits_for_slowest():
    env = Environment()

    def proc():
        values = yield env.all_of([env.timeout(1, "a"), env.timeout(5, "b"), env.timeout(3, "c")])
        return (env.now, values)

    p = env.process(proc())
    assert env.run_until_process(p) == (5.0, ["a", "b", "c"])


def test_all_of_empty_completes_immediately():
    env = Environment()

    def proc():
        yield env.all_of([])
        return env.now

    p = env.process(proc())
    assert env.run_until_process(p) == 0.0


def test_any_of_returns_first():
    env = Environment()

    def proc():
        value = yield env.any_of([env.timeout(4, "slow"), env.timeout(1, "fast")])
        return (env.now, value)

    p = env.process(proc())
    assert env.run_until_process(p) == (1.0, "fast")


def test_any_of_requires_events():
    env = Environment()
    with pytest.raises(ValueError):
        env.any_of([])


def test_interrupt_raises_in_process():
    env = Environment()
    caught = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            caught.append((env.now, interrupt.cause))

    def interrupter(target):
        yield env.timeout(2.0)
        target.interrupt("shutdown")

    p = env.process(sleeper())
    env.process(interrupter(p))
    env.run()
    assert caught == [(2.0, "shutdown")]


def test_interrupt_dead_process_is_noop():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    p = env.process(quick())
    env.run()
    p.interrupt("late")  # must not raise
    env.run()


def test_yield_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    p = env.process(bad())
    with pytest.raises(TypeError):
        env.run_until_process(p)


def test_tie_break_is_insertion_order():
    env = Environment()
    trace = []

    def make(tag):
        def proc():
            yield env.timeout(1.0)
            trace.append(tag)
        return proc

    for tag in "abc":
        env.process(make(tag)())
    env.run()
    assert trace == ["a", "b", "c"]


def test_determinism_across_runs():
    def scenario():
        env = Environment()
        trace = []

        def worker(name, delay):
            yield env.timeout(delay)
            trace.append((env.now, name))

        for i in range(10):
            env.process(worker(f"w{i}", (i * 7) % 5 + 0.5))
        env.run()
        return trace

    assert scenario() == scenario()


def test_deadlock_detection_in_run_until_process():
    env = Environment()

    def stuck():
        yield env.event()  # never triggered

    p = env.process(stuck())
    with pytest.raises(RuntimeError, match="deadlock"):
        env.run_until_process(p)


def test_unwaited_process_failure_surfaces():
    """A failed fire-and-forget process must not vanish silently."""
    env = Environment()

    def doomed():
        yield env.timeout(1.0)
        raise ValueError("orphan failure")

    env.process(doomed())
    with pytest.raises(ValueError, match="orphan failure"):
        env.run()
