"""Sensitivity analysis: axis impacts, ranking, recommendations."""

import pytest

from repro.analysis import (
    axis_impacts,
    rank_axes,
    recommend_configuration,
)
from repro.core.sweep import SweepResult


def result(label, recovery, wa=1.5, **settings):
    defaults = dict(pg_num=256, stripe_unit=4096, cache_scheme="autotune")
    defaults.update(settings)
    return SweepResult(
        label=label,
        settings=defaults,
        recovery_time=recovery,
        checking_fraction=0.5,
        wa_actual=wa,
        runs=1,
    )


GRID = [
    result("a", 600.0, pg_num=1, cache_scheme="autotune"),
    result("b", 900.0, pg_num=1, cache_scheme="kv-optimized"),
    result("c", 500.0, pg_num=256, cache_scheme="autotune"),
    result("d", 550.0, pg_num=256, cache_scheme="kv-optimized"),
]


def test_axis_impacts_marginalise_other_axes():
    impacts = {i.axis: i for i in axis_impacts(GRID, ["pg_num", "cache_scheme"])}
    pg = impacts["pg_num"]
    # mean(pg=1) = 750, mean(pg=256) = 525 -> impact 142.9%.
    assert pg.impact_percent == pytest.approx(750 / 525 * 100)
    assert pg.best == 256 and pg.worst == 1
    cache = impacts["cache_scheme"]
    # mean(autotune) = 550, mean(kv) = 725 -> 131.8%.
    assert cache.impact_percent == pytest.approx(725 / 550 * 100)
    assert cache.best == "autotune"


def test_rank_axes_orders_by_impact():
    ranked = rank_axes(GRID, ["cache_scheme", "pg_num"])
    assert [i.axis for i in ranked] == ["pg_num", "cache_scheme"]


def test_single_valued_axis_reports_100_percent():
    impacts = axis_impacts(GRID, ["stripe_unit"])
    assert impacts[0].impact_percent == 100.0


def test_axis_impacts_validation():
    with pytest.raises(ValueError):
        axis_impacts([], ["pg_num"])
    with pytest.raises(KeyError):
        axis_impacts(GRID, ["nonexistent"])


def test_recommend_without_budget_picks_fastest():
    rec = recommend_configuration(GRID)
    assert rec.label == "c"
    assert rec.rejected_faster == ()
    assert "recommended configuration: c" in rec.summary()


def test_recommend_with_budget_skips_expensive_fast_configs():
    grid = [
        result("fast-fat", 400.0, wa=2.2),
        result("slow-lean", 700.0, wa=1.4),
    ]
    rec = recommend_configuration(grid, wa_budget=1.5)
    assert rec.label == "slow-lean"
    assert len(rec.rejected_faster) == 1
    assert "rejected" in rec.summary()


def test_recommend_unsatisfiable_budget_raises():
    with pytest.raises(ValueError, match="no configuration satisfies"):
        recommend_configuration(GRID, wa_budget=1.0)


def test_recommend_validates_input():
    with pytest.raises(ValueError):
        recommend_configuration([])
