"""Cascade resilience: correlated faults, risk priority, backpressure.

Covers the four pillars of the cascade subsystem:

- ``correlated_crash`` faults that take a whole failure domain down in
  one event (spec validation, injector selection, white-box guard);
- risk-prioritized recovery admission and the per-PG
  time-at-min-redundancy accounting behind it;
- capacity backpressure: monitor tiers, the cluster-wide write pause,
  backfillfull target exclusion, and the toofull requeue;
- the chaos wiring: cascade sampling, stream exclusivity, the two new
  invariants, and the per-stream pinned outcome hashes that prove the
  pre-existing streams stayed byte-identical.
"""

import json
from types import SimpleNamespace

import pytest

from repro.chaos import (
    CampaignSpec,
    ScheduledAction,
    cascade_scenario,
    run_campaign,
    run_chaos,
    sample_campaign,
)
from repro.chaos.invariants import (
    check_no_avoidable_loss,
    check_priority_soundness,
)
from repro.cluster import CACHE_SCHEMES, CephCluster, CephConfig, check_health
from repro.core.controller import Controller
from repro.core.fault_injector import FaultSpec, FaultToleranceError
from repro.core.profile import ExperimentProfile
from repro.ec import ReedSolomon
from repro.sim import Environment
from repro.workload.generator import Workload

pytestmark = pytest.mark.chaos

KB = 1024
MB = 1024 * 1024


def rack_profile(**overrides):
    """The cascade cluster shape: one host per rack, rack failure domain."""
    defaults = dict(
        name="cascade-test",
        ec_plugin="jerasure",
        ec_params={"k": 4, "m": 2},
        pg_num=8,
        stripe_unit=256 * KB,
        cache_scheme="autotune",
        failure_domain="rack",
        num_hosts=8,
        osds_per_host=2,
        num_racks=8,
    )
    defaults.update(overrides)
    return ExperimentProfile(**defaults)


def rack_controller(seed=0, **overrides):
    controller = Controller(rack_profile(**overrides), seed=seed)
    controller.coordinator.ingest_workload(
        Workload(num_objects=16, object_size=1 * MB)
    )
    controller.env.run(until=10)
    return controller


# -- FaultSpec validation ------------------------------------------------------


def test_correlated_crash_rejects_unknown_domain():
    with pytest.raises(ValueError, match="domain"):
        FaultSpec(level="correlated_crash", domain="datacenter")


@pytest.mark.parametrize("domain", ["host", "rack", "region"])
def test_correlated_crash_accepts_topology_domains(domain):
    spec = FaultSpec(level="correlated_crash", domain=domain)
    assert spec.domain == domain


# -- injector ------------------------------------------------------------------


def test_correlated_crash_fails_a_whole_rack():
    controller = rack_controller(seed=5)
    cluster = controller.cluster
    spec = FaultSpec(level="correlated_crash", domain="rack", count=1)
    affected = controller.fault_injector.inject(spec)
    racks = {
        cluster.topology.bucket_of(osd_id, "rack") for osd_id in affected
    }
    assert len(racks) == 1
    rack = racks.pop()
    rack_osds = sorted(cluster.topology.osds_in_bucket(rack, "rack"))
    assert sorted(affected) == rack_osds
    assert all(not cluster.osds[osd_id].is_up() for osd_id in rack_osds)


def test_correlated_crash_selection_is_deterministic():
    picks = []
    for _ in range(2):
        controller = rack_controller(seed=7)
        spec = FaultSpec(level="correlated_crash", domain="rack", count=1)
        picks.append(sorted(controller.fault_injector.inject(spec)))
    assert picks[0] == picks[1]


def test_correlated_crash_explicit_target_bucket():
    controller = rack_controller(seed=1)
    cluster = controller.cluster
    spec = FaultSpec(
        level="correlated_crash", domain="rack", count=1, targets=(3,)
    )
    affected = controller.fault_injector.inject(spec)
    assert sorted(affected) == sorted(
        cluster.topology.osds_in_bucket(3, "rack")
    )


def test_correlated_crash_rejects_unknown_target_bucket():
    controller = rack_controller(seed=1)
    spec = FaultSpec(
        level="correlated_crash", domain="rack", count=1, targets=(99,)
    )
    with pytest.raises(ValueError):
        controller.fault_injector.inject(spec)


def test_correlated_crash_guard_refuses_overcommit():
    # Three racks down against tolerance m=2: the white-box guard that
    # keeps injected faults below the data-loss line must refuse.
    controller = rack_controller(seed=2)
    spec = FaultSpec(level="correlated_crash", domain="rack", count=3)
    with pytest.raises(FaultToleranceError):
        controller.fault_injector.inject(spec)


def test_correlated_crash_restores_cleanly():
    controller = rack_controller(seed=3)
    cluster = controller.cluster
    spec = FaultSpec(level="correlated_crash", domain="rack", count=1)
    affected = controller.fault_injector.inject(spec)
    controller.fault_injector.restore_all()
    controller.env.run(until=controller.env.now + 1)
    assert all(cluster.osds[osd_id].is_up() for osd_id in affected)


# -- campaign spec rules -------------------------------------------------------


def test_campaign_rejects_rack_cascade_without_racks():
    with pytest.raises(ValueError, match="rack"):
        CampaignSpec(
            seed=1,
            ec_plugin="jerasure",
            ec_params=(("k", 3), ("m", 2)),
            pg_num=4,
            stripe_unit=256 * KB,
            num_hosts=8,
            osds_per_host=1,
            num_objects=4,
            object_size=512 * KB,
            actions=(
                ScheduledAction(
                    at=100.0, kind="inject", level="correlated_crash",
                    domain="rack",
                ),
                ScheduledAction(at=200.0, kind="restore"),
            ),
        )


def test_campaign_rejects_unknown_recovery_priority():
    with pytest.raises(ValueError, match="priority"):
        cascade_scenario(1, recovery_priority="psychic")


def test_cascade_spec_round_trips_through_json():
    spec = cascade_scenario(42, recovery_priority="risk")
    rebuilt = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rebuilt == spec


def test_old_campaign_json_still_loads_with_defaults():
    spec = sample_campaign(77)
    payload = spec.to_dict()
    for key in ("num_racks", "recovery_priority", "track_risk_exposure"):
        payload.pop(key, None)
    rebuilt = CampaignSpec.from_dict(payload)
    assert rebuilt.num_racks == 1
    assert rebuilt.recovery_priority == "fifo"
    assert rebuilt.track_risk_exposure is False


# -- sampler -------------------------------------------------------------------


def test_cascade_sampling_is_deterministic():
    assert sample_campaign(31, cascade=True) == sample_campaign(
        31, cascade=True
    )


def test_cascade_off_flag_is_byte_identical_to_baseline():
    assert sample_campaign(31) == sample_campaign(31, cascade=False)


def test_cascade_campaign_shape():
    for seed in range(8):
        spec = sample_campaign(seed, cascade=True)
        assert spec.failure_domain == "rack"
        assert spec.num_racks > 1
        assert spec.track_risk_exposure is True
        assert spec.recovery_priority in ("fifo", "risk")
        levels = [
            action.level for action in spec.actions
            if action.kind == "inject"
        ]
        assert "correlated_crash" in levels


@pytest.mark.parametrize("other", ["writes", "tenants", "geo", "byzantine"])
def test_cascade_is_exclusive_with_other_streams(other):
    with pytest.raises(ValueError, match="exclusive"):
        sample_campaign(1, cascade=True, **{other: True})


# -- risk priority vs FIFO -----------------------------------------------------


def test_risk_priority_beats_fifo_on_time_at_min_redundancy():
    fifo = run_campaign(cascade_scenario(7, recovery_priority="fifo"))
    risk = run_campaign(cascade_scenario(7, recovery_priority="risk"))
    assert fifo.passed and risk.passed
    fifo_t = fifo.digest["recovery"]["time_at_min_redundancy"]
    risk_t = risk.digest["recovery"]["time_at_min_redundancy"]
    assert risk_t < fifo_t
    assert risk.digest["recovery"]["pgs_recovered"] == (
        fifo.digest["recovery"]["pgs_recovered"]
    )


def test_cascade_scenario_is_deterministic():
    first = run_campaign(cascade_scenario(7, recovery_priority="risk"))
    second = run_campaign(cascade_scenario(7, recovery_priority="risk"))
    assert first.outcome_hash == second.outcome_hash


# -- time-at-min-redundancy accounting ----------------------------------------


def build_cluster(**config_overrides):
    env = Environment()
    config_overrides.setdefault("mon_osd_down_out_interval", 30.0)
    config = CephConfig(**config_overrides)
    cluster = CephCluster(
        env,
        ReedSolomon(4, 2),
        CACHE_SCHEMES["autotune"],
        config=config,
        num_hosts=10,
        pg_num=8,
    )
    for i in range(24):
        cluster.ingest_object(f"o{i}", 2 * MB)
    env.run(until=10)
    return env, cluster


def fail_shards_of_one_pg(cluster, shards):
    pg = next(pg for pg in cluster.pool.pgs.values() if pg.objects)
    hosts = {
        cluster.topology.osds[pg.acting[shard]].host_id for shard in shards
    }
    for host_id in hosts:
        for osd_id in cluster.topology.hosts[host_id].osd_ids:
            cluster.osds[osd_id].host_running = False
    return pg


def test_risk_exposure_clocks_record_time_at_min():
    env, cluster = build_cluster(osd_track_risk_exposure=True)
    fail_shards_of_one_pg(cluster, shards=(0, 1))
    done = cluster.recovery.wait_all_recovered()
    env.run(until=5000)
    assert done.triggered
    stats = cluster.recovery.stats
    assert stats.pgs_at_min_redundancy >= 1
    assert stats.time_at_min_redundancy > 0.0


def test_risk_exposure_accounting_is_off_by_default():
    env, cluster = build_cluster()
    fail_shards_of_one_pg(cluster, shards=(0, 1))
    done = cluster.recovery.wait_all_recovered()
    env.run(until=5000)
    assert done.triggered
    stats = cluster.recovery.stats
    assert stats.pgs_at_min_redundancy == 0
    assert stats.time_at_min_redundancy == 0.0


def test_pgs_at_tolerance_probe():
    env, cluster = build_cluster(mon_osd_down_out_interval=10_000.0)
    assert cluster.recovery.pgs_at_tolerance() == 0
    fail_shards_of_one_pg(cluster, shards=(0, 1))
    assert cluster.recovery.pgs_at_tolerance() >= 1


def test_fifo_runs_record_no_admissions():
    env, cluster = build_cluster()
    fail_shards_of_one_pg(cluster, shards=(0,))
    env.run(until=3000)
    assert cluster.recovery.admission_log == []


def test_risk_runs_admit_lowest_margin_first():
    env, cluster = build_cluster(
        osd_recovery_priority="risk", osd_track_risk_exposure=True
    )
    fail_shards_of_one_pg(cluster, shards=(0, 1))
    env.run(until=3000)
    log = cluster.recovery.admission_log
    assert log, "risk runs record every admission"
    for record in log:
        assert all(m >= record.margin for m in record.pending_margins)


# -- invariants ----------------------------------------------------------------


def test_priority_soundness_flags_unsound_admission():
    from repro.cluster.recovery import AdmissionRecord

    cluster = SimpleNamespace(
        recovery=SimpleNamespace(
            admission_log=[
                AdmissionRecord(
                    at=10.0, pg_id=3, margin=1, pending_margins=(0, 2)
                )
            ]
        )
    )
    violations = check_priority_soundness(cluster)
    assert len(violations) == 1
    assert violations[0].invariant == "priority-soundness"
    assert "pg 3" in violations[0].detail


def test_priority_soundness_passes_sound_log_and_empty_log():
    from repro.cluster.recovery import AdmissionRecord

    sound = SimpleNamespace(
        recovery=SimpleNamespace(
            admission_log=[
                AdmissionRecord(
                    at=10.0, pg_id=1, margin=0, pending_margins=(0, 1, 2)
                )
            ]
        )
    )
    assert check_priority_soundness(sound) == []
    vacuous = SimpleNamespace(recovery=SimpleNamespace(admission_log=[]))
    assert check_priority_soundness(vacuous) == []


def test_no_avoidable_loss_convicts_a_lost_audited_pg():
    pg = SimpleNamespace(pgid="1.0", acting=[0, 1, 2, 3, 4, 5])
    osds = {
        osd_id: SimpleNamespace(is_up=lambda up=(osd_id > 2): up)
        for osd_id in range(6)
    }
    cluster = SimpleNamespace(
        recovery=SimpleNamespace(_abandoned_with_alternative={0: 42.0}),
        pool=SimpleNamespace(
            pgs={0: pg}, code=SimpleNamespace(k=4)
        ),
        osds=osds,
        env=SimpleNamespace(now=100.0),
    )
    violations = check_no_avoidable_loss(cluster)
    assert len(violations) == 1
    assert violations[0].invariant == "no-avoidable-loss"
    assert "t=42" in violations[0].detail


def test_no_avoidable_loss_passes_when_pg_survives():
    pg = SimpleNamespace(pgid="1.0", acting=[0, 1, 2, 3, 4, 5])
    osds = {
        osd_id: SimpleNamespace(is_up=lambda: True) for osd_id in range(6)
    }
    cluster = SimpleNamespace(
        recovery=SimpleNamespace(_abandoned_with_alternative={0: 42.0}),
        pool=SimpleNamespace(pgs={0: pg}, code=SimpleNamespace(k=4)),
        osds=osds,
        env=SimpleNamespace(now=100.0),
    )
    assert check_no_avoidable_loss(cluster) == []


# -- capacity backpressure -----------------------------------------------------


def fill_to(osd, ratio):
    target = int(osd.disk.spec.capacity_bytes * ratio)
    osd.disk.allocate(target - osd.disk.used_bytes)


def test_monitor_tracks_capacity_tiers():
    env, cluster = build_cluster()
    monitor = cluster.monitor
    osd = cluster.osds[0]
    fill_to(osd, 0.86)
    env.run(until=env.now + 6)
    assert monitor.capacity_state[0] == "nearfull"
    fill_to(osd, 0.91)
    env.run(until=env.now + 6)
    assert monitor.capacity_state[0] == "backfillfull"
    assert osd.name in check_health(cluster).backfillfull_osds
    fill_to(osd, 0.96)
    env.run(until=env.now + 6)
    assert monitor.capacity_state[0] == "full"


def test_full_osd_pauses_writes_and_resume_wakes_the_gate():
    env, cluster = build_cluster()
    monitor = cluster.monitor
    assert monitor.write_gate() is None
    osd = cluster.osds[0]
    fill_to(osd, 0.96)
    env.run(until=env.now + 6)
    assert monitor.write_paused
    assert monitor.write_pauses_total == 1
    gate = monitor.write_gate()
    assert gate is not None and not gate.triggered
    osd.disk.free(int(osd.disk.spec.capacity_bytes * 0.5))
    env.run(until=env.now + 6)
    assert not monitor.write_paused
    assert gate.triggered
    assert monitor.write_gate() is None


def test_backfillfull_osds_are_not_backfill_targets():
    env, cluster = build_cluster()
    fill_to(cluster.osds[0], 0.91)
    assert cluster.recovery._backfillfull_osds() == {0}


def test_toofull_backfill_requeues_after_capacity_frees():
    # Regression: a backfill whose push lands on a capacity-starved
    # target must abandon-and-watch, then requeue once space frees —
    # not stay silently degraded forever.
    env, cluster = build_cluster(mon_osd_down_out_interval=20.0)
    pg = next(pg for pg in cluster.pool.pgs.values() if pg.objects)
    acting = set(pg.acting)
    victim_host = cluster.topology.osds[pg.acting[0]].host_id
    victim_osds = set(cluster.topology.hosts[victim_host].osd_ids)
    # Starve every possible replacement target, then kill one shard.
    ballast = {}
    for osd_id, osd in cluster.osds.items():
        if osd_id in acting or osd_id in victim_osds:
            continue
        before = osd.disk.used_bytes
        # Leave less headroom than one rebuilt chunk needs, so every
        # push onto this target hits the toofull wall.
        osd.disk.allocate(osd.disk.headroom_bytes() - 64 * KB)
        ballast[osd_id] = osd.disk.used_bytes - before
    for osd_id in victim_osds:
        cluster.osds[osd_id].host_running = False
    env.run(until=1000)
    stats = cluster.recovery.stats
    assert stats.pgs_abandoned + stats.pgs_unplaceable >= 1
    assert stats.pgs_toofull_requeued == 0
    # Capacity frees; the convergence kick must requeue and recover.
    for osd_id, nbytes in ballast.items():
        cluster.osds[osd_id].disk.free(nbytes)
    assert cluster.recovery.kick_stale()
    done = cluster.recovery.wait_all_recovered()
    env.run(until=6000)
    assert done.triggered
    assert cluster.recovery.stats.pgs_toofull_requeued >= 1
    assert all(
        cluster.osds[osd_id].is_up() for osd_id in pg.acting
    )


# -- chaos wiring: cascade stream + pinned hashes ------------------------------


def test_cascade_chaos_batch_passes_both_new_invariants():
    report = run_chaos(404, 6, cascade=True)
    details = [
        (r.spec.seed, v.invariant, v.detail)
        for r in report.failures
        for v in r.violations
    ]
    assert not report.failures, details
    assert report.campaigns == 6


#: One campaign per stream, seed 11: pinned at the commit that
#: introduced the cascade stream.  The writes/tenants/geo/byzantine
#: hashes were computed on the pre-cascade tree and verified identical
#: here — the proof that the cascade draws (last in the sampler, gated
#: config defaults everywhere else) left every existing stream
#: byte-identical.
PINNED_STREAM_HASHES = {
    "writes": (
        "b1bc13258e4bba37d475e40f4dc9521117e5ffa4d01073a8f54ad4fd65ba9a2b"
    ),
    "tenants": (
        "90e4e4df97fc8790ad72252d20ca4578276d724b87f6e96efa7e013ebcd45102"
    ),
    "geo": (
        "ae8038a4e3e5e7913b6ab2339a3e3ea170c7be7aaceb536cde7128de709efb57"
    ),
    "byzantine": (
        "d3d8e22df99600fd90e44740b30a9554d85e124119b19d13e7109d082f75136e"
    ),
    "cascade": (
        "82b1a47d52163c72be74dd4fc04f1f4af8f72da78c1ffdfca7f3db545f46176e"
    ),
}


@pytest.mark.parametrize("stream", sorted(PINNED_STREAM_HASHES))
def test_per_stream_outcome_hash_pinned(stream):
    spec = sample_campaign(11, **{stream: True})
    result = run_campaign(spec)
    assert result.outcome_hash == PINNED_STREAM_HASHES[stream]
