"""Region-aware CRUSH: rule compliance, determinism, remap caps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterTopology, CrushMap, FailureDomain, PlacementError
from repro.ec import create_plugin
from repro.geo.rules import RegionRule
from repro.sim import Environment


def make_crush(num_hosts, num_regions, seed=42, osds_per_host=2):
    topo = ClusterTopology(
        Environment(),
        num_hosts=num_hosts,
        osds_per_host=osds_per_host,
        num_regions=num_regions,
    )
    return CrushMap(topo, seed=seed)


def region_counts(crush, acting):
    counts = {}
    for osd in acting:
        region = crush.topology.region_of(osd)
        counts[region] = counts.get(region, 0) + 1
    return counts


# -- RegionRule contract ------------------------------------------------------


def test_rule_validation():
    with pytest.raises(ValueError):
        RegionRule(spread=0)
    with pytest.raises(ValueError):
        RegionRule(spread=2, max_shards_per_region=0)
    with pytest.raises(ValueError):
        RegionRule(spread=4).validate_width(3)  # spread > width
    with pytest.raises(ValueError):
        RegionRule(spread=3, max_shards_per_region=1).validate_width(6)


def test_rule_default_cap_is_balanced_ceiling():
    assert RegionRule(spread=3).cap_for(7) == 3
    assert RegionRule(spread=3).cap_for(6) == 2
    assert RegionRule(spread=3, max_shards_per_region=4).cap_for(6) == 4


def test_affinity_validation():
    with pytest.raises(ValueError):
        RegionRule(spread=2, affinity=(0, 0, 2))  # slot out of range
    with pytest.raises(ValueError):
        RegionRule(spread=3, affinity=(0, 1, 0, 1))  # slot 2 never used
    with pytest.raises(ValueError):
        # length mismatch with the stripe width
        RegionRule(spread=2, affinity=(0, 1)).validate_width(4)
    with pytest.raises(ValueError):
        # slot 0 holds 3 shards but the cap for width 4 over 2 regions is 2
        RegionRule(spread=2, affinity=(0, 0, 0, 1)).validate_width(4)
    RegionRule(spread=2, affinity=(0, 0, 1, 1)).validate_width(4)


# -- property tests -----------------------------------------------------------

WIDTHS = st.sampled_from([5, 6, 7, 9])


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**20), pg=st.integers(0, 63), width=WIDTHS)
def test_placement_respects_region_rule(seed, pg, width):
    """Every stripe spans `spread` regions, none above the cap, with
    at most one shard per host."""
    crush = make_crush(num_hosts=12, num_regions=3, seed=seed)
    rule = RegionRule(spread=3)
    acting = crush.place_pg(1, pg, width, FailureDomain.HOST, region_rule=rule)
    assert len(acting) == width
    counts = region_counts(crush, acting)
    assert len(counts) == rule.spread
    assert max(counts.values()) <= rule.cap_for(width)
    hosts = [crush.topology.osds[o].host_id for o in acting]
    assert len(set(hosts)) == width  # host spread within regions


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**20), pg=st.integers(0, 63))
def test_placement_is_deterministic_per_seed(seed, pg):
    a = make_crush(12, 3, seed=seed)
    b = make_crush(12, 3, seed=seed)
    rule = RegionRule(spread=3)
    assert a.place_pg(1, pg, 6, FailureDomain.HOST, region_rule=rule) == \
        b.place_pg(1, pg, 6, FailureDomain.HOST, region_rule=rule)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**20), pg=st.integers(0, 31))
def test_remap_after_host_loss_stays_under_cap(seed, pg):
    """Excluding one host's OSDs never concentrates a stripe past the
    per-region cap, and unaffected shards keep their OSDs."""
    crush = make_crush(num_hosts=12, num_regions=3, seed=seed)
    rule = RegionRule(spread=3)
    base = crush.place_pg(1, pg, 6, FailureDomain.HOST, region_rule=rule)
    victim_host = crush.topology.osds[base[0]].host_id
    excluded = {
        o for o in crush.topology.osds
        if crush.topology.osds[o].host_id == victim_host
    }
    remapped = crush.place_pg(
        1, pg, 6, FailureDomain.HOST,
        excluded_osds=excluded, region_rule=rule,
    )
    counts = region_counts(crush, remapped)
    assert max(counts.values()) <= rule.cap_for(6)
    assert not set(remapped) & excluded
    for shard, osd in enumerate(base):
        if osd not in excluded:
            assert remapped[shard] == osd  # minimal remap


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**20), pg=st.integers(0, 31))
def test_remap_after_region_outage_is_unplaceable_when_cap_is_tight(seed, pg):
    """With a balanced cap, losing a whole region leaves no legal remap:
    the two survivors cannot absorb the displaced shards without
    breaking the rule — the placement must fail, never over-fill."""
    crush = make_crush(num_hosts=12, num_regions=3, seed=seed)
    rule = RegionRule(spread=3)
    excluded = {
        o for o in crush.topology.osds
        if crush.topology.region_of(o) == 0
    }
    with pytest.raises(PlacementError):
        crush.place_pg(
            1, pg, 6, FailureDomain.HOST,
            excluded_osds=excluded, region_rule=rule,
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**20), pg=st.integers(0, 31))
def test_remap_after_region_outage_respects_relaxed_cap(seed, pg):
    """A rule that allows degraded concentration places the stripe in
    the surviving regions without ever exceeding its explicit cap."""
    crush = make_crush(num_hosts=12, num_regions=3, seed=seed)
    rule = RegionRule(spread=3, max_shards_per_region=3)
    excluded = {
        o for o in crush.topology.osds
        if crush.topology.region_of(o) == 0
    }
    remapped = crush.place_pg(
        1, pg, 6, FailureDomain.HOST,
        excluded_osds=excluded, region_rule=rule,
    )
    counts = region_counts(crush, remapped)
    assert 0 not in counts
    assert max(counts.values()) <= 3


# -- code-driven affinity -----------------------------------------------------


def test_lrc_affinity_keeps_local_groups_region_coherent():
    code = create_plugin("lrc", k=4, l=2, r=1)
    affinity = code.placement_affinity(3)
    assert affinity is not None
    # Each local group (data + its local parity) shares one slot.
    for group in range(2):
        slots = {affinity[idx] for idx in code.group_members(group)}
        assert len(slots) == 1
    # All three slots are used and none exceeds ceil(7/3).
    assert set(affinity) == {0, 1, 2}
    assert max(affinity.count(s) for s in set(affinity)) <= 3


def test_lrc_affinity_declines_when_layout_cannot_fit():
    # A single-region stripe has nothing to group.
    assert create_plugin("lrc", k=4, l=2, r=1).placement_affinity(1) is None
    # Two groups and no global parities would leave the third slot empty.
    assert create_plugin("lrc", k=4, l=2, r=0).placement_affinity(3) is None
    # MDS codes have no sub-stripe locality to protect.
    assert create_plugin("jerasure", k=4, m=2).placement_affinity(3) is None


def test_affinity_placement_lands_groups_in_one_region():
    """End to end: an LRC stripe placed under a 3-region rule keeps each
    local group inside a single region."""
    code = create_plugin("lrc", k=4, l=2, r=1)
    crush = make_crush(num_hosts=12, num_regions=3, seed=7)
    rule = RegionRule(spread=3, affinity=tuple(code.placement_affinity(3)))
    for pg in range(16):
        acting = crush.place_pg(1, pg, code.n, FailureDomain.HOST,
                                region_rule=rule)
        for group in range(2):
            regions = {
                crush.topology.region_of(acting[idx])
                for idx in code.group_members(group)
            }
            assert len(regions) == 1
