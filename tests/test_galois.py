"""GF(256) arithmetic: axioms, table consistency, and vector kernels."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ec.galois import (
    addmul_scalar_vector,
    gf_add,
    gf_div,
    gf_exp,
    gf_inv,
    gf_log,
    gf_mul,
    gf_pow,
    gf_sub,
    mul_scalar_vector,
)

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


def test_add_is_xor():
    assert gf_add(0b1010, 0b0110) == 0b1100


def test_sub_equals_add():
    assert gf_sub(77, 13) == gf_add(77, 13)


def test_mul_identity_and_zero():
    for a in range(256):
        assert gf_mul(a, 1) == a
        assert gf_mul(a, 0) == 0


def test_known_products():
    # 2 is the field generator for 0x11d: 2 * 128 = x^8 = 0x11d - x^8 = 0x1d.
    assert gf_mul(2, 128) == 0x1D
    assert gf_mul(3, 7) == (7 ^ gf_mul(2, 7))  # (x+1)*a == a + x*a


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        gf_mul(256, 1)
    with pytest.raises(ValueError):
        gf_add(-1, 0)


@given(elements, elements)
def test_mul_commutative(a, b):
    assert gf_mul(a, b) == gf_mul(b, a)


@given(elements, elements, elements)
def test_mul_associative(a, b, c):
    assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))


@given(elements, elements, elements)
def test_distributive(a, b, c):
    assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))


@given(nonzero)
def test_inverse_roundtrip(a):
    assert gf_mul(a, gf_inv(a)) == 1


@given(elements, nonzero)
def test_div_is_mul_by_inverse(a, b):
    assert gf_div(a, b) == gf_mul(a, gf_inv(b))


def test_div_by_zero():
    with pytest.raises(ZeroDivisionError):
        gf_div(5, 0)
    with pytest.raises(ZeroDivisionError):
        gf_inv(0)


@given(nonzero, st.integers(min_value=-10, max_value=10))
def test_pow_matches_repeated_mul(a, e):
    expected = 1
    base = a if e >= 0 else gf_inv(a)
    for _ in range(abs(e)):
        expected = gf_mul(expected, base)
    assert gf_pow(a, e) == expected


def test_pow_zero_base():
    assert gf_pow(0, 0) == 1
    assert gf_pow(0, 5) == 0
    with pytest.raises(ZeroDivisionError):
        gf_pow(0, -1)


@given(nonzero)
def test_exp_log_roundtrip(a):
    assert gf_exp(gf_log(a)) == a


def test_log_of_zero_rejected():
    with pytest.raises(ValueError):
        gf_log(0)


def test_generator_order_255():
    seen = set()
    for power in range(255):
        seen.add(gf_exp(power))
    assert len(seen) == 255  # generator hits every nonzero element


# -- vector kernels -------------------------------------------------------------


@given(elements, st.binary(min_size=1, max_size=64))
def test_mul_scalar_vector_matches_scalar(scalar, data):
    vec = np.frombuffer(data, dtype=np.uint8)
    out = mul_scalar_vector(scalar, vec)
    for got, byte in zip(out, vec):
        assert got == gf_mul(scalar, int(byte))


def test_mul_scalar_vector_type_check():
    with pytest.raises(TypeError):
        mul_scalar_vector(3, np.zeros(4, dtype=np.uint16))


def test_mul_scalar_vector_special_cases():
    vec = np.array([1, 2, 3], dtype=np.uint8)
    assert np.array_equal(mul_scalar_vector(0, vec), np.zeros(3, dtype=np.uint8))
    assert np.array_equal(mul_scalar_vector(1, vec), vec)
    # Result must be a copy, not a view.
    out = mul_scalar_vector(1, vec)
    out[0] = 99
    assert vec[0] == 1


@given(elements, st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
def test_addmul_accumulates(scalar, acc_data, vec_data):
    size = min(len(acc_data), len(vec_data))
    acc = np.frombuffer(acc_data[:size], dtype=np.uint8).copy()
    vec = np.frombuffer(vec_data[:size], dtype=np.uint8)
    expected = acc ^ mul_scalar_vector(scalar, vec)
    addmul_scalar_vector(acc, scalar, vec)
    assert np.array_equal(acc, expected)


def test_addmul_zero_scalar_is_noop():
    acc = np.array([5, 6], dtype=np.uint8)
    addmul_scalar_vector(acc, 0, np.array([9, 9], dtype=np.uint8))
    assert np.array_equal(acc, np.array([5, 6], dtype=np.uint8))
