"""Property tests for Pareto dominance, fronts, and recommendations.

Hypothesis generates small populations of synthetic measurements; the
invariants pinned down here are the ones the strategy and runner lean
on: dominance is irreflexive and antisymmetric, the front contains no
dominated point, and everything dropped from the front is dominated by
some front member.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tuner import (
    DEGRADED_P99,
    Fidelity,
    Measurement,
    Objective,
    RECOVERY_TIME,
    WRITE_AMPLIFICATION,
    default_objectives,
    dominates,
    pareto_front,
    recommend,
)

OBJECTIVES = (RECOVERY_TIME, WRITE_AMPLIFICATION)


def make_measurement(index, recovery, wa, p99=None):
    return Measurement(
        signature=f"sig-{index}",
        settings={"ec_plugin": "jerasure", "ec_params": {"k": 9, "m": 3},
                  "pg_num": 16 + index},
        fidelity=Fidelity(8),
        recovery_time=recovery,
        checking_fraction=0.5,
        wa_actual=wa,
        degraded_p99=p99,
        cost=8,
    )


metric = st.floats(min_value=0.0, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


@st.composite
def populations(draw, max_size=12):
    pairs = draw(st.lists(st.tuples(metric, metric), min_size=1,
                          max_size=max_size))
    return [make_measurement(i, r, w) for i, (r, w) in enumerate(pairs)]


# -- dominance properties -------------------------------------------------------


@given(populations(max_size=1))
def test_dominance_is_irreflexive(population):
    point = population[0]
    assert not dominates(point, point, OBJECTIVES)


@given(populations(max_size=6))
@settings(max_examples=200)
def test_dominance_is_antisymmetric(population):
    for a in population:
        for b in population:
            assert not (dominates(a, b, OBJECTIVES)
                        and dominates(b, a, OBJECTIVES))


@given(populations())
@settings(max_examples=200)
def test_front_contains_no_dominated_point(population):
    front = pareto_front(population, OBJECTIVES)
    assert front
    for member in front:
        assert not any(dominates(other, member, OBJECTIVES)
                       for other in population)


@given(populations())
@settings(max_examples=200)
def test_every_dropped_point_is_dominated_by_a_front_member(population):
    front = pareto_front(population, OBJECTIVES)
    front_signatures = {m.signature for m in front}
    for point in population:
        if point.signature not in front_signatures:
            assert any(dominates(member, point, OBJECTIVES)
                       for member in front)


@given(populations())
def test_recommendation_comes_from_the_front(population):
    recommendation = recommend(population, OBJECTIVES)
    assert recommendation.chosen in recommendation.front
    front_signatures = {m.signature for m in
                        pareto_front(population, OBJECTIVES)}
    assert {m.signature for m in recommendation.front} <= front_signatures


# -- unit behaviour -------------------------------------------------------------


def test_duplicate_signatures_collapse_before_dominance():
    a = make_measurement(0, 10.0, 1.4)
    duplicate = make_measurement(0, 10.0, 1.4)
    front = pareto_front([a, duplicate], OBJECTIVES)
    assert front == [a]


def test_single_objective_front_is_the_minimum():
    population = [make_measurement(i, r, 1.5) for i, r in
                  enumerate([30.0, 10.0, 20.0])]
    front = pareto_front(population, [RECOVERY_TIME])
    assert [m.recovery_time for m in front] == [10.0]


def test_budget_prefers_feasible_front_members():
    fast_but_fat = make_measurement(0, 10.0, 2.0)
    slow_but_lean = make_measurement(1, 30.0, 1.4)
    objectives = (RECOVERY_TIME, WRITE_AMPLIFICATION.with_budget(1.5))
    recommendation = recommend([fast_but_fat, slow_but_lean], objectives)
    assert recommendation.feasible
    assert recommendation.chosen is slow_but_lean


def test_infeasible_everywhere_falls_back_with_warning():
    population = [make_measurement(0, 10.0, 2.0),
                  make_measurement(1, 30.0, 1.9)]
    objectives = (RECOVERY_TIME, WRITE_AMPLIFICATION.with_budget(1.5))
    recommendation = recommend(population, objectives)
    assert not recommendation.feasible
    assert "WARNING" in recommendation.summary()
    assert recommendation.summary().startswith("recommended configuration:")


def test_missing_probe_metric_raises_a_helpful_error():
    point = make_measurement(0, 10.0, 1.4, p99=None)
    with pytest.raises(ValueError, match="read probe"):
        DEGRADED_P99.value(point)


def test_max_sense_objective_flips_orientation():
    objective = Objective("recovery_time", sense="max")
    a = make_measurement(0, 10.0, 1.4)
    b = make_measurement(1, 20.0, 1.4)
    assert objective.loss(b) < objective.loss(a)
    assert objective.with_budget(15.0).feasible(b)
    assert not objective.with_budget(15.0).feasible(a)
    with pytest.raises(ValueError, match="sense"):
        Objective("recovery_time", sense="up")


def test_default_objectives_gate_p99_on_probe():
    names = [o.name for o in default_objectives()]
    assert names == ["recovery_time", "wa_actual"]
    with_probe = default_objectives(p99_budget=0.5)
    assert [o.name for o in with_probe][-1] == "degraded_p99"
    assert with_probe[-1].budget == 0.5


def test_recommend_requires_measurements():
    with pytest.raises(ValueError, match="no measurements"):
        recommend([], OBJECTIVES)
