"""ErasureCode base contract: registry, geometry, plans, validation."""

import pytest

from repro.ec import (
    ClayCode,
    InsufficientChunksError,
    ReedSolomon,
    available_plugins,
    create_plugin,
)
from repro.ec.base import ChunkUnavailableError, RepairPlan, RepairRead


def test_all_paper_plugins_registered():
    plugins = available_plugins()
    for name in ("jerasure", "isa", "clay", "lrc", "shec"):
        assert name in plugins


def test_create_plugin_by_name():
    code = create_plugin("jerasure", k=4, m=2)
    assert isinstance(code, ReedSolomon)
    assert (code.k, code.m, code.n) == (4, 2, 6)


def test_create_unknown_plugin():
    with pytest.raises(KeyError, match="unknown EC plugin"):
        create_plugin("nonexistent", k=2, m=1)


def test_plugin_name_attribute():
    assert ReedSolomon(4, 2).plugin_name == "jerasure"
    assert ClayCode(4, 2).plugin_name == "clay"


def test_invalid_km_rejected():
    with pytest.raises(ValueError):
        ReedSolomon(0, 2)
    with pytest.raises(ValueError):
        ReedSolomon(4, 0)


def test_storage_overhead_is_n_over_k():
    code = ReedSolomon(9, 3)
    assert code.storage_overhead == pytest.approx(12 / 9)


def test_fault_tolerance_is_m():
    assert ReedSolomon(9, 3).fault_tolerance() == 3


def test_chunk_size_rounds_up():
    code = ReedSolomon(4, 2)
    assert code.chunk_size(0) == 1
    assert code.chunk_size(1) == 1
    assert code.chunk_size(4) == 1
    assert code.chunk_size(5) == 2
    with pytest.raises(ValueError):
        code.chunk_size(-1)


def test_chunk_size_aligned_to_subchunks():
    clay = ClayCode(2, 2)  # alpha = 4
    assert clay.chunk_size(1) % clay.sub_chunk_count == 0
    assert clay.chunk_size(9) % clay.sub_chunk_count == 0


def test_default_repair_plan_reads_k_full_chunks():
    code = ReedSolomon(9, 3)
    alive = [i for i in range(12) if i != 3]
    plan = code.repair_plan([3], alive)
    assert plan.helpers == 9
    assert plan.read_fraction_total() == pytest.approx(9.0)
    assert plan.repair_bandwidth_ratio(code.k) == pytest.approx(1.0)
    assert plan.lost == (3,)
    assert all(r.fraction == 1.0 and r.io_ops == 1 for r in plan.reads)


def test_repair_plan_validates_indices():
    code = ReedSolomon(4, 2)
    with pytest.raises(ChunkUnavailableError):
        code.repair_plan([9], [0, 1, 2, 3])
    with pytest.raises(ValueError, match="both lost and alive"):
        code.repair_plan([1], [1, 2, 3, 4])


def test_repair_plan_insufficient_survivors():
    code = ReedSolomon(4, 2)
    with pytest.raises(InsufficientChunksError):
        code.repair_plan([0, 1, 2], [3, 4, 5])


def test_repair_plan_dataclass_helpers():
    plan = RepairPlan(
        lost=(1,),
        reads=(
            RepairRead(chunk_index=0, fraction=0.5, io_ops=2),
            RepairRead(chunk_index=2, fraction=0.5, io_ops=2),
        ),
        decode_work=1.5,
    )
    assert plan.helpers == 2
    assert plan.read_fraction_total() == pytest.approx(1.0)
    assert plan.repair_bandwidth_ratio(4) == pytest.approx(0.25)


def test_decode_roundtrip_via_base_decode():
    code = ReedSolomon(4, 2)
    data = bytes(range(100))
    chunks = code.encode(data)
    available = {i: chunks[i] for i in (1, 2, 4, 5)}
    assert code.decode(available, len(data)) == data


def test_encode_empty_payload():
    code = ReedSolomon(4, 2)
    chunks = code.encode(b"")
    assert len(chunks) == 6
    assert code.decode({i: chunks[i] for i in range(4)}, 0) == b""


def test_duplicate_plugin_registration_rejected():
    from repro.ec.base import register_plugin

    with pytest.raises(ValueError, match="duplicate"):

        @register_plugin("jerasure")
        class Twin(ReedSolomon):
            pass
