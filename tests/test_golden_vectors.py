"""Golden-vector regression tests for the GF(256) and matrix layers.

The arithmetic tables are pinned against the canonical GF(2^8) tables
for the 0x11d primitive polynomial — the field Jerasure and ISA-L use —
so any change to table construction that silently alters the field shows
up as a failed vector, not as subtly different parity bytes.  Generator
matrices and an RS encode are pinned as regression vectors: they must
never change for fixed parameters, or stored stripes in any long-lived
deployment would stop decoding.
"""

import numpy as np
import pytest

from repro.ec.base import create_plugin
from repro.ec.galois import (
    GF_PRIM_POLY,
    exp_table,
    gf_div,
    gf_exp,
    gf_inv,
    gf_log,
    gf_mul,
    gf_pow,
)
from repro.ec.matrix import cauchy, systematic_vandermonde_generator, vandermonde

# The first 32 entries of the canonical 0x11d antilog table (Jerasure's
# gf_complete and ISA-L both generate exactly this sequence).
CANONICAL_EXP_PREFIX = [
    1, 2, 4, 8, 16, 32, 64, 128, 29, 58, 116, 232, 205, 135, 19, 38,
    76, 152, 45, 90, 180, 117, 234, 201, 143, 3, 6, 12, 24, 48, 96, 192,
]

# Spot values of the canonical 0x11d log table.
CANONICAL_LOGS = {2: 1, 3: 25, 4: 2, 8: 3, 29: 8, 255: 175, 1: 0}


def test_primitive_polynomial_is_jerasure_default():
    assert GF_PRIM_POLY == 0x11D


def test_exp_table_prefix_matches_canonical():
    table = exp_table()
    assert table[: len(CANONICAL_EXP_PREFIX)] == CANONICAL_EXP_PREFIX


def test_exp_table_is_a_full_cycle():
    table = exp_table()
    assert len(table) == 255
    assert sorted(table) == list(range(1, 256))  # every nonzero element once
    assert gf_exp(255) == gf_exp(0) == 1  # alpha^255 == 1 (wraps)


def test_log_spot_values():
    for value, log in CANONICAL_LOGS.items():
        assert gf_log(value) == log, f"log({value})"


def test_mul_reduction_vectors():
    # 2 * 128 = 256 -> reduced by 0x11d to 29: the defining reduction.
    assert gf_mul(2, 128) == 29
    assert gf_mul(2, 142) == 1  # hence inv(2) = 142
    assert gf_inv(2) == 142
    assert gf_mul(0x80, 0x80) == 19  # alpha^7 * alpha^7 = alpha^14
    assert gf_exp(14) == 19  # from the canonical table prefix
    assert gf_mul(0, 123) == 0 and gf_mul(123, 0) == 0


def test_div_and_pow_consistency():
    for a in (1, 2, 3, 29, 142, 255):
        assert gf_div(gf_mul(a, 77), 77) == a
        assert gf_pow(a, 2) == gf_mul(a, a)


def test_vandermonde_rows_are_powers():
    v = vandermonde(3, 4)
    for row in range(1, 3):
        for col in range(4):
            assert v[row][col] == gf_pow(row, col)
    # Row r is [1, r, r^2, r^3] in GF(256).
    assert list(v[2]) == [1, 2, 4, 8]


def test_cauchy_matrix_golden():
    assert cauchy(2, 3).tolist() == [[244, 142, 1], [71, 167, 122]]
    assert cauchy(3, 4).tolist() == [
        [71, 167, 122, 186],
        [167, 71, 186, 122],
        [122, 186, 71, 167],
    ]


def test_cauchy_entries_are_inverses_of_sums():
    # cauchy[i][j] = 1 / (x_i + y_j) with default x = m.., y = 0..;
    # verify against independent field arithmetic.
    m, k = 3, 4
    matrix = cauchy(m, k)
    for i in range(m):
        for j in range(k):
            assert matrix[i][j] == gf_inv((k + i) ^ j)


def test_systematic_vandermonde_generator_golden():
    generator = systematic_vandermonde_generator(6, 4)
    assert generator[:4].tolist() == np.eye(4, dtype=int).tolist()
    assert generator[4:].tolist() == [
        [82, 247, 2, 166],
        [247, 7, 4, 245],
    ]


def test_rs_encode_golden_vector():
    rs = create_plugin("jerasure", k=4, m=2)
    chunks = rs.encode(bytes(range(16)))
    assert [np.asarray(c).tolist() for c in chunks] == [
        [0, 1, 2, 3],
        [4, 5, 6, 7],
        [8, 9, 10, 11],
        [12, 13, 14, 15],
        [16, 17, 18, 19],
        [52, 53, 54, 55],
    ]


def test_rs_golden_vector_decodes_back():
    rs = create_plugin("jerasure", k=4, m=2)
    chunks = rs.encode(bytes(range(16)))
    available = {4: chunks[4], 5: chunks[5], 0: chunks[0], 2: chunks[2]}
    decoded = rs.decode_chunks(available, [1, 3])
    assert np.asarray(decoded[1]).tolist() == [4, 5, 6, 7]
    assert np.asarray(decoded[3]).tolist() == [12, 13, 14, 15]


@pytest.mark.parametrize("plugin,params", [
    ("jerasure", {"k": 4, "m": 2}),
    ("isa", {"k": 4, "m": 2}),
])
def test_rs_variants_share_field(plugin, params):
    # Both RS plugins run over the same 0x11d field, so the parity of a
    # one-byte-per-chunk stripe is a direct generator-row readout.
    code = create_plugin(plugin, **params)
    chunks = code.encode(bytes([1, 0, 0, 0]))
    assert np.asarray(chunks[0]).tolist() == [1]
