"""Unit tests for the analytical twin's closed forms.

Every expectation here is hand-computed from the paper's formulas and
the BlueStore accounting constants — never from the DES — so these
tests pin the twin's arithmetic independently of the simulator it
mirrors.  (The twin-vs-DES agreement itself is the differential
harness's job: ``test_twin_differential.py``.)
"""

import pytest

from repro.core.fault_injector import FaultSpec
from repro.core.profile import ExperimentProfile
from repro.twin import (
    AnalyticalTwin,
    TwinCalibration,
    predict,
    predict_overwrite_amplification,
)
from repro.workload.generator import Workload

MB = 1024 * 1024
KB = 1024


def make_profile(**overrides):
    defaults = dict(
        name="twin-unit",
        ec_plugin="jerasure",
        ec_params={"k": 4, "m": 2},
        num_hosts=8,
        osds_per_host=1,
        pg_num=64,
        stripe_unit=1 * MB,
    )
    defaults.update(overrides)
    return ExperimentProfile(**defaults)


NODE_FAULT = [FaultSpec(level="node", count=1)]


# -- WA closed form (Table 3 arithmetic) ------------------------------------------


def test_wa_closed_form_rs_small_grid():
    # k=4, su=1MB, 6MB object: units = ceil(6 / (4*1)) = 2, chunk = 2MB.
    # Per chunk: allocation = 2MB (already 4KiB-aligned), metadata =
    # onode 64 + ec attr 32 + 2 extents * 16 = 128.  n=6 chunks/object.
    profile = make_profile()
    workload = Workload(num_objects=10, object_size=6 * MB)
    prediction = predict(profile, workload, [])
    per_chunk = 2 * MB + 64 + 32 + 2 * 16
    assert prediction.used_bytes == 10 * 6 * per_chunk
    assert prediction.wa_actual == pytest.approx(
        10 * 6 * per_chunk / (10 * 6 * MB), rel=1e-12
    )


def test_wa_closed_form_padding():
    # 5MB object, k=4, su=1MB: units = ceil(5/4) = 2, so each chunk
    # stores 2MB — 60% padding waste before metadata even enters.
    profile = make_profile()
    workload = Workload(num_objects=4, object_size=5 * MB)
    prediction = predict(profile, workload, [])
    assert prediction.used_bytes == 4 * 6 * (2 * MB + 128)
    # Theoretical n/k = 1.5; padding alone lifts actual above 2.4.
    assert prediction.wa_actual > 2.4


def test_wa_closed_form_integrity_checksums():
    # Enabling scrubbing persists crc32c values: one 4-byte checksum
    # per 4KiB csum block, 2MB/4KiB = 512 blocks -> 2048 extra bytes.
    plain = predict(
        make_profile(), Workload(num_objects=10, object_size=6 * MB), []
    )
    checked = predict(
        make_profile(scrub_interval=300.0),
        Workload(num_objects=10, object_size=6 * MB),
        [],
    )
    assert checked.used_bytes - plain.used_bytes == 10 * 6 * 512 * 4


# -- read amplification (repair plans) --------------------------------------------


def test_rs_read_amplification_is_k():
    # RS repairs any single loss from k full chunks; with one OSD per
    # host a node fault loses exactly one chunk per affected PG.
    prediction = predict(
        make_profile(), Workload(num_objects=32, object_size=4 * MB), NODE_FAULT
    )
    assert prediction.repair_bytes_read > 0
    assert prediction.repair_bytes_read / prediction.repair_bytes_written == (
        pytest.approx(4.0, rel=1e-9)
    )


def test_clay_read_amplification_is_fractional():
    # Clay(k=4,m=2,d=5) reads d helpers at fraction 1/(d-k+1) = 1/2
    # each: 5 * 0.5 = 2.5 chunk-equivalents per repaired chunk.
    prediction = predict(
        make_profile(ec_plugin="clay", ec_params={"k": 4, "m": 2, "d": 5}),
        Workload(num_objects=32, object_size=4 * MB),
        NODE_FAULT,
    )
    assert prediction.repair_bytes_read / prediction.repair_bytes_written == (
        pytest.approx(2.5, rel=1e-9)
    )


def test_lrc_read_amplification_averages_local_and_global():
    # LRC(k=4,l=2,r=2), n=8.  Positions 0-5 (data + local parities)
    # repair from their 2-member local group; the 2 global parities need
    # a k-wide global decode: (6*2 + 2*4) / 8 = 2.5.
    prediction = predict(
        make_profile(
            ec_plugin="lrc",
            ec_params={"k": 4, "l": 2, "r": 2},
            num_hosts=10,
        ),
        Workload(num_objects=32, object_size=4 * MB),
        NODE_FAULT,
    )
    assert prediction.repair_bytes_read / prediction.repair_bytes_written == (
        pytest.approx(2.5, rel=1e-9)
    )


# -- checking period ---------------------------------------------------------------


def test_checking_period_closed_form():
    # Detection is tick-aligned with the down/out interval, so checking
    # = mon_osd_down_out_interval + peering (base + per-object share).
    profile = make_profile()
    workload = Workload(num_objects=32, object_size=4 * MB)
    prediction = predict(profile, workload, NODE_FAULT)
    config = profile.ceph
    expected = (
        config.mon_osd_down_out_interval
        + config.peering_base
        + config.peering_per_object * (32 / 64)
    )
    assert prediction.checking_period == pytest.approx(expected, rel=1e-12)
    assert 0.0 < prediction.checking_fraction < 1.0


def test_gray_faults_predict_no_recovery():
    # Gray levels never change the osdmap: no backfill, no timeline.
    prediction = predict(
        make_profile(),
        Workload(num_objects=32, object_size=4 * MB),
        [FaultSpec(level="slow_device", count=1, factor=4.0)],
    )
    assert prediction.recovery_time == 0.0
    assert prediction.repair_bytes_read == 0.0


# -- RMW overwrite amplification ---------------------------------------------------


def test_rmw_overwrite_amplification_is_one_plus_m():
    # A partial-stripe RMW rewrites the data unit plus every parity.
    profile = make_profile(ec_params={"k": 9, "m": 3})
    assert predict_overwrite_amplification(profile) == 4.0
    assert predict_overwrite_amplification(profile, rmw_fraction=1.0) == 4.0


def test_full_stripe_overwrite_amplification_is_n_over_k():
    profile = make_profile(ec_params={"k": 9, "m": 3})
    assert predict_overwrite_amplification(
        profile, rmw_fraction=0.0
    ) == pytest.approx(12 / 9, rel=1e-12)


def test_mixed_overwrite_amplification_interpolates():
    profile = make_profile(ec_params={"k": 4, "m": 2})
    full, rmw = 6 / 4, 1 + 2
    assert predict_overwrite_amplification(
        profile, rmw_fraction=0.25
    ) == pytest.approx(0.25 * rmw + 0.75 * full, rel=1e-12)
    with pytest.raises(ValueError):
        predict_overwrite_amplification(profile, rmw_fraction=1.5)


# -- calibration validation --------------------------------------------------------


def test_calibration_rejects_bad_values():
    with pytest.raises(ValueError):
        TwinCalibration(chain_exponent=1.5)
    with pytest.raises(ValueError):
        TwinCalibration(read_efficiency=0.0)


def test_twin_is_stateless_across_predictions():
    twin = AnalyticalTwin()
    workload = Workload(num_objects=32, object_size=4 * MB)
    first = twin.predict(make_profile(), workload, NODE_FAULT)
    twin.predict(
        make_profile(pg_num=16), Workload(num_objects=8, object_size=1 * MB),
        [FaultSpec(level="device", count=2)],
    )
    again = twin.predict(make_profile(), workload, NODE_FAULT)
    assert first.digest_json() == again.digest_json()


# -- WAN-hop term (stretch clusters) ------------------------------------------


def test_single_region_prediction_has_no_wan_term():
    prediction = predict(
        make_profile(), Workload(num_objects=16, object_size=4 * MB),
        NODE_FAULT,
    )
    assert prediction.wan_cross_read_bytes is None
    assert "wan_cross_read_bytes" not in prediction.to_dict()


def test_multi_region_prediction_carries_wan_term():
    profile = make_profile(num_hosts=12, num_regions=3)
    prediction = predict(
        profile, Workload(num_objects=16, object_size=4 * MB), NODE_FAULT,
    )
    cross = prediction.wan_cross_read_bytes
    assert cross is not None
    # A 3-region RS(4,2) stripe keeps 2 shards at home: with k=4 reads
    # at least two helpers sit across the WAN, never more than all four.
    assert 0 < cross <= prediction.repair_bytes_read
    assert prediction.to_dict()["wan_cross_read_bytes"] == cross


def test_wan_term_is_deterministic_and_latency_sensitive():
    workload = Workload(num_objects=16, object_size=4 * MB)
    base = make_profile(num_hosts=12, num_regions=3)
    slow = make_profile(num_hosts=12, num_regions=3, wan_latency=5.0)
    first = predict(base, workload, NODE_FAULT)
    again = predict(base, workload, NODE_FAULT)
    assert first.digest_json() == again.digest_json()
    assert predict(slow, workload, NODE_FAULT).ec_recovery_period > \
        first.ec_recovery_period
