"""Fault injector: white-box tolerance guard and topology awareness."""

import pytest

from repro.cluster import (
    CACHE_SCHEMES,
    CephCluster,
    CephConfig,
    IntegrityConfig,
    ScrubConfig,
)
from repro.core import Colocation, FaultSpec, FaultToleranceError
from repro.core.fault_injector import FaultInjector
from repro.core.worker import deploy_workers
from repro.ec import ReedSolomon
from repro.sim import Environment


def build(failure_domain="host", osds_per_host=3, num_hosts=10, code=None,
          integrity=None, scrub=None):
    env = Environment()
    cluster = CephCluster(
        env,
        code or ReedSolomon(4, 2),
        CACHE_SCHEMES["autotune"],
        config=CephConfig(),
        num_hosts=num_hosts,
        osds_per_host=osds_per_host,
        pg_num=16,
        failure_domain=failure_domain,
        integrity=integrity,
        scrub=scrub,
    )
    for i in range(40):
        cluster.ingest_object(f"o{i}", 1024 * 1024)
    workers = deploy_workers(cluster)
    return cluster, FaultInjector(cluster, workers)


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(level="power")
    with pytest.raises(ValueError):
        FaultSpec(count=0)
    with pytest.raises(ValueError):
        FaultSpec(colocation="same_rack")
    with pytest.raises(ValueError):
        FaultSpec(level="node", colocation=Colocation.SAME_HOST)


def test_fault_spec_errors_name_value_and_allowed_set():
    with pytest.raises(ValueError, match=r"'power'.*allowed levels.*corrupt"):
        FaultSpec(level="power")
    with pytest.raises(ValueError, match=r"got 0"):
        FaultSpec(count=0)
    with pytest.raises(ValueError, match=r"'same_rack'.*allowed colocations"):
        FaultSpec(colocation="same_rack")
    with pytest.raises(ValueError, match=r"'cosmic'.*allowed models.*bit_rot"):
        FaultSpec(level="corrupt", corruption="cosmic")


def test_node_fault_shuts_down_all_host_osds():
    cluster, injector = build()
    affected = injector.inject(FaultSpec(level="node", count=1))
    assert len(affected) == 3  # osds_per_host
    host = cluster.topology.osds[affected[0]].host_id
    for osd_id in affected:
        assert cluster.topology.osds[osd_id].host_id == host
        assert not cluster.osds[osd_id].is_up()


def test_device_fault_removes_single_disk():
    cluster, injector = build(failure_domain="osd")
    affected = injector.inject(FaultSpec(level="device", count=1))
    assert len(affected) == 1
    assert cluster.osds[affected[0]].disk.failed
    # Sibling OSDs on the same host stay up.
    host = cluster.topology.osds[affected[0]].host_id
    siblings = [o for o in cluster.topology.hosts[host].osd_ids if o != affected[0]]
    assert all(cluster.osds[o].is_up() for o in siblings)


def test_same_host_colocation():
    cluster, injector = build(failure_domain="osd")
    affected = injector.inject(
        FaultSpec(level="device", count=2, colocation=Colocation.SAME_HOST)
    )
    hosts = {cluster.topology.osds[o].host_id for o in affected}
    assert len(hosts) == 1


def test_diff_host_colocation():
    cluster, injector = build(failure_domain="osd")
    affected = injector.inject(
        FaultSpec(level="device", count=2, colocation=Colocation.DIFFERENT_HOSTS)
    )
    hosts = {cluster.topology.osds[o].host_id for o in affected}
    assert len(hosts) == 2


def test_tolerance_guard_blocks_excess_faults():
    """Never beyond n - k failures within the failure domain (§3.2)."""
    cluster, injector = build(failure_domain="osd")
    with pytest.raises(FaultToleranceError):
        injector.inject(FaultSpec(level="device", count=3))  # m = 2


def test_tolerance_guard_is_cumulative():
    cluster, injector = build(failure_domain="osd")
    injector.inject(FaultSpec(level="device", count=2))
    with pytest.raises(FaultToleranceError):
        injector.inject(FaultSpec(level="device", count=1))


def test_node_fault_counts_as_one_host_bucket():
    """With failure domain host, one node = one bucket <= m."""
    cluster, injector = build(failure_domain="host")
    injector.inject(FaultSpec(level="node", count=2))  # 2 hosts <= m=2
    with pytest.raises(FaultToleranceError):
        injector.inject(FaultSpec(level="node", count=1))


def test_explicit_targets():
    cluster, injector = build(failure_domain="osd")
    affected = injector.inject(FaultSpec(level="device", count=1, targets=[5]))
    assert affected == [5]


def test_selection_is_deterministic():
    _, injector_a = build()
    _, injector_b = build()
    a = injector_a.inject(FaultSpec(level="node", count=1))
    b = injector_b.inject(FaultSpec(level="node", count=1))
    assert a == b


def test_restore_all_heals_cluster():
    cluster, injector = build(failure_domain="osd")
    affected = injector.inject(FaultSpec(level="device", count=2))
    injector.restore_all()
    assert injector.injected_osds == set()
    for osd_id in affected:
        assert cluster.osds[osd_id].is_up()


# -- corrupt-level faults (silent corruption axis) ------------------------------


def test_corrupt_fault_requires_integrity():
    _, injector = build()
    with pytest.raises(ValueError, match="checksums"):
        injector.inject(FaultSpec(level="corrupt"))


def test_corrupt_fault_marks_chunks_but_keeps_osds_up():
    cluster, injector = build(integrity=IntegrityConfig(enabled=True))
    affected = injector.inject(FaultSpec(level="corrupt", count=2))
    assert cluster.integrity.corrupted_chunk_count() == 2
    # Silent faults: the OSDs stay up and do not consume the crash budget.
    assert injector.injected_osds == set()
    for osd_id in affected:
        assert cluster.osds[osd_id].is_up()


def test_corrupt_fault_respects_tolerance_guard():
    _, injector = build(integrity=IntegrityConfig(enabled=True))
    with pytest.raises(FaultToleranceError):
        injector.inject(FaultSpec(level="corrupt", count=3))  # m = 2


def test_corrupt_fault_stripe_guard_is_cumulative():
    _, injector = build(integrity=IntegrityConfig(enabled=True))
    # Explicit targets always land on the first populated PG's first
    # object, so the second injection hits the same stripe.
    injector.inject(FaultSpec(level="corrupt", count=2, targets=[0, 1]))
    with pytest.raises(FaultToleranceError):
        injector.inject(FaultSpec(level="corrupt", count=1, targets=[2]))


def test_corrupt_fault_is_deterministic():
    _, injector_a = build(integrity=IntegrityConfig(enabled=True))
    _, injector_b = build(integrity=IntegrityConfig(enabled=True))
    a = injector_a.inject(FaultSpec(level="corrupt", count=2))
    b = injector_b.inject(FaultSpec(level="corrupt", count=2))
    assert a == b


def test_restore_all_is_idempotent():
    cluster, injector = build()
    injector.inject(FaultSpec(level="node", count=1))
    injector.inject(FaultSpec(level="device", count=1))
    injector.restore_all()
    assert injector.injected_osds == set()
    assert all(osd.is_up() for osd in cluster.osds.values())
    # A second restore must be a harmless no-op, not a double-restore
    # (re-creating an NVMe subsystem that already exists would raise).
    injector.restore_all()
    assert injector.injected_osds == set()
    assert all(osd.is_up() for osd in cluster.osds.values())


def _partial_device_inject(cluster, injector):
    """Apply a device inject that dies half-way; returns the landed OSD.

    The first explicit target is fresh and lands; the second was already
    removed by an earlier inject, so tearing down its (gone) subsystem
    raises mid-application — after the first fault has taken effect.
    """
    [removed] = injector.inject(FaultSpec(level="device", count=1))
    fresh = next(
        osd_id for osd_id in cluster.osds_with_data()
        if osd_id not in injector.injected_osds
        and cluster.topology.osds[osd_id].host_id
        != cluster.topology.osds[removed].host_id
    )
    with pytest.raises(KeyError):
        injector.inject(
            FaultSpec(level="device", count=2, targets=[fresh, removed])
        )
    return fresh


def test_restore_all_after_partially_applied_inject():
    cluster, injector = build()
    fresh = _partial_device_inject(cluster, injector)
    # The applied half still counts against the tolerance budget...
    assert fresh in injector.injected_osds
    # ...and restore_all rolls back everything that actually landed,
    # idempotently, even after the partial failure.
    injector.restore_all()
    injector.restore_all()
    assert injector.injected_osds == set()
    assert all(osd.is_up() for osd in cluster.osds.values())


def test_partial_inject_still_counts_toward_tolerance():
    cluster, injector = build()
    _partial_device_inject(cluster, injector)
    # m = 2 and two host buckets already hold faults (one from the full
    # inject, one from the partially-applied one): any further bucket
    # must be refused.  Before the fix, the partially-applied fault was
    # never recorded, so this third fault was wrongly authorised.
    assert len(injector.injected_osds) == 2
    with pytest.raises(FaultToleranceError):
        injector.inject(FaultSpec(level="node", count=1))


def test_crash_guard_counts_unrepaired_corruption():
    cluster, injector = build(integrity=IntegrityConfig(enabled=True))
    # RS(6,4): m = 2.  One corrupt chunk outstanding leaves room for only
    # one crash bucket; a second crash could push some stripe to 3 losses.
    injector.inject(FaultSpec(level="corrupt", count=1))
    injector.inject(FaultSpec(level="node", count=1))
    with pytest.raises(FaultToleranceError, match="corrupt"):
        injector.inject(FaultSpec(level="node", count=1))


# -- Byzantine faults (OSDs that lie) -------------------------------------------


def build_byz(**kwargs):
    kwargs.setdefault("integrity", IntegrityConfig(enabled=True))
    kwargs.setdefault("scrub", ScrubConfig(enabled=True))
    return build(**kwargs)


def test_byz_corrupt_requires_integrity():
    _, injector = build(scrub=ScrubConfig(enabled=True))
    with pytest.raises(ValueError, match="checksums"):
        injector.inject(FaultSpec(level="byz_corrupt_data"))


def test_byz_corrupt_requires_deep_scrub():
    # With checksums but scrubbing disabled, a forged checksum would be
    # *undetectable forever* — the injector refuses to create that.
    _, injector = build(integrity=IntegrityConfig(enabled=True))
    with pytest.raises(ValueError, match="deep scrub"):
        injector.inject(FaultSpec(level="byz_corrupt_data"))


def test_byz_corrupt_marks_state_and_keeps_osds_up():
    cluster, injector = build_byz()
    affected = injector.inject(FaultSpec(level="byz_corrupt_data", count=2))
    assert len(affected) == 2
    # Silent like honest corruption: no crash budget consumed.
    assert injector.injected_osds == set()
    for osd_id in affected:
        assert cluster.osds[osd_id].is_up()
    assert cluster.byzantine is not None
    assert len(cluster.byzantine.records) == 2
    assert not cluster.byzantine.quiescent()


def test_byz_corrupt_respects_stripe_tolerance_guard():
    _, injector = build_byz()
    with pytest.raises(FaultToleranceError, match="Byzantine"):
        injector.inject(FaultSpec(level="byz_corrupt_data", count=3))  # m=2


def test_byz_and_honest_corruption_share_the_stripe_budget():
    _, injector = build_byz()
    # Explicit targets land on the first populated PG's first object for
    # both levels, so they damage the same stripe: m = 2 total.
    injector.inject(FaultSpec(level="corrupt", count=1, targets=[0]))
    injector.inject(FaultSpec(level="byz_corrupt_data", count=1, targets=[1]))
    with pytest.raises(FaultToleranceError):
        injector.inject(FaultSpec(level="byz_corrupt_data", count=1,
                                  targets=[2]))


def test_byz_false_ack_records_undetected_damage():
    cluster, injector = build_byz()
    affected = injector.inject(
        FaultSpec(level="byz_false_ack", count=1, targets=[0])
    )
    assert len(affected) == 1
    byz = cluster.byzantine
    [(pgid, name, shards)] = list(byz.false_ack_items())
    assert shards == {0}
    assert byz.damaged_shards(pgid, name) == {0}


def test_byz_false_ack_counts_in_crash_guard():
    _, injector = build_byz()
    # One undetected false ack is silent stripe damage: with m = 2 it
    # leaves room for one crash bucket, not two.
    injector.inject(FaultSpec(level="byz_false_ack", count=1))
    injector.inject(FaultSpec(level="node", count=1))
    with pytest.raises(FaultToleranceError, match="corrupt"):
        injector.inject(FaultSpec(level="node", count=1))


def test_byz_stale_map_counts_against_crash_budget():
    cluster, injector = build_byz()
    [liar] = injector.inject(FaultSpec(level="byz_stale_map", count=1))
    # A misrouting liar is budgeted like a flapping OSD...
    assert liar in injector.injected_osds
    assert cluster.byzantine.gossiping_stale(liar)
    # ...and the budget is cumulative with real crashes (m = 2): the
    # liar's host is one bucket, so only one *other* host may fail.
    liar_host = cluster.topology.osds[liar].host_id
    others = [h for h in range(cluster.topology.num_hosts) if h != liar_host]
    injector.inject(FaultSpec(level="node", count=1, targets=[others[0]]))
    with pytest.raises(FaultToleranceError):
        injector.inject(FaultSpec(level="node", count=1, targets=[others[1]]))


def test_byz_selection_is_deterministic():
    _, injector_a = build_byz()
    _, injector_b = build_byz()
    a = injector_a.inject(FaultSpec(level="byz_corrupt_data", count=2))
    b = injector_b.inject(FaultSpec(level="byz_corrupt_data", count=2))
    assert a == b


def test_restore_all_ends_stale_map_lies_idempotently():
    cluster, injector = build_byz()
    [liar] = injector.inject(FaultSpec(level="byz_stale_map", count=1))
    injector.restore_all()
    byz = cluster.byzantine
    # The restarted daemon re-fetched the map: lie over, detected via the
    # epoch path, budget released.
    assert not byz.gossiping_stale(liar)
    assert injector.injected_osds == set()
    [record] = byz.records
    assert record.detected and record.detected_by == "epoch"
    assert byz.quiescent()
    # Second restore is a harmless no-op (no double-counted detections).
    injector.restore_all()
    assert byz.detections["epoch"] == 1
    assert byz.epoch_rejections == 1


def test_restore_all_preserves_data_plane_lies():
    cluster, injector = build_byz()
    injector.inject(FaultSpec(level="byz_corrupt_data", count=1, targets=[0]))
    injector.inject(FaultSpec(level="byz_false_ack", count=1, targets=[1]))
    injector.restore_all()
    injector.restore_all()
    # Worker restarts never heal silent damage: forged checksums and
    # false acks persist until scrub/peering detects them.
    byz = cluster.byzantine
    assert not byz.quiescent()
    assert sum(1 for r in byz.records if not r.detected) == 2
    assert all(osd.is_up() for osd in cluster.osds.values())


def test_restore_all_with_mixed_byz_and_crash_faults():
    cluster, injector = build_byz()
    # A data-plane lie plus a real crash, together inside the budget
    # (silent 1 + one bucket = m): restore_all must roll back the crash,
    # end any map lie, and keep data-plane accounting intact — twice.
    injector.inject(FaultSpec(level="byz_corrupt_data", count=1, targets=[0]))
    injector.inject(FaultSpec(level="node", count=1))
    injector.restore_all()
    injector.restore_all()
    assert injector.injected_osds == set()
    assert all(osd.is_up() for osd in cluster.osds.values())
    assert not cluster.byzantine.quiescent()  # the lie survived restore
