"""Scrub & silent-corruption subsystem: checksums, detection, repair."""

import numpy as np
import pytest

from repro.cluster import (
    CephConfig,
    CorruptionModel,
    IntegrityConfig,
    ScrubConfig,
    check_health,
)
from repro.cluster.objectstore import block_checksums, blocks_in, crc32c
from repro.core import (
    Controller,
    ExperimentProfile,
    FaultSpec,
    FaultToleranceError,
)
from repro.workload import Workload

KB = 1024
FAST = CephConfig(mon_osd_down_out_interval=30.0)


def scrub_profile(**overrides):
    base = dict(
        name="scrub-test",
        ec_plugin="jerasure",
        ec_params={"k": 4, "m": 2},
        num_hosts=8,
        pg_num=16,
        stripe_unit=64 * KB,
        ceph=FAST,
        scrub_interval=60.0,
        integrity_data_plane=True,
    )
    base.update(overrides)
    return ExperimentProfile(**base)


def run_corruption(model, count=1, seed=7, **overrides):
    controller = Controller(scrub_profile(**overrides), seed=seed)
    workload = Workload(num_objects=12, object_size=256 * KB)
    outcome = controller.run_experiment(
        workload,
        faults=[FaultSpec(level="corrupt", count=count, corruption=model)],
        settle_time=30.0,
        max_sim_time=20_000.0,
    )
    return controller, outcome


# -- crc32c and block checksums ------------------------------------------------


def test_crc32c_known_answer():
    # The RFC 3720 (iSCSI) check value for the Castagnoli polynomial.
    assert crc32c(b"123456789") == 0xE3069283


def test_crc32c_empty_and_incremental():
    assert crc32c(b"") == 0
    whole = crc32c(b"123456789")
    partial = crc32c(b"6789", crc32c(b"12345"))
    assert partial == whole
    assert whole != crc32c(b"12345")


def test_crc32c_detects_single_bit_flip():
    data = bytes(range(256))
    flipped = bytearray(data)
    flipped[100] ^= 0x01
    assert crc32c(data) != crc32c(bytes(flipped))


def test_blocks_in():
    assert blocks_in(0, 4096) == 1
    assert blocks_in(1, 4096) == 1
    assert blocks_in(4096, 4096) == 1
    assert blocks_in(4097, 4096) == 2
    with pytest.raises(ValueError, match="positive"):
        blocks_in(10, 0)
    with pytest.raises(ValueError, match="negative"):
        blocks_in(-1, 4096)


def test_block_checksums_granularity():
    data = bytes(10_000)
    fine = block_checksums(data, 1024)
    coarse = block_checksums(data, 4096)
    assert len(fine) == 10
    assert len(coarse) == 3
    # Each value is the crc of its own block.
    assert fine[0] == crc32c(data[:1024])


# -- configuration validation ---------------------------------------------------


def test_scrub_config_validation():
    with pytest.raises(ValueError, match="interval"):
        ScrubConfig(interval=0)
    with pytest.raises(ValueError, match="pgs_per_batch"):
        ScrubConfig(pgs_per_batch=0)
    with pytest.raises(ValueError, match="read_rate"):
        ScrubConfig(read_rate=0)


def test_integrity_config_validation():
    with pytest.raises(ValueError, match="csum_block_size"):
        IntegrityConfig(csum_block_size=0)


def test_profile_scrub_validation():
    with pytest.raises(ValueError, match="scrub_interval"):
        scrub_profile(scrub_interval=-1.0)
    with pytest.raises(ValueError, match="csum_block_size"):
        scrub_profile(csum_block_size=0)
    with pytest.raises(ValueError, match="scrub_pgs_per_batch"):
        scrub_profile(scrub_pgs_per_batch=0)


# -- end-to-end: inject -> deep scrub -> detect -> repair -> HEALTH_OK ----------


@pytest.mark.parametrize("model", CorruptionModel.ALL)
def test_detects_and_repairs_every_model(model):
    controller, outcome = run_corruption(model, count=2)
    stats = outcome.scrub_stats
    assert stats.errors_detected == 2
    assert stats.chunks_repaired == 2
    assert stats.pgs_inconsistent == 1
    assert controller.cluster.integrity.all_clean()
    assert check_health(controller.cluster).status == "HEALTH_OK"
    timeline = outcome.scrub_timeline
    assert timeline is not None
    assert timeline.error_detected <= timeline.repair_started
    assert timeline.repair_started <= timeline.repair_finished <= timeline.health_ok


def test_repair_is_bit_identical():
    controller, _ = run_corruption("misdirected_write", count=2)
    integrity = controller.cluster.integrity
    code = controller.cluster.pool.code
    # Every chunk verifies clean again...
    for pgid, name, shard in list(integrity._chunks):
        assert integrity.verify(pgid, name, shard) == []
    # ...and every stored byte equals a fresh re-encode of the payload.
    pg = next(pg for pg in controller.cluster.pool.pgs.values() if pg.objects)
    obj = pg.objects[0]
    chunks = code.encode(integrity._payload_for(obj.name, obj.size))
    for shard in range(code.n):
        original = np.asarray(chunks[shard], dtype=np.uint8).tobytes()
        assert integrity.chunk_data(pg.pgid, obj.name, shard) == original


def test_health_transitions_err_warn_ok():
    _, outcome = run_corruption("bit_rot")
    collector = outcome.collector
    err = collector.first_matching("cluster health now health_err")
    warn = collector.first_matching("cluster health now health_warn")
    ok = collector.last_matching("cluster health now health_ok")
    assert err is not None and warn is not None and ok is not None
    assert err.time <= warn.time <= ok.time


def test_model_mode_detects_without_data_plane():
    controller, outcome = run_corruption(
        "torn_write", count=2, integrity_data_plane=False
    )
    assert outcome.scrub_stats.errors_detected == 2
    assert outcome.scrub_stats.chunks_repaired == 2
    assert controller.cluster.integrity.all_clean()


def test_excess_corruption_raises():
    with pytest.raises(FaultToleranceError):
        run_corruption("bit_rot", count=3)  # m = 2


def test_cumulative_stripe_guard():
    controller = Controller(scrub_profile(), seed=3)
    for i in range(12):
        controller.cluster.ingest_object(f"o{i}", 256 * KB)
    injector = controller.fault_injector
    injector.inject(FaultSpec(level="corrupt", count=2, targets=[0, 1]))
    with pytest.raises(FaultToleranceError):
        injector.inject(FaultSpec(level="corrupt", count=1, targets=[2]))


def test_corrupt_fault_with_scrub_disabled_is_refused():
    # Integrity on (data plane) but no scrub schedule: nothing would ever
    # detect the corruption, so the coordinator refuses to run.
    controller = Controller(scrub_profile(scrub_interval=0.0), seed=1)
    with pytest.raises(ValueError, match="scrub"):
        controller.run_experiment(
            Workload(num_objects=6, object_size=256 * KB),
            faults=[FaultSpec(level="corrupt")],
            settle_time=10.0,
        )


def test_corruption_cycle_is_deterministic():
    _, a = run_corruption("bit_rot", seed=11)
    _, b = run_corruption("bit_rot", seed=11)
    assert a.scrub_stats == b.scrub_stats
    assert a.scrub_timeline == b.scrub_timeline


def test_scrub_timeline_annotations():
    _, outcome = run_corruption("bit_rot")
    marks = outcome.scrub_timeline.annotations()
    labels = [label for _, label in marks]
    assert labels[0] == "Silent corruption injected"
    assert labels[-1] == "HEALTH_OK restored"
    offsets = [offset for offset, _ in marks]
    assert offsets == sorted(offsets)
    assert 0.0 <= outcome.scrub_timeline.detection_fraction <= 1.0


def test_checksum_metadata_is_accounted():
    with_csums = Controller(
        scrub_profile(integrity_data_plane=False), seed=5
    )
    without = Controller(
        scrub_profile(scrub_interval=0.0, integrity_data_plane=False), seed=5
    )
    for controller in (with_csums, without):
        for i in range(8):
            controller.cluster.ingest_object(f"o{i}", 256 * KB)
    assert with_csums.cluster.used_bytes_total() > without.cluster.used_bytes_total()


def test_scrub_disabled_baseline_untouched():
    # The default profile never registers integrity state or scrub
    # processes, so baseline experiments are unperturbed.
    controller = Controller(
        ExperimentProfile(
            name="plain",
            ec_params={"k": 4, "m": 2},
            pg_num=16,
            num_hosts=8,
            ceph=FAST,
        ),
        seed=0,
    )
    assert not controller.cluster.integrity.config.enabled
    assert not controller.cluster.scrub.config.enabled
    controller.cluster.ingest_object("o0", 256 * KB)
    assert controller.cluster.integrity._chunks == {}
