"""Report formatting and analysis statistics."""

import pytest

from repro.analysis import (
    crossover_points,
    impact_range_percent,
    mean_and_stdev,
    normalised_series,
    render_figure2_panel,
    render_figure3_timeline,
    render_paper_vs_measured,
    render_table,
)
from repro.core import Series, format_grouped_bars, format_table, normalise
from repro.core.timeline import RecoveryTimeline


def test_normalise_to_minimum():
    out = normalise({"a": 2.0, "b": 4.0, "c": 3.0})
    assert out == {"a": 1.0, "b": 2.0, "c": 1.5}


def test_normalise_to_explicit_baseline():
    out = normalise({"a": 2.0, "b": 4.0}, baseline="b")
    assert out["b"] == 1.0
    assert out["a"] == 0.5


def test_normalise_guards():
    assert normalise({}) == {}
    with pytest.raises(ValueError):
        normalise({"a": 0.0})


def test_mean_and_stdev():
    mean, stdev = mean_and_stdev([1.0, 2.0, 3.0])
    assert mean == pytest.approx(2.0)
    assert stdev == pytest.approx(1.0)
    assert mean_and_stdev([5.0]) == (5.0, 0.0)
    with pytest.raises(ValueError):
        mean_and_stdev([])


def test_impact_range_percent_matches_headline_semantics():
    """'426%' means worst config takes 4.26x the best's time."""
    assert impact_range_percent({"best": 1.0, "worst": 4.26}) == pytest.approx(426.0)
    with pytest.raises(ValueError):
        impact_range_percent({})


def test_crossover_points():
    rs = {"2same": 1.08, "2diff": 1.08, "3same": 1.49, "3diff": 1.51}
    clay = {"2same": 1.09, "2diff": 1.12, "3same": 1.45, "3diff": 1.55}
    groups = ["2same", "2diff", "3same", "3diff"]
    flips = crossover_points(rs, clay, groups)
    # RS wins, wins, loses, wins -> flips at 3same and 3diff.
    assert flips == ["3same", "3diff"]


def test_crossover_skips_missing_groups():
    assert crossover_points({"a": 1.0}, {"a": 2.0}, ["a", "b"]) == []


def test_normalised_series():
    out = normalised_series({"x": 10.0, "y": 25.0})
    assert out["x"] == 1.0 and out["y"] == 2.5


def test_format_grouped_bars_renders_all_entries():
    text = format_grouped_bars(
        "Panel",
        ["g1", "g2"],
        [Series("RS", {"g1": 1.0, "g2": 2.0}), Series("Clay", {"g1": 1.5})],
    )
    assert "Panel" in text
    assert text.count("RS") == 2
    assert text.count("Clay") == 1
    assert "2.00x" in text


def test_format_table_alignment():
    text = format_table("T", ["id", "value"], [["a", 1], ["bb", 22]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "id" in lines[1] and "value" in lines[1]
    assert len(lines) == 5


def test_render_figure2_panel():
    text = render_figure2_panel(
        "a", ["kv-optimized"], {"kv-optimized": 1.05}, {"kv-optimized": 1.11}
    )
    assert "Figure 2a" in text
    assert "RS(12,9)" in text and "Clay(12,9,11)" in text


def test_render_figure3_timeline():
    timeline = RecoveryTimeline(None, 0.0, 600.0, 600.0, 602.0, 1128.0)
    text = render_figure3_timeline(timeline)
    assert "System Checking Period (602s)" in text
    assert "EC Recovery Period (526s)" in text
    assert "53.4%" in text
    with pytest.raises(ValueError):
        render_figure3_timeline(RecoveryTimeline(None, 1.0, 1.0, 1.0, 1.0, 1.0))


def test_render_paper_vs_measured():
    text = render_paper_vs_measured("T", [("WA RS(12,9)", 1.76, 1.74)])
    assert "paper" in text and "measured" in text and "1.76" in text


def test_render_table_passthrough():
    assert "Cache" in render_table("Cache", ["a"], [["x"]])
