"""Search strategies: unit behaviour on a stub, acceptance on the simulator.

The fast tests drive every strategy against a deterministic synthetic
cell function.  The ``slow``-marked acceptance test runs the real
simulator over the ISSUE's seeded reference grid (pg_num x cache x
stripe_unit x {RS, Clay}) and pins the headline claim: successive
halving lands within 5% of the exhaustively-measured optimum while
spending at most 25% of the full-grid budget, deterministically per
seed.
"""

import json

import pytest

from repro.core import ExperimentProfile
from repro.core.sweep import SweepResult
from repro.tuner import (
    CategoricalAxis,
    CoordinateDescent,
    EcVariantAxis,
    Evaluator,
    Fidelity,
    RandomSearch,
    SuccessiveHalving,
    TuningSpace,
    load_tuning_artifact,
    pool_width_fits,
    save_tuning_artifact,
    stripe_unit_divides,
    tune,
)
from repro.tuner.artifact import TuningArtifact

MB = 1024 * 1024

RS = ("jerasure", (("k", 9), ("m", 3)))
CLAY = ("clay", (("d", 11), ("k", 9), ("m", 3)))

CALLS = []


def stub_cell(profile, workload, faults, runs, seed):
    """Synthetic simulator: best at pg_num=256 / clay / autotune."""
    CALLS.append(profile.name)
    recovery = 1000.0 / (profile.pg_num ** 0.5)
    if profile.ec_plugin == "clay":
        recovery *= 0.8
    if profile.cache_scheme == "kv-optimized":
        recovery *= 1.1
    recovery *= 1.0 + 0.05 * (workload.num_objects % 5)
    return SweepResult(
        label=profile.name,
        settings={},
        recovery_time=recovery,
        checking_fraction=0.5,
        wa_actual=1.4 if profile.ec_plugin == "jerasure" else 1.6,
        runs=runs,
    )


STUB_OPTIMUM = {"pg_num": 256, "cache_scheme": "autotune", "ec": CLAY}


def make_space():
    return TuningSpace(
        ExperimentProfile(name="strategy-test"),
        axes=[
            CategoricalAxis("pg_num", (16, 64, 256)),
            CategoricalAxis("cache_scheme", ("kv-optimized", "autotune")),
            EcVariantAxis(variants=(RS, CLAY)),
        ],
    )


@pytest.fixture(autouse=True)
def clear_calls():
    CALLS.clear()


def make_evaluator(space=None, **kwargs):
    kwargs.setdefault("run_cell_fn", stub_cell)
    return Evaluator(space or make_space(), **kwargs)


def best_of(measured):
    return min(measured, key=lambda m: m.recovery_time)


# -- random search --------------------------------------------------------------


def test_random_search_is_deterministic_per_seed():
    space = make_space()
    runs = [
        RandomSearch(6, Fidelity(8)).search(space, make_evaluator(space), 5)
        for _ in range(2)
    ]
    assert [m.signature for m in runs[0]] == [m.signature for m in runs[1]]
    assert len({m.signature for m in runs[0]}) == 6
    other = RandomSearch(6, Fidelity(8)).search(space, make_evaluator(space), 6)
    assert [m.signature for m in other] != [m.signature for m in runs[0]]


def test_random_search_stops_cleanly_at_budget():
    evaluator = make_evaluator(budget=20)
    measured = RandomSearch(6, Fidelity(8)).search(make_space(), evaluator, 0)
    assert len(measured) == 2  # third evaluation would overdraw
    assert evaluator.spent == 16 <= 20


# -- coordinate descent ---------------------------------------------------------


def test_coordinate_descent_finds_the_stub_optimum():
    space = make_space()
    evaluator = make_evaluator(space)
    measured = CoordinateDescent(Fidelity(8), screen=4).search(space, evaluator, 1)
    assert best_of(measured).signature == space.signature(STUB_OPTIMUM)
    # The climb only measures a subset of the 12-point grid.
    assert len({m.signature for m in measured}) < space.size()


def test_coordinate_descent_orders_axes_by_impact():
    space = make_space()
    evaluator = make_evaluator(space)
    strategy = CoordinateDescent(Fidelity(8), screen=8)
    screened = evaluator.evaluate_many(space.enumerate()[:8], Fidelity(8))
    order = strategy._axis_order(space, screened)
    assert set(order) == {"pg_num", "cache_scheme", "ec"}
    # pg_num spans 1000/sqrt(16)..1000/sqrt(256): by far the biggest lever.
    assert order[0] == "pg_num"


def test_coordinate_descent_validates_arguments():
    with pytest.raises(ValueError, match="screen"):
        CoordinateDescent(Fidelity(8), screen=1)
    with pytest.raises(ValueError, match="rounds"):
        CoordinateDescent(Fidelity(8), rounds=0)


# -- successive halving ---------------------------------------------------------


def test_halving_rung_counts():
    ladder = [Fidelity(8), Fidelity(24), Fidelity(96)]
    assert SuccessiveHalving(ladder, eta=4).rungs(24) == [24, 6, 2]
    assert SuccessiveHalving(ladder, eta=2).rungs(5) == [5, 3, 2]


def test_halving_promotes_the_top_survivors():
    space = make_space()
    evaluator = make_evaluator(space)
    strategy = SuccessiveHalving([Fidelity(4, label="screen"),
                                  Fidelity(16, label="full")], eta=4)
    measured = strategy.search(space, evaluator, 0)
    screen = [m for m in measured if m.fidelity.objects == 4]
    full = [m for m in measured if m.fidelity.objects == 16]
    assert len(screen) == space.size() == 12
    assert len(full) == 3  # ceil(12 / 4)
    # Survivors are exactly the screen rung's best three.
    best_screen = sorted(screen, key=lambda m: (m.recovery_time, m.signature))[:3]
    assert {m.signature for m in full} == {m.signature for m in best_screen}
    assert best_of(full).signature == space.signature(STUB_OPTIMUM)


def test_halving_never_overdraws_the_budget():
    # Affords rung 0 (12 x 4 = 48) but not rung 1 (3 x 16 = 48 > 2).
    evaluator = make_evaluator(budget=50)
    strategy = SuccessiveHalving([Fidelity(4), Fidelity(16)], eta=4)
    measured = strategy.search(make_space(), evaluator, 0)
    assert all(m.fidelity.objects == 4 for m in measured)
    assert evaluator.spent == 48 <= 50


def test_halving_validates_arguments():
    with pytest.raises(ValueError, match="cheapest first"):
        SuccessiveHalving([Fidelity(16), Fidelity(4)])
    with pytest.raises(ValueError, match="eta"):
        SuccessiveHalving([Fidelity(4)], eta=1)
    with pytest.raises(ValueError, match="initial"):
        SuccessiveHalving([Fidelity(4)], initial=0)
    with pytest.raises(ValueError, match="fidelity"):
        SuccessiveHalving([])


# -- resume ---------------------------------------------------------------------


def test_resume_replays_without_resimulating(tmp_path):
    path = tmp_path / "tuning.json"
    strategy = SuccessiveHalving([Fidelity(4, label="screen"),
                                  Fidelity(16, label="full")], eta=4)
    kwargs = dict(seed=11, budget=10_000, run_cell_fn=stub_cell,
                  artifact_path=path)
    tune(make_space(), strategy, **kwargs)
    complete_text = path.read_text()
    total_calls = len(CALLS)

    # Simulate a run killed after five evaluations: the checkpointed
    # artifact is a prefix of the complete log with no recommendation.
    blob = json.loads(complete_text)
    truncated = TuningArtifact.from_dict(
        dict(
            blob,
            evaluations=blob["evaluations"][:5],
            spent=sum(m["cost"] for m in blob["evaluations"][:5]),
            front=[],
            recommendation=None,
            complete=False,
        )
    )
    save_tuning_artifact(truncated, path)

    CALLS.clear()
    outcome = tune(make_space(), strategy, resume=True, **kwargs)
    assert len(CALLS) == total_calls - 5  # replays nothing already paid for
    assert path.read_text() == complete_text  # same final artifact, byte for byte
    assert outcome.artifact.complete
    final = load_tuning_artifact(path)
    assert final.recommendation == json.loads(complete_text)["recommendation"]


# -- acceptance: the ISSUE's seeded reference grid ------------------------------


@pytest.mark.slow
def test_halving_beats_the_exhaustive_grid_budget_on_reference_grid():
    """Within 5% of the exhaustive optimum at <= 25% of its budget."""
    base = ExperimentProfile(name="ref", num_hosts=15)
    space = TuningSpace(
        base,
        axes=[
            CategoricalAxis("pg_num", (16, 64, 256)),
            CategoricalAxis("cache_scheme", ("kv-optimized", "autotune")),
            CategoricalAxis("stripe_unit", (1 * MB, 4 * MB)),
            EcVariantAxis(variants=(RS, CLAY)),
        ],
        constraints=[pool_width_fits(), stripe_unit_divides(8 * MB)],
    )
    grid = space.enumerate()
    assert len(grid) == 24

    full = Fidelity(96, label="full")
    exhaustive_cost = len(grid) * full.cost  # 2304 object-runs

    # Reference: every cell exhaustively pre-evaluated at full fidelity.
    reference = Evaluator(space, object_size=8 * MB, base_seed=42)
    exhaustive = reference.evaluate_many(grid, full)
    optimum = best_of(exhaustive)

    strategy = SuccessiveHalving(
        [Fidelity(8, label="screen"), Fidelity(24, label="mid"), full], eta=4
    )
    outcomes = [
        tune(
            space,
            strategy,
            seed=42,
            object_size=8 * MB,
            budget=exhaustive_cost // 4,
        )
        for _ in range(2)
    ]
    outcome = outcomes[0]

    assert outcome.spent <= exhaustive_cost // 4
    chosen = outcome.recommendation.chosen
    assert chosen.fidelity.cost == full.cost
    assert chosen.recovery_time <= optimum.recovery_time * 1.05
    # Deterministic per seed: the repeat run traces the same path.
    assert outcomes[1].recommendation.chosen.signature == chosen.signature
    assert outcomes[1].spent == outcome.spent
