"""Cluster health reporting."""

import pytest

from repro.cluster import (
    CACHE_SCHEMES,
    CephCluster,
    CephConfig,
    HealthStatus,
    check_health,
)
from repro.ec import ReedSolomon
from repro.sim import Environment

MB = 1024 * 1024


def build(down_out=60.0):
    env = Environment()
    cluster = CephCluster(
        env,
        ReedSolomon(4, 2),
        CACHE_SCHEMES["autotune"],
        config=CephConfig(mon_osd_down_out_interval=down_out),
        num_hosts=10,
        pg_num=8,
    )
    for i in range(30):
        cluster.ingest_object(f"o{i}", 4 * MB)
    return env, cluster


def test_healthy_cluster_reports_ok():
    env, cluster = build()
    env.run(until=30)
    report = check_health(cluster)
    assert report.status == HealthStatus.OK
    assert report.pgs_active_clean == report.pgs_total == 8
    assert report.pgs_degraded == 0
    assert report.checks == ()
    assert "HEALTH_OK" in report.summary()


def test_down_host_reports_warn_with_degraded_pgs():
    env, cluster = build(down_out=10_000.0)
    env.run(until=10)
    pg = next(pg for pg in cluster.pool.pgs.values() if pg.objects)
    victim = cluster.topology.osds[pg.acting[0]].host_id
    for osd_id in cluster.topology.hosts[victim].osd_ids:
        cluster.osds[osd_id].host_running = False
    report = check_health(cluster)
    assert report.status == HealthStatus.WARN
    assert report.pgs_degraded > 0
    assert report.pgs_undersized == 0  # k=4, n=6: one shard down >= min_size
    assert any("degraded" in c for c in report.checks)
    assert "HEALTH_WARN" in report.summary()


def test_undersized_pgs_report_err():
    env, cluster = build(down_out=10_000.0)
    env.run(until=10)
    pg = next(pg for pg in cluster.pool.pgs.values() if pg.objects)
    # Kill two shards of one PG: up shards = 4 < min_size = 5.
    for shard in (0, 1):
        cluster.osds[pg.acting[shard]].disk.fail()
    report = check_health(cluster)
    assert report.status == HealthStatus.ERR
    assert report.pgs_undersized >= 1


def test_full_osd_reports_err():
    env, cluster = build()
    osd = cluster.osds[0]
    ballast = int(osd.disk.spec.capacity_bytes * 0.96) - osd.disk.used_bytes
    osd.disk.allocate(ballast)
    report = check_health(cluster)
    assert report.status == HealthStatus.ERR
    assert osd.name in report.full_osds


def test_nearfull_osd_reports_warn():
    env, cluster = build()
    osd = cluster.osds[1]
    ballast = int(osd.disk.spec.capacity_bytes * 0.88) - osd.disk.used_bytes
    osd.disk.allocate(ballast)
    report = check_health(cluster)
    assert report.status == HealthStatus.WARN
    assert osd.name in report.nearfull_osds


def test_health_recovers_after_recovery_completes():
    env, cluster = build(down_out=30.0)
    env.run(until=10)
    pg = next(pg for pg in cluster.pool.pgs.values() if pg.objects)
    victim = cluster.topology.osds[pg.acting[0]].host_id
    for osd_id in cluster.topology.hosts[victim].osd_ids:
        cluster.osds[osd_id].host_running = False
    done = cluster.recovery.wait_all_recovered()
    env.run(until=3000)
    assert done.triggered
    report = check_health(cluster)
    # PGs remapped away from the dead host: no degraded PGs remain (the
    # down OSDs themselves still warn).
    assert report.pgs_degraded == 0
    assert report.status == HealthStatus.WARN
    assert any("down" in c for c in report.checks)
