"""Interface object-stream mapping and pg autoscaling."""

import pytest

from repro.cluster import autoscale_advice, recommended_pg_num
from repro.workload import INTERFACES, Workload, interface_stream

MB = 1024 * 1024


# -- interfaces -----------------------------------------------------------------


def test_rados_passthrough():
    wl = Workload(num_objects=3, object_size=10 * MB)
    objects = list(interface_stream(wl, "rados"))
    assert len(objects) == 3
    assert all(o.size == 10 * MB for o in objects)


def test_rbd_stripes_into_4mb_objects():
    wl = Workload(num_objects=1, object_size=10 * MB)
    objects = list(interface_stream(wl, "rbd"))
    assert [o.size for o in objects] == [4 * MB, 4 * MB, 2 * MB]
    assert sum(o.size for o in objects) == 10 * MB
    assert len({o.name for o in objects}) == 3


def test_cephfs_matches_default_file_layout():
    wl = Workload(num_objects=1, object_size=4 * MB)
    objects = list(interface_stream(wl, "cephfs"))
    assert [o.size for o in objects] == [4 * MB]


def test_rgw_small_objects_stay_whole_with_head():
    wl = Workload(num_objects=1, object_size=1 * MB)
    objects = list(interface_stream(wl, "rgw"))
    # A 4 KB head object plus the body.
    assert [o.size for o in objects] == [4096, 1 * MB]
    assert objects[0].name.endswith("/head")


def test_rgw_large_objects_go_multipart():
    wl = Workload(num_objects=1, object_size=9 * MB)
    objects = list(interface_stream(wl, "rgw"))
    assert objects[0].size == 4096
    assert [o.size for o in objects[1:]] == [4 * MB, 4 * MB, 1 * MB]


def test_unknown_interface_rejected():
    wl = Workload(num_objects=1)
    with pytest.raises(KeyError, match="unknown interface"):
        list(interface_stream(wl, "nfs"))


def test_table1_interfaces_all_modelled():
    assert set(INTERFACES) == {"rados", "rbd", "cephfs", "rgw"}


def test_interface_changes_wa_profile():
    """Striping 10 MB objects into 4 MB pieces changes padding: the
    interface is EC-relevant, which is why Table 1 lists it."""
    from repro.cluster import layout_object

    whole = layout_object(10 * MB, 12, 9, 4 * MB)
    striped = [layout_object(s, 12, 9, 4 * MB) for s in (4 * MB, 4 * MB, 2 * MB)]
    whole_stored = whole.stored_bytes_total
    striped_stored = sum(l.stored_bytes_total for l in striped)
    assert striped_stored != whole_stored


# -- autoscaler -----------------------------------------------------------------


def test_recommended_pg_num_matches_target():
    # 60 OSDs, width 12 -> 60*100/12 = 500 -> rounded to 512.
    assert recommended_pg_num(60, 12) == 512
    # 16 OSDs, width 6 -> 266 -> 256.
    assert recommended_pg_num(16, 6) == 256


def test_recommended_pg_num_power_of_two():
    for osds in (3, 10, 37, 90):
        value = recommended_pg_num(osds, 12)
        assert value & (value - 1) == 0  # power of two


def test_recommended_pg_num_bounds():
    assert recommended_pg_num(1, 200, target_shards_per_osd=1) == 1
    assert recommended_pg_num(100_000, 1) <= 32768


def test_recommended_validation():
    with pytest.raises(ValueError):
        recommended_pg_num(0, 12)
    with pytest.raises(ValueError):
        recommended_pg_num(10, 12, target_shards_per_osd=0)


def test_autoscale_advice_flags_gross_misconfiguration():
    # The paper's pg_num=1 case: 60 OSDs, width 12.
    advice = autoscale_advice(1, 60, 12)
    assert advice.recommended == 512
    assert advice.should_scale
    assert "SCALE" in advice.summary()
    assert advice.shards_per_osd == pytest.approx(0.2)


def test_autoscale_advice_accepts_reasonable_pg_num():
    advice = autoscale_advice(256, 60, 12)
    assert not advice.should_scale
    assert "ok" in advice.summary()


def test_autoscale_advice_validation():
    with pytest.raises(ValueError):
        autoscale_advice(0, 60, 12)


def test_round_power_of_two_uses_geometric_midpoint():
    """The tie point between 2^n and 2^(n+1) is sqrt(2)*2^n, not 1.5x."""
    import math

    from repro.cluster.autoscale import _round_power_of_two

    assert _round_power_of_two(5.68) == 8   # ratio 1.42 > sqrt(2): up
    assert _round_power_of_two(5.64) == 4   # ratio 1.41 < sqrt(2): down
    # Between sqrt(2) and the old arithmetic-flavoured 1.5 cutoff: the
    # geometric rule rounds up where the old rule rounded down.
    assert _round_power_of_two(5.8) == 8    # ratio 1.45
    # The exact midpoint rounds down.
    assert _round_power_of_two(4 * math.sqrt(2.0)) == 4
    # Exact powers map to themselves.
    for power in (1, 2, 64, 32768):
        assert _round_power_of_two(power) == power
