"""Property tests for the fuzzer's near-miss margins.

The fitness axes ``durability_near_miss`` and ``log_trim_near_miss``
reward campaigns that push a cluster *close* to an invariant boundary
without crossing it.  That only works if the underlying margins behave
like distances: never negative under the white-box guard, monotonically
shrinking as injected damage grows, and exactly zero at the invariant
boundary — one more unit of damage is a violation.
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import durability_margin, log_trim_margin
from repro.chaos.invariants import check_durability
from repro.cluster import IntegrityConfig, ScrubConfig
from repro.cluster.pglog import PgLog
from repro.core import FaultSpec
from repro.core.byzantine import ensure_byzantine
from repro.ec import ReedSolomon
from tests.test_fault_injector import build

pytestmark = pytest.mark.chaos


def build_cluster():
    """RS(7,4): m = 3, so damage can range over [0, 3]."""
    return build(
        failure_domain="osd",
        code=ReedSolomon(4, 3),
        integrity=IntegrityConfig(enabled=True),
        scrub=ScrubConfig(enabled=True),
    )


# -- durability margin ----------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_durability_margin_counts_down_to_the_boundary(data):
    cluster, injector = build_cluster()
    tolerance = cluster.pool.code.fault_tolerance()

    # Undamaged: the margin is the full tolerance.
    assert durability_margin(cluster) == tolerance

    # Damage one stripe shard-by-shard, mixing honest corruption and
    # Byzantine false acks (both count in the same damage union).
    total = data.draw(st.integers(min_value=0, max_value=tolerance))
    shards = data.draw(st.lists(
        st.integers(min_value=0, max_value=cluster.pool.code.n - 1),
        min_size=total, max_size=total, unique=True,
    ))
    previous = float(tolerance)
    for index, shard in enumerate(shards):
        level = data.draw(st.sampled_from(("corrupt", "byz_false_ack")))
        injector.inject(FaultSpec(level=level, count=1, targets=[shard]))
        margin = durability_margin(cluster)
        # Non-negative under the guard, monotone in injected damage.
        assert 0 <= margin <= previous
        previous = margin

    # Explicit targets all land on one stripe: the margin is exactly
    # tolerance minus the damage, and hits zero iff damage == tolerance.
    assert durability_margin(cluster) == tolerance - total
    assert (durability_margin(cluster) == 0) == (total == tolerance)


@settings(max_examples=5, deadline=None)
@given(extra_shard=st.integers(min_value=3, max_value=6))
def test_durability_margin_zero_is_exactly_the_invariant_boundary(extra_shard):
    cluster, injector = build_cluster()
    tolerance = cluster.pool.code.fault_tolerance()
    # Drive the stripe to the boundary through the guarded injector.
    injector.inject(FaultSpec(
        level="corrupt", count=tolerance, targets=list(range(tolerance)),
    ))
    assert durability_margin(cluster) == 0
    # At margin zero the durability invariant still holds...
    assert check_durability(cluster) == []
    # ...and one more lying shard (planted behind the guard's back, the
    # way only a test can) crosses it: the margin goes negative and the
    # invariant fires.  Zero really is the boundary.
    pg = next(pg for pg in cluster.pool.pgs.values() if pg.objects)
    obj = pg.objects[0]
    byz = ensure_byzantine(cluster)
    byz.add_false_ack(pg.acting[extra_shard], pg.pgid, obj.name,
                      extra_shard, at=0.0)
    assert durability_margin(cluster) < 0
    assert check_durability(cluster) != []


# -- log-trim margin ------------------------------------------------------------


def trim_cluster(log):
    """The minimal duck-typed cluster ``log_trim_margin`` walks."""
    pg = SimpleNamespace(log=log)
    return SimpleNamespace(pool=SimpleNamespace(pgs={"1.0": pg}))


@settings(max_examples=20, deadline=None)
@given(
    max_entries=st.integers(min_value=2, max_value=10),
    headroom=st.integers(min_value=0, max_value=10),
    writes=st.integers(min_value=0, max_value=25),
)
def test_log_trim_margin_counts_down_to_the_divergence_floor(
    max_entries, headroom, writes,
):
    log = PgLog(n_shards=4, max_entries=max_entries,
                hard_limit=max_entries + headroom)
    cluster = trim_cluster(log)
    log.commit("obj", "create", touched=(0, 1, 2, 3), missing=(),
               at=0.0, staged=False)

    # No divergence: the log trims freely, there is no floor to
    # approach, so there is no margin to report.
    assert log_trim_margin(cluster) is None

    # A divergent shard pins the log; the margin is the room left under
    # the hard cap and shrinks by one per pinned write.
    log.note_divergent("obj", shard=3)
    previous = log_trim_margin(cluster)
    assert previous == log.hard_limit - len(log.entries)
    crossed = False
    for index in range(writes):
        log.commit("obj", "full", touched=(0, 1, 2), missing=(),
                   at=float(index + 1), staged=False)
        margin = log_trim_margin(cluster)
        if margin is None:
            # The hard cap forced a trim past the floor: the pinned
            # shard surrendered its delta claim (backfill), which is the
            # violation the margin predicts.  Only reachable by writing
            # *through* zero margin.
            assert previous == 0
            assert 3 in log.backfill_shards
            crossed = True
            break
        assert 0 <= margin <= previous  # non-negative, monotone
        previous = margin
    if not crossed:
        # Short of the cliff the shard still holds its delta claim:
        # zero margin means the *next* pinned write degrades it.
        assert log.backfill_shards == set()
        assert log_trim_margin(cluster) == log.hard_limit - len(log.entries)
