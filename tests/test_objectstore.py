"""Division-and-padding layout: the paper's S_chunk formula (§4.4)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.cluster import layout_object

KB = 1024
MB = 1024 * 1024


def test_paper_formula_exactly():
    """S_chunk = S_unit * ceil(S_object / (k * S_unit))."""
    layout = layout_object(64 * MB, n=12, k=9, stripe_unit=4 * KB)
    expected_units = math.ceil(64 * MB / (9 * 4 * KB))
    assert layout.units == expected_units
    assert layout.chunk_stored_bytes == expected_units * 4 * KB


def test_undersized_chunk_padded_to_stripe_unit():
    """Object smaller than k * stripe_unit: one unit per chunk."""
    layout = layout_object(10 * KB, n=12, k=9, stripe_unit=4 * KB)
    assert layout.units == 1
    assert layout.chunk_stored_bytes == 4 * KB


def test_zero_byte_object_still_occupies_a_unit():
    layout = layout_object(0, n=6, k=4, stripe_unit=4 * KB)
    assert layout.units == 1


def test_oversized_chunk_divided_into_units():
    layout = layout_object(100 * KB, n=6, k=4, stripe_unit=4 * KB)
    assert layout.units == math.ceil(100 / 16)  # 7
    assert layout.chunk_stored_bytes == 7 * 4 * KB


def test_padding_total():
    layout = layout_object(28 * KB, n=12, k=9, stripe_unit=4 * KB)
    # chunk = 4KB, data side stores 9*4KB = 36KB for 28KB of data.
    assert layout.padding_bytes_total == 36 * KB - 28 * KB


def test_stored_total_and_span():
    layout = layout_object(64 * MB, n=12, k=9, stripe_unit=4 * MB)
    assert layout.units == 2  # ceil(64 / 36)
    assert layout.chunk_stored_bytes == 8 * MB
    assert layout.stored_bytes_total == 12 * 8 * MB
    assert layout.stripe_span == 36 * MB


def test_64mb_stripe_unit_inflation():
    """The Fig 2c / §4.4 effect: 64 MB units waste ~9x for 64 MB objects."""
    layout = layout_object(64 * MB, n=12, k=9, stripe_unit=64 * MB)
    assert layout.units == 1
    assert layout.chunk_stored_bytes == 64 * MB  # vs ~7.1 MB logical
    assert layout.stored_bytes_total / (64 * MB) == pytest.approx(12.0)


def test_validation():
    with pytest.raises(ValueError):
        layout_object(-1, 12, 9, 4096)
    with pytest.raises(ValueError):
        layout_object(100, 9, 9, 4096)  # k == n
    with pytest.raises(ValueError):
        layout_object(100, 12, 9, 0)


@given(
    size=st.integers(min_value=0, max_value=10**9),
    k=st.integers(min_value=1, max_value=20),
    m=st.integers(min_value=1, max_value=6),
    unit=st.sampled_from([4 * KB, 64 * KB, 1 * MB, 4 * MB]),
)
def test_property_storage_never_below_logical(size, k, m, unit):
    layout = layout_object(size, n=k + m, k=k, stripe_unit=unit)
    # Data-side storage always covers the object.
    assert layout.k * layout.chunk_stored_bytes >= size
    # Chunk size is always a whole number of stripe units.
    assert layout.chunk_stored_bytes % unit == 0
    # Padding is strictly less than one stripe unit per... the span:
    # removing one unit row must not still cover the object.
    if layout.units > 1:
        assert (layout.units - 1) * unit * k < size


@given(
    size=st.integers(min_value=1, max_value=10**8),
    k=st.integers(min_value=2, max_value=16),
)
def test_property_matches_ceil_formula(size, k):
    unit = 4 * KB
    layout = layout_object(size, n=k + 2, k=k, stripe_unit=unit)
    assert layout.chunk_stored_bytes == unit * math.ceil(size / (k * unit))
