"""Recovery state machine: end-to-end PG recovery on small clusters."""

import pytest

from repro.cluster import CACHE_SCHEMES, CephCluster, CephConfig
from repro.ec import ClayCode, ReedSolomon
from repro.sim import Environment


def build(code=None, *, pg_num=8, num_hosts=8, osds_per_host=2,
          failure_domain="host", down_out=60.0):
    env = Environment()
    cluster = CephCluster(
        env,
        code or ReedSolomon(4, 2),
        CACHE_SCHEMES["autotune"],
        config=CephConfig(mon_osd_down_out_interval=down_out),
        num_hosts=num_hosts,
        osds_per_host=osds_per_host,
        pg_num=pg_num,
        failure_domain=failure_domain,
    )
    return env, cluster


def ingest(cluster, count=40, size=4 * 1024 * 1024):
    for i in range(count):
        cluster.ingest_object(f"obj-{i}", size)


def fail_host(cluster, host_id):
    for osd_id in cluster.topology.hosts[host_id].osd_ids:
        cluster.osds[osd_id].host_running = False


def drive_to_completion(env, cluster, limit=5000.0):
    done = cluster.recovery.wait_all_recovered()
    env.run(until=limit)
    assert done.triggered, "recovery did not finish in time"


def affected_host(cluster):
    """A host that actually holds shards of at least one PG."""
    for pg in cluster.pool.pgs.values():
        if pg.objects:
            return cluster.topology.osds[pg.acting[0]].host_id
    raise AssertionError("no data ingested")


def test_recovery_completes_and_counts():
    env, cluster = build()
    ingest(cluster)
    env.run(until=10)
    victim = affected_host(cluster)
    fail_host(cluster, victim)
    drive_to_completion(env, cluster)
    stats = cluster.recovery.stats
    assert stats.pgs_recovered == stats.pgs_queued > 0
    assert stats.objects_recovered > 0
    assert stats.chunks_rebuilt >= stats.objects_recovered
    assert stats.bytes_written > 0
    assert stats.bytes_read >= stats.bytes_written  # k reads per write


def test_acting_sets_exclude_failed_osds_after_recovery():
    env, cluster = build()
    ingest(cluster)
    env.run(until=10)
    victim = affected_host(cluster)
    failed_osds = set(cluster.topology.hosts[victim].osd_ids)
    fail_host(cluster, victim)
    drive_to_completion(env, cluster)
    for pg in cluster.pool.pgs.values():
        assert not failed_osds & set(pg.acting)


def test_rebuilt_chunks_land_on_targets():
    env, cluster = build()
    ingest(cluster, count=20)
    env.run(until=10)
    before = {o: cluster.osds[o].backend.num_chunks for o in cluster.osds}
    victim = affected_host(cluster)
    fail_host(cluster, victim)
    drive_to_completion(env, cluster)
    gained = [
        o
        for o in cluster.osds
        if cluster.osds[o].backend.num_chunks > before[o]
        and cluster.topology.osds[o].host_id != victim
    ]
    assert gained, "no replacement OSD received rebuilt chunks"


def test_unaffected_host_failure_recovers_nothing():
    env, cluster = build(pg_num=1, num_hosts=14)
    ingest(cluster, count=5)
    env.run(until=10)
    acting_hosts = {
        cluster.topology.osds[o].host_id for o in cluster.pool.pgs[0].acting
    }
    spare = next(h for h in cluster.topology.hosts if h not in acting_hosts)
    fail_host(cluster, spare)
    env.run(until=500)
    assert cluster.recovery.stats.pgs_queued == 0


def test_clay_reads_less_than_rs_for_single_shard_loss():
    """Repair traffic differences emerge from the codes themselves."""
    results = {}
    for label, code in (("rs", ReedSolomon(4, 2)), ("clay", ClayCode(4, 2))):
        env, cluster = build(code, num_hosts=8)
        ingest(cluster, count=30)
        env.run(until=10)
        victim = affected_host(cluster)
        fail_host(cluster, victim)
        drive_to_completion(env, cluster)
        stats = cluster.recovery.stats
        results[label] = stats.bytes_read / max(stats.objects_recovered, 1)
    # Clay(4,2,3): 3 helpers x 1/2 chunk = 1.5 chunks vs RS k=2 chunks.
    assert results["clay"] < results["rs"]


def test_multi_host_failure_within_tolerance():
    env, cluster = build(ReedSolomon(4, 2), num_hosts=10)
    ingest(cluster, count=30)
    env.run(until=10)
    pg = next(pg for pg in cluster.pool.pgs.values() if pg.objects)
    h1 = cluster.topology.osds[pg.acting[0]].host_id
    h2 = cluster.topology.osds[pg.acting[1]].host_id
    fail_host(cluster, h1)
    fail_host(cluster, h2)
    drive_to_completion(env, cluster)
    stats = cluster.recovery.stats
    assert stats.pgs_recovered == stats.pgs_queued > 0


def test_osd_level_failure_domain_recovery():
    env, cluster = build(
        ReedSolomon(4, 2), failure_domain="osd", num_hosts=4, osds_per_host=3
    )
    ingest(cluster, count=25)
    env.run(until=10)
    pg = next(pg for pg in cluster.pool.pgs.values() if pg.objects)
    victim_osd = pg.acting[2]
    cluster.osds[victim_osd].disk.fail()
    drive_to_completion(env, cluster)
    assert cluster.recovery.stats.pgs_recovered > 0
    for pg in cluster.pool.pgs.values():
        assert victim_osd not in pg.acting


def test_recovery_io_starts_only_after_out():
    env, cluster = build(down_out=200.0)
    ingest(cluster)
    env.run(until=10)
    victim = affected_host(cluster)
    fail_host(cluster, victim)
    drive_to_completion(env, cluster, limit=8000)
    stats = cluster.recovery.stats
    assert stats.io_started_at is not None
    # Out interval (200 s) gates the start of recovery I/O.
    assert stats.io_started_at >= 10 + 200.0


def test_recovery_logs_paper_phrases():
    env, cluster = build()
    ingest(cluster)
    env.run(until=10)
    fail_host(cluster, affected_host(cluster))
    drive_to_completion(env, cluster)
    text = "\n".join(
        record.message
        for log in cluster.all_logs()
        for record in log
    )
    for phrase in (
        "collecting missing OSDs, queueing recovery",
        "check recovery resource",
        "start recovery I/O",
        "recovery completed",
        "report recovery I/O",
    ):
        assert phrase in text
