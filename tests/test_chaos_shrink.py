"""ddmin shrinking and replayable repro artifacts."""

import json

import pytest

from repro.chaos import (
    ArtifactError,
    CampaignSpec,
    ReproArtifact,
    ScheduledAction,
    ddmin,
    load_artifact,
    run_campaign,
    save_artifact,
    shrink_campaign,
    shrink_campaign_by,
)

pytestmark = pytest.mark.chaos


# -- ddmin in isolation --------------------------------------------------------


def test_ddmin_finds_single_culprit():
    items = list(range(20))
    calls = []

    def fails(candidate):
        calls.append(list(candidate))
        return 13 in candidate

    assert ddmin(items, fails) == [13]


def test_ddmin_keeps_interacting_pair():
    items = list(range(16))

    def fails(candidate):
        return 3 in candidate and 11 in candidate

    assert ddmin(items, fails) == [3, 11]


def test_ddmin_preserves_order():
    items = ["a", "b", "c", "d", "e", "f"]

    def fails(candidate):
        return "e" in candidate and "b" in candidate

    assert ddmin(items, fails) == ["b", "e"]


def test_ddmin_requires_failing_input():
    with pytest.raises(ValueError, match="does not fail"):
        ddmin([1, 2, 3], lambda candidate: False)


def test_ddmin_result_is_one_minimal():
    def fails(candidate):
        return sum(candidate) >= 10

    minimal = ddmin([7, 1, 2, 5, 3, 9], fails)
    assert fails(minimal)
    for index in range(len(minimal)):
        smaller = minimal[:index] + minimal[index + 1 :]
        assert not fails(smaller), f"dropping {minimal[index]} still fails"


# -- shrinking real campaigns --------------------------------------------------


def failing_spec():
    """A campaign that misses convergence: restore but near-zero settle.

    Only the *last* inject+restore pair is needed to reproduce the
    violation, so the noise rounds before it must shrink away.
    """
    return CampaignSpec(
        seed=77,
        ec_plugin="jerasure",
        ec_params=(("k", 3), ("m", 2)),
        pg_num=4,
        stripe_unit=256 * 1024,
        num_hosts=8,
        osds_per_host=1,
        mon_osd_down_out_interval=30.0,
        num_objects=6,
        object_size=512 * 1024,
        settle_time=1.0,
        actions=(
            ScheduledAction(at=100.0, kind="inject", level="node", count=1),
            ScheduledAction(at=300.0, kind="restore"),
            ScheduledAction(at=900.0, kind="inject", level="device", count=1),
            ScheduledAction(at=1100.0, kind="restore"),
            ScheduledAction(at=1700.0, kind="inject", level="node", count=1),
            ScheduledAction(at=1750.0, kind="restore"),
        ),
    )


def test_shrink_campaign_minimises_schedule():
    spec = failing_spec()
    shrunk, result = shrink_campaign(spec)
    assert not result.passed
    assert {v.invariant for v in result.violations} == {"health-convergence"}
    assert len(shrunk.actions) < len(spec.actions)
    # A lone un-restored inject (or inject+restore with no settle) is
    # enough to miss convergence; ddmin must get to a single-action core.
    assert len(shrunk.actions) == 1
    assert shrunk.actions[0].kind == "inject"


def test_shrink_refuses_passing_campaign():
    spec = failing_spec()
    passing = CampaignSpec.from_dict({**spec.to_dict(), "settle_time": 50_000.0})
    with pytest.raises(ValueError, match="does not fail"):
        shrink_campaign(passing)


def test_shrink_campaign_by_takes_a_caller_oracle():
    spec = failing_spec()
    shrunk, result = shrink_campaign_by(
        spec,
        lambda r: any(v.invariant == "health-convergence"
                      for v in r.violations),
    )
    assert len(shrunk.actions) == 1
    assert not result.passed


def test_shrink_campaign_by_refuses_a_satisfied_oracle():
    # The campaign fails, but not the way the caller's predicate wants:
    # there is nothing to minimise.
    with pytest.raises(ValueError, match="does not fail"):
        shrink_campaign_by(
            failing_spec(),
            lambda r: any(v.invariant == "durability" for v in r.violations),
        )


# -- artifacts -----------------------------------------------------------------


def test_artifact_round_trip(tmp_path):
    spec = failing_spec()
    result = run_campaign(spec)
    artifact = ReproArtifact(
        spec=spec,
        violations=result.violations,
        outcome_hash=result.outcome_hash,
        original_spec=spec,
    )
    path = save_artifact(artifact, tmp_path / "repro.json")
    loaded = load_artifact(path)
    assert loaded.spec == spec
    assert loaded.original_spec == spec
    assert loaded.outcome_hash == result.outcome_hash
    assert loaded.violations == result.violations


def test_artifact_replay_reproduces_outcome_hash(tmp_path):
    """The acceptance gate: replaying an artifact hits the same hash."""
    spec = failing_spec()
    shrunk, result = shrink_campaign(spec)
    artifact = ReproArtifact(
        spec=shrunk, violations=result.violations,
        outcome_hash=result.outcome_hash, original_spec=spec,
    )
    path = save_artifact(artifact, tmp_path / "repro.json")
    replayed = run_campaign(load_artifact(path).spec)
    assert replayed.outcome_hash == artifact.outcome_hash
    assert replayed.violations == artifact.violations


@pytest.mark.parametrize("mutate", [
    lambda d: d.pop("format"),
    lambda d: d.update(format="something-else"),
    lambda d: d.update(version=99),
    lambda d: d.pop("spec"),
    lambda d: d.pop("outcome_hash"),
    lambda d: d.update(outcome_hash=""),
    lambda d: d["spec"].pop("seed"),
])
def test_artifact_rejects_malformed_payloads(tmp_path, mutate):
    spec = failing_spec()
    artifact = ReproArtifact(spec=spec, violations=[], outcome_hash="ab" * 32)
    data = artifact.to_dict()
    mutate(data)
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(data))
    with pytest.raises(ArtifactError):
        load_artifact(path)


def test_artifact_rejects_non_json(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("{not json")
    with pytest.raises(ArtifactError, match="not valid JSON"):
        load_artifact(path)
    with pytest.raises(ArtifactError, match="cannot read"):
        load_artifact(tmp_path / "missing.json")
