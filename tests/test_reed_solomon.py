"""Reed-Solomon codes: MDS property, both techniques, both plugins."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ec import InsufficientChunksError, IsaReedSolomon, ReedSolomon


@pytest.fixture(params=["reed_sol_van", "cauchy_orig"])
def technique(request):
    return request.param


def test_unknown_technique_rejected():
    with pytest.raises(ValueError, match="unknown RS technique"):
        ReedSolomon(4, 2, technique="magic")


def test_n_over_256_rejected():
    with pytest.raises(ValueError):
        ReedSolomon(250, 10)


def test_encode_produces_n_equal_chunks(technique):
    code = ReedSolomon(5, 3, technique=technique)
    chunks = code.encode(b"x" * 1000)
    assert len(chunks) == 8
    sizes = {len(c) for c in chunks}
    assert len(sizes) == 1


def test_systematic_data_chunks_hold_payload(technique):
    code = ReedSolomon(4, 2, technique=technique)
    data = bytes(range(64))
    chunks = code.encode(data)
    recovered = b"".join(c.tobytes() for c in chunks[:4])[: len(data)]
    assert recovered == data


def test_exhaustive_small_code_all_patterns(technique):
    """RS(5,3): every erasure pattern of <= m chunks must decode."""
    code = ReedSolomon(3, 2, technique=technique)
    rng = np.random.default_rng(3)
    data = rng.integers(0, 256, 301, dtype=np.uint8).tobytes()
    chunks = code.encode(data)
    for count in (1, 2):
        for erased in itertools.combinations(range(code.n), count):
            available = {
                i: chunks[i] for i in range(code.n) if i not in erased
            }
            assert code.decode(available, len(data)) == data
            rebuilt = code.decode_chunks(available, list(erased))
            for idx in erased:
                assert np.array_equal(rebuilt[idx], chunks[idx])


def test_paper_rs_12_9_with_three_failures(technique):
    code = ReedSolomon(9, 3, technique=technique)
    rng = np.random.default_rng(12)
    data = rng.integers(0, 256, 9 * 1024, dtype=np.uint8).tobytes()
    chunks = code.encode(data)
    for erased in [(0, 1, 2), (9, 10, 11), (0, 5, 11), (3, 9, 10)]:
        available = {i: chunks[i] for i in range(12) if i not in erased}
        rebuilt = code.decode_chunks(available, list(erased))
        for idx in erased:
            assert np.array_equal(rebuilt[idx], chunks[idx])


def test_paper_rs_15_12(technique):
    code = ReedSolomon(12, 3, technique=technique)
    data = bytes(range(256)) * 12
    chunks = code.encode(data)
    available = {i: chunks[i] for i in range(15) if i not in (1, 7, 14)}
    assert code.decode(available, len(data)) == data


def test_too_few_chunks_raises(technique):
    code = ReedSolomon(4, 2, technique=technique)
    chunks = code.encode(b"payload")
    available = {i: chunks[i] for i in (0, 1, 2)}
    with pytest.raises(InsufficientChunksError):
        code.decode_chunks(available, [3, 4, 5])


def test_parity_reconstruction(technique):
    """Decoding can also rebuild parity chunks, not just data."""
    code = ReedSolomon(4, 2, technique=technique)
    data = bytes(range(200))
    chunks = code.encode(data)
    available = {i: chunks[i] for i in range(4)}  # all data, no parity
    rebuilt = code.decode_chunks(available, [4, 5])
    assert np.array_equal(rebuilt[4], chunks[4])
    assert np.array_equal(rebuilt[5], chunks[5])


def test_mixed_data_and_parity_loss(technique):
    code = ReedSolomon(6, 3, technique=technique)
    data = bytes(range(251)) * 2
    chunks = code.encode(data)
    erased = (0, 4, 8)
    available = {i: chunks[i] for i in range(9) if i not in erased}
    rebuilt = code.decode_chunks(available, list(erased))
    for idx in erased:
        assert np.array_equal(rebuilt[idx], chunks[idx])


@settings(max_examples=30, deadline=None)
@given(
    data=st.binary(min_size=0, max_size=2000),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_roundtrip_random_erasures(data, seed):
    code = ReedSolomon(4, 2)
    chunks = code.encode(data)
    rng = np.random.default_rng(seed)
    erased = set(rng.choice(6, size=2, replace=False).tolist())
    available = {i: chunks[i] for i in range(6) if i not in erased}
    assert code.decode(available, len(data)) == data


def test_isa_plugin_same_codewords():
    """ISA is the same math as Jerasure; only the CPU model differs."""
    data = bytes(range(123))
    jer = ReedSolomon(4, 2).encode(data)
    isa = IsaReedSolomon(4, 2).encode(data)
    for a, b in zip(jer, isa):
        assert np.array_equal(a, b)
    assert IsaReedSolomon(4, 2).cpu_cost_factor < ReedSolomon(4, 2).cpu_cost_factor


def test_cauchy_and_vandermonde_differ_but_both_decode():
    data = bytes(range(100))
    van = ReedSolomon(4, 2, technique="reed_sol_van")
    cau = ReedSolomon(4, 2, technique="cauchy_orig")
    chunks_v = van.encode(data)
    chunks_c = cau.encode(data)
    # Same data chunks, (generally) different parity chunks.
    for i in range(4):
        assert np.array_equal(chunks_v[i], chunks_c[i])
    assert van.decode({i: chunks_v[i] for i in (2, 3, 4, 5)}, len(data)) == data
    assert cau.decode({i: chunks_c[i] for i in (2, 3, 4, 5)}, len(data)) == data


def test_r6_requires_m_equals_2():
    with pytest.raises(ValueError, match="m = 2"):
        ReedSolomon(4, 3, technique="reed_sol_r6_op")


def test_r6_parity_structure():
    """P is the XOR of the data chunks; Q is the 2^i-weighted sum."""
    code = ReedSolomon(4, 2, technique="reed_sol_r6_op")
    data = bytes(range(120))
    chunks = code.encode(data)
    p_expected = chunks[0] ^ chunks[1] ^ chunks[2] ^ chunks[3]
    assert np.array_equal(chunks[4], p_expected)


def test_r6_exhaustive_double_failures():
    """RAID-6 must tolerate every 2-erasure pattern."""
    code = ReedSolomon(5, 2, technique="reed_sol_r6_op")
    rng = np.random.default_rng(42)
    data = rng.integers(0, 256, 777, dtype=np.uint8).tobytes()
    chunks = code.encode(data)
    for erased in itertools.combinations(range(7), 2):
        available = {i: chunks[i] for i in range(7) if i not in erased}
        rebuilt = code.decode_chunks(available, list(erased))
        for idx in erased:
            assert np.array_equal(rebuilt[idx], chunks[idx]), erased
