"""Workload generation and iostat sampling."""

import pytest

from repro.cluster import GP_SSD, Disk
from repro.sim import Environment, SeedSequence
from repro.workload import PAPER_DEFAULT, IostatCollector, Workload

MB = 1024 * 1024


def test_paper_default_workload():
    assert PAPER_DEFAULT.num_objects == 10_000
    assert PAPER_DEFAULT.object_size == 64 * MB
    assert PAPER_DEFAULT.total_bytes == 10_000 * 64 * MB


def test_workload_validation():
    with pytest.raises(ValueError):
        Workload(num_objects=-1)
    with pytest.raises(ValueError):
        Workload(object_size=0)
    with pytest.raises(ValueError):
        Workload(size_jitter=1.5)


def test_writes_are_deterministic():
    wl = Workload(num_objects=10, object_size=MB, size_jitter=0.2)
    a = list(wl.writes(SeedSequence(5)))
    b = list(wl.writes(SeedSequence(5)))
    assert a == b
    c = list(wl.writes(SeedSequence(6)))
    assert a != c


def test_writes_without_jitter_fixed_size():
    wl = Workload(num_objects=5, object_size=3 * MB)
    sizes = {w.size for w in wl.writes()}
    assert sizes == {3 * MB}
    names = [w.name for w in wl.writes()]
    assert len(set(names)) == 5


def test_jitter_bounds():
    wl = Workload(num_objects=100, object_size=MB, size_jitter=0.5)
    for write in wl.writes(SeedSequence(1)):
        assert 0.5 * MB <= write.size <= 1.5 * MB


def test_scaled_preserves_shape():
    scaled = PAPER_DEFAULT.scaled(0.01)
    assert scaled.num_objects == 100
    assert scaled.object_size == PAPER_DEFAULT.object_size
    with pytest.raises(ValueError):
        PAPER_DEFAULT.scaled(0)
    assert PAPER_DEFAULT.scaled(1e-9).num_objects == 1  # floor of one


# -- iostat ---------------------------------------------------------------------


def test_iostat_samples_deltas():
    env = Environment()
    disk = Disk(env, GP_SSD, name="d0")
    collector = IostatCollector(env, {"d0": disk}, interval=10.0)

    def io():
        yield disk.submit(5, 1000, write=False)
        yield env.timeout(15)
        yield disk.submit(3, 500, write=True)

    env.process(io())
    env.run(until=30)
    series = collector.device_series("d0")
    assert len(series) == 3
    assert series[0].read_ops == 5
    assert series[0].read_bytes == 1000
    assert series[1].write_ops == 3
    # Second interval only saw the write.
    assert series[1].read_ops == 0
    assert series[0].read_bytes_per_sec == pytest.approx(100.0)


def test_iostat_interval_validation():
    env = Environment()
    with pytest.raises(ValueError):
        IostatCollector(env, {}, interval=0)


def test_busiest_devices_ranking():
    env = Environment()
    quiet = Disk(env, GP_SSD, name="quiet")
    busy = Disk(env, GP_SSD, name="busy")
    collector = IostatCollector(env, {"quiet": quiet, "busy": busy}, interval=5.0)

    def io():
        yield busy.submit(1, 10_000_000, write=False)
        yield quiet.submit(1, 100, write=False)

    env.process(io())
    env.run(until=10)
    assert collector.busiest_devices(top=1) == ["busy"]


# -- size models --------------------------------------------------------------


def test_fixed_size_model():
    from repro.workload import FixedSize

    model = FixedSize(4096)
    assert model.sample(None) == 4096
    assert model.mean() == 4096.0
    with pytest.raises(ValueError):
        FixedSize(0)


def test_lognormal_size_model():
    from repro.workload import LognormalSizes

    model = LognormalSizes(median=1 * MB, sigma=1.0)
    rng = SeedSequence(7).stream("sizes")
    samples = [model.sample(rng) for _ in range(2000)]
    assert all(s >= 1 for s in samples)
    # Median should land near the configured median.
    samples.sort()
    median = samples[len(samples) // 2]
    assert 0.5 * MB < median < 2 * MB
    assert model.mean() > model.median  # lognormal mean exceeds median
    with pytest.raises(ValueError):
        LognormalSizes(median=0)
    with pytest.raises(ValueError):
        LognormalSizes(median=100, sigma=0)


def test_mixture_size_model():
    from repro.workload import FixedSize, MixtureSizes

    model = MixtureSizes(((9.0, FixedSize(1024)), (1.0, FixedSize(10 * MB))))
    rng = SeedSequence(8).stream("sizes")
    samples = [model.sample(rng) for _ in range(2000)]
    small = sum(1 for s in samples if s == 1024)
    assert 0.8 < small / len(samples) < 0.98
    assert model.mean() == pytest.approx((9 * 1024 + 10 * MB) / 10)
    with pytest.raises(ValueError):
        MixtureSizes(())
    with pytest.raises(ValueError):
        MixtureSizes(((0.0, FixedSize(1)),))


def test_workload_with_size_model_is_deterministic():
    from repro.workload import LognormalSizes

    wl = Workload(num_objects=50, size_model=LognormalSizes(median=MB))
    a = [w.size for w in wl.writes(SeedSequence(1))]
    b = [w.size for w in wl.writes(SeedSequence(1))]
    assert a == b
    assert len(set(a)) > 1  # actually varies


def test_scaled_preserves_size_model():
    from repro.workload import LognormalSizes

    model = LognormalSizes(median=MB)
    scaled = Workload(num_objects=100, size_model=model).scaled(0.5)
    assert scaled.size_model is model
    assert scaled.num_objects == 50
