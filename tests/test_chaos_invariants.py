"""Property tests for the invariant checkers themselves.

The chaos harness is only as good as its oracles, so each checker is
tested both ways: it must flag a trace that violates its invariant
(planted by direct state tampering, bypassing the injector's guards) and
must stay silent on a clean trace.  Hypothesis drives the tampering so
the checkers are exercised across arbitrary perturbations, not one
hand-picked example.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.invariants import (
    InvariantViolation,
    check_converged,
    check_durability,
    check_log_monotonicity,
    check_wa_conservation,
)
from repro.cluster.logs import LogRecord
from repro.core.controller import Controller
from repro.core.profile import ExperimentProfile
from repro.core.timeline import first_nonmonotone
from repro.workload.generator import Workload

pytestmark = pytest.mark.chaos


def build_cluster():
    """A small populated cluster with heartbeats established."""
    profile = ExperimentProfile(
        name="inv",
        ec_plugin="jerasure",
        ec_params={"k": 3, "m": 2},
        pg_num=4,
        stripe_unit=256 * 1024,
        num_hosts=8,
        osds_per_host=1,
    )
    controller = Controller(profile, seed=11)
    controller.coordinator.ingest_workload(
        Workload(num_objects=6, object_size=512 * 1024)
    )
    controller.env.run(until=50.0)
    return controller.cluster


CLUSTER = build_cluster()
TOLERANCE = CLUSTER.pool.code.fault_tolerance()


# -- log monotonicity ----------------------------------------------------------


def _records(times):
    return [LogRecord(time=t, node="n", subsystem="osd", message="m") for t in times]


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=0, max_size=20))
@settings(max_examples=100, deadline=None)
def test_first_nonmonotone_matches_sortedness(times):
    index = first_nonmonotone(_records(times))
    if times == sorted(times):
        assert index is None
    else:
        assert index is not None
        assert times[index] < times[index - 1]
        # ...and everything before the reported index is monotone.
        assert times[: index] == sorted(times[: index])


@given(
    st.integers(min_value=1, max_value=1000),
    st.floats(min_value=0.001, max_value=100.0),
)
@settings(max_examples=25, deadline=None)
def test_log_monotonicity_flags_planted_time_reversal(at_time, backstep):
    log = CLUSTER.mon_log
    baseline = check_log_monotonicity(CLUSTER)
    assert baseline == []
    snapshot = list(log.records)
    try:
        log.records.append(
            LogRecord(time=float(at_time), node=log.node, subsystem="mon",
                      message="forward")
        )
        log.records.append(
            LogRecord(time=float(at_time) - backstep, node=log.node,
                      subsystem="mon", message="backwards")
        )
        violations = check_log_monotonicity(CLUSTER)
        assert len(violations) == 1
        assert violations[0].invariant == "timeline-monotone"
        assert log.node in violations[0].detail
    finally:
        log.records[:] = snapshot


# -- WA byte conservation ------------------------------------------------------


def test_wa_conservation_holds_on_clean_cluster():
    assert check_wa_conservation(CLUSTER) == []
    assert CLUSTER.ledger.device_bytes == CLUSTER.used_bytes_total()


@given(st.integers(min_value=-(2**40), max_value=2**40).filter(lambda d: d != 0))
@settings(max_examples=50, deadline=None)
def test_wa_conservation_flags_any_nonzero_drift(delta):
    ledger = CLUSTER.ledger
    original = ledger.repair_bytes
    try:
        ledger.repair_bytes += delta
        violations = check_wa_conservation(CLUSTER)
        assert len(violations) == 1
        assert violations[0].invariant == "wa-conservation"
        assert f"{-delta:+d}" in violations[0].detail
    finally:
        ledger.repair_bytes = original
    assert check_wa_conservation(CLUSTER) == []


# -- durability ----------------------------------------------------------------


def _set_hosts_down(host_ids, down):
    for host_id in host_ids:
        for osd_id in CLUSTER.topology.hosts[host_id].osd_ids:
            CLUSTER.osds[osd_id].host_running = not down


def _hosts_of_acting(pg, count):
    return [CLUSTER.topology.osds[osd_id].host_id for osd_id in pg.acting[:count]]


@given(st.integers(min_value=0, max_value=TOLERANCE))
@settings(max_examples=10, deadline=None)
def test_durability_tolerates_up_to_m_failures(count):
    pg = next(pg for pg in CLUSTER.pool.pgs.values() if pg.objects)
    hosts = _hosts_of_acting(pg, count)
    try:
        _set_hosts_down(hosts, down=True)
        assert check_durability(CLUSTER) == []
    finally:
        _set_hosts_down(hosts, down=False)


@given(st.integers(min_value=TOLERANCE + 1, max_value=TOLERANCE + 3))
@settings(max_examples=10, deadline=None)
def test_durability_flags_loss_beyond_tolerance(count):
    pg = next(pg for pg in CLUSTER.pool.pgs.values() if pg.objects)
    hosts = _hosts_of_acting(pg, count)
    try:
        _set_hosts_down(hosts, down=True)
        violations = check_durability(CLUSTER)
        assert violations, "losing more than m shards must be flagged"
        assert all(v.invariant == "durability" for v in violations)
        assert any(pg.pgid in v.detail for v in violations)
    finally:
        _set_hosts_down(hosts, down=False)
    assert check_durability(CLUSTER) == []


# -- convergence ---------------------------------------------------------------


def test_converged_passes_on_healthy_cluster():
    assert check_converged(CLUSTER) == []


def test_converged_flags_down_osd_and_stale_out():
    osd = CLUSTER.osds[0]
    try:
        osd.host_running = False
        names = {v.invariant for v in check_converged(CLUSTER)}
        assert names == {"health-convergence"}
    finally:
        osd.host_running = True
    CLUSTER.monitor.out_osds.add(0)
    try:
        violations = check_converged(CLUSTER)
        assert violations, "stale out state must block convergence"
    finally:
        CLUSTER.monitor.out_osds.discard(0)
    assert check_converged(CLUSTER) == []


# -- the violation record ------------------------------------------------------


def test_violation_round_trips_to_dict():
    violation = InvariantViolation("durability", "detail", 12.5, step=3)
    assert InvariantViolation(**violation.to_dict()) == violation
