"""Experiment profiles: Table 1 validation and factories."""

import pytest

from repro.core import PAPER_CLAY_PROFILE, PAPER_RS_PROFILE, ExperimentProfile
from repro.ec import ClayCode, ReedSolomon


def test_default_profile_is_paper_rs():
    profile = ExperimentProfile()
    code = profile.create_code()
    assert isinstance(code, ReedSolomon)
    assert (code.n, code.k) == (12, 9)
    assert profile.pg_num == 256
    assert profile.stripe_unit == 4 * 1024 * 1024
    assert profile.failure_domain == "host"


def test_paper_profiles():
    rs = PAPER_RS_PROFILE.create_code()
    clay = PAPER_CLAY_PROFILE.create_code()
    assert (rs.n, rs.k) == (12, 9)
    assert isinstance(clay, ClayCode)
    assert (clay.n, clay.k, clay.d) == (12, 9, 11)


def test_invalid_options_rejected():
    with pytest.raises(ValueError, match="backend"):
        ExperimentProfile(backend="zfs")
    with pytest.raises(ValueError, match="interface"):
        ExperimentProfile(interface="nfs")
    with pytest.raises(ValueError, match="device class"):
        ExperimentProfile(device_class="tape")
    with pytest.raises(ValueError, match="failure domain"):
        ExperimentProfile(failure_domain="dc")
    with pytest.raises(ValueError, match="cache scheme"):
        ExperimentProfile(cache_scheme="everything")
    with pytest.raises(ValueError, match="EC plugin"):
        ExperimentProfile(ec_plugin="raid6")
    with pytest.raises(ValueError):
        ExperimentProfile(pg_num=0)
    with pytest.raises(ValueError):
        ExperimentProfile(stripe_unit=-4)
    with pytest.raises(ValueError):
        ExperimentProfile(num_hosts=0)


def test_bad_ec_params_fail_fast():
    with pytest.raises(ValueError):
        ExperimentProfile(ec_plugin="clay", ec_params={"k": 9, "m": 3, "d": 12})


def test_with_overrides_returns_new_profile():
    base = ExperimentProfile(name="base")
    swept = base.with_overrides(stripe_unit=4 * 1024, name="swept")
    assert swept.stripe_unit == 4 * 1024
    assert base.stripe_unit == 4 * 1024 * 1024
    assert swept.pg_num == base.pg_num


def test_cache_config_resolution():
    profile = ExperimentProfile(cache_scheme="kv-optimized")
    config = profile.cache_config()
    assert config.kv_ratio == 0.70
    filestore = ExperimentProfile(backend="filestore")
    assert filestore.cache_config().name == "filestore-pagecache"


def test_describe_mentions_key_settings():
    text = ExperimentProfile(name="x", pg_num=16).describe()
    assert "pg_num=16" in text
    assert "jerasure" in text


def test_lrc_and_shec_profiles_construct():
    lrc = ExperimentProfile(ec_plugin="lrc", ec_params={"k": 12, "l": 2, "r": 2})
    shec = ExperimentProfile(ec_plugin="shec", ec_params={"k": 8, "m": 4, "l": 5})
    assert lrc.create_code().n == 16
    assert shec.create_code().n == 12


def test_device_class_selects_disk_spec():
    from repro.cluster import GP_SSD, NEARLINE_HDD

    assert ExperimentProfile(device_class="ssd").disk_spec() is GP_SSD
    assert ExperimentProfile(device_class="hdd").disk_spec() is NEARLINE_HDD


def test_num_racks_validated():
    with pytest.raises(ValueError, match="num_racks"):
        ExperimentProfile(num_hosts=5, num_racks=6)
    profile = ExperimentProfile(num_hosts=9, num_racks=3)
    assert profile.num_racks == 3
