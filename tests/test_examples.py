"""Smoke tests: every example script runs clean (at reduced scale)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_examples_directory_has_scripts():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 4  # quickstart + >= 3 scenarios


def test_repair_bandwidth_example():
    proc = run_example("repair_bandwidth.py")
    assert proc.returncode == 0, proc.stderr
    assert "clay(12,9)" in proc.stdout
    assert "Clay saves" in proc.stdout


def test_wa_calculator_example():
    proc = run_example("wa_calculator.py", "--object-size", "44KB")
    assert proc.returncode == 0, proc.stderr
    assert "n/k" in proc.stdout
    assert "estimate" in proc.stdout


def test_failure_modes_example_small():
    proc = run_example("failure_modes.py", "--objects", "150")
    assert proc.returncode == 0, proc.stderr
    assert "vs 1-failure" in proc.stdout
    assert "3 failures, diff hosts" in proc.stdout


def test_configuration_sweep_example_small():
    proc = run_example("configuration_sweep.py", "--objects", "60")
    assert proc.returncode == 0, proc.stderr
    assert "Figure 2b (example scale)" in proc.stdout


def test_auto_tuning_example_small():
    proc = run_example("auto_tuning.py", "--objects", "60")
    assert proc.returncode == 0, proc.stderr
    assert "recommended configuration" in proc.stdout
    assert "autoscaler view" in proc.stdout


def test_quickstart_example():
    proc = run_example("quickstart.py", timeout=600)
    assert proc.returncode == 0, proc.stderr
    assert "Figure 3: Timeline of System Recovery" in proc.stdout
    assert "write amplification" in proc.stdout


def test_degraded_reads_example():
    proc = run_example("degraded_reads.py", timeout=600)
    assert proc.returncode == 0, proc.stderr
    assert "checking period" in proc.stdout
    assert "degraded" in proc.stdout


def test_silent_corruption_example():
    proc = run_example("silent_corruption.py", "--objects", "8")
    assert proc.returncode == 0, proc.stderr
    assert "bit_rot" in proc.stdout
    assert "misdirected_write" in proc.stdout
    assert "HEALTH_OK restored" in proc.stdout


def test_gray_failures_example():
    proc = run_example("gray_failures.py")
    assert proc.returncode == 0, proc.stderr
    assert "byte-identical" in proc.stdout
    assert "Flap dampening pinned OSD down" in proc.stdout
    assert "cut p99" in proc.stdout
