"""Byzantine fault axis: detection paths, containment, sampling.

Each of the three lie families must be caught by its own defense —
forged checksums by the deep-scrub EC cross-check, false acks by the
peering/scrub version comparison, stale-map gossip by the monitor's
epoch-mismatch rejection — and the ``byzantine-containment`` invariant
must hold over every sampled byz campaign: zero wrong reads served
before detection, every injected lie eventually detected.
"""

import pytest

from repro.chaos import run_campaign, run_chaos
from repro.chaos.campaign import CampaignSpec, ScheduledAction
from repro.chaos.invariants import check_byzantine_containment
from repro.chaos.sampler import sample_campaign
from repro.core.byzantine import BYZ_LEVELS, ensure_byzantine
from repro.core.controller import Controller
from repro.core.profile import ExperimentProfile
from repro.workload.generator import Workload

pytestmark = pytest.mark.chaos


def byz_spec(level, seed=7, **overrides):
    """A minimal one-round byz campaign (inject, dwell, restore)."""
    overrides.setdefault("scrub_interval", 200.0)
    return CampaignSpec(
        seed=seed,
        actions=(
            ScheduledAction(at=100.0, kind="inject", level=level, count=1),
            ScheduledAction(at=600.0, kind="restore"),
        ),
        **overrides,
    )


# -- the three detection paths, end to end --------------------------------------


def test_forged_checksum_is_caught_by_deep_scrub():
    result = run_campaign(byz_spec("byz_corrupt_data"))
    assert result.passed, [v.detail for v in result.violations]
    section = result.digest["byzantine"]
    [record] = section["records"]
    assert record["level"] == "byz_corrupt_data"
    assert record["detected_by"] == "scrub"
    assert record["detected_at"] > record["injected_at"]
    assert section["wrong_reads_served"] == 0
    assert section["detections"]["scrub"] == 1


def test_false_ack_is_caught_by_version_cross_check():
    result = run_campaign(byz_spec("byz_false_ack"))
    assert result.passed, [v.detail for v in result.violations]
    [record] = result.digest["byzantine"]["records"]
    assert record["level"] == "byz_false_ack"
    # Scrub's version cross-check or peering — both compare claimed
    # pg_log versions; which fires first depends on timing.
    assert record["detected_by"] in ("scrub", "peering")
    assert record["detected_at"] is not None


def test_stale_map_gossip_is_caught_by_epoch_rejection():
    result = run_campaign(byz_spec("byz_stale_map"))
    assert result.passed, [v.detail for v in result.violations]
    section = result.digest["byzantine"]
    [record] = section["records"]
    assert record["level"] == "byz_stale_map"
    assert record["detected_by"] == "epoch"
    assert section["epoch_rejections"] == 1


def test_honest_campaign_digest_has_no_byzantine_section():
    spec = sample_campaign(11)
    result = run_campaign(spec)
    assert "byzantine" not in result.digest


# -- the containment invariant, both ways ---------------------------------------


def build_cluster():
    profile = ExperimentProfile(
        name="byz-inv",
        ec_plugin="jerasure",
        ec_params={"k": 3, "m": 2},
        pg_num=4,
        stripe_unit=256 * 1024,
        num_hosts=8,
        osds_per_host=1,
    )
    controller = Controller(profile, seed=11)
    controller.coordinator.ingest_workload(
        Workload(num_objects=6, object_size=512 * 1024)
    )
    controller.env.run(until=50.0)
    return controller.cluster


def test_containment_is_vacuous_without_byzantine_state():
    cluster = build_cluster()
    assert cluster.byzantine is None
    assert check_byzantine_containment(cluster) == []


def test_containment_flags_an_undetected_lie():
    cluster = build_cluster()
    byz = ensure_byzantine(cluster)
    byz.add_corrupt(3, "1.0", "obj", 2, at=10.0)
    [violation] = check_byzantine_containment(cluster)
    assert violation.invariant == "byzantine-containment"
    assert "byz_corrupt_data" in violation.detail
    assert "osd.3" in violation.detail


def test_containment_flags_wrong_reads_and_clears_on_detection():
    cluster = build_cluster()
    byz = ensure_byzantine(cluster)
    byz.add_corrupt(3, "1.0", "obj", 2, at=10.0)
    byz.note_read("1.0", "obj", {0, 2}, now=20.0)  # overlaps the lie
    violations = check_byzantine_containment(cluster)
    assert any("still-lying" in v.detail for v in violations)
    # Detection ends the lie; only the historical wrong read remains.
    byz.detect_corrupt("1.0", "obj", 2, now=30.0)
    [violation] = check_byzantine_containment(cluster)
    assert "still-lying" in violation.detail


def test_reads_from_honest_shards_are_never_wrong():
    cluster = build_cluster()
    byz = ensure_byzantine(cluster)
    byz.add_corrupt(3, "1.0", "obj", 2, at=10.0)
    byz.note_read("1.0", "obj", {0, 1, 4}, now=20.0)  # avoids shard 2
    byz.note_read("2.0", "other", {2}, now=21.0)      # different object
    assert byz.wrong_reads_served == 0


# -- sampler and spec validation ------------------------------------------------


def test_byz_sampling_is_deterministic_and_pure():
    first = sample_campaign(5, byzantine=True)
    second = sample_campaign(5, byzantine=True)
    assert first == second
    injects = [a for a in first.actions if a.kind == "inject"]
    assert injects and all(a.level in BYZ_LEVELS for a in injects)
    # Byz campaigns force scrubbing on and stay read-only/single-region.
    assert first.scrub_interval > 0
    assert first.write_interval == 0
    assert first.tenant_fleet is None
    assert first.num_regions == 1


@pytest.mark.parametrize("kwargs", [
    {"writes": True}, {"tenants": True}, {"geo": True},
])
def test_byz_sampling_is_exclusive(kwargs):
    with pytest.raises(ValueError, match="read-only and single-region"):
        sample_campaign(5, byzantine=True, **kwargs)


def test_spec_rejects_byz_actions_without_scrubbing():
    with pytest.raises(ValueError, match="scrubbing"):
        byz_spec("byz_corrupt_data", scrub_interval=0.0)


def test_spec_rejects_byz_actions_with_client_load():
    with pytest.raises(ValueError, match="exclusive"):
        byz_spec("byz_false_ack", write_interval=60.0, write_duration=600.0)


def test_spec_rejects_byz_actions_on_stretch_clusters():
    # scrub_interval=0 so the (stricter) geo scrub rule passes and the
    # byz single-region rule is the one that fires.
    with pytest.raises(ValueError, match="single-region"):
        byz_spec("byz_stale_map", num_regions=3, num_hosts=9,
                 scrub_interval=0.0)


# -- sampled byz campaigns hold containment -------------------------------------


def test_sampled_byz_campaigns_pass_containment():
    results = []
    report = run_chaos(
        root_seed=0, campaigns=5, byzantine=True,
        on_campaign=lambda i, spec, result, error:
            results.append(result) if result is not None else None,
    )
    assert report.ok, [
        v.detail for result in report.failures for v in result.violations
    ]
    assert results
    for result in results:
        section = result.digest["byzantine"]
        assert section["wrong_reads_served"] == 0
        for record in section["records"]:
            assert record["detected_at"] is not None
