"""Calibration driver: run the Fig 2 / Fig 3 sweeps and print shapes.

Not part of the library — a development tool to tune the simulator's
QoS/CPU constants against the paper's reported ratios.
"""

import argparse
import time

from repro.core import (
    ExperimentProfile,
    FaultSpec,
    normalise,
    run_experiment,
)
from repro.workload import Workload

KB, MB = 1024, 1024 * 1024


def run(profile, workload, faults, seed=0):
    t0 = time.time()
    out = run_experiment(profile, workload, faults, seed=seed)
    wall = time.time() - t0
    tl = out.timeline
    return dict(
        total=tl.total_recovery,
        checking=tl.checking_period,
        ec=tl.ec_recovery_period,
        frac=tl.checking_fraction,
        wall=wall,
        stats=out.recovery_stats,
    )


def profile_for(plugin, **kw):
    if plugin == "rs":
        return ExperimentProfile(name="rs", ec_plugin="jerasure",
                                 ec_params={"k": 9, "m": 3}, **kw)
    return ExperimentProfile(name="clay", ec_plugin="clay",
                             ec_params={"k": 9, "m": 3, "d": 11}, **kw)


def fig2a(num_objects):
    wl = Workload(num_objects=num_objects, object_size=64 * MB)
    print("\n== Fig 2a: backend cache (paper: RS auto best; Clay kv worst 1.11) ==")
    raw = {}
    for plugin in ("rs", "clay"):
        for scheme in ("kv-optimized", "data-optimized", "autotune"):
            p = profile_for(plugin, cache_scheme=scheme)
            r = run(p, wl, [FaultSpec(level="node")], seed=3)
            raw[f"{plugin}/{scheme}"] = r["total"]
            print(f"  {plugin:5s} {scheme:15s} total={r['total']:7.1f} ec={r['ec']:7.1f} wall={r['wall']:.1f}s")
    print("  normalised:", {k: round(v, 3) for k, v in normalise(raw).items()})


def fig2b(num_objects):
    wl = Workload(num_objects=num_objects, object_size=64 * MB)
    print("\n== Fig 2b: pg_num (paper: pg1 RS~1.22 Clay~1.35; pg16 ~1.04; pg256 1.0) ==")
    raw = {}
    for plugin in ("rs", "clay"):
        for pg in (1, 16, 256):
            p = profile_for(plugin, pg_num=pg)
            r = run(p, wl, [FaultSpec(level="node")], seed=3)
            raw[f"{plugin}/pg{pg}"] = r["total"]
            print(f"  {plugin:5s} pg={pg:<4d} total={r['total']:7.1f} ec={r['ec']:7.1f} wall={r['wall']:.1f}s")
    print("  normalised:", {k: round(v, 3) for k, v in normalise(raw).items()})


def fig2c(num_objects):
    wl = Workload(num_objects=num_objects, object_size=64 * MB)
    print("\n== Fig 2c: stripe unit (paper: RS 64MB=3.29x RS4KB; Clay 4KB=4.26x best) ==")
    raw = {}
    for plugin in ("rs", "clay"):
        for unit in (4 * KB, 4 * MB, 64 * MB):
            p = profile_for(plugin, stripe_unit=unit, pg_num=256)
            r = run(p, wl, [FaultSpec(level="node")], seed=3)
            label = f"{plugin}/{unit//KB}KB" if unit < MB else f"{plugin}/{unit//MB}MB"
            raw[label] = r["total"]
            print(f"  {label:12s} total={r['total']:8.1f} ec={r['ec']:8.1f} wall={r['wall']:.1f}s")
    print("  normalised:", {k: round(v, 3) for k, v in normalise(raw).items()})


def fig2d(num_objects):
    wl = Workload(num_objects=num_objects, object_size=64 * MB)
    print("\n== Fig 2d: failure modes (paper: 2f~1.08-1.12, 3f~1.45-1.55; crossover) ==")
    raw = {}
    for plugin in ("rs", "clay"):
        base = profile_for(plugin, failure_domain="osd", osds_per_host=3)
        r1 = run(base, wl, [FaultSpec(level="device", count=1)], seed=3)
        raw[f"{plugin}/1f"] = r1["total"]
        print(f"  {plugin:5s} 1f baseline     total={r1['total']:7.1f} ec={r1['ec']:7.1f}")
        for count, colo in ((2, "same_host"), (2, "diff_hosts"), (3, "same_host"), (3, "diff_hosts")):
            p = profile_for(plugin, failure_domain="osd", osds_per_host=3)
            r = run(p, wl, [FaultSpec(level="device", count=count, colocation=colo)], seed=3)
            key = f"{plugin}/{count}f-{colo}"
            raw[key] = r["total"]
            print(f"  {key:22s} total={r['total']:7.1f} ec={r['ec']:7.1f} ratio={r['total']/r1['total']:.2f}")


def fig3(num_objects):
    print("\n== Fig 3: timeline (paper: checking 602s = 53.7%; range 41-58%) ==")
    for count in num_objects:
        wl = Workload(num_objects=count, object_size=64 * MB)
        p = profile_for("rs")
        r = run(p, wl, [FaultSpec(level="node")], seed=3)
        print(f"  objects={count:6d} checking={r['checking']:6.1f} ec={r['ec']:7.1f} frac={r['frac']*100:5.1f}% wall={r['wall']:.1f}s")


if __name__ == "__main__":
    ap = argparse.ArgumentParser()
    ap.add_argument("--panel", default="all")
    ap.add_argument("--objects", type=int, default=2000)
    args = ap.parse_args()
    if args.panel in ("a", "all"):
        fig2a(args.objects)
    if args.panel in ("b", "all"):
        fig2b(args.objects)
    if args.panel in ("c", "all"):
        fig2c(args.objects)
    if args.panel in ("d", "all"):
        fig2d(args.objects)
    if args.panel in ("3", "all"):
        fig3([1000, 2000, 4000, 8000])
