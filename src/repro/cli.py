"""``ecfault`` — the command-line front end (§6's open-source artifact).

Subcommands::

    ecfault run          one fault-injection experiment
    ecfault inject       a gray-failure experiment under client load
    ecfault scrub        a silent-corruption + deep-scrub experiment
    ecfault sweep        a configuration sweep, persisted as JSON
    ecfault analyze      sensitivity analysis over saved sweep results
    ecfault tune         budgeted configuration search (resumable)
    ecfault twin         analytical twin prediction (instant, no DES run)
    ecfault repair-plan  repair I/O a code performs for a loss pattern
    ecfault wa           write-amplification estimate (the §4.4 formula)
    ecfault autoscale    pg_num advice for a pool/cluster shape
    ecfault chaos        seeded randomized fault campaigns with invariants
    ecfault fuzz         coverage-guided adversarial campaign fuzzing
    ecfault replay       re-execute a chaos repro artifact exactly
    ecfault tenants      a multi-tenant QoS fleet experiment with SLO bill
    ecfault geo          a stretch-cluster experiment with WAN egress ledger
    ecfault cascade      a correlated-failure cascade under a recovery policy

Every command prints plain text; ``sweep`` and ``tune`` write
machine-readable JSON so results can be analysed later or elsewhere.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import List, Optional

from .analysis.sensitivity import rank_axes, recommend_configuration
from .cluster.autoscale import autoscale_advice
from .core.experiment import run_experiment
from .core.fault_injector import (
    GRAY_LEVELS,
    Colocation,
    CorruptionModel,
    FaultSpec,
)
from .core.profile import ExperimentProfile
from .core.report import format_table
from .core.sweep import SweepRunner, SweepSpec
from .core.wa import estimate_wa, theoretical_wa
from .ec.base import create_plugin
from .workload.generator import Workload

KB = 1024
MB = 1024 * 1024


def parse_size(text: str) -> int:
    """'4KB' / '4MB' / '4096' -> bytes."""
    match = re.fullmatch(r"(\d+)\s*(KB|MB|GB|B)?", text.strip(), re.IGNORECASE)
    if not match:
        raise argparse.ArgumentTypeError(f"cannot parse size {text!r}")
    unit = (match.group(2) or "B").upper()
    return int(match.group(1)) * {"B": 1, "KB": KB, "MB": MB, "GB": 1024 * MB}[unit]


def _parse_ec(plugin: str, params_text: str) -> dict:
    """'k=9,m=3,d=11' -> {'k': 9, 'm': 3, 'd': 11} (values as ints)."""
    params = {}
    for part in params_text.split(","):
        if not part.strip():
            continue
        key, _, value = part.partition("=")
        if not value:
            raise argparse.ArgumentTypeError(
                f"EC parameter {part!r} is not key=value"
            )
        params[key.strip()] = int(value)
    return params


def _profile_from_args(args) -> ExperimentProfile:
    return ExperimentProfile(
        name="cli",
        ec_plugin=args.plugin,
        ec_params=_parse_ec(args.plugin, args.ec_params),
        pg_num=args.pg_num,
        stripe_unit=args.stripe_unit,
        cache_scheme=args.cache_scheme,
        failure_domain=args.failure_domain,
        num_hosts=args.hosts,
        osds_per_host=args.osds_per_host,
    )


def _add_profile_arguments(parser) -> None:
    parser.add_argument("--plugin", default="jerasure",
                        help="EC plugin (jerasure/isa/clay/lrc/shec)")
    parser.add_argument("--ec-params", default="k=9,m=3",
                        help="plugin parameters, e.g. k=9,m=3,d=11")
    parser.add_argument("--pg-num", type=int, default=256)
    parser.add_argument("--stripe-unit", type=parse_size, default=4 * MB)
    parser.add_argument("--cache-scheme", default="autotune")
    parser.add_argument("--failure-domain", default="host")
    parser.add_argument("--hosts", type=int, default=30)
    parser.add_argument("--osds-per-host", type=int, default=2)
    parser.add_argument("--objects", type=int, default=2000)
    parser.add_argument("--object-size", type=parse_size, default=64 * MB)
    parser.add_argument("--seed", type=int, default=0)


def cmd_run(args) -> int:
    profile = _profile_from_args(args)
    workload = Workload(num_objects=args.objects, object_size=args.object_size)
    faults = []
    if args.fault != "none":
        faults.append(
            FaultSpec(level=args.fault, count=args.fault_count,
                      colocation=args.colocation)
        )
    outcome = run_experiment(profile, workload, faults, seed=args.seed)
    print(f"profile: {profile.describe()}")
    if outcome.timeline is not None:
        timeline = outcome.timeline
        print(f"checking period:   {timeline.checking_period:9.1f} s")
        print(f"EC recovery:       {timeline.ec_recovery_period:9.1f} s")
        print(f"total recovery:    {timeline.total_recovery:9.1f} s")
        print(f"checking fraction: {timeline.checking_fraction * 100:8.1f} %")
    stats = outcome.recovery_stats
    print(f"objects recovered: {stats.objects_recovered}")
    print(f"write amplification: {outcome.wa.actual:.3f} "
          f"(theoretical {outcome.wa.theoretical:.3f})")
    return 0


def cmd_inject(args) -> int:
    from .cluster.osd import CephConfig
    from .core.gray import run_gray_experiment

    profile = _profile_from_args(args).with_overrides(
        ceph=CephConfig(
            client_op_timeout=args.op_timeout,
            client_hedge_delay=args.hedge_delay,
            mon_osd_markdown_count=args.markdown_count,
        )
    )
    spec = FaultSpec(
        level=args.level,
        count=args.fault_count,
        colocation=args.colocation,
        factor=args.factor,
        loss=args.loss,
        latency=args.latency,
        bandwidth_penalty=args.bandwidth_penalty,
        partition=args.partition,
        flap_interval=args.flap_interval,
    )
    workload = Workload(num_objects=args.objects, object_size=args.object_size)
    outcome = run_gray_experiment(
        profile,
        workload,
        [spec],
        seed=args.seed,
        fault_duration=args.duration,
        load_interval=args.read_interval,
        write_fraction=args.write_fraction,
        rmw_fraction=args.rmw_fraction,
    )
    print(f"profile: {profile.describe()}")
    print(f"fault: level={args.level} count={args.fault_count} "
          f"for {args.duration:g} s "
          f"(defenses: op_timeout={args.op_timeout:g}s "
          f"hedge_delay={args.hedge_delay:g}s)")
    if outcome.slowed_osds:
        print(f"slowed osds:       {outcome.slowed_osds}")
    if outcome.injected_osds:
        print(f"affected osds:     {outcome.injected_osds}")
    stats = outcome.read_stats
    if stats.count:
        print(f"client reads:      {stats.count} ok, {stats.failures} failed, "
              f"{stats.degraded_fraction * 100:.1f}% degraded")
        print(f"read latency p50:  {stats.latency_percentile(50):9.4f} s")
        print(f"read latency p99:  {stats.latency_percentile(99):9.4f} s")
    writes = outcome.write_stats
    if writes is not None and (writes.count or writes.failures):
        print(f"client writes:     {writes.count} ok, {writes.failures} failed, "
              f"{writes.degraded_fraction * 100:.1f}% degraded")
        if writes.count:
            print(f"write latency avg: {writes.mean_latency():9.4f} s")
    ops = outcome.client_stats
    print(f"retries/timeouts:  {ops.retries} / {ops.timeouts} "
          f"(drops seen: {ops.drops_seen})")
    if ops.hedges_issued:
        print(f"hedged fetches:    {ops.hedges_issued} issued, "
              f"{ops.hedges_won} won, "
              f"{ops.hedge_wasted_bytes / MB:.1f} MB duplicated")
    print(f"monitor markdowns: {outcome.markdowns} ({outcome.pins} pins)")
    recovery = outcome.recovery_stats
    if recovery.op_retries or recovery.ops_abandoned:
        print(f"recovery retries:  {recovery.op_retries} "
              f"({recovery.ops_abandoned} ops abandoned)")
    if outcome.flap_timeline is not None:
        for offset, label in outcome.flap_timeline.annotations():
            print(f"  t+{offset:9.1f} s  {label}")
    print(f"final health:      {outcome.health}"
          + ("" if outcome.converged else " (NOT converged)"))
    return 0 if outcome.converged else 1


def cmd_scrub(args) -> int:
    profile = _profile_from_args(args).with_overrides(
        scrub_interval=args.scrub_interval,
        scrub_pgs_per_batch=args.pgs_per_batch,
        csum_block_size=args.csum_block_size,
        integrity_data_plane=args.data_plane,
    )
    workload = Workload(num_objects=args.objects, object_size=args.object_size)
    faults = [
        FaultSpec(
            level="corrupt", count=args.fault_count, corruption=args.corruption
        )
    ]
    outcome = run_experiment(profile, workload, faults, seed=args.seed)
    print(f"profile: {profile.describe()}")
    print(f"scrub interval {args.scrub_interval:.0f} s, "
          f"csum block {args.csum_block_size} B, model {args.corruption}")
    timeline = outcome.scrub_timeline
    if timeline is not None:
        print(f"detection period:  {timeline.detection_period:9.1f} s")
        print(f"repair period:     {timeline.repair_period:9.3f} s")
        print(f"total cycle:       {timeline.total_cycle:9.1f} s")
        print(f"detection fraction:{timeline.detection_fraction * 100:8.1f} %")
        for offset, label in timeline.annotations():
            print(f"  t+{offset:9.1f} s  {label}")
    stats = outcome.scrub_stats
    print(f"chunks scrubbed:   {stats.chunks_scrubbed}")
    print(f"errors detected:   {stats.errors_detected}")
    print(f"chunks repaired:   {stats.chunks_repaired}")
    return 0


def cmd_sweep(args) -> int:
    base = _profile_from_args(args)
    axes = {}
    if args.sweep_pg_num:
        axes["pg_num"] = [int(v) for v in args.sweep_pg_num.split(",")]
    if args.sweep_stripe_unit:
        axes["stripe_unit"] = [parse_size(v) for v in args.sweep_stripe_unit.split(",")]
    if args.sweep_cache_scheme:
        axes["cache_scheme"] = args.sweep_cache_scheme.split(",")
    if not axes:
        print("nothing to sweep: pass at least one --sweep-* option",
              file=sys.stderr)
        return 2
    spec = SweepSpec(base=base, axes=axes)
    runner = SweepRunner(
        Workload(num_objects=args.objects, object_size=args.object_size),
        runs=args.runs,
        base_seed=args.seed,
        progress=lambda label, i, n: print(f"[{i + 1}/{n}] {label}", file=sys.stderr),
        workers=args.workers,
    )
    results = runner.run(spec)
    SweepRunner.save(results, args.output)
    print(
        format_table(
            f"sweep results ({len(results)} cells; saved to {args.output})",
            ["configuration", "recovery (s)", "checking %", "WA"],
            [
                [r.label, f"{r.recovery_time:.1f}",
                 f"{r.checking_fraction * 100:.1f}", f"{r.wa_actual:.3f}"]
                for r in results
            ],
        )
    )
    return 0


def cmd_analyze(args) -> int:
    results = SweepRunner.load(args.results)
    axes = args.axes.split(",") if args.axes else ["pg_num", "stripe_unit", "cache_scheme"]
    impacts = rank_axes(results, axes)
    print(
        format_table(
            "configuration-axis impact on recovery time",
            ["axis", "impact", "best value", "worst value"],
            [
                [i.axis, f"{i.impact_percent:.0f}%", i.best, i.worst]
                for i in impacts
            ],
        )
    )
    budget = args.wa_budget
    recommendation = recommend_configuration(results, wa_budget=budget)
    print()
    print(recommendation.summary())
    return 0


def _parse_ec_variants(text: str) -> list:
    """'jerasure:k=9,m=3;clay:k=9,m=3,d=11' -> [(plugin, params), ...]."""
    variants = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        plugin, sep, params_text = part.partition(":")
        if not sep or not plugin.strip():
            raise argparse.ArgumentTypeError(
                f"EC variant {part!r} is not plugin:key=value,..."
            )
        variants.append((plugin.strip(), _parse_ec(plugin, params_text)))
    if not variants:
        raise argparse.ArgumentTypeError("no EC variants given")
    return variants


def cmd_tune(args) -> int:
    from .tuner import (
        CategoricalAxis,
        CoordinateDescent,
        EcVariantAxis,
        Fidelity,
        RandomSearch,
        ReadProbe,
        SuccessiveHalving,
        TenantProbe,
        TuningArtifactError,
        TuningSpace,
        default_objectives,
        pool_width_fits,
        stripe_unit_divides,
        tune,
    )

    base = _profile_from_args(args)
    axes = []
    if args.sweep_pg_num:
        axes.append(CategoricalAxis(
            "pg_num", tuple(int(v) for v in args.sweep_pg_num.split(","))
        ))
    if args.sweep_stripe_unit:
        axes.append(CategoricalAxis(
            "stripe_unit",
            tuple(parse_size(v) for v in args.sweep_stripe_unit.split(",")),
        ))
    if args.sweep_cache_scheme:
        axes.append(CategoricalAxis(
            "cache_scheme", tuple(args.sweep_cache_scheme.split(","))
        ))
    if args.ec_variants_list:
        axes.append(EcVariantAxis(variants=tuple(
            (plugin, tuple(sorted(params.items())))
            for plugin, params in args.ec_variants_list
        )))
    if not axes:
        print("nothing to tune: pass at least one --sweep-* option "
              "or --ec-variants", file=sys.stderr)
        return 2
    space = TuningSpace(
        base,
        axes=axes,
        constraints=[pool_width_fits(), stripe_unit_divides(args.object_size)],
    )

    probe_enabled = args.probe_reads or args.p99_budget is not None
    tenant_probe_enabled = (
        args.probe_tenants or args.tenant_p99_budget is not None
    )
    full = Fidelity(args.objects, runs=args.runs, label="full")
    screen_objects = args.screen_objects or max(1, args.objects // 8)
    screen_backend = "twin" if args.twin_screen else "des"
    if args.strategy == "halving":
        mid_objects = max(
            screen_objects + 1, int(round((screen_objects * args.objects) ** 0.5))
        )
        rungs = [Fidelity(screen_objects, runs=args.runs, label="screen",
                          backend=screen_backend)]
        if screen_objects < mid_objects < args.objects:
            rungs.append(Fidelity(mid_objects, runs=args.runs, label="mid",
                                  backend=screen_backend))
        rungs.append(full)
        strategy = SuccessiveHalving(rungs, eta=args.eta)
    elif args.strategy == "random":
        strategy = RandomSearch(args.samples, full)
    else:
        strategy = CoordinateDescent(full, screen=max(2, args.samples // 2))

    def progress(measurement, evaluator):
        remaining = (
            f", {evaluator.remaining} of {evaluator.budget} object-runs left"
            if evaluator.budget is not None else ""
        )
        print(
            f"[{evaluator.simulations}] {measurement.label} "
            f"@{measurement.fidelity.label or measurement.fidelity.key()}: "
            f"recovery {measurement.recovery_time:.1f}s{remaining}",
            file=sys.stderr,
        )

    try:
        outcome = tune(
            space,
            strategy,
            seed=args.seed,
            object_size=args.object_size,
            budget=args.budget,
            workers=args.workers,
            probe=ReadProbe() if probe_enabled else None,
            tenant_probe=TenantProbe() if tenant_probe_enabled else None,
            objectives=default_objectives(
                wa_budget=args.wa_budget,
                p99_budget=args.p99_budget,
                include_p99=probe_enabled,
                tenant_p99_budget=args.tenant_p99_budget,
                include_tenant_p99=tenant_probe_enabled,
            ),
            artifact_path=args.output,
            resume=args.resume,
            on_progress=progress,
        )
    except TuningArtifactError as exc:
        print(f"tune: {exc}", file=sys.stderr)
        return 2

    exhaustive = len(space.enumerate()) * (
        full.cost
        + (ReadProbe().cost if probe_enabled else 0)
        + (TenantProbe().cost if tenant_probe_enabled else 0)
    )
    print(f"tuned {space.size()} -> {len(space.enumerate())} valid "
          f"configurations with {strategy.name}: {outcome.simulations} "
          f"simulations, {outcome.spent} object-runs "
          f"(exhaustive full-fidelity grid: {exhaustive}; "
          f"saved {max(0.0, 1 - outcome.spent / exhaustive) * 100:.0f}%)")
    finals = sorted(
        {m.signature: m for m in outcome.evaluations
         if m.fidelity.cost == max(e.fidelity.cost for e in outcome.evaluations)
         }.values(),
        key=lambda m: m.recovery_time,
    )
    if finals:
        print()
        print(
            format_table(
                "full-fidelity measurements",
                ["configuration", "recovery (s)", "WA"],
                [
                    [m.label, f"{m.recovery_time:.1f}", f"{m.wa_actual:.3f}"]
                    for m in finals
                ],
            )
        )
    print()
    if outcome.recommendation is not None:
        print(outcome.recommendation.summary())
    else:
        print("no full-fidelity measurement completed within the budget; "
              "re-run with --resume and a larger --budget", file=sys.stderr)
        print(f"partial artifact saved to {args.output}")
        return 1
    print(f"\ntuning report saved to {args.output} "
          f"(resume with: ecfault tune ... --resume)")
    return 0


def cmd_twin(args) -> int:
    from .twin import AnalyticalTwin

    profile = _profile_from_args(args)
    workload = Workload(num_objects=args.objects, object_size=args.object_size)
    faults = []
    if args.fault != "none":
        faults.append(
            FaultSpec(level=args.fault, count=args.fault_count,
                      colocation=args.colocation)
        )
    twin = AnalyticalTwin()
    prediction = twin.predict(profile, workload, faults)
    if args.json:
        print(json.dumps(prediction.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"profile: {profile.describe()}")
    print(f"checking period:   {prediction.checking_period:9.1f} s")
    print(f"EC recovery:       {prediction.ec_recovery_period:9.1f} s")
    print(f"total recovery:    {prediction.recovery_time:9.1f} s")
    print(f"checking fraction: {prediction.checking_fraction * 100:8.1f} %")
    print(f"write amplification: {prediction.wa_actual:.3f}")
    print(f"repair bytes: {prediction.repair_bytes_read / MB:.1f} MB read, "
          f"{prediction.repair_bytes_written / MB:.1f} MB written "
          f"({prediction.affected_objects:.1f} objects, "
          f"{prediction.lost_chunks:.1f} lost chunks)")
    print(f"prediction digest: {prediction.digest()[:16]}")
    if args.compare:
        outcome = run_experiment(profile, workload, faults, seed=args.seed)
        des_recovery = (
            outcome.timeline.total_recovery if outcome.timeline else 0.0
        )
        des_wa = outcome.wa.actual
        rows = []
        for metric, twin_value, des_value in (
            ("recovery_time", prediction.recovery_time, des_recovery),
            ("wa_actual", prediction.wa_actual, des_wa),
        ):
            err = (
                abs(twin_value - des_value) / des_value if des_value
                else (0.0 if not twin_value else float("inf"))
            )
            rows.append([metric, f"{twin_value:.3f}", f"{des_value:.3f}",
                         f"{err * 100:.1f}%"])
        print()
        print(format_table("twin vs DES (one seed)",
                           ["metric", "twin", "DES", "rel err"], rows))
    return 0


def cmd_repair_plan(args) -> int:
    code = create_plugin(args.plugin, **_parse_ec(args.plugin, args.ec_params))
    lost = [int(v) for v in args.lost.split(",")]
    alive = [i for i in range(code.n) if i not in lost]
    plan = code.repair_plan(lost, alive)
    print(f"{args.plugin}({code.n},{code.k}) losing {lost}:")
    print(
        format_table(
            "repair reads",
            ["helper chunk", "fraction", "io runs"],
            [[r.chunk_index, f"{r.fraction:.3f}", r.io_ops] for r in plan.reads],
        )
    )
    print(f"total read: {plan.read_fraction_total():.2f} chunk-equivalents "
          f"(conventional RS: {code.k}.00)")
    return 0


def cmd_wa(args) -> int:
    params = _parse_ec(args.plugin, args.ec_params)
    k = params["k"]
    n = k + params.get("m", params.get("l", 0) + params.get("r", 0))
    estimate = estimate_wa(args.object_size, n, k, args.stripe_unit)
    print(f"object {args.object_size} B, RS({n},{k}), "
          f"stripe_unit {args.stripe_unit} B")
    print(f"theoretical n/k: {theoretical_wa(n, k):.4f}")
    print(f"formula estimate: {estimate:.4f} "
          f"({(estimate / theoretical_wa(n, k) - 1) * 100:+.1f}%)")
    return 0


def cmd_chaos(args) -> int:
    from .chaos import run_chaos, save_artifact, shrink_campaign
    from .chaos.artifact import ReproArtifact

    def progress(index, spec, result, error):
        if error is not None:
            print(f"[{index + 1}/{args.campaigns}] seed {spec.seed}: "
                  f"invalid ({error})", file=sys.stderr)
        elif not result.passed:
            print(f"[{index + 1}/{args.campaigns}] seed {spec.seed}: "
                  f"FAILED ({len(result.violations)} violations)",
                  file=sys.stderr)
        elif args.verbose:
            print(f"[{index + 1}/{args.campaigns}] seed {spec.seed}: ok "
                  f"({spec.ec_plugin}, {len(spec.actions)} actions)",
                  file=sys.stderr)

    if args.tenants and args.writes:
        print("chaos: --tenants and --writes are exclusive (the fleet "
              "replaces the single client stream)", file=sys.stderr)
        return 2
    if args.geo and (args.writes or args.tenants):
        print("chaos: --geo campaigns are read-only (exclusive with "
              "--writes/--tenants so the cross-region-byte invariant "
              "stays exact)", file=sys.stderr)
        return 2
    if args.byzantine and (args.writes or args.tenants or args.geo):
        print("chaos: --byzantine campaigns are read-only and "
              "single-region (exclusive with --writes/--tenants/--geo "
              "so containment is provable)", file=sys.stderr)
        return 2
    if args.cascade and (args.writes or args.tenants or args.geo
                         or args.byzantine):
        print("chaos: --cascade campaigns are exclusive with "
              "--writes/--tenants/--geo/--byzantine (the cascade "
              "invariants must be judged in isolation)", file=sys.stderr)
        return 2
    levels = tuple(args.levels.split(",")) if args.levels else None
    report = run_chaos(
        args.seed,
        args.campaigns,
        on_campaign=progress,
        stop_on_failure=args.stop_on_failure,
        levels=levels,
        writes=args.writes,
        tenants=args.tenants,
        geo=args.geo,
        byzantine=args.byzantine,
        cascade=args.cascade,
    )
    print(f"chaos: {report.campaigns} campaigns from seed {report.root_seed}: "
          f"{report.passed} passed, {report.invalid} invalid, "
          f"{len(report.failures)} failed")
    for result in report.failures:
        shrunk_spec, shrunk_result = shrink_campaign(result.spec)
        artifact = ReproArtifact(
            spec=shrunk_spec,
            violations=shrunk_result.violations,
            outcome_hash=shrunk_result.outcome_hash,
            original_spec=result.spec,
        )
        path = save_artifact(
            artifact, f"{args.artifact_dir}/repro-{result.spec.seed}.json"
        )
        print(f"  seed {result.spec.seed}: schedule shrunk "
              f"{len(result.spec.actions)} -> {len(shrunk_spec.actions)} "
              f"actions; artifact: {path}")
        for violation in shrunk_result.violations:
            print(f"    {violation.invariant}: {violation.detail}")
    return 1 if report.failures else 0


def cmd_fuzz(args) -> int:
    from pathlib import Path

    from .adversary import run_fuzz
    from .core.fault_injector import FAULT_LEVELS

    if args.budget < 1:
        print("fuzz: --budget must be >= 1", file=sys.stderr)
        return 2
    if args.corpus_in is not None and not Path(args.corpus_in).is_dir():
        print(f"fuzz: --corpus-in {args.corpus_in!r} is not a directory",
              file=sys.stderr)
        return 2
    levels = tuple(args.levels.split(",")) if args.levels else None
    if levels is not None:
        unknown = sorted(set(levels) - set(FAULT_LEVELS))
        if unknown:
            print(f"fuzz: unknown fault levels {unknown}; allowed: "
                  f"{','.join(FAULT_LEVELS)}", file=sys.stderr)
            return 2

    def progress(index, kind, spec, result, error):
        if error is not None:
            print(f"[{index + 1}/{args.budget}] {kind} seed {spec.seed}: "
                  f"invalid ({error})", file=sys.stderr)
        elif not result.passed:
            print(f"[{index + 1}/{args.budget}] {kind} seed {spec.seed}: "
                  f"FAILED ({len(result.violations)} violations)",
                  file=sys.stderr)
        elif args.verbose:
            print(f"[{index + 1}/{args.budget}] {kind} seed {spec.seed}: ok "
                  f"({spec.ec_plugin}, {len(spec.actions)} actions)",
                  file=sys.stderr)

    report = run_fuzz(
        args.seed,
        args.budget,
        levels=levels,
        byzantine=args.byzantine,
        corpus_dir=args.corpus_dir,
        corpus_in=args.corpus_in,
        on_run=progress,
    )
    print(json.dumps(report.summary(), indent=2, sort_keys=True))
    return 1 if report.failures else 0


def cmd_replay(args) -> int:
    from .chaos import ArtifactError, CampaignInvalid, load_artifact, run_campaign

    try:
        artifact = load_artifact(args.artifact)
    except ArtifactError as exc:
        print(f"replay: {exc}", file=sys.stderr)
        return 2
    spec = artifact.spec
    print(f"replaying seed {spec.seed}: {spec.ec_plugin}"
          f"({','.join(f'{k}={v}' for k, v in spec.ec_params)}), "
          f"{len(spec.actions)} actions, expecting hash "
          f"{artifact.outcome_hash[:16]}…")
    try:
        result = run_campaign(spec)
    except CampaignInvalid as exc:
        print(f"replay: campaign no longer applicable: {exc}", file=sys.stderr)
        return 1
    for violation in result.violations:
        print(f"  {violation.invariant} at t={violation.at_time:g} "
              f"(step {violation.step}): {violation.detail}")
    if result.outcome_hash == artifact.outcome_hash:
        print(f"replay: outcome hash {result.outcome_hash[:16]}… matches — "
              f"failure reproduced exactly "
              f"({len(result.violations)} violations)")
        return 0
    print(f"replay: OUTCOME DIVERGED — expected {artifact.outcome_hash} "
          f"got {result.outcome_hash}", file=sys.stderr)
    return 1


def cmd_tenants(args) -> int:
    from .tenancy import (
        SloSpec,
        TenantFleetSpec,
        TenantSpec,
        run_tenant_experiment,
    )

    if args.spec is not None:
        try:
            with open(args.spec) as handle:
                blob = json.load(handle)
            fleet_spec = TenantFleetSpec.from_dict(blob)
        except (OSError, ValueError, KeyError, TypeError, AttributeError) as exc:
            print(f"tenants: bad fleet spec: {exc}", file=sys.stderr)
            return 2
    else:
        # Stock demo fleet: a reserved latency tenant with an SLO beside
        # a rate-limited poisson batch writer, QoS on.
        fleet_spec = TenantFleetSpec(
            tenants=(
                TenantSpec(name="latency", interval=1.0, reservation=0.15,
                           weight=4.0, slo=SloSpec(p99_latency=0.25)),
                TenantSpec(name="batch", interval=0.5, arrival="poisson",
                           write_fraction=0.5, limit=0.25),
            ),
            qos_enabled=True,
        )

    profile = _profile_from_args(args)
    workload = Workload(num_objects=args.objects, object_size=args.object_size)
    faults = []
    if args.fault != "none":
        spec = (
            FaultSpec(level="slow_device", factor=16.0, count=args.fault_count)
            if args.fault == "slow_device"
            else FaultSpec(level=args.fault, count=args.fault_count)
        )
        faults.append(spec)

    outcome = run_tenant_experiment(
        profile,
        workload,
        fleet_spec,
        faults,
        seed=args.seed,
        warmup=args.warmup,
        fault_duration=args.duration,
    )

    if args.json:
        payload = {
            "fleet": fleet_spec.to_dict(),
            "converged": outcome.converged,
            "health": outcome.health,
            "injected_osds": outcome.injected_osds,
            "tenants": [report.to_dict() for report in outcome.reports],
        }
        if fleet_spec.qos_enabled:
            payload["qos"] = outcome.fleet.qos_class_totals()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(f"profile: {profile.describe()}")
    print(f"fleet: {len(fleet_spec.tenants)} tenant(s), "
          f"QoS {'on' if fleet_spec.qos_enabled else 'off'}, "
          f"converged={outcome.converged}, health={outcome.health}")

    def fmt_latency(value):
        return f"{value * 1000:.1f}" if value is not None else "-"

    rows = []
    for report in outcome.reports:
        slo_cell = "-"
        if report.slo is not None:
            slo_cell = "met" if report.slo_met else (
                f"VIOLATED x{len(report.slo_violations)}"
            )
        rows.append([
            report.name,
            report.reads_ok,
            report.read_failures,
            fmt_latency(report.p50),
            fmt_latency(report.p99),
            fmt_latency(report.p999),
            f"{report.throughput / MB:.2f}",
            report.writes_ok,
            f"{report.wa_attributed:.2f}" if report.writes_ok else "-",
            slo_cell,
        ])
    print()
    print(
        format_table(
            "per-tenant accounting",
            ["tenant", "reads", "fail", "p50 (ms)", "p99 (ms)", "p999 (ms)",
             "MB/s", "writes", "WA", "SLO"],
            rows,
        )
    )
    if fleet_spec.qos_enabled:
        print()
        totals = outcome.fleet.qos_class_totals()
        print(
            format_table(
                "QoS classes (all OSD schedulers)",
                ["class", "enqueued", "served", "busy (s)", "max wait (ms)"],
                [
                    [name, int(t["enqueued"]), int(t["served"]),
                     f"{t['busy_time']:.1f}", f"{t['max_wait'] * 1000:.1f}"]
                    for name, t in sorted(totals.items())
                ],
            )
        )
    violated = [r.name for r in outcome.reports if r.slo_met is False]
    if violated:
        print(f"\nSLO violated for: {', '.join(violated)}")
        return 1
    return 0


def cmd_geo(args) -> int:
    from .geo import run_stretch_experiment

    profile = _profile_from_args(args).with_overrides(
        num_regions=args.regions,
        wan_latency=args.wan_latency,
        wan_egress_bandwidth=args.wan_egress_bandwidth,
        wan_ingress_bandwidth=args.wan_ingress_bandwidth,
        wan_egress_cost_per_gib=args.wan_egress_cost,
    )
    workload = Workload(num_objects=args.objects, object_size=args.object_size)
    faults = []
    if args.fault != "none":
        faults.append(FaultSpec(level=args.fault, count=args.fault_count))
    outcome = run_stretch_experiment(
        profile,
        workload,
        faults,
        seed=args.seed,
        locality_aware=not args.naive,
        restore_after=args.restore_after,
    )
    if args.json:
        print(json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"profile: {profile.describe()}")
    print(f"stretch: {args.regions} regions, "
          f"WAN latency {args.wan_latency * 1000:.0f} ms, "
          f"egress {args.wan_egress_bandwidth / MB:.0f} MB/s @ "
          f"${args.wan_egress_cost:.3f}/GiB, "
          f"locality-aware recovery "
          f"{'off' if args.naive else 'on'}")
    print(f"total recovery:    {outcome.total_recovery_time:9.1f} s")
    print(f"objects recovered: {outcome.objects_recovered}")
    print(f"cross-region repair: "
          f"{outcome.cross_region_bytes_read / MB:.1f} MB pulled "
          f"({outcome.cross_region_pulls} pulls), "
          f"{outcome.cross_region_bytes_written / MB:.1f} MB pushed "
          f"({outcome.cross_region_pushes} pushes)")
    print(f"WAN delivered:     {outcome.wan_cross_region_bytes / MB:9.1f} MB "
          f"in {outcome.wan_cross_region_transfers} transfers"
          + (f" ({outcome.wan_partition_refusals} refused at severed uplinks)"
             if outcome.wan_partition_refusals else ""))
    for region, nbytes in enumerate(outcome.egress_bytes_by_region):
        print(f"  region {region} egress: {nbytes / MB:9.1f} MB")
    print(f"egress cost:       ${outcome.egress_cost:9.4f}")
    print(f"outcome digest:    {outcome.digest()}")
    return 0


def cmd_cascade(args) -> int:
    from .chaos import cascade_scenario, run_campaign

    priorities = (
        ("fifo", "risk") if args.compare else (args.priority,)
    )
    runs = {}
    for priority in priorities:
        spec = cascade_scenario(args.seed, recovery_priority=priority)
        result = run_campaign(spec)
        runs[priority] = (spec, result)

    if args.json:
        payload = {}
        for priority, (spec, result) in runs.items():
            recovery = result.digest["recovery"]
            payload[priority] = {
                "outcome_hash": result.outcome_hash,
                "violations": len(result.violations),
                "time_at_min_redundancy": recovery.get(
                    "time_at_min_redundancy", 0.0
                ),
                "pgs_at_min_redundancy": recovery.get(
                    "pgs_at_min_redundancy", 0
                ),
                "pgs_recovered": recovery.get("pgs_recovered", 0),
                "pgs_toofull_requeued": recovery.get(
                    "pgs_toofull_requeued", 0
                ),
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if any(r.violations for _, r in runs.values()) else 0

    failed = False
    for priority, (spec, result) in runs.items():
        recovery = result.digest["recovery"]
        print(f"cascade seed {spec.seed}, recovery priority {priority}:")
        print(f"  time at min redundancy: "
              f"{recovery.get('time_at_min_redundancy', 0.0):9.3f} s")
        print(f"  PGs that hit min redundancy: "
              f"{recovery.get('pgs_at_min_redundancy', 0)}")
        print(f"  PGs recovered:          "
              f"{recovery.get('pgs_recovered', 0)}")
        if recovery.get("pgs_toofull_requeued", 0):
            print(f"  toofull re-queues:      "
                  f"{recovery['pgs_toofull_requeued']}")
        print(f"  invariant violations:   {len(result.violations)}")
        for violation in result.violations:
            print(f"    {violation.invariant}: {violation.detail}")
        print(f"  outcome hash:           {result.outcome_hash[:16]}…")
        failed = failed or bool(result.violations)
    if args.compare:
        fifo = runs["fifo"][1].digest["recovery"]
        risk = runs["risk"][1].digest["recovery"]
        fifo_t = fifo.get("time_at_min_redundancy", 0.0)
        risk_t = risk.get("time_at_min_redundancy", 0.0)
        saved = fifo_t - risk_t
        pct = (saved / fifo_t * 100) if fifo_t else 0.0
        print(f"risk-prioritized recovery saved {saved:.3f} s at min "
              f"redundancy ({pct:.1f}% of fifo's {fifo_t:.3f} s)")
    return 1 if failed else 0


def cmd_autoscale(args) -> int:
    params = _parse_ec(args.plugin, args.ec_params)
    width = params["k"] + params.get("m", params.get("l", 0) + params.get("r", 0))
    advice = autoscale_advice(
        args.pg_num, args.hosts * args.osds_per_host, width
    )
    print(advice.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ecfault",
        description="EC configuration-sensitivity experiments (HotStorage '24)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one fault-injection experiment")
    _add_profile_arguments(run)
    run.add_argument("--fault", choices=["node", "device", "none"], default="node")
    run.add_argument("--fault-count", type=int, default=1)
    run.add_argument("--colocation", choices=list(Colocation.ALL), default="any")
    run.set_defaults(func=cmd_run)

    inject = sub.add_parser(
        "inject",
        help="gray-failure experiment (slow disk / flaky net / flap) "
             "under client read load",
    )
    _add_profile_arguments(inject)
    inject.add_argument("--level", choices=list(GRAY_LEVELS), default="slow_device")
    inject.add_argument("--fault-count", type=int, default=1)
    inject.add_argument("--colocation", choices=list(Colocation.ALL), default="any")
    inject.add_argument("--factor", type=float, default=16.0,
                        help="slow_device service-time inflation (x)")
    inject.add_argument("--loss", type=float, default=0.0,
                        help="net_degrade per-host packet-loss probability")
    inject.add_argument("--latency", type=float, default=0.0,
                        help="net_degrade added one-way latency (s)")
    inject.add_argument("--bandwidth-penalty", type=float, default=1.0,
                        help="net_degrade bandwidth divisor (>= 1)")
    inject.add_argument("--partition", action="store_true",
                        help="net_degrade: full partition instead of loss")
    inject.add_argument("--flap-interval", type=float, default=60.0,
                        help="flap half-period base (s)")
    inject.add_argument("--duration", type=float, default=600.0,
                        help="how long the fault stays injected (s)")
    inject.add_argument("--read-interval", type=float, default=2.0,
                        help="client load: seconds between ops")
    inject.add_argument("--write-fraction", type=float, default=0.0,
                        help="client load: fraction of ops that are writes "
                             "(0 = pure reads)")
    inject.add_argument("--rmw-fraction", type=float, default=0.5,
                        help="fraction of writes that are partial-stripe "
                             "RMWs (rest are full overwrites)")
    inject.add_argument("--op-timeout", type=float, default=0.0,
                        help="client per-op timeout (0 = off)")
    inject.add_argument("--hedge-delay", type=float, default=0.0,
                        help="client hedged-read delay (0 = off)")
    inject.add_argument("--markdown-count", type=int, default=5,
                        help="markdowns within the period before flap "
                             "dampening pins an OSD down")
    inject.set_defaults(func=cmd_inject)

    scrub = sub.add_parser(
        "scrub", help="silent-corruption + deep-scrub experiment"
    )
    _add_profile_arguments(scrub)
    scrub.add_argument("--corruption", choices=list(CorruptionModel.ALL),
                       default="bit_rot")
    scrub.add_argument("--fault-count", type=int, default=1,
                       help="corrupted chunks in one stripe (<= m)")
    scrub.add_argument("--scrub-interval", type=float, default=300.0,
                       help="seconds between deep-scrub batches")
    scrub.add_argument("--pgs-per-batch", type=int, default=4)
    scrub.add_argument("--csum-block-size", type=parse_size, default=4 * KB,
                       help="checksum granularity (bytes per crc32c)")
    scrub.add_argument("--data-plane", action="store_true",
                       help="materialise real chunk bytes (small objects only)")
    scrub.set_defaults(func=cmd_scrub)

    sweep = sub.add_parser("sweep", help="run a configuration sweep")
    _add_profile_arguments(sweep)
    sweep.add_argument("--sweep-pg-num", help="comma list, e.g. 1,16,256")
    sweep.add_argument("--sweep-stripe-unit", help="comma list, e.g. 4KB,4MB,64MB")
    sweep.add_argument("--sweep-cache-scheme", help="comma list of schemes")
    sweep.add_argument("--runs", type=int, default=1)
    sweep.add_argument("--workers", type=int, default=1,
                       help="parallel worker processes for grid cells")
    sweep.add_argument("--output", default="sweep.json")
    sweep.set_defaults(func=cmd_sweep)

    analyze = sub.add_parser("analyze", help="sensitivity analysis of a sweep")
    analyze.add_argument("results", help="JSON written by 'ecfault sweep'")
    analyze.add_argument("--axes", help="comma list of settings to rank")
    analyze.add_argument("--wa-budget", type=float, default=None)
    analyze.set_defaults(func=cmd_analyze)

    tune = sub.add_parser(
        "tune", help="budgeted configuration search (resumable)"
    )
    _add_profile_arguments(tune)
    tune.add_argument("--strategy", choices=["halving", "random", "coordinate"],
                      default="halving")
    tune.add_argument("--budget", type=int, default=None,
                      help="simulation budget in object-runs (hard ceiling)")
    tune.add_argument("--sweep-pg-num", help="comma list, e.g. 16,64,256")
    tune.add_argument("--sweep-stripe-unit", help="comma list, e.g. 1MB,4MB")
    tune.add_argument("--sweep-cache-scheme", help="comma list of schemes")
    tune.add_argument("--ec-variants", dest="ec_variants_list",
                      type=_parse_ec_variants,
                      help="semicolon list, e.g. "
                           "'jerasure:k=9,m=3;clay:k=9,m=3,d=11'")
    tune.add_argument("--screen-objects", type=int, default=None,
                      help="low-fidelity object count (default: objects/8)")
    tune.add_argument("--twin-screen", action="store_true",
                      help="serve the halving screen/mid rungs from the "
                           "analytical twin (free) so the budget buys only "
                           "full-fidelity DES finalist runs")
    tune.add_argument("--eta", type=int, default=4,
                      help="successive-halving promotion ratio")
    tune.add_argument("--samples", type=int, default=12,
                      help="random-search samples / coordinate screen size")
    tune.add_argument("--runs", type=int, default=1)
    tune.add_argument("--workers", type=int, default=1,
                      help="parallel worker processes for evaluation batches")
    tune.add_argument("--probe-reads", action="store_true",
                      help="also measure degraded-read p99 per point")
    tune.add_argument("--wa-budget", type=float, default=None)
    tune.add_argument("--p99-budget", type=float, default=None,
                      help="degraded-read p99 budget in seconds "
                           "(implies --probe-reads)")
    tune.add_argument("--probe-tenants", action="store_true",
                      help="also measure a reserved SLO tenant's p99 under "
                           "QoS during an outage per point")
    tune.add_argument("--tenant-p99-budget", type=float, default=None,
                      help="tenant SLO p99 budget in seconds "
                           "(implies --probe-tenants)")
    tune.add_argument("--output", default="tuning.json")
    tune.add_argument("--resume", action="store_true",
                      help="continue from an existing --output artifact")
    tune.set_defaults(func=cmd_tune)

    twin = sub.add_parser(
        "twin",
        help="analytical twin prediction (instant, no simulation)",
    )
    _add_profile_arguments(twin)
    twin.add_argument("--fault", choices=["node", "device", "none"],
                      default="node")
    twin.add_argument("--fault-count", type=int, default=1)
    twin.add_argument("--colocation", choices=list(Colocation.ALL),
                      default="any")
    twin.add_argument("--compare", action="store_true",
                      help="also run the DES at --seed and show per-metric "
                           "relative error")
    twin.add_argument("--json", action="store_true",
                      help="print the prediction as JSON")
    twin.set_defaults(func=cmd_twin)

    plan = sub.add_parser("repair-plan", help="repair I/O for a loss pattern")
    plan.add_argument("--plugin", default="clay")
    plan.add_argument("--ec-params", default="k=9,m=3,d=11")
    plan.add_argument("--lost", default="0", help="comma list of chunk indices")
    plan.set_defaults(func=cmd_repair_plan)

    wa = sub.add_parser("wa", help="write-amplification estimate (§4.4)")
    wa.add_argument("--plugin", default="jerasure")
    wa.add_argument("--ec-params", default="k=9,m=3")
    wa.add_argument("--object-size", type=parse_size, required=True)
    wa.add_argument("--stripe-unit", type=parse_size, default=4 * KB)
    wa.set_defaults(func=cmd_wa)

    chaos = sub.add_parser(
        "chaos",
        help="seeded randomized fault/workload campaigns with invariants",
    )
    chaos.add_argument("--campaigns", type=int, default=100,
                       help="number of campaigns to sample and run")
    chaos.add_argument("--seed", type=int, default=0,
                       help="root seed; campaign i uses substream 'campaign-i'")
    chaos.add_argument("--artifact-dir", default="chaos-artifacts",
                       help="where shrunk repro artifacts are written")
    chaos.add_argument("--levels", default=None,
                       help="comma list restricting sampled fault levels, "
                            "e.g. slow_device,net_degrade,flap")
    chaos.add_argument("--writes", action="store_true",
                       help="add a sampled mixed read-write client load to "
                            "every campaign (degraded writes, pg_log delta "
                            "recovery, version-convergence invariants)")
    chaos.add_argument("--tenants", action="store_true",
                       help="drive every campaign with a sampled QoS-enabled "
                            "tenant fleet and check the fairness invariant "
                            "(exclusive with --writes)")
    chaos.add_argument("--geo", action="store_true",
                       help="re-shape every campaign into a three-region "
                            "stretch cluster with region outages and WAN "
                            "partitions, checking the cross-region-byte "
                            "invariant (exclusive with --writes/--tenants)")
    chaos.add_argument("--byzantine", action="store_true",
                       help="replace every schedule with lying-OSD faults "
                            "(forged checksums, stale osdmap gossip, false "
                            "write acks) and check the byzantine-containment "
                            "invariant (exclusive with "
                            "--writes/--tenants/--geo)")
    chaos.add_argument("--cascade", action="store_true",
                       help="re-shape every campaign into a rack-sharded "
                            "cluster hit by correlated rack crashes with "
                            "aftershocks, checking the no-avoidable-loss "
                            "and priority-soundness invariants (exclusive "
                            "with --writes/--tenants/--geo/--byzantine)")
    chaos.add_argument("--stop-on-failure", action="store_true",
                       help="stop at the first failing campaign")
    chaos.add_argument("--verbose", action="store_true",
                       help="log every campaign, not just failures")
    chaos.set_defaults(func=cmd_chaos)

    fuzz = sub.add_parser(
        "fuzz",
        help="coverage-guided adversarial campaign fuzzing with a "
             "novelty-retaining corpus",
    )
    fuzz.add_argument("--budget", type=int, default=50,
                      help="total campaign runs (seeds + mutants)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="root seed; the whole session derives from it")
    fuzz.add_argument("--corpus-dir", "--corpus-out", dest="corpus_dir",
                      default="fuzz-corpus",
                      help="where retained corpus entries, the summary, and "
                           "shrunk repro artifacts are written")
    fuzz.add_argument("--corpus-in", default=None,
                      help="seed this session's corpus from a directory a "
                           "previous run's --corpus-out wrote (coverage and "
                           "fitness records carry over, so only campaigns "
                           "novel against the old corpus are retained)")
    fuzz.add_argument("--levels", default=None,
                      help="comma list restricting seed-sample fault levels, "
                           "e.g. byz_corrupt_data,byz_stale_map")
    fuzz.add_argument("--byzantine", action="store_true",
                      help="seed the corpus with byzantine campaigns "
                           "(lying OSDs; containment invariant armed)")
    fuzz.add_argument("--verbose", action="store_true",
                      help="log every run, not just failures")
    fuzz.set_defaults(func=cmd_fuzz)

    replay = sub.add_parser(
        "replay", help="re-execute a chaos repro artifact exactly"
    )
    replay.add_argument("artifact", help="JSON written by 'ecfault chaos'")
    replay.set_defaults(func=cmd_replay)

    tenants = sub.add_parser(
        "tenants",
        help="multi-tenant QoS fleet experiment with per-tenant SLO bill",
    )
    _add_profile_arguments(tenants)
    tenants.add_argument("--spec", default=None,
                         help="JSON fleet spec (TenantFleetSpec.to_dict "
                              "shape); default: a stock two-tenant QoS fleet")
    tenants.add_argument("--fault",
                         choices=["node", "device", "slow_device", "none"],
                         default="node")
    tenants.add_argument("--fault-count", type=int, default=1)
    tenants.add_argument("--warmup", type=float, default=50.0,
                         help="seconds before the fault is injected")
    tenants.add_argument("--duration", type=float, default=600.0,
                         help="how long the fleet runs under the fault (s)")
    tenants.add_argument("--json", action="store_true",
                         help="emit the per-tenant report as JSON")
    tenants.set_defaults(func=cmd_tenants)

    geo = sub.add_parser(
        "geo",
        help="stretch-cluster experiment: regions, WAN repair traffic, "
             "egress cost ledger",
    )
    _add_profile_arguments(geo)
    geo.add_argument("--regions", type=int, default=3,
                     help="regions the hosts are dealt across")
    geo.add_argument("--fault",
                     choices=["node", "device", "region_outage",
                              "wan_partition", "none"],
                     default="node")
    geo.add_argument("--fault-count", type=int, default=1)
    geo.add_argument("--wan-latency", type=float, default=0.03,
                     help="one-way inter-region latency (s)")
    geo.add_argument("--wan-egress-bandwidth", type=float, default=6.25e8,
                     help="per-region WAN egress bandwidth (B/s)")
    geo.add_argument("--wan-ingress-bandwidth", type=float, default=1.25e9,
                     help="per-region WAN ingress bandwidth (B/s)")
    geo.add_argument("--wan-egress-cost", type=float, default=0.02,
                     help="metered egress price (USD per GiB)")
    geo.add_argument("--restore-after", type=float, default=None,
                     metavar="SECONDS",
                     help="restore the fault after this many sim seconds and "
                          "settle to convergence (required shape for "
                          "region_outage, whose displaced PGs are "
                          "unplaceable until the region returns)")
    geo.add_argument("--naive", action="store_true",
                     help="disable locality-aware recovery (helpers picked "
                          "with no regard for regions)")
    geo.add_argument("--json", action="store_true",
                     help="emit the geo outcome as JSON")
    geo.set_defaults(func=cmd_geo, hosts=12, objects=40,
                     object_size=8 * MB, ec_params="k=4,m=2")

    cascade = sub.add_parser(
        "cascade",
        help="correlated-failure cascade (rack crash + aftershock) under "
             "fifo or risk-prioritized recovery",
    )
    cascade.add_argument("--seed", type=int, default=0,
                         help="scenario seed (fixed cluster shape; the seed "
                              "feeds placement and service-time draws)")
    cascade.add_argument("--priority", choices=["fifo", "risk"],
                         default="risk",
                         help="recovery admission order: arrival order or "
                              "lowest-redundancy-margin first")
    cascade.add_argument("--compare", action="store_true",
                         help="run both priorities on the same seed and "
                              "report the time-at-min-redundancy delta")
    cascade.add_argument("--json", action="store_true",
                         help="emit per-priority results as JSON")
    cascade.set_defaults(func=cmd_cascade)

    autoscale = sub.add_parser("autoscale", help="pg_num advice")
    autoscale.add_argument("--plugin", default="jerasure")
    autoscale.add_argument("--ec-params", default="k=9,m=3")
    autoscale.add_argument("--pg-num", type=int, required=True)
    autoscale.add_argument("--hosts", type=int, default=30)
    autoscale.add_argument("--osds-per-host", type=int, default=2)
    autoscale.set_defaults(func=cmd_autoscale)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
