"""Geo-distributed stretch clusters: regions, WAN links, egress costs.

This package adds the geo axis on top of the single-datacenter model:

- :mod:`repro.geo.wan` — the :class:`WanFabric`, a drop-in
  :class:`~repro.cluster.network.Fabric` that routes cross-region
  transfers through per-region WAN uplinks (asymmetric bandwidth,
  propagation latency, per-byte egress-cost ledger) while intra-region
  transfers keep the existing single-hop charge sequence byte-for-byte.
- :mod:`repro.geo.rules` — :class:`RegionRule`, the CRUSH region-spanning
  placement rule ("pick R regions, host-spread within each").
- :mod:`repro.geo.experiment` — the seeded stretch-cluster experiment
  behind ``ecfault geo`` with its canonical digest.

The package initialiser stays import-light (only specs and rules) so the
cluster layer can depend on it without cycles; the experiment module is
loaded lazily on first attribute access.
"""

from __future__ import annotations

from .rules import RegionRule
from .wan import (
    DEFAULT_WAN,
    EgressLedger,
    WanFabric,
    WanSpec,
    WanUplink,
)

__all__ = [
    "RegionRule",
    "WanSpec",
    "WanUplink",
    "WanFabric",
    "EgressLedger",
    "DEFAULT_WAN",
    "GeoOutcome",
    "run_stretch_experiment",
]

_LAZY = {"GeoOutcome", "run_stretch_experiment"}


def __getattr__(name: str):
    # The experiment module pulls in the controller stack, which in turn
    # imports the cluster layer that imports this package — resolve it
    # lazily to keep the import graph acyclic.
    if name in _LAZY:
        from . import experiment

        return getattr(experiment, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
