"""Stretch-cluster experiments: one run, WAN ledger included.

The generic :func:`~repro.core.experiment.run_experiment` returns an
:class:`~repro.core.coordinator.ExperimentOutcome`, which deliberately
does not keep the cluster alive.  Geo experiments need the WAN fabric's
counters and egress ledger after the run, so this module owns its
Controller and folds the geo-observable state into a
:class:`GeoOutcome` with a canonical digest — the same replay contract
the chaos engine uses, scoped to the stretch-cluster metrics.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.controller import Controller
from ..core.fault_injector import FaultSpec
from ..core.profile import ExperimentProfile
from ..workload.generator import Workload

__all__ = ["GeoOutcome", "run_stretch_experiment"]


@dataclass(frozen=True)
class GeoOutcome:
    """Everything geo-observable one stretch experiment produced."""

    profile_name: str
    num_regions: int
    locality_aware: bool
    total_recovery_time: float
    objects_recovered: int
    #: Recovery-side accounting (what the repair paths charged).
    cross_region_bytes_read: int
    cross_region_bytes_written: int
    cross_region_pulls: int
    cross_region_pushes: int
    #: Fabric-side accounting (what the WAN actually delivered).
    wan_cross_region_bytes: int
    wan_cross_region_transfers: int
    wan_partition_refusals: int
    egress_bytes_by_region: Tuple[int, ...]
    egress_cost: float

    @property
    def cross_region_repair_bytes(self) -> int:
        """Total repair bytes that crossed a region boundary."""
        return self.cross_region_bytes_read + self.cross_region_bytes_written

    def to_dict(self) -> Dict[str, Any]:
        return {
            "profile_name": self.profile_name,
            "num_regions": self.num_regions,
            "locality_aware": self.locality_aware,
            "total_recovery_time": self.total_recovery_time,
            "objects_recovered": self.objects_recovered,
            "cross_region_bytes_read": self.cross_region_bytes_read,
            "cross_region_bytes_written": self.cross_region_bytes_written,
            "cross_region_pulls": self.cross_region_pulls,
            "cross_region_pushes": self.cross_region_pushes,
            "wan_cross_region_bytes": self.wan_cross_region_bytes,
            "wan_cross_region_transfers": self.wan_cross_region_transfers,
            "wan_partition_refusals": self.wan_partition_refusals,
            "egress_bytes_by_region": list(self.egress_bytes_by_region),
            "egress_cost": self.egress_cost,
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form (same seed, same digest)."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"),
            ensure_ascii=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_stretch_experiment(
    profile: ExperimentProfile,
    workload: Workload,
    faults: Optional[Sequence[FaultSpec]] = None,
    seed: int = 0,
    locality_aware: bool = True,
    settle_time: float = 60.0,
    max_sim_time: float = 200_000.0,
    restore_after: Optional[float] = None,
) -> GeoOutcome:
    """Run one experiment on a stretch cluster and harvest the WAN ledger.

    ``profile`` must describe a multi-region cluster (``num_regions > 1``
    — that is what makes the WAN fabric and region rule exist).
    ``locality_aware`` toggles the recovery manager's in-region helper
    preference, which is the A/B the geo benchmark and the
    ``stretch_cluster`` example compare.

    ``restore_after``, when set, restores every fault that many sim
    seconds after injection and then settles until the cluster
    converges — the shape region-level faults need, since a spread-wide
    region outage leaves displaced PGs unplaceable until the region
    returns.  ``None`` keeps the standard coordinator cycle (inject,
    wait for full recovery), which suits permanent node/device faults.
    """
    if profile.num_regions <= 1:
        raise ValueError(
            "run_stretch_experiment needs a multi-region profile "
            f"(num_regions={profile.num_regions})"
        )
    profile = profile.with_overrides(
        ceph=replace(profile.ceph, recovery_locality_aware=locality_aware)
    )
    controller = Controller(profile, seed=seed)
    if restore_after is None:
        outcome = controller.run_experiment(
            workload,
            list(faults or []),
            settle_time=settle_time,
            max_sim_time=max_sim_time,
        )
        stats = outcome.recovery_stats
        recovery_time = (
            outcome.timeline.total_recovery
            if outcome.timeline is not None
            else 0.0
        )
    else:
        _drive_with_restore(
            controller, workload, list(faults or []),
            settle_time, max_sim_time, restore_after,
        )
        stats = controller.cluster.recovery.stats
        recovery_time = (
            stats.finished_at - stats.io_started_at
            if stats.io_started_at is not None and stats.finished_at is not None
            else 0.0
        )
    wan = controller.cluster.topology.wan
    assert wan is not None  # guaranteed by num_regions > 1
    egress: List[int] = list(wan.ledger.egress_bytes_by_region)
    while len(egress) < profile.num_regions:
        egress.append(0)
    return GeoOutcome(
        profile_name=profile.name,
        num_regions=profile.num_regions,
        locality_aware=locality_aware,
        total_recovery_time=recovery_time,
        objects_recovered=stats.objects_recovered,
        cross_region_bytes_read=stats.cross_region_bytes_read,
        cross_region_bytes_written=stats.cross_region_bytes_written,
        cross_region_pulls=stats.cross_region_pulls,
        cross_region_pushes=stats.cross_region_pushes,
        wan_cross_region_bytes=wan.cross_region_bytes,
        wan_cross_region_transfers=wan.cross_region_transfers,
        wan_partition_refusals=wan.wan_partition_refusals,
        egress_bytes_by_region=tuple(egress),
        egress_cost=wan.ledger.total_cost,
    )


#: Convergence poll step for the inject/restore drive (matches the
#: chaos engine's settle cadence).
_SETTLE_POLL = 25.0


def _drive_with_restore(
    controller: Controller,
    workload: Workload,
    faults: List[FaultSpec],
    settle_time: float,
    max_sim_time: float,
    restore_after: float,
) -> None:
    """Inject, hold the fault window open, restore, settle to convergence.

    The standard coordinator cycle waits for every victim to be marked
    out and fully re-replicated, which never terminates for faults that
    leave the cluster unplaceable (a region outage under a spread-wide
    rule).  This drive instead restores after a fixed window and polls
    until recovery goes idle — the chaos engine's convergence shape,
    minus its invariant suite.
    """
    env = controller.env
    cluster = controller.cluster
    controller._used = True  # same single-use contract as run_experiment

    def _drive():
        controller.coordinator.ingest_workload(workload)
        yield env.timeout(settle_time)
        for spec in faults:
            controller.fault_injector.inject(spec)
        yield env.timeout(restore_after)
        controller.fault_injector.restore_all()

    env.run_until_process(env.process(_drive()))
    deadline = env.now + max_sim_time
    while env.now < deadline:
        env.run(until=min(env.now + _SETTLE_POLL, deadline))
        if _converged(cluster):
            break


def _converged(cluster) -> bool:
    """Every daemon back up, nothing queued, no stale shard left behind."""
    if not all(osd.is_up() for osd in cluster.osds.values()):
        return False
    if cluster.monitor.out_osds or cluster.monitor.active_pins():
        return False
    if not cluster.recovery.idle:
        return False
    if cluster.recovery.kick_stale():
        return False
    return True
