"""WAN fabric: per-region uplinks, asymmetric bandwidth, egress costs.

A stretch cluster keeps the intra-region network model untouched — host
NICs into a non-blocking switch — and adds one WAN uplink per region.
A cross-region transfer pays, in order: the ordinary endpoint charge
sequence (sender egress, propagation including the WAN's one-way
latency, loss lottery, receiver ingress), then serialises on the source
region's uplink *egress* and the destination region's uplink *ingress*.
Uplinks are asymmetric — cloud regions commonly sell less egress than
ingress — and every delivered cross-region byte is charged to the
source region's egress-cost ledger, which is how repair traffic becomes
a dollar figure in reports.

Like the LAN fabric, the healthy path draws no RNG and adds no events
beyond the charges above, so stretch-cluster runs are deterministic and
single-region runs (which never construct a :class:`WanFabric`) stay
byte-identical to the pre-geo model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from ..cluster.network import Fabric, NetworkPartitionedError, Nic
from ..sim import Environment, ServiceCenter

__all__ = [
    "WanSpec",
    "DEFAULT_WAN",
    "WanUplink",
    "EgressLedger",
    "WanFabric",
]

GIB = float(1 << 30)


@dataclass(frozen=True)
class WanSpec:
    """Static envelope of one region's WAN uplink.

    ``egress_bandwidth``/``ingress_bandwidth`` are bytes/second in each
    direction (asymmetric by default), ``latency`` the one-way
    inter-region propagation delay, and ``egress_cost_per_gib`` the
    metered price of every byte leaving a region.
    """

    name: str = "wan-default"
    egress_bandwidth: float = 6.25e8  # ~5 Gb/s metered egress
    ingress_bandwidth: float = 1.25e9  # ~10 Gb/s ingress
    latency: float = 0.03  # 30 ms one-way, inter-continental-ish
    egress_cost_per_gib: float = 0.02  # USD per GiB leaving a region

    def __post_init__(self):
        if self.egress_bandwidth <= 0 or self.ingress_bandwidth <= 0:
            raise ValueError("WAN bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("WAN latency must be non-negative")
        if self.egress_cost_per_gib < 0:
            raise ValueError("egress cost must be non-negative")

    def egress_cost(self, nbytes: int) -> float:
        return nbytes * self.egress_cost_per_gib / GIB


#: The stock stretch-cluster WAN profile used when none is given.
DEFAULT_WAN = WanSpec()


class WanUplink:
    """One region's WAN attachment: independent egress/ingress queues."""

    def __init__(self, env: Environment, spec: WanSpec, region_id: int):
        self.env = env
        self.spec = spec
        self.region_id = region_id
        self.name = f"wan-r{region_id}"
        self.egress = ServiceCenter(env, servers=1, name=f"{self.name}:tx")
        self.ingress = ServiceCenter(env, servers=1, name=f"{self.name}:rx")
        self.egress_bytes = 0
        self.ingress_bytes = 0
        #: Severed by the ``wan_partition`` fault level.
        self.partitioned = False

    def egress_time(self, nbytes: int) -> float:
        return nbytes / self.spec.egress_bandwidth

    def ingress_time(self, nbytes: int) -> float:
        return nbytes / self.spec.ingress_bandwidth

    def sever(self) -> None:
        """Cut this region off from the WAN (intra-region unaffected)."""
        self.partitioned = True

    def restore(self) -> None:
        self.partitioned = False


@dataclass
class EgressLedger:
    """Per-region metered egress: bytes out and their dollar cost."""

    spec: WanSpec
    egress_bytes_by_region: List[int] = field(default_factory=list)

    def charge(self, region_id: int, nbytes: int) -> None:
        while len(self.egress_bytes_by_region) <= region_id:
            self.egress_bytes_by_region.append(0)
        self.egress_bytes_by_region[region_id] += nbytes

    @property
    def total_bytes(self) -> int:
        return sum(self.egress_bytes_by_region)

    @property
    def total_cost(self) -> float:
        return self.spec.egress_cost(self.total_bytes)

    def cost_of(self, region_id: int) -> float:
        if region_id >= len(self.egress_bytes_by_region):
            return 0.0
        return self.spec.egress_cost(self.egress_bytes_by_region[region_id])


class WanFabric(Fabric):
    """A region-aware fabric: LAN semantics within, WAN charges across.

    Drop-in replacement for :class:`Fabric` — it *is* one, so the
    controller's RNG reseeding and every existing ``fabric.transfer``
    call site work unchanged.  NICs are registered with their region at
    topology build time; unregistered NICs count as region 0.
    """

    def __init__(
        self,
        env: Environment,
        spec: WanSpec,
        num_regions: int,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(env, rng)
        if num_regions < 1:
            raise ValueError(f"num_regions must be >= 1, got {num_regions}")
        self.spec = spec
        self.num_regions = num_regions
        self.uplinks = [
            WanUplink(env, spec, region) for region in range(num_regions)
        ]
        self.ledger = EgressLedger(spec)
        self.cross_region_transfers = 0
        #: Payload bytes actually delivered across regions (counted on
        #: success, after the receiver ingress charge — the independent
        #: side of the chaos cross-region-byte invariant).
        self.cross_region_bytes = 0
        self.wan_partition_refusals = 0
        self._region_by_nic: Dict[int, int] = {}

    # -- wiring -------------------------------------------------------

    def register_nic(self, nic: Nic, region_id: int) -> None:
        if not 0 <= region_id < self.num_regions:
            raise ValueError(f"region {region_id} out of range")
        self._region_by_nic[id(nic)] = region_id

    def region_of_nic(self, nic: Nic) -> int:
        return self._region_by_nic.get(id(nic), 0)

    # -- fault surface ------------------------------------------------

    def partition_region(self, region_id: int) -> None:
        """Sever one region's uplink (the ``wan_partition`` fault)."""
        self.uplinks[region_id].sever()

    def restore_region(self, region_id: int) -> None:
        self.uplinks[region_id].restore()

    def partitioned_regions(self) -> List[int]:
        return [u.region_id for u in self.uplinks if u.partitioned]

    # -- the transfer process ----------------------------------------

    def _run(self, src: Nic, dst: Nic, nbytes: int) -> Generator:
        if src is dst:
            # Loopback, identical to the LAN fabric.
            yield self.env.timeout(src.spec.message_overhead)
            return
        src_region = self.region_of_nic(src)
        dst_region = self.region_of_nic(dst)
        if src_region == dst_region:
            # Intra-region: exactly the single-hop LAN charge sequence.
            yield from self._charge_endpoints(src, dst, nbytes)
            return
        up = self.uplinks[src_region]
        down = self.uplinks[dst_region]
        if up.partitioned or down.partitioned:
            self.wan_partition_refusals += 1
            # Senders learn about a severed uplink by timeout: one LAN
            # propagation to the edge plus one WAN round trip's worth.
            yield self.env.timeout(src.spec.latency + self.spec.latency)
            raise NetworkPartitionedError(
                f"transfer {src.name} -> {dst.name} crossed a severed "
                f"WAN uplink (regions {src_region} -> {dst_region})"
            )
        # Endpoint charges with the WAN's one-way latency folded into the
        # propagation step, then serialisation on both region uplinks.
        yield from self._charge_endpoints(
            src, dst, nbytes, wan_latency=self.spec.latency
        )
        up.egress_bytes += nbytes
        yield up.egress.request(up.egress_time(nbytes))
        down.ingress_bytes += nbytes
        yield down.ingress.request(down.ingress_time(nbytes))
        self.ledger.charge(src_region, nbytes)
        self.cross_region_transfers += 1
        self.cross_region_bytes += nbytes
