"""Region-spanning CRUSH placement rules.

A :class:`RegionRule` describes the stretch-cluster placement contract:
spread each stripe across ``spread`` regions (chosen straw2-style per
PG) with at most ``max_shards_per_region`` shards landing in any one of
them, and host-spread within each region as usual.

The per-region cap is what makes region-level faults white-box
analysable: if every stripe keeps at most ``cap`` shards in any region
and ``cap <= m``, then losing a whole region (or its WAN uplink) can
never exceed the code's tolerance on its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["RegionRule"]


@dataclass(frozen=True)
class RegionRule:
    """Placement contract for one erasure-coded pool on a stretch cluster.

    ``spread`` is the number of regions each stripe must span;
    ``max_shards_per_region`` caps how many shards of one stripe a single
    region may hold (default: the balanced ceiling ``ceil(width/spread)``,
    resolved per placement width).  ``affinity``, when set, assigns each
    shard index a *region slot* in ``[0, spread)`` so codes with
    sub-stripe locality (LRC local groups) can keep their repair sets
    region-coherent; without it shards are laid out in contiguous
    balanced blocks.
    """

    spread: int
    max_shards_per_region: Optional[int] = None
    affinity: Optional[Tuple[int, ...]] = None

    def __post_init__(self):
        if self.spread < 1:
            raise ValueError(f"region spread must be >= 1, got {self.spread}")
        if (
            self.max_shards_per_region is not None
            and self.max_shards_per_region < 1
        ):
            raise ValueError("max_shards_per_region must be >= 1")
        if self.affinity is not None:
            if any(not 0 <= slot < self.spread for slot in self.affinity):
                raise ValueError(
                    f"affinity slots must lie in [0, {self.spread})"
                )
            if len(set(self.affinity)) < self.spread:
                raise ValueError(
                    "affinity must use every region slot at least once"
                )

    def cap_for(self, width: int) -> int:
        """The effective per-region shard cap for a stripe of ``width``."""
        balanced = -(-width // self.spread)  # ceil division
        if self.max_shards_per_region is None:
            return balanced
        return self.max_shards_per_region

    def validate_width(self, width: int) -> None:
        """Reject rules that cannot place a stripe of ``width`` at all."""
        if self.spread > width:
            raise ValueError(
                f"region spread {self.spread} exceeds stripe width {width}"
            )
        if self.cap_for(width) * self.spread < width:
            raise ValueError(
                f"cap {self.cap_for(width)} x {self.spread} regions cannot "
                f"hold {width} shards"
            )
        if self.affinity is not None:
            if len(self.affinity) != width:
                raise ValueError(
                    f"affinity covers {len(self.affinity)} shards, "
                    f"stripe width is {width}"
                )
            cap = self.cap_for(width)
            for slot in range(self.spread):
                loaded = sum(1 for s in self.affinity if s == slot)
                if loaded > cap:
                    raise ValueError(
                        f"affinity puts {loaded} shards in region slot "
                        f"{slot}, cap is {cap}"
                    )
