"""Workload specification and generation.

The paper's default workload is 10,000 x 64 MB object writes (§4.1,
"comparable to previous work").  At simulation scale that volume is
parameterised by ``scale`` so the benchmarks stay fast while the figures
— which the paper reports normalised — keep their shape; the §4.3
breakdown sweep varies workload size explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..sim.rng import SeedSequence

__all__ = [
    "ObjectWrite",
    "Workload",
    "PAPER_DEFAULT",
    "SizeModel",
    "FixedSize",
    "LognormalSizes",
    "MixtureSizes",
]

MB = 1024 * 1024


class SizeModel:
    """Base class for object-size distributions.

    The paper's workload is fixed-size (§4.1), but its §4.4 WA formula is
    validated "with a variety of object size" — these models generate
    realistic mixes for that validation and for the WA sweeps.
    """

    def sample(self, rng) -> int:
        raise NotImplementedError

    def mean(self) -> float:
        """Expected object size (used for capacity planning in sweeps)."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedSize(SizeModel):
    """Every object the same size."""

    size: int

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError("size must be positive")

    def sample(self, rng) -> int:
        return self.size

    def mean(self) -> float:
        return float(self.size)


@dataclass(frozen=True)
class LognormalSizes(SizeModel):
    """Log-normal sizes — the classic object-store size distribution.

    Parameterised by the distribution's *median* (e^mu) and the shape
    ``sigma``; samples are clamped to at least one byte.
    """

    median: int
    sigma: float = 1.0

    def __post_init__(self):
        if self.median < 1:
            raise ValueError("median must be >= 1")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")

    def sample(self, rng) -> int:
        return max(1, round(rng.lognormvariate(math.log(self.median), self.sigma)))

    def mean(self) -> float:
        return self.median * math.exp(self.sigma**2 / 2)


@dataclass(frozen=True)
class MixtureSizes(SizeModel):
    """A weighted mixture of size models (e.g. many small + few huge)."""

    components: Tuple[Tuple[float, SizeModel], ...]

    def __post_init__(self):
        if not self.components:
            raise ValueError("mixture needs at least one component")
        if any(weight <= 0 for weight, _ in self.components):
            raise ValueError("weights must be positive")

    def sample(self, rng) -> int:
        total = sum(weight for weight, _ in self.components)
        draw = rng.uniform(0, total)
        for weight, model in self.components:
            draw -= weight
            if draw <= 0:
                return model.sample(rng)
        return self.components[-1][1].sample(rng)

    def mean(self) -> float:
        total = sum(weight for weight, _ in self.components)
        return sum(w * m.mean() for w, m in self.components) / total


@dataclass(frozen=True)
class ObjectWrite:
    """One client write: an object name and its size in bytes."""

    name: str
    size: int


@dataclass(frozen=True)
class Workload:
    """A stream of object writes.

    ``size_jitter`` adds +/- that fraction of uniform size variation so
    padding effects are exercised on non-round sizes too (0 disables it,
    matching the paper's fixed-size workload).  A ``size_model`` replaces
    the fixed size entirely with a distribution (log-normal, mixtures).
    """

    num_objects: int = 10_000
    object_size: int = 64 * MB
    size_jitter: float = 0.0
    name_prefix: str = "obj"
    size_model: Optional[SizeModel] = None

    def __post_init__(self):
        if self.num_objects < 0:
            raise ValueError("num_objects must be non-negative")
        if self.object_size <= 0:
            raise ValueError("object_size must be positive")
        if not 0.0 <= self.size_jitter < 1.0:
            raise ValueError("size_jitter must be in [0, 1)")

    @property
    def total_bytes(self) -> int:
        return self.num_objects * self.object_size

    def scaled(self, scale: float) -> "Workload":
        """Same per-object shape, ``scale`` times the object count."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return Workload(
            num_objects=max(1, round(self.num_objects * scale)),
            object_size=self.object_size,
            size_jitter=self.size_jitter,
            name_prefix=self.name_prefix,
            size_model=self.size_model,
        )

    def writes(self, seeds: Optional[SeedSequence] = None) -> Iterator[ObjectWrite]:
        """Generate the write stream (deterministic for a given seed)."""
        rng = (seeds or SeedSequence(0)).stream("workload")
        for index in range(self.num_objects):
            if self.size_model is not None:
                size = self.size_model.sample(rng)
            else:
                size = self.object_size
                if self.size_jitter:
                    spread = self.size_jitter * self.object_size
                    size = max(1, int(self.object_size + rng.uniform(-spread, spread)))
            yield ObjectWrite(name=f"{self.name_prefix}-{index:08d}", size=size)


#: The paper's §4.1 default: 10,000 x 64 MB object writes.
PAPER_DEFAULT = Workload(num_objects=10_000, object_size=64 * MB)
