"""iostat-style per-device I/O statistics collection (§3.3).

ECFault runs ``iostat`` on every DSS server; here a sampler process walks
the simulated disks on a fixed interval and records deltas, yielding the
same per-device time series (ops/s, bytes/s, utilisation) the real
framework parses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from ..sim import Environment
from ..cluster.devices import Disk

__all__ = ["IoSample", "IostatCollector"]


@dataclass(frozen=True)
class IoSample:
    """One interval's delta counters for one device."""

    time: float
    device: str
    read_ops: int
    write_ops: int
    read_bytes: int
    written_bytes: int
    interval: float

    @property
    def read_bytes_per_sec(self) -> float:
        return self.read_bytes / self.interval if self.interval else 0.0

    @property
    def write_bytes_per_sec(self) -> float:
        return self.written_bytes / self.interval if self.interval else 0.0


class IostatCollector:
    """Samples a set of disks every ``interval`` simulated seconds."""

    def __init__(self, env: Environment, disks: Dict[str, Disk], interval: float = 10.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.disks = dict(disks)
        self.interval = interval
        self.samples: List[IoSample] = []
        self._last: Dict[str, tuple] = {
            name: (d.read_ops, d.write_ops, d.read_bytes, d.written_bytes)
            for name, d in self.disks.items()
        }
        self._proc = env.process(self._run())

    def _run(self) -> Generator:
        while True:
            yield self.env.timeout(self.interval)
            self._sample()

    def _sample(self) -> None:
        now = self.env.now
        for name, disk in self.disks.items():
            prev = self._last[name]
            current = (disk.read_ops, disk.write_ops, disk.read_bytes, disk.written_bytes)
            self._last[name] = current
            self.samples.append(
                IoSample(
                    time=now,
                    device=name,
                    read_ops=current[0] - prev[0],
                    write_ops=current[1] - prev[1],
                    read_bytes=current[2] - prev[2],
                    written_bytes=current[3] - prev[3],
                    interval=self.interval,
                )
            )

    def busiest_devices(self, top: int = 5) -> List[str]:
        """Devices ranked by total bytes moved across all samples."""
        totals: Dict[str, int] = {}
        for sample in self.samples:
            totals[sample.device] = (
                totals.get(sample.device, 0)
                + sample.read_bytes
                + sample.written_bytes
            )
        ranked = sorted(totals, key=lambda name: totals[name], reverse=True)
        return ranked[:top]

    def device_series(self, device: str) -> List[IoSample]:
        """All samples of one device, in time order."""
        return [s for s in self.samples if s.device == device]

    def window(
        self, start: float, end: float, device: Optional[str] = None
    ) -> List[IoSample]:
        """Samples taken in ``[start, end]``, optionally for one device.

        Lets analyses attribute I/O to experiment phases — e.g. the read
        traffic a deep-scrub pass generates between two timeline marks.
        """
        return [
            s
            for s in self.samples
            if start <= s.time <= end and (device is None or s.device == device)
        ]

    def read_bytes_in(self, start: float, end: float) -> int:
        """Total bytes read across all devices in ``[start, end]``."""
        return sum(s.read_bytes for s in self.window(start, end))
