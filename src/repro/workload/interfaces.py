"""Client interfaces: how RADOS/RBD/CephFS/RGW shape the object stream.

Table 1 lists the Ceph interface as an EC-relevant configuration because
each client layer chops user data into RADOS objects differently — and
object size drives both the padding write amplification (§4.4) and the
per-object recovery cost.  This module maps a client-level workload
through an interface to the RADOS-object stream the pool actually sees:

* ``rados``  — objects pass through unchanged;
* ``rbd``    — block images are striped into 4 MB objects;
* ``cephfs`` — files are striped into 4 MB objects (default file layout);
* ``rgw``    — S3-style uploads: small objects stay whole (plus a head
  object), large ones become 4 MB multipart chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..sim.rng import SeedSequence
from .generator import ObjectWrite, Workload

__all__ = ["InterfaceModel", "INTERFACES", "interface_stream"]

MB = 1024 * 1024


@dataclass(frozen=True)
class InterfaceModel:
    """How one client interface maps user data to RADOS objects.

    ``strip_size`` of None passes user objects through unchanged;
    otherwise user payloads are divided into objects of that size (the
    last one keeps the remainder).  ``head_object_bytes`` adds the small
    metadata head object some interfaces create per user object.
    """

    name: str
    strip_size: Optional[int]
    head_object_bytes: int = 0
    #: Payloads at or below this size stay whole even when striping.
    whole_below: int = 0

    def objects_for(self, write: ObjectWrite) -> Iterator[ObjectWrite]:
        """RADOS objects produced by one client-level write."""
        if self.head_object_bytes:
            yield ObjectWrite(name=f"{write.name}/head", size=self.head_object_bytes)
        if self.strip_size is None or write.size <= self.whole_below:
            yield write
            return
        index = 0
        remaining = write.size
        while remaining > 0:
            size = min(self.strip_size, remaining)
            yield ObjectWrite(name=f"{write.name}/{index:06d}", size=size)
            remaining -= size
            index += 1


#: The Table-1 interface options.
INTERFACES = {
    "rados": InterfaceModel(name="rados", strip_size=None),
    "rbd": InterfaceModel(name="rbd", strip_size=4 * MB),
    "cephfs": InterfaceModel(name="cephfs", strip_size=4 * MB),
    "rgw": InterfaceModel(
        name="rgw", strip_size=4 * MB, head_object_bytes=4096,
        whole_below=4 * MB,
    ),
}


def interface_stream(
    workload: Workload,
    interface: str,
    seeds: Optional[SeedSequence] = None,
) -> Iterator[ObjectWrite]:
    """The RADOS-object stream a client workload produces.

    Raises ``KeyError`` for interfaces outside Table 1's options.
    """
    try:
        model = INTERFACES[interface]
    except KeyError:
        known = ", ".join(sorted(INTERFACES))
        raise KeyError(f"unknown interface {interface!r}; options: {known}") from None
    for write in workload.writes(seeds):
        yield from model.objects_for(write)
