"""Workload generation and I/O statistics collection."""

from .generator import (
    PAPER_DEFAULT,
    FixedSize,
    LognormalSizes,
    MixtureSizes,
    ObjectWrite,
    SizeModel,
    Workload,
)
from .interfaces import INTERFACES, InterfaceModel, interface_stream
from .iostat import IoSample, IostatCollector

__all__ = [
    "PAPER_DEFAULT",
    "ObjectWrite",
    "SizeModel",
    "FixedSize",
    "LognormalSizes",
    "MixtureSizes",
    "Workload",
    "INTERFACES",
    "InterfaceModel",
    "interface_stream",
    "IoSample",
    "IostatCollector",
]
