"""The Controller — ECFault's top-level component (§3, Figure 1).

A Controller binds the three sub-modules the paper names — the EC
Manager (an :class:`~repro.core.profile.ExperimentProfile`), the Fault
Injector, and the Coordinator — to one deployed target DSS.  Building a
Controller from a profile stands up the whole stack: simulation
environment, cluster, per-host Workers with NVMe-oF provisioned disks,
loggers, and the log bus.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cluster.ceph import CephCluster
from ..sim import Environment
from ..sim.rng import SeedSequence
from ..workload.generator import Workload
from .coordinator import Coordinator, ExperimentOutcome
from .fault_injector import FaultInjector, FaultSpec
from .logbus import LogBus
from .profile import ExperimentProfile
from .worker import Worker, deploy_workers

__all__ = ["Controller"]


class Controller:
    """One experiment's control plane over one target DSS instance.

    Controllers are single-use: a fault-injection experiment mutates the
    cluster (failed devices, remapped PGs), so each run of a sweep
    builds a fresh Controller — exactly how the real framework tears
    down and redeploys between profile runs.
    """

    def __init__(self, profile: ExperimentProfile, seed: int = 0):
        self.profile = profile
        self.seeds = SeedSequence(seed)
        self.env = Environment()
        self.cluster = CephCluster(
            self.env,
            code=profile.create_code(),
            cache_config=profile.cache_config(),
            config=profile.ceph,
            num_hosts=profile.num_hosts,
            osds_per_host=profile.osds_per_host,
            num_racks=profile.num_racks,
            pg_num=profile.pg_num,
            stripe_unit=profile.stripe_unit,
            failure_domain=profile.failure_domain,
            disk_spec=profile.disk_spec(),
            placement_seed=self.seeds.stream("crush").randrange(2**31),
            integrity=profile.integrity_config(),
            scrub=profile.scrub_config(),
            num_regions=profile.num_regions,
            wan_spec=profile.wan_spec(),
            region_rule=profile.region_rule(),
        )
        # The fabric's drop lottery draws only while a net_degrade fault
        # is active; seeding it here makes degraded runs reproducible
        # per experiment seed without touching healthy-run determinism.
        self.cluster.topology.fabric.rng = self.seeds.stream("fabric")
        self.workers: Dict[int, Worker] = deploy_workers(self.cluster)
        self.bus = LogBus()
        self.fault_injector = FaultInjector(self.cluster, self.workers, self.seeds)
        self.coordinator = Coordinator(
            self.cluster, self.fault_injector, self.bus, self.seeds
        )
        self._used = False

    def run_experiment(
        self,
        workload: Workload,
        faults: Optional[List[FaultSpec]] = None,
        settle_time: float = 60.0,
        max_sim_time: float = 200_000.0,
    ) -> ExperimentOutcome:
        """Run the profile's experiment once (single use per Controller)."""
        if self._used:
            raise RuntimeError(
                "Controller already ran an experiment; build a fresh one"
            )
        self._used = True
        return self.coordinator.run(
            workload,
            faults or [],
            settle_time=settle_time,
            max_sim_time=max_sim_time,
        )
