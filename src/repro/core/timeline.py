"""Recovery-cycle timeline analysis (the paper's §4.3 / Figure 3).

Segments one system recovery cycle from the merged, classified logs —
the same way the paper annotates Figure 3 with MGR/OSD log lines:

* ``failure detected`` — MON marks the OSD down (t = 0 of Figure 3);
* **System Checking Period** — heartbeats, the down->out interval,
  resource checks, collecting missing OSDs, queueing, peering;
* ``EC Recovery started`` — the first "start recovery I/O" line;
* **EC Recovery Period** — the actual repair reads/decodes/writes;
* ``EC Recovery finished`` — the last "recovery completed" line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .logger import LogCollector

__all__ = [
    "RecoveryTimeline",
    "ScrubTimeline",
    "FlapTimeline",
    "TenantSloTimeline",
    "TimelineError",
    "build_timeline",
    "build_scrub_timeline",
    "build_flap_timeline",
    "build_tenant_slo_timeline",
    "first_nonmonotone",
]


def first_nonmonotone(records) -> Optional[int]:
    """Index of the first record whose timestamp runs backwards, or None.

    Per-node logs are append-only and the simulation clock never rewinds,
    so every in-order scan of one node's records must be non-decreasing
    in time — the timeline-monotonicity invariant the chaos harness
    asserts after every campaign step.
    """
    last = None
    for index, record in enumerate(records):
        if last is not None and record.time < last:
            return index
        last = record.time
    return None


class TimelineError(RuntimeError):
    """The logs do not contain a complete recovery cycle."""


@dataclass(frozen=True)
class RecoveryTimeline:
    """Absolute timestamps of one recovery cycle plus derived metrics."""

    fault_injected: Optional[float]
    failure_detected: float
    marked_out: float
    recovery_queued: float
    ec_recovery_started: float
    ec_recovery_finished: float

    @property
    def checking_period(self) -> float:
        """Detection -> first recovery I/O (the paper's checking period)."""
        return self.ec_recovery_started - self.failure_detected

    @property
    def ec_recovery_period(self) -> float:
        return self.ec_recovery_finished - self.ec_recovery_started

    @property
    def total_recovery(self) -> float:
        """The overall system recovery period (detection -> finished)."""
        return self.ec_recovery_finished - self.failure_detected

    @property
    def checking_fraction(self) -> float:
        """Share of the cycle spent checking (41%-58% in the paper)."""
        if self.total_recovery <= 0:
            return 0.0
        return self.checking_period / self.total_recovery

    def annotations(self) -> List[Tuple[float, str]]:
        """(relative time, label) pairs matching Figure 3's annotations."""
        zero = self.failure_detected
        return [
            (0.0, "Failure detected"),
            (self.marked_out - zero, "OSD marked out (osdmap change)"),
            (self.recovery_queued - zero, "collecting missing OSDs, queueing recovery"),
            (self.ec_recovery_started - zero, "EC Recovery started"),
            (self.ec_recovery_finished - zero, "EC Recovery finished"),
        ]


@dataclass(frozen=True)
class ScrubTimeline:
    """Timestamps of one silent-corruption cycle: inject -> detect -> heal.

    The Fig-3-style breakdown gains a *scrub band*: nothing in the
    cluster reacts between injection and the deep scrub that reads the
    damaged chunk (the **detection period**, governed by the scrub
    interval — the corruption analogue of the paper's System Checking
    Period), then the **repair period** covers the EC decode-repair
    until health returns to OK.
    """

    corruption_injected: Optional[float]
    error_detected: float
    pg_inconsistent: float
    repair_started: float
    repair_finished: float
    health_ok: float

    @property
    def detection_period(self) -> float:
        """Injection -> first checksum mismatch (scrub-interval bound)."""
        if self.corruption_injected is None:
            return 0.0
        return self.error_detected - self.corruption_injected

    @property
    def repair_period(self) -> float:
        return self.repair_finished - self.repair_started

    @property
    def total_cycle(self) -> float:
        """Injection (or detection) -> health back to OK."""
        zero = (
            self.corruption_injected
            if self.corruption_injected is not None
            else self.error_detected
        )
        return self.health_ok - zero

    @property
    def detection_fraction(self) -> float:
        """Share of the cycle spent waiting for scrub to find the damage."""
        if self.total_cycle <= 0:
            return 0.0
        return self.detection_period / self.total_cycle

    def annotations(self) -> List[Tuple[float, str]]:
        """(relative time, label) pairs for a Figure-3-style scrub band."""
        zero = (
            self.corruption_injected
            if self.corruption_injected is not None
            else self.error_detected
        )
        marks: List[Tuple[float, str]] = []
        if self.corruption_injected is not None:
            marks.append((0.0, "Silent corruption injected"))
        marks.extend(
            [
                (self.error_detected - zero, "Scrub detected checksum mismatch"),
                (self.pg_inconsistent - zero, "PG marked inconsistent (HEALTH_ERR)"),
                (self.repair_started - zero, "Scrub repair started (HEALTH_WARN)"),
                (self.repair_finished - zero, "Scrub repair finished"),
                (self.health_ok - zero, "HEALTH_OK restored"),
            ]
        )
        return marks


@dataclass(frozen=True)
class FlapTimeline:
    """Timestamps of one flapping-OSD cycle: flap -> dampening -> settle.

    The Fig-3-style breakdown gains a *gray band*: an oscillating daemon
    thrashes the failure detector (each flap-down eventually costs a
    markdown and an osdmap epoch) until the monitor's markdown budget
    runs out and flap dampening pins the OSD down.  From the pin onward
    the cycle looks like an ordinary crash: down->out interval, optional
    mark-out and recovery, then mark-in and convergence after restore.
    """

    flap_started: Optional[float]
    first_markdown: float
    pinned: float
    markdowns_before_pin: int
    marked_out: Optional[float] = None
    marked_in: Optional[float] = None
    health_ok: Optional[float] = None

    @property
    def thrash_period(self) -> float:
        """First markdown -> dampening pin (the detector-thrash window)."""
        return self.pinned - self.first_markdown

    def annotations(self) -> List[Tuple[float, str]]:
        """(relative time, label) pairs for a Figure-3-style gray band."""
        zero = (
            self.flap_started
            if self.flap_started is not None
            else self.first_markdown
        )
        marks: List[Tuple[float, str]] = []
        if self.flap_started is not None:
            marks.append((0.0, "OSD daemon started flapping"))
        marks.extend(
            [
                (self.first_markdown - zero, "First markdown (detector thrash)"),
                (
                    self.pinned - zero,
                    f"Flap dampening pinned OSD down "
                    f"({self.markdowns_before_pin} markdowns)",
                ),
            ]
        )
        if self.marked_out is not None:
            marks.append((self.marked_out - zero, "OSD marked out (osdmap change)"))
        if self.marked_in is not None:
            marks.append((self.marked_in - zero, "OSD marked in after restore"))
        if self.health_ok is not None:
            marks.append((self.health_ok - zero, "HEALTH_OK restored"))
        return marks


@dataclass(frozen=True)
class TenantSloTimeline:
    """Per-tenant SLO-violation bands over one fleet run.

    The Fig-3-style breakdown gains a *tenancy band*: for every tenant
    that declared an SLO, the windows where it was violated, laid over
    the run's fault window.  A violation window inside the fault window
    is *attributable* (the fault cost that tenant its SLO); one outside
    it is what the chaos fairness invariant flags.
    """

    #: (tenant name, violation windows) in fleet-spec order.
    tenants: Tuple[Tuple[str, Tuple[Tuple[float, float], ...]], ...]
    started_at: float
    duration: float
    fault_window: Optional[Tuple[float, float]] = None

    @property
    def violated_tenants(self) -> List[str]:
        """Names of tenants with at least one violation window."""
        return [name for name, windows in self.tenants if windows]

    def annotations(self) -> List[Tuple[float, str]]:
        """(relative time, label) pairs for a Figure-3-style tenancy band."""
        zero = self.started_at
        marks: List[Tuple[float, str]] = [(0.0, "Tenant fleet started")]
        if self.fault_window is not None:
            start, end = self.fault_window
            marks.append((start - zero, "Fault window opened"))
            marks.append((end - zero, "Fault window closed"))
        for name, windows in self.tenants:
            for v_start, v_end in windows:
                marks.append(
                    (v_start - zero, f"Tenant {name} SLO violation started")
                )
                marks.append(
                    (v_end - zero, f"Tenant {name} SLO violation ended")
                )
        marks.append((self.duration, "Tenant fleet drained"))
        marks.sort(key=lambda mark: mark[0])
        return marks


def build_tenant_slo_timeline(
    tenants,
    started_at: float,
    duration: float,
    fault_window: Optional[Tuple[float, float]] = None,
) -> TenantSloTimeline:
    """Build the tenancy band from per-tenant violation windows.

    ``tenants`` is a list of ``(name, windows)`` pairs as produced by
    the tenancy accounting layer.  Raises :class:`TimelineError` when
    the fleet never ran (zero duration) — there is no band to draw.
    """
    if duration <= 0:
        raise TimelineError("tenant fleet never ran; no band to draw")
    return TenantSloTimeline(
        tenants=tuple(
            (name, tuple(tuple(window) for window in windows))
            for name, windows in tenants
        ),
        started_at=started_at,
        duration=duration,
        fault_window=tuple(fault_window) if fault_window is not None else None,
    )


def build_timeline(collector: LogCollector) -> RecoveryTimeline:
    """Extract the recovery timeline from collected logs.

    Raises :class:`TimelineError` when a phase marker is missing (e.g.,
    the experiment ended before recovery finished).
    """
    injected = collector.first_matching("shutdown") or collector.first_matching(
        "removed nvme"
    )
    detected = collector.first_matching("marking down")
    out = collector.first_matching("marking osd out")
    queued = collector.first_matching("queueing recovery")
    started = collector.first_matching("start recovery i/o")
    finished = collector.last_matching("recovery completed")
    missing = [
        name
        for name, record in (
            ("failure detection", detected),
            ("mark-out", out),
            ("recovery queueing", queued),
            ("recovery start", started),
            ("recovery completion", finished),
        )
        if record is None
    ]
    if missing:
        raise TimelineError(f"incomplete recovery cycle; missing: {missing}")
    return RecoveryTimeline(
        fault_injected=injected.time if injected else None,
        failure_detected=detected.time,
        marked_out=out.time,
        recovery_queued=queued.time,
        ec_recovery_started=started.time,
        ec_recovery_finished=finished.time,
    )


def build_scrub_timeline(collector: LogCollector) -> ScrubTimeline:
    """Extract the silent-corruption cycle from collected logs.

    Raises :class:`TimelineError` when a phase marker is missing (e.g.,
    scrub was disabled, or the experiment ended mid-repair).
    """
    injected = collector.first_matching("silent corruption")
    detected = collector.first_matching("scrub error")
    inconsistent = collector.first_matching("pg inconsistent")
    repair_started = collector.first_matching("scrub repair started")
    repair_finished = collector.last_matching("scrub repair completed")
    health_ok = collector.last_matching("cluster health now health_ok")
    missing = [
        name
        for name, record in (
            ("scrub error detection", detected),
            ("pg inconsistent mark", inconsistent),
            ("scrub repair start", repair_started),
            ("scrub repair completion", repair_finished),
            ("health-ok restoration", health_ok),
        )
        if record is None
    ]
    if missing:
        raise TimelineError(f"incomplete scrub cycle; missing: {missing}")
    return ScrubTimeline(
        corruption_injected=injected.time if injected else None,
        error_detected=detected.time,
        pg_inconsistent=inconsistent.time,
        repair_started=repair_started.time,
        repair_finished=repair_finished.time,
        health_ok=health_ok.time,
    )


def build_flap_timeline(collector: LogCollector) -> FlapTimeline:
    """Extract the flapping-OSD cycle from collected logs.

    Raises :class:`TimelineError` when the cycle is incomplete — the OSD
    never flapped long enough to be marked down, or the markdown budget
    never ran out so dampening never pinned it.
    """
    flap_started = collector.first_matching("flapped down")
    first_markdown = collector.first_matching("marking down")
    pinned = collector.first_matching("flapping osd pinned")
    missing = [
        name
        for name, record in (
            ("first markdown", first_markdown),
            ("dampening pin", pinned),
        )
        if record is None
    ]
    if missing:
        raise TimelineError(f"incomplete flap cycle; missing: {missing}")
    markdowns_before_pin = sum(
        1
        for record in collector.records
        if "marking down" in record.record.message.lower()
        and record.time <= pinned.time
    )
    marked_out = collector.first_matching("marking osd out")
    marked_in = collector.last_matching("marking in")
    health_ok = collector.last_matching("cluster health now health_ok")
    return FlapTimeline(
        flap_started=flap_started.time if flap_started else None,
        first_markdown=first_markdown.time,
        pinned=pinned.time,
        markdowns_before_pin=markdowns_before_pin,
        marked_out=marked_out.time if marked_out else None,
        marked_in=marked_in.time if marked_in else None,
        health_ok=health_ok.time if health_ok else None,
    )
