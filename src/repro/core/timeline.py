"""Recovery-cycle timeline analysis (the paper's §4.3 / Figure 3).

Segments one system recovery cycle from the merged, classified logs —
the same way the paper annotates Figure 3 with MGR/OSD log lines:

* ``failure detected`` — MON marks the OSD down (t = 0 of Figure 3);
* **System Checking Period** — heartbeats, the down->out interval,
  resource checks, collecting missing OSDs, queueing, peering;
* ``EC Recovery started`` — the first "start recovery I/O" line;
* **EC Recovery Period** — the actual repair reads/decodes/writes;
* ``EC Recovery finished`` — the last "recovery completed" line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .logger import LogCollector

__all__ = ["RecoveryTimeline", "TimelineError", "build_timeline"]


class TimelineError(RuntimeError):
    """The logs do not contain a complete recovery cycle."""


@dataclass(frozen=True)
class RecoveryTimeline:
    """Absolute timestamps of one recovery cycle plus derived metrics."""

    fault_injected: Optional[float]
    failure_detected: float
    marked_out: float
    recovery_queued: float
    ec_recovery_started: float
    ec_recovery_finished: float

    @property
    def checking_period(self) -> float:
        """Detection -> first recovery I/O (the paper's checking period)."""
        return self.ec_recovery_started - self.failure_detected

    @property
    def ec_recovery_period(self) -> float:
        return self.ec_recovery_finished - self.ec_recovery_started

    @property
    def total_recovery(self) -> float:
        """The overall system recovery period (detection -> finished)."""
        return self.ec_recovery_finished - self.failure_detected

    @property
    def checking_fraction(self) -> float:
        """Share of the cycle spent checking (41%-58% in the paper)."""
        if self.total_recovery <= 0:
            return 0.0
        return self.checking_period / self.total_recovery

    def annotations(self) -> List[Tuple[float, str]]:
        """(relative time, label) pairs matching Figure 3's annotations."""
        zero = self.failure_detected
        return [
            (0.0, "Failure detected"),
            (self.marked_out - zero, "OSD marked out (osdmap change)"),
            (self.recovery_queued - zero, "collecting missing OSDs, queueing recovery"),
            (self.ec_recovery_started - zero, "EC Recovery started"),
            (self.ec_recovery_finished - zero, "EC Recovery finished"),
        ]


def build_timeline(collector: LogCollector) -> RecoveryTimeline:
    """Extract the recovery timeline from collected logs.

    Raises :class:`TimelineError` when a phase marker is missing (e.g.,
    the experiment ended before recovery finished).
    """
    injected = collector.first_matching("shutdown") or collector.first_matching(
        "removed nvme"
    )
    detected = collector.first_matching("marking down")
    out = collector.first_matching("marking osd out")
    queued = collector.first_matching("queueing recovery")
    started = collector.first_matching("start recovery i/o")
    finished = collector.last_matching("recovery completed")
    missing = [
        name
        for name, record in (
            ("failure detection", detected),
            ("mark-out", out),
            ("recovery queueing", queued),
            ("recovery start", started),
            ("recovery completion", finished),
        )
        if record is None
    ]
    if missing:
        raise TimelineError(f"incomplete recovery cycle; missing: {missing}")
    return RecoveryTimeline(
        fault_injected=injected.time if injected else None,
        failure_detected=detected.time,
        marked_out=out.time,
        recovery_queued=queued.time,
        ec_recovery_started=started.time,
        ec_recovery_finished=finished.time,
    )
