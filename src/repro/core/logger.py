"""Loggers — local parsing, keyword classification, and shipping (§3.3).

Each DSS node's raw log is parsed *locally*: entries are classified by
keyword (decoding, failure, recovery, heartbeat, ...), irrelevant ones
are dropped, and only the classified remainder is published to the log
bus — "to reduce the network traffic of log collection".  The
Coordinator-side :class:`LogCollector` consumes every topic and performs
the global sort/merge the timeline analysis runs on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cluster.logs import LogRecord, NodeLog
from .logbus import LogBus

__all__ = ["ClassifiedRecord", "NodeLogger", "LogCollector", "KEYWORD_CLASSES"]

#: Classification keywords, checked in order; first hit wins.  Mirrors the
#: paper's examples ("decoding, failure, recovery, etc.").
KEYWORD_CLASSES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("failure", ("marking down", "no heartbeats", "shutdown", "removed nvme")),
    ("osdmap", ("marking osd out", "osdmap changed", "marking up", "marking in")),
    ("corruption", ("silent corruption",)),
    ("gray", (
        "nvme service degraded",
        "network degraded",
        "flapped down",
        "flapped up",
        "flapping osd pinned",
        "recovery op abandoned",
        "recovery abandoned",
    )),
    ("scrub", (
        "deep-scrub",
        "scrub error",
        "scrub repair",
        "pg inconsistent",
    )),
    ("health", ("cluster health now",)),
    ("recovery", (
        "queueing recovery",
        "check recovery resource",
        "start recovery i/o",
        "recovery completed",
        "report recovery i/o",
    )),
    ("decoding", ("decode", "decoding")),
    ("heartbeat", ("heartbeat",)),
    ("provisioning", ("provisioned", "nvme namespace")),
)


@dataclass(frozen=True)
class ClassifiedRecord:
    """A raw log record plus its keyword class."""

    record: LogRecord
    keyword_class: str

    @property
    def time(self) -> float:
        return self.record.time


def classify(record: LogRecord) -> Optional[str]:
    """Keyword class of a record, or None if irrelevant to EC analysis."""
    message = record.message.lower()
    for name, keywords in KEYWORD_CLASSES:
        if any(keyword in message for keyword in keywords):
            return name
    return None


class NodeLogger:
    """ECFault Logger on one node: parse, classify, publish."""

    def __init__(self, node_log: NodeLog, bus: LogBus):
        self.node_log = node_log
        self.bus = bus
        self._shipped = 0
        self.dropped = 0

    def flush(self) -> int:
        """Classify unshipped records, publish relevant ones; returns count."""
        shipped = 0
        for record in self.node_log.records[self._shipped :]:
            keyword_class = classify(record)
            if keyword_class is None:
                self.dropped += 1
            else:
                self.bus.publish(
                    topic=f"ecfault.logs.{keyword_class}",
                    producer=self.node_log.node,
                    time=record.time,
                    payload=ClassifiedRecord(record, keyword_class),
                )
                shipped += 1
        self._shipped = len(self.node_log.records)
        return shipped


class LogCollector:
    """Coordinator-side consumer: global merge of all classified logs."""

    def __init__(self, bus: LogBus, group: str = "coordinator"):
        self.bus = bus
        self.group = group
        self.records: List[ClassifiedRecord] = []

    def collect(self) -> int:
        """Drain every topic; returns how many records arrived."""
        arrived = 0
        for topic in self.bus.topics():
            if not topic.startswith("ecfault.logs."):
                continue
            for message in self.bus.consume(topic, self.group):
                self.records.append(message.payload)
                arrived += 1
        # Global sort: by time, then by node for a stable merge.
        self.records.sort(key=lambda r: (r.time, r.record.node))
        return arrived

    def of_class(self, keyword_class: str) -> List[ClassifiedRecord]:
        return [r for r in self.records if r.keyword_class == keyword_class]

    def first_matching(self, substring: str) -> Optional[ClassifiedRecord]:
        """Earliest record whose message contains ``substring``."""
        needle = substring.lower()
        for record in self.records:
            if needle in record.record.message.lower():
                return record
        return None

    def last_matching(self, substring: str) -> Optional[ClassifiedRecord]:
        """Latest record whose message contains ``substring``."""
        needle = substring.lower()
        for record in reversed(self.records):
            if needle in record.record.message.lower():
                return record
        return None
