"""Workers — ECFault's per-node agents (§3).

One Worker runs on every DataNode of the target DSS and does two things:

* **Virtual disk provisioning**: creates NVMe subsystems on the node's
  NVMe-oF target and connects them to the local OSDs, replacing physical
  disks so device state is under framework control (§3.1).
* **DSS manipulation**: applies the faults the Controller requests —
  shutting the node down (node-level fault) or removing an NVMe
  subsystem (device-level fault) — and restores state afterwards (§3.2).
"""

from __future__ import annotations

from typing import Dict, List

from ..cluster.ceph import CephCluster
from ..cluster.nvme import NvmeSubsystem, NvmeTarget, default_nqn

__all__ = ["Worker", "deploy_workers"]


class Worker:
    """ECFault agent on one DataNode (OSD host)."""

    def __init__(self, cluster: CephCluster, host_id: int):
        self.cluster = cluster
        self.host = cluster.topology.hosts[host_id]
        self.target = NvmeTarget(self.host.name)
        self.log = cluster.host_logs[host_id]
        self._removed: Dict[int, NvmeSubsystem] = {}
        self._was_shutdown = False

    # -- provisioning (§3.1) --------------------------------------------------------

    def provision_disks(self) -> List[str]:
        """Export each OSD's backing disk via NVMe-oF and attach it.

        Returns the NQNs created.  Idempotent per host: provisioning an
        already-provisioned host raises, mirroring nvmetcli behaviour.
        """
        nqns: List[str] = []
        for index, osd_id in enumerate(self.host.osd_ids):
            nqn = default_nqn(self.host.name, index)
            disk = self.cluster.topology.osds[osd_id].disk
            self.target.create_subsystem(nqn, disk)
            self.target.connect(nqn, osd_id)
            nqns.append(nqn)
        self.log.emit(
            self.cluster.env.now, "client",
            "provisioned virtual NVMe namespaces", count=len(nqns),
        )
        return nqns

    def nqn_of(self, osd_id: int) -> str:
        """The NQN currently backing an OSD on this host."""
        for nqn, subsystem in self.target.subsystems.items():
            if subsystem.attached_osd == osd_id:
                return nqn
        raise KeyError(f"osd.{osd_id} has no attached subsystem on {self.host.name}")

    # -- fault application (§3.2) ------------------------------------------------------

    def shutdown_node(self) -> None:
        """Node-level fault: stop every daemon on this host."""
        for osd_id in self.host.osd_ids:
            self.cluster.osds[osd_id].host_running = False
        self._was_shutdown = True
        self.log.emit(self.cluster.env.now, "client", "node shutdown requested")

    def remove_device(self, osd_id: int) -> None:
        """Device-level fault: tear down the OSD's NVMe subsystem."""
        nqn = self.nqn_of(osd_id)
        subsystem = self.target.remove_subsystem(nqn)
        self._removed[osd_id] = subsystem
        self.log.emit(
            self.cluster.env.now, "client",
            "removed NVMe subsystem", nqn=nqn, osd=f"osd.{osd_id}",
        )

    def corrupt_chunk(
        self, pgid: str, object_name: str, shard: int, model: str, rng
    ) -> int:
        """Corruption-level fault: silently damage one stored chunk.

        Unlike node/device faults this leaves the daemon up and
        heartbeating — nothing in the cluster notices until a deep scrub
        re-reads the chunk and its crc32c fails.  Returns the number of
        checksum blocks damaged.  :meth:`restore` deliberately does *not*
        heal corruption: only a scrub repair can.
        """
        blocks = self.cluster.integrity.corrupt(
            pgid, object_name, shard, model, rng
        )
        self.log.emit(
            self.cluster.env.now, "client", "silent corruption injected",
            pg=pgid, shard=shard, model=model, blocks=blocks,
        )
        return blocks

    def restore(self) -> None:
        """Undo all faults this worker applied (experiment teardown).

        Idempotent: restores only what this worker recorded applying, and
        forgets each fault as it is rolled back, so calling twice (or
        after a partially-applied inject) never double-restores.
        """
        if self._was_shutdown:
            for osd_id in self.host.osd_ids:
                self.cluster.osds[osd_id].host_running = True
            self._was_shutdown = False
        for osd_id, subsystem in list(self._removed.items()):
            if subsystem.nqn not in self.target.subsystems:
                self.target.restore_subsystem(subsystem)
            del self._removed[osd_id]


def deploy_workers(cluster: CephCluster, provision: bool = True) -> Dict[int, Worker]:
    """Stand up one Worker per OSD host, optionally provisioning disks."""
    workers = {host_id: Worker(cluster, host_id) for host_id in cluster.topology.hosts}
    if provision:
        for worker in workers.values():
            worker.provision_disks()
    return workers
