"""Workers — ECFault's per-node agents (§3).

One Worker runs on every DataNode of the target DSS and does two things:

* **Virtual disk provisioning**: creates NVMe subsystems on the node's
  NVMe-oF target and connects them to the local OSDs, replacing physical
  disks so device state is under framework control (§3.1).
* **DSS manipulation**: applies the faults the Controller requests —
  shutting the node down (node-level fault), removing an NVMe subsystem
  (device-level fault), or degrading the node *without* killing it
  (gray faults: slow device, lossy/partitioned network, flapping
  daemon) — and restores state afterwards (§3.2).
"""

from __future__ import annotations

import random
from typing import Dict, Generator, List, Optional

from ..cluster.ceph import CephCluster
from ..cluster.network import NetDegradation
from ..cluster.nvme import NvmeSubsystem, NvmeTarget, default_nqn
from ..sim import Interrupt

__all__ = ["Worker", "deploy_workers"]


class Worker:
    """ECFault agent on one DataNode (OSD host)."""

    def __init__(self, cluster: CephCluster, host_id: int):
        self.cluster = cluster
        self.host = cluster.topology.hosts[host_id]
        self.target = NvmeTarget(self.host.name)
        self.log = cluster.host_logs[host_id]
        self._removed: Dict[int, NvmeSubsystem] = {}
        self._was_shutdown = False
        #: Gray-fault state this worker applied (rolled back by restore).
        self._slowed: Dict[int, float] = {}
        self._flapping: Dict[int, object] = {}
        self._net_degraded = False

    # -- provisioning (§3.1) --------------------------------------------------------

    def provision_disks(self) -> List[str]:
        """Export each OSD's backing disk via NVMe-oF and attach it.

        Returns the NQNs created.  Idempotent per host: provisioning an
        already-provisioned host raises, mirroring nvmetcli behaviour.
        """
        nqns: List[str] = []
        for index, osd_id in enumerate(self.host.osd_ids):
            nqn = default_nqn(self.host.name, index)
            disk = self.cluster.topology.osds[osd_id].disk
            self.target.create_subsystem(nqn, disk)
            self.target.connect(nqn, osd_id)
            nqns.append(nqn)
        self.log.emit(
            self.cluster.env.now, "client",
            "provisioned virtual NVMe namespaces", count=len(nqns),
        )
        return nqns

    def nqn_of(self, osd_id: int) -> str:
        """The NQN currently backing an OSD on this host."""
        for nqn, subsystem in self.target.subsystems.items():
            if subsystem.attached_osd == osd_id:
                return nqn
        raise KeyError(f"osd.{osd_id} has no attached subsystem on {self.host.name}")

    # -- fault application (§3.2) ------------------------------------------------------

    def shutdown_node(self) -> None:
        """Node-level fault: stop every daemon on this host."""
        for osd_id in self.host.osd_ids:
            self.cluster.osds[osd_id].host_running = False
        self._was_shutdown = True
        self.log.emit(self.cluster.env.now, "client", "node shutdown requested")

    def remove_device(self, osd_id: int) -> None:
        """Device-level fault: tear down the OSD's NVMe subsystem."""
        nqn = self.nqn_of(osd_id)
        subsystem = self.target.remove_subsystem(nqn)
        self._removed[osd_id] = subsystem
        self.log.emit(
            self.cluster.env.now, "client",
            "removed NVMe subsystem", nqn=nqn, osd=f"osd.{osd_id}",
        )

    def corrupt_chunk(
        self, pgid: str, object_name: str, shard: int, model: str, rng
    ) -> int:
        """Corruption-level fault: silently damage one stored chunk.

        Unlike node/device faults this leaves the daemon up and
        heartbeating — nothing in the cluster notices until a deep scrub
        re-reads the chunk and its crc32c fails.  Returns the number of
        checksum blocks damaged.  :meth:`restore` deliberately does *not*
        heal corruption: only a scrub repair can.
        """
        blocks = self.cluster.integrity.corrupt(
            pgid, object_name, shard, model, rng
        )
        self.log.emit(
            self.cluster.env.now, "client", "silent corruption injected",
            pg=pgid, shard=shard, model=model, blocks=blocks,
        )
        return blocks

    # -- Byzantine faults (lie, don't die) ---------------------------------------------

    def byz_corrupt_chunk(
        self, pgid: str, object_name: str, shard: int, osd_id: int, rng
    ) -> int:
        """Byzantine fault: rewrite a chunk *and* forge its local crc32c.

        Unlike :meth:`corrupt_chunk`, the stored checksums match the
        wrong bytes, so a local verify passes — only a deep-scrub
        EC-decode cross-check against the shard's peers can reveal the
        lie.  Returns the number of checksum blocks rewritten.
        :meth:`restore` never heals this: scrub repair does.
        """
        blocks = self.cluster.integrity.corrupt_byzantine(
            pgid, object_name, shard, rng
        )
        # Forge the OSD-local stored checksums to match the lie, so the
        # scrub's per-chunk verify stays green (data plane only — the
        # model plane tracks the forgery inside the integrity store).
        forged = self.cluster.integrity.actual_checksums(
            pgid, object_name, shard
        )
        if forged is not None:
            self.cluster.osds[osd_id].backend.put_chunk_checksums(
                (pgid, object_name, shard), forged
            )
        self.log.emit(
            self.cluster.env.now, "client",
            "byzantine corruption injected (checksum forged)",
            pg=pgid, shard=shard, blocks=blocks,
        )
        return blocks

    def byz_false_ack(self, pgid: str, object_name: str, shard: int) -> None:
        """Byzantine fault: the shard's write was acked but never applied.

        Pure daemon-state lie — the pg_log claims a version the store
        does not hold; peering's version cross-check will expose it.
        """
        self.log.emit(
            self.cluster.env.now, "client",
            "byzantine false ack injected (version claim is a lie)",
            pg=pgid, object=object_name, shard=shard,
        )

    def byz_stale_map(self, osd_id: int, epoch: int) -> None:
        """Byzantine fault: the daemon gossips an old osdmap epoch."""
        self.log.emit(
            self.cluster.env.now, "client",
            "byzantine stale osdmap gossip started",
            osd=f"osd.{osd_id}", epoch=epoch,
        )

    # -- gray faults (degrade, don't kill) ---------------------------------------------

    def slow_device(self, osd_id: int, factor: float) -> None:
        """Gray fault: inflate one device's service times by ``factor``.

        The OSD stays up and heartbeating — the disk just limps, the way
        an NVMe device with a failing die or a saturated controller does.
        """
        if osd_id in self._slowed:
            raise ValueError(f"osd.{osd_id} is already slowed")
        nqn = self.nqn_of(osd_id)
        self.target.degrade_subsystem(nqn, factor)
        self._slowed[osd_id] = factor
        self.log.emit(
            self.cluster.env.now, "client", "nvme service degraded",
            nqn=nqn, osd=f"osd.{osd_id}", factor=factor,
        )

    def degrade_network(self, degradation: NetDegradation) -> None:
        """Gray fault: make this host's NIC lossy, slow, or partitioned."""
        if self._net_degraded:
            raise ValueError(f"{self.host.name} network is already degraded")
        self.host.nic.degrade(degradation)
        self._net_degraded = True
        self.log.emit(
            self.cluster.env.now, "client", "network degraded",
            host=self.host.name,
            loss=degradation.loss,
            latency=degradation.latency,
            bandwidth_penalty=degradation.bandwidth_penalty,
            partition=degradation.partition,
        )

    def start_flap(self, osd_id: int, interval: float, rng: random.Random) -> None:
        """Gray fault: oscillate one OSD daemon up/down until restored.

        Each half-period lasts ``interval * [0.5, 1.5)`` drawn from the
        injector's seeded per-target stream, so flap phasing is
        deterministic per seed but not synchronised across targets.
        """
        if osd_id in self._flapping:
            raise ValueError(f"osd.{osd_id} is already flapping")
        if interval <= 0:
            raise ValueError(f"flap interval must be positive, got {interval}")
        self._flapping[osd_id] = self.cluster.env.process(
            self._flap_loop(osd_id, interval, rng)
        )

    def _flap_loop(self, osd_id: int, interval: float, rng: random.Random) -> Generator:
        osd = self.cluster.osds[osd_id]
        try:
            while True:
                osd.daemon_up = False
                self.log.emit(
                    self.cluster.env.now, "client", "osd daemon flapped down",
                    osd=osd.name,
                )
                yield self.cluster.env.timeout(interval * (0.5 + rng.random()))
                osd.daemon_up = True
                self.log.emit(
                    self.cluster.env.now, "client", "osd daemon flapped up",
                    osd=osd.name,
                )
                yield self.cluster.env.timeout(interval * (0.5 + rng.random()))
        except Interrupt:
            # restore() stops the oscillation.  Re-raise the daemon here
            # too, not just in restore(): when the inject and the restore
            # land at the same sim instant, this loop's first down-phase
            # runs *after* restore() already set daemon_up — without
            # this, the interrupt would strand the daemon down forever.
            osd.daemon_up = True
            return

    def restore(self) -> None:
        """Undo all faults this worker applied (experiment teardown).

        Idempotent: restores only what this worker recorded applying, and
        forgets each fault as it is rolled back, so calling twice (or
        after a partially-applied inject) never double-restores.
        """
        if self._was_shutdown:
            for osd_id in self.host.osd_ids:
                self.cluster.osds[osd_id].host_running = True
            self._was_shutdown = False
        for osd_id, subsystem in list(self._removed.items()):
            if subsystem.nqn not in self.target.subsystems:
                self.target.restore_subsystem(subsystem)
            del self._removed[osd_id]
        for osd_id in list(self._slowed):
            self.target.restore_subsystem_speed(self.nqn_of(osd_id))
            del self._slowed[osd_id]
        for osd_id, proc in list(self._flapping.items()):
            proc.interrupt()
            self.cluster.osds[osd_id].daemon_up = True
            del self._flapping[osd_id]
        if self._net_degraded:
            self.host.nic.restore_network()
            self._net_degraded = False


def deploy_workers(cluster: CephCluster, provision: bool = True) -> Dict[int, Worker]:
    """Stand up one Worker per OSD host, optionally provisioning disks."""
    workers = {host_id: Worker(cluster, host_id) for host_id in cluster.topology.hosts}
    if provision:
        for worker in workers.values():
            worker.provision_disks()
    return workers
