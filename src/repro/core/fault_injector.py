"""EC-aware, topology-aware fault injection (§3.2).

The Fault Injector is *white-box*: it knows the pool's EC parameters and
failure domain from the experiment profile and refuses to inject more
than the guaranteed fault-tolerance capacity (n - k failures within the
failure domain), so every injected fault exercises EC recovery rather
than causing data loss.  It is *topology-aware*: concurrent device
failures can be forced onto the same storage node or spread across
different nodes — the Figure 2d axis.

Beyond fail-stop (node/device) and silent (corrupt) faults, the injector
speaks three **gray-failure** levels — faults that degrade without
killing:

* ``slow_device`` — inflate an NVMe device's service times ×``factor``;
  the OSD stays up and heartbeating, it just limps.
* ``net_degrade`` — give a host's NIC packet loss, extra latency, a
  bandwidth penalty, or a full partition; transfers through it can slow
  down or drop, and so can the host's heartbeats.
* ``flap`` — oscillate an OSD daemon up/down on a seeded cadence,
  thrashing the monitor's failure detector until flap dampening pins it.

The white-box guard extends to gray faults: ``flap`` and ``net_degrade``
make shards (intermittently) unavailable, so they count against the
code's tolerance budget exactly like crash faults; ``slow_device`` never
costs availability and is budget-free, tracked only to prevent
double-slowing one device.

Stretch clusters add two **region-level** levels:

* ``region_outage`` — shut down every host in a region at once (the
  cloud-region-down scenario).
* ``wan_partition`` — sever a region's WAN uplink; hosts stay up and
  intra-region traffic flows, but every cross-region transfer fails.

Both are guarded per *stripe*, not per failure-domain bucket: a region
holds many host buckets, so the bucket count would always overshoot.
What actually bounds recoverability is how many shards of any one stripe
live in (or behind) the target regions — the region-spanning CRUSH rule
caps that, and the guard unions it with live damage (down OSDs, stale
and corrupt shards) exactly like the crash-over-staleness guard.

Cascade experiments add one **correlated** level:

* ``correlated_crash`` — fail every OSD inside whole failure-domain
  buckets (hosts, racks, …) in a single event: the shared-switch /
  shared-PDU scenario where one physical fault takes out an entire
  domain at once.  It is guarded exactly like ``node`` crashes — the
  buckets taken out (in the *pool's* failure domain) plus live damage
  must stay within the code's tolerance — so an injected cascade alone
  can never lose data; only the follow-on aftershocks the campaign
  schedules push PGs toward their redundancy floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..cluster.ceph import CephCluster
from ..cluster.network import NetDegradation
from ..cluster.scrub import CorruptionModel
from ..cluster.topology import FailureDomain
from ..sim.rng import SeedSequence
from .byzantine import BYZ_LEVELS, ensure_byzantine
from .worker import Worker

__all__ = [
    "Colocation",
    "CorruptionModel",
    "FaultSpec",
    "FaultToleranceError",
    "FaultInjector",
    "FAULT_LEVELS",
    "GRAY_LEVELS",
    "GEO_LEVELS",
    "BYZ_LEVELS",
    "CASCADE_LEVELS",
]

#: Gray-failure levels: the fault degrades service but kills nothing.
GRAY_LEVELS = ("slow_device", "net_degrade", "flap")

#: Region-level levels: only valid on multi-region (stretch) topologies.
GEO_LEVELS = ("wan_partition", "region_outage")

#: Correlated level: one event fails a whole failure-domain bucket.
CASCADE_LEVELS = ("correlated_crash",)

#: The fault levels the injector understands.  Byzantine levels (OSDs
#: that lie — see :mod:`repro.core.byzantine`) and the correlated level
#: ride at the end so every pre-existing level keeps its position.
FAULT_LEVELS = ("node", "device", "corrupt") + GRAY_LEVELS + GEO_LEVELS \
    + BYZ_LEVELS + CASCADE_LEVELS


class Colocation:
    """Placement constraint for concurrent device faults (Fig 2d x-axis)."""

    SAME_HOST = "same_host"
    DIFFERENT_HOSTS = "diff_hosts"
    ANY = "any"
    ALL = (SAME_HOST, DIFFERENT_HOSTS, ANY)


@dataclass(frozen=True)
class FaultSpec:
    """A fault-injection request.

    ``level`` is ``"node"`` (shut a host down), ``"device"`` (remove NVMe
    subsystems), ``"corrupt"`` (silently damage stored chunks — found
    only by deep scrub), or a gray level: ``"slow_device"`` (inflate
    service times by ``factor``), ``"net_degrade"`` (apply ``loss`` /
    ``latency`` / ``bandwidth_penalty`` / ``partition`` to host NICs) or
    ``"flap"`` (oscillate OSD daemons with half-periods around
    ``flap_interval``), or ``"correlated_crash"`` (fail every OSD in
    whole ``domain`` buckets at once — the shared-switch scenario).
    ``count`` is how many targets; ``colocation`` constrains
    device-scoped faults; ``corruption`` picks the damage model for
    corrupt-level faults; explicit ``targets`` (host ids for
    node/net_degrade faults, OSD ids for device/slow_device/flap faults,
    stripe shard indices for corrupt faults, bucket ids for
    correlated_crash faults) override selection.
    """

    level: str = "node"
    count: int = 1
    colocation: str = Colocation.ANY
    targets: Optional[Sequence[int]] = None
    corruption: str = CorruptionModel.BIT_ROT
    #: slow_device: multiplier on the device's service times.
    factor: float = 4.0
    #: net_degrade: per-transfer drop probability at the host's NIC.
    loss: float = 0.0
    #: net_degrade: extra one-way propagation latency (seconds).
    latency: float = 0.0
    #: net_degrade: divisor on the NIC's usable bandwidth.
    bandwidth_penalty: float = 1.0
    #: net_degrade: sever the host from the fabric entirely.
    partition: bool = False
    #: flap: nominal half-period of the up/down oscillation (seconds).
    flap_interval: float = 60.0
    #: correlated_crash: the topology level that fails as one unit.
    domain: str = "host"

    def __post_init__(self):
        if self.level not in FAULT_LEVELS:
            raise ValueError(
                f"unknown fault level {self.level!r}; "
                f"allowed levels: {', '.join(FAULT_LEVELS)}"
            )
        if self.count < 1:
            raise ValueError(f"fault count must be >= 1, got {self.count}")
        if self.colocation not in Colocation.ALL:
            raise ValueError(
                f"unknown colocation {self.colocation!r}; "
                f"allowed colocations: {', '.join(Colocation.ALL)}"
            )
        if self.colocation == Colocation.SAME_HOST and self.level in (
            "node", "net_degrade",
        ) + GEO_LEVELS + BYZ_LEVELS + CASCADE_LEVELS:
            raise ValueError(
                "same-host colocation applies to device-scoped faults, "
                f"not level={self.level!r}"
            )
        if self.level == "correlated_crash":
            if self.domain not in (
                FailureDomain.HOST, FailureDomain.RACK, FailureDomain.REGION,
            ):
                raise ValueError(
                    f"correlated_crash domain must be one of host, rack, "
                    f"region; got {self.domain!r}"
                )
        if self.corruption not in CorruptionModel.ALL:
            raise ValueError(
                f"unknown corruption model {self.corruption!r}; "
                f"allowed models: {', '.join(CorruptionModel.ALL)}"
            )
        if self.level == "slow_device" and self.factor <= 1.0:
            raise ValueError(
                f"slow_device needs factor > 1.0, got {self.factor}"
            )
        if self.level == "net_degrade":
            # Constructing the degradation validates ranges and rejects
            # a spec that degrades nothing.
            self.net_degradation()
        if self.level == "flap" and self.flap_interval <= 0:
            raise ValueError(
                f"flap needs flap_interval > 0, got {self.flap_interval}"
            )

    def net_degradation(self) -> NetDegradation:
        """The NIC degradation a net_degrade spec applies."""
        return NetDegradation(
            loss=self.loss,
            latency=self.latency,
            bandwidth_penalty=self.bandwidth_penalty,
            partition=self.partition,
        )


class FaultToleranceError(ValueError):
    """The requested faults would exceed the code's guaranteed capacity."""


class FaultInjector:
    """Selects fault targets and applies them through the Workers."""

    def __init__(
        self,
        cluster: CephCluster,
        workers: Dict[int, Worker],
        seeds: Optional[SeedSequence] = None,
    ):
        self.cluster = cluster
        self.workers = workers
        self.seeds = seeds or SeedSequence(0)
        self.injected_osds: Set[int] = set()
        #: OSDs whose device is currently slowed.  Not part of the
        #: tolerance budget (a slow disk costs no availability) — only
        #: tracked so one device is never slowed twice.
        self.slowed_osds: Set[int] = set()
        #: Regions whose WAN uplink this injector severed; restored by
        #: :meth:`restore_all` (workers know nothing about uplinks).
        self.partitioned_regions: Set[int] = set()

    # -- white-box validation ---------------------------------------------------------

    def validate(self, spec: FaultSpec) -> None:
        """Refuse faults beyond n - k failures within the failure domain.

        Counts the *failure-domain buckets* the spec would take out, plus
        any already-injected ones, against the pool's tolerance m = n - k.
        """
        pool = self.cluster.pool
        tolerance = pool.code.fault_tolerance()
        if spec.level == "corrupt":
            if spec.count > tolerance:
                raise FaultToleranceError(
                    f"{spec.count} corrupted chunks in one stripe would "
                    f"exceed the guaranteed tolerance m={tolerance} of "
                    f"{pool.code.plugin_name}({pool.code.n},{pool.code.k})"
                )
            return
        if spec.level == "slow_device":
            # A limping device costs performance, not availability: it
            # consumes none of the tolerance budget.  Selection still
            # enforces that enough un-slowed candidates exist.
            self._select_slow_devices(spec)
            return
        if spec.level == "byz_corrupt_data":
            # Guarded per stripe like honest corruption: a lying shard
            # counts against the code's tolerance m exactly the same.
            self._byz_corrupt_victims(spec)
            return
        if spec.level == "byz_false_ack":
            self._byz_false_ack_victims(spec)
            return
        if spec.level in GEO_LEVELS:
            self._validate_geo(spec)
            return
        domain = pool.failure_domain
        hit = {
            self.cluster.topology.bucket_of(osd_id, domain)
            for osd_id in self._osds_for(spec) | self.injected_osds
        }
        if len(hit) > tolerance:
            raise FaultToleranceError(
                f"{len(hit)} failed {domain} buckets would exceed the "
                f"guaranteed tolerance m={tolerance} of "
                f"{pool.code.plugin_name}({pool.code.n},{pool.code.k})"
            )
        # Crash-over-corruption guard, the converse of the stripe guard in
        # _corrupt_victims: each crashed bucket can take one more shard
        # from the stripe already carrying the most unrepaired silent
        # corruption (honest or Byzantine — undetected false acks are
        # silent damage too), and the combined damage must stay
        # guaranteed-recoverable.
        corrupt = self._max_silent_damage()
        if corrupt and len(hit) + corrupt > tolerance:
            raise FaultToleranceError(
                f"{len(hit)} failed {domain} buckets on top of {corrupt} "
                f"unrepaired corrupt chunks in one stripe would exceed the "
                f"guaranteed tolerance m={tolerance} of "
                f"{pool.code.plugin_name}({pool.code.n},{pool.code.k})"
            )
        # Crash-over-staleness guard: shards that missed a degraded write
        # hold old content and cannot serve repairs, so they are damage
        # just like corruption until delta recovery catches them up.
        # Per-stripe *union* with the (planned + live) crash damage — a
        # stale shard inside an already-doomed bucket adds nothing.
        dirty = self._max_dirty_damage(hit, domain)
        if dirty > tolerance:
            raise FaultToleranceError(
                f"{dirty} damaged chunks in one stripe (crashed buckets + "
                f"stale/corrupt shards from degraded writes) would exceed "
                f"the guaranteed tolerance m={tolerance} of "
                f"{pool.code.plugin_name}({pool.code.n},{pool.code.k})"
            )

    def _validate_geo(self, spec: FaultSpec) -> None:
        """Stripe-level white-box guard for region faults.

        For every populated PG: the shards standing in (or cut off
        behind) the target regions, unioned with shards already down,
        injected, stale, or silently corrupt, must stay within the
        code's guaranteed tolerance for every stored stripe.
        """
        pool = self.cluster.pool
        tolerance = pool.code.fault_tolerance()
        topology = self.cluster.topology
        integrity = self.cluster.integrity
        hit_regions = set(self._select_regions(spec))
        worst = 0
        worst_pg = None
        for pg in pool.pgs.values():
            if not pg.objects:
                continue
            base = {
                s
                for s, osd_id in enumerate(pg.acting)
                if topology.region_of(osd_id) in hit_regions
                or topology.region_of(osd_id) in self.partitioned_regions
                or osd_id in self.injected_osds
                or not self.cluster.osds[osd_id].is_up()
            }
            damage = len(base)
            if pg.log is not None and pg.log.dirty_shards():
                for obj in pg.objects:
                    stale = pg.log.stale_shards(obj.name)
                    if not stale:
                        continue
                    corrupt = integrity.corrupt_shards(pg.pgid, obj.name)
                    byz = self._byz_damage(pg.pgid, obj.name)
                    damage = max(damage, len(base | stale | corrupt | byz))
            if damage > worst:
                worst, worst_pg = damage, pg.pgid
        if worst > tolerance:
            raise FaultToleranceError(
                f"{worst} damaged chunks in stripe {worst_pg} (regions "
                f"{sorted(hit_regions)} + live damage) would exceed the "
                f"guaranteed tolerance m={tolerance} of "
                f"{pool.code.plugin_name}({pool.code.n},{pool.code.k})"
            )
        # Silent corruption (honest or Byzantine) can sit in any stripe;
        # a region fault may remove its repair headroom (same guard as
        # crash levels).
        corrupt = self._max_silent_damage()
        if corrupt and worst + corrupt > tolerance:
            raise FaultToleranceError(
                f"{worst} region-damaged chunks on top of {corrupt} "
                f"unrepaired corrupt chunks in one stripe would exceed "
                f"the guaranteed tolerance m={tolerance} of "
                f"{pool.code.plugin_name}({pool.code.n},{pool.code.k})"
            )

    def _max_dirty_damage(self, hit: Set, domain: str) -> int:
        """Worst-case per-stripe damage once ``hit`` buckets are down.

        For every stripe with a stale shard: shards unavailable now or
        standing in a hit bucket, unioned with the stripe's stale and
        corrupt shards.  Returns 0 when no writes have gone degraded
        (read-only experiments never pay beyond the ``dirty_shards``
        check per PG).
        """
        worst = 0
        integrity = self.cluster.integrity
        topology = self.cluster.topology
        for pg in self.cluster.pool.pgs.values():
            if pg.log is None or not pg.objects or not pg.log.dirty_shards():
                continue
            unavailable = {
                s
                for s, osd_id in enumerate(pg.acting)
                if not self.cluster.osds[osd_id].is_up()
                or topology.bucket_of(osd_id, domain) in hit
            }
            for obj in pg.objects:
                stale = pg.log.stale_shards(obj.name)
                if not stale:
                    continue
                corrupt = integrity.corrupt_shards(pg.pgid, obj.name)
                byz = self._byz_damage(pg.pgid, obj.name)
                worst = max(worst, len(unavailable | stale | corrupt | byz))
        return worst

    def _byz_damage(self, pgid: str, name: str) -> Set[int]:
        """Undetected false-ack shards for one object (empty when the
        Byzantine axis never fired).  Forged-checksum byz corruption is
        already counted by the integrity store's ``corrupt_shards``, so
        only false acks need separate accounting here."""
        byz = getattr(self.cluster, "byzantine", None)
        if byz is None:
            return set()
        return byz.damaged_shards(pgid, name)

    def _max_silent_damage(self) -> int:
        """Worst-case per-stripe *silent* damage: unrepaired corrupt
        shards unioned with undetected false-ack shards.  Identical to
        ``integrity.max_corrupt_per_stripe()`` when no Byzantine fault
        is active."""
        integrity = self.cluster.integrity
        byz = getattr(self.cluster, "byzantine", None)
        if byz is None:
            return integrity.max_corrupt_per_stripe()
        worst = 0
        # Every stripe carrying either kind of silent damage:
        seen = {
            (pgid, name) for pgid, name, _shards in byz.false_ack_items()
        }
        for pg in self.cluster.pool.pgs.values():
            for obj in pg.objects:
                if integrity.corrupt_shards(pg.pgid, obj.name):
                    seen.add((pg.pgid, obj.name))
        for pgid, name in seen:
            damage = (
                integrity.corrupt_shards(pgid, name)
                | byz.damaged_shards(pgid, name)
            )
            worst = max(worst, len(damage))
        return worst

    def _osds_for(self, spec: FaultSpec) -> Set[int]:
        """OSDs a spec can make unavailable (resolving target selection).

        ``net_degrade`` is host-scoped like ``node`` (the NIC is shared);
        ``flap`` is device-scoped like ``device``.  Both count in full —
        an intermittently-unavailable shard must be assumed unavailable
        for the tolerance guarantee to hold.
        """
        if spec.level in ("node", "net_degrade"):
            hosts = self._select_hosts(spec)
            out: Set[int] = set()
            for host_id in hosts:
                out |= set(self.cluster.topology.hosts[host_id].osd_ids)
            return out
        if spec.level == "byz_stale_map":
            # A stale-gossip liar misroutes ops aimed at its shards until
            # the monitor rejects its epoch, so it counts as unavailable
            # for the tolerance guarantee exactly like a flapping OSD.
            return set(self._select_byz_liars(spec))
        if spec.level == "correlated_crash":
            out = set()
            for bucket in self._select_correlated_buckets(spec):
                out |= set(
                    self.cluster.topology.osds_in_bucket(bucket, spec.domain)
                )
            return out
        return set(self._select_devices(spec))

    # -- target selection ----------------------------------------------------------------

    def _healthy_data_osds(self) -> List[int]:
        """Candidate OSDs: hold chunks, still up, not already injected."""
        return [
            osd_id
            for osd_id in self.cluster.osds_with_data()
            if osd_id not in self.injected_osds
            and osd_id not in self.slowed_osds
            and self.cluster.osds[osd_id].is_up()
        ]

    def _select_slow_devices(self, spec: FaultSpec) -> List[int]:
        """Targets for a slow_device fault (device-scoped selection)."""
        devices = self._select_devices(spec)
        already = [osd_id for osd_id in devices if osd_id in self.slowed_osds]
        if already:
            raise ValueError(f"devices already slowed: {sorted(already)}")
        return devices

    def _data_hosts(self) -> List[int]:
        """Hosts that store chunks (so faults actually trigger recovery)."""
        return sorted(
            {
                self.cluster.topology.osds[o].host_id
                for o in self._healthy_data_osds()
            }
        )

    def _select_hosts(self, spec: FaultSpec) -> List[int]:
        if spec.targets is not None:
            return list(spec.targets)[: spec.count]
        rng = self.seeds.stream("fault-hosts")
        candidates = self._data_hosts()
        if len(candidates) < spec.count:
            raise ValueError(
                f"only {len(candidates)} hosts hold data, need {spec.count}"
            )
        return rng.sample(candidates, spec.count)

    def _select_correlated_buckets(self, spec: FaultSpec) -> List[int]:
        """Pick the failure-domain buckets a correlated_crash takes out.

        Explicit ``targets`` are bucket ids at ``spec.domain``; otherwise
        buckets are sampled from those still holding reachable data so
        the correlated loss actually triggers recovery.  Draws from its
        own seeded stream — validate and inject replay the same picks.
        """
        topology = self.cluster.topology
        all_buckets = set(topology.buckets(spec.domain))
        if spec.targets is not None:
            buckets = list(spec.targets)[: spec.count]
            bad = sorted(set(buckets) - all_buckets)
            if bad:
                raise ValueError(
                    f"correlated_crash targets are {spec.domain} bucket "
                    f"ids; {bad} unknown"
                )
            return buckets
        rng = self.seeds.stream("fault-correlated")
        candidates = sorted(
            {
                topology.bucket_of(osd_id, spec.domain)
                for osd_id in self._healthy_data_osds()
            }
        )
        if len(candidates) < spec.count:
            raise ValueError(
                f"only {len(candidates)} {spec.domain} buckets hold data, "
                f"need {spec.count}"
            )
        return rng.sample(candidates, spec.count)

    def _select_regions(self, spec: FaultSpec) -> List[int]:
        """Pick target regions for a geo-level fault.

        Explicit ``targets`` are region ids; otherwise regions are
        sampled from those still holding reachable data, so the fault
        actually exercises cross-region recovery.
        """
        topology = self.cluster.topology
        if topology.wan is None:
            raise ValueError(
                f"{spec.level} faults need a multi-region topology "
                "(num_regions > 1)"
            )
        all_regions = set(topology.buckets("region"))
        if spec.targets is not None:
            regions = list(spec.targets)[: spec.count]
            bad = sorted(set(regions) - all_regions)
            if bad:
                raise ValueError(
                    f"{spec.level} targets are region ids; {bad} unknown"
                )
            return regions
        rng = self.seeds.stream("fault-regions")
        candidates = sorted(
            {
                topology.region_of(osd_id)
                for osd_id in self._healthy_data_osds()
            }
            - self.partitioned_regions
        )
        if len(candidates) < spec.count:
            raise ValueError(
                f"only {len(candidates)} regions hold reachable data, "
                f"need {spec.count}"
            )
        return rng.sample(candidates, spec.count)

    def _select_devices(self, spec: FaultSpec) -> List[int]:
        """Pick device-fault targets, EC-aware.

        Multi-device faults are chosen *within one placement group's
        acting set* whenever possible, so that "f concurrent failures"
        actually exercises f-erasure EC recovery on shared stripes rather
        than f unrelated single-failure recoveries — the systematic
        exploration §3.2 describes.  The colocation constraint (same
        host vs different hosts) is applied within the acting set.
        """
        if spec.targets is not None:
            return list(spec.targets)[: spec.count]
        rng = self.seeds.stream("fault-devices")
        healthy = set(self._healthy_data_osds())
        if spec.count > 1:
            chosen = self._co_occurring_targets(spec, healthy, rng)
            if chosen is not None:
                return chosen
        by_host: Dict[int, List[int]] = {}
        for osd_id in sorted(healthy):
            by_host.setdefault(
                self.cluster.topology.osds[osd_id].host_id, []
            ).append(osd_id)
        if spec.colocation == Colocation.SAME_HOST:
            hosts = [h for h, osds in by_host.items() if len(osds) >= spec.count]
            if not hosts:
                raise ValueError(
                    f"no host has {spec.count} data-bearing OSDs for a "
                    "same-host fault"
                )
            host = rng.choice(sorted(hosts))
            return rng.sample(by_host[host], spec.count)
        if spec.colocation == Colocation.DIFFERENT_HOSTS:
            hosts = sorted(by_host)
            if len(hosts) < spec.count:
                raise ValueError(
                    f"only {len(hosts)} data-bearing hosts, need {spec.count}"
                )
            chosen_hosts = rng.sample(hosts, spec.count)
            return [rng.choice(sorted(by_host[h])) for h in chosen_hosts]
        if len(healthy) < spec.count:
            raise ValueError(
                f"only {len(healthy)} data-bearing OSDs, need {spec.count}"
            )
        return rng.sample(sorted(healthy), spec.count)

    def _co_occurring_targets(self, spec: FaultSpec, healthy: Set[int], rng):
        """Targets from a single PG's acting set honouring colocation.

        Returns None when no acting set satisfies the constraint; the
        caller falls back to topology-only selection.
        """
        topology = self.cluster.topology
        candidates = []
        for pg in self.cluster.pool.pgs.values():
            if not pg.objects:
                continue
            usable = [o for o in pg.acting if o in healthy]
            if spec.colocation == Colocation.SAME_HOST:
                by_host: Dict[int, List[int]] = {}
                for osd_id in usable:
                    by_host.setdefault(topology.osds[osd_id].host_id, []).append(osd_id)
                for host in sorted(by_host):
                    if len(by_host[host]) >= spec.count:
                        candidates.append((pg.pg_id, by_host[host][: spec.count]))
                        break
            elif spec.colocation == Colocation.DIFFERENT_HOSTS:
                picked: List[int] = []
                seen_hosts: Set[int] = set()
                for osd_id in usable:
                    host = topology.osds[osd_id].host_id
                    if host not in seen_hosts:
                        picked.append(osd_id)
                        seen_hosts.add(host)
                    if len(picked) == spec.count:
                        candidates.append((pg.pg_id, picked))
                        break
            else:
                if len(usable) >= spec.count:
                    candidates.append((pg.pg_id, usable[: spec.count]))
        if not candidates:
            return None
        return rng.choice(sorted(candidates))[1]

    def _corrupt_victims(self, spec: FaultSpec):
        """Pick the stripe and shard set a corrupt-level fault damages.

        White-box stripe guard: unavailable shards (down OSDs), already
        corrupted shards and the new victims together must stay within
        the code's guaranteed tolerance — a corruption the code could not
        repair would be injected data loss, not a fault experiment.
        """
        pool = self.cluster.pool
        integrity = self.cluster.integrity
        if not integrity.config.enabled:
            raise ValueError(
                "corrupt-level faults need write-time checksums; "
                "enable IntegrityConfig(enabled=True) on the cluster"
            )
        populated = [pg for pg in pool.pgs.values() if pg.objects]
        if not populated:
            raise ValueError("no stored objects to corrupt")
        rng = self.seeds.stream("fault-corrupt")
        if spec.targets is not None:
            shards = list(spec.targets)[: spec.count]
            bad = [s for s in shards if not 0 <= s < pool.code.n]
            if bad:
                raise ValueError(
                    f"corrupt targets are stripe shard indices; {bad} "
                    f"outside [0, {pool.code.n})"
                )
            pg = populated[0]
            obj = pg.objects[0]
        else:
            pg = rng.choice(populated)
            obj = rng.choice(pg.objects)
            shards = rng.sample(range(pool.code.n), spec.count)
        tolerance = pool.code.fault_tolerance()
        unavailable = {
            s
            for s, osd_id in enumerate(pg.acting)
            if not self.cluster.osds[osd_id].is_up()
        }
        stale = pg.log.stale_shards(obj.name) if pg.log is not None else set()
        damaged = (
            unavailable
            | stale
            | integrity.corrupt_shards(pg.pgid, obj.name)
            | self._byz_damage(pg.pgid, obj.name)
            | set(shards)
        )
        if len(damaged) > tolerance:
            raise FaultToleranceError(
                f"{len(damaged)} damaged chunks in stripe {pg.pgid}/{obj.name} "
                f"would exceed the guaranteed tolerance m={tolerance} of "
                f"{pool.code.plugin_name}({pool.code.n},{pool.code.k})"
            )
        return pg, obj, shards, rng

    def _byz_stripe_victims(self, spec: FaultSpec, stream: str):
        """Shared stripe/shard selection for the two data-plane byz
        levels, with the same white-box union guard as honest corruption
        (a lying shard is damage until scrub/peering finds it).

        Each level draws from its *own* seeded stream — streams restart
        identically per call, so sharing ``"fault-corrupt"`` would make
        the adversary shadow the honest corruption picks exactly.
        """
        pool = self.cluster.pool
        integrity = self.cluster.integrity
        populated = [pg for pg in pool.pgs.values() if pg.objects]
        if not populated:
            raise ValueError("no stored objects for a Byzantine fault")
        rng = self.seeds.stream(stream)
        if spec.targets is not None:
            shards = list(spec.targets)[: spec.count]
            bad = [s for s in shards if not 0 <= s < pool.code.n]
            if bad:
                raise ValueError(
                    f"{spec.level} targets are stripe shard indices; {bad} "
                    f"outside [0, {pool.code.n})"
                )
            pg = populated[0]
            obj = pg.objects[0]
        else:
            pg = rng.choice(populated)
            obj = rng.choice(pg.objects)
            shards = rng.sample(range(pool.code.n), spec.count)
        tolerance = pool.code.fault_tolerance()
        unavailable = {
            s
            for s, osd_id in enumerate(pg.acting)
            if not self.cluster.osds[osd_id].is_up()
            or osd_id in self.injected_osds
        }
        stale = pg.log.stale_shards(obj.name) if pg.log is not None else set()
        damaged = (
            unavailable
            | stale
            | integrity.corrupt_shards(pg.pgid, obj.name)
            | self._byz_damage(pg.pgid, obj.name)
            | set(shards)
        )
        if len(damaged) > tolerance:
            raise FaultToleranceError(
                f"{len(damaged)} damaged chunks in stripe "
                f"{pg.pgid}/{obj.name} (Byzantine lies count like crash "
                f"damage) would exceed the guaranteed tolerance "
                f"m={tolerance} of "
                f"{pool.code.plugin_name}({pool.code.n},{pool.code.k})"
            )
        return pg, obj, shards, rng

    def _byz_corrupt_victims(self, spec: FaultSpec):
        """Stripe victims for byz_corrupt_data (forged local checksums).

        Needs write-time checksums: the lie *is* the forged checksum, so
        a cluster without an integrity store has nothing to forge and —
        more importantly — no deep scrub to ever detect it.
        """
        integrity = self.cluster.integrity
        if not integrity.config.enabled:
            raise ValueError(
                "byz_corrupt_data faults need write-time checksums; "
                "enable IntegrityConfig(enabled=True) on the cluster"
            )
        if not self.cluster.scrub.config.enabled:
            raise ValueError(
                "byz_corrupt_data faults need deep scrub enabled — "
                "nothing else can ever detect a forged checksum"
            )
        return self._byz_stripe_victims(spec, "fault-byz-corrupt")

    def _byz_false_ack_victims(self, spec: FaultSpec):
        """Stripe victims for byz_false_ack (acked-but-not-applied).

        The lie is a pg_log version claim, so the PG must keep a write
        log and the object must have a committed version to falsify.
        """
        pg, obj, shards, rng = self._byz_stripe_victims(
            spec, "fault-byz-ack"
        )
        if pg.log is None:
            raise ValueError(
                "byz_false_ack faults need per-PG write logs "
                "(pg_log_max_entries > 0)"
            )
        if obj.name not in pg.log.object_version:
            raise ValueError(
                f"object {pg.pgid}/{obj.name} has no committed version "
                "to falsely ack"
            )
        return pg, obj, shards, rng

    def _select_byz_liars(self, spec: FaultSpec) -> List[int]:
        """OSD daemons that will gossip a stale osdmap epoch."""
        if spec.targets is not None:
            return list(spec.targets)[: spec.count]
        rng = self.seeds.stream("fault-byz-map")
        candidates = sorted(self._healthy_data_osds())
        byz = getattr(self.cluster, "byzantine", None)
        if byz is not None:
            candidates = [
                osd_id for osd_id in candidates
                if not byz.gossiping_stale(osd_id)
            ]
        if len(candidates) < spec.count:
            raise ValueError(
                f"only {len(candidates)} candidate OSDs for stale-map "
                f"gossip, need {spec.count}"
            )
        return rng.sample(candidates, spec.count)

    # -- application --------------------------------------------------------------------

    def inject(self, spec: FaultSpec) -> List[int]:
        """Validate and apply a fault; returns the affected OSD ids."""
        self.validate(spec)
        if spec.level == "corrupt":
            pg, obj, shards, rng = self._corrupt_victims(spec)
            affected = []
            for shard in sorted(shards):
                osd_id = pg.acting[shard]
                host_id = self.cluster.topology.osds[osd_id].host_id
                self.workers[host_id].corrupt_chunk(
                    pg.pgid, obj.name, shard, spec.corruption, rng
                )
                affected.append(osd_id)
            # Corrupted OSDs stay up (the fault is silent), so they are
            # not added to injected_osds — crash faults may still target
            # them, and the stripe guard above bounds combined damage.
            return sorted(affected)
        if spec.level == "byz_corrupt_data":
            pg, obj, shards, rng = self._byz_corrupt_victims(spec)
            state = ensure_byzantine(self.cluster)
            affected = []
            now = self.cluster.env.now
            for shard in sorted(shards):
                osd_id = pg.acting[shard]
                host_id = self.cluster.topology.osds[osd_id].host_id
                self.workers[host_id].byz_corrupt_chunk(
                    pg.pgid, obj.name, shard, osd_id, rng
                )
                state.add_corrupt(osd_id, pg.pgid, obj.name, shard, now)
                affected.append(osd_id)
            # Like honest corruption: the daemon stays up and the fault
            # is silent, so nothing joins injected_osds — the stripe
            # guard bounds combined damage instead.
            return sorted(affected)
        if spec.level == "byz_false_ack":
            pg, obj, shards, rng = self._byz_false_ack_victims(spec)
            state = ensure_byzantine(self.cluster)
            affected = []
            now = self.cluster.env.now
            for shard in sorted(shards):
                osd_id = pg.acting[shard]
                host_id = self.cluster.topology.osds[osd_id].host_id
                self.workers[host_id].byz_false_ack(
                    pg.pgid, obj.name, shard
                )
                state.add_false_ack(osd_id, pg.pgid, obj.name, shard, now)
                affected.append(osd_id)
            return sorted(affected)
        if spec.level == "byz_stale_map":
            liars = self._select_byz_liars(spec)
            state = ensure_byzantine(self.cluster)
            affected = []
            now = self.cluster.env.now
            # Capture the previous epoch once: every liar gossips the
            # same old map, as if they all missed the same incremental.
            stale_epoch = max(0, self.cluster.monitor.osdmap_epoch - 1)
            for osd_id in sorted(liars):
                host_id = self.cluster.topology.osds[osd_id].host_id
                self.workers[host_id].byz_stale_map(osd_id, stale_epoch)
                state.add_stale_map(osd_id, stale_epoch, now)
                affected.append(osd_id)
                # Misrouted ops make the liar's shards unreliable until
                # the monitor pushes a fresh map: budgeted like a flap.
                self.injected_osds.add(osd_id)
            return sorted(affected)
        # injected_osds is updated per target as each fault lands, not in
        # one batch after the loop: if a multi-target inject dies half-way
        # (bad explicit target, missing subsystem), the OSDs already taken
        # down must still count against the tolerance budget — otherwise a
        # later validate() under-counts live damage and can authorise a
        # fault combination that exceeds the code's guarantee.
        if spec.level == "slow_device":
            devices = self._select_slow_devices(spec)
            affected = []
            for osd_id in devices:
                host_id = self.cluster.topology.osds[osd_id].host_id
                self.workers[host_id].slow_device(osd_id, spec.factor)
                affected.append(osd_id)
                self.slowed_osds.add(osd_id)
            return sorted(affected)
        if spec.level == "node":
            hosts = self._select_hosts(spec)
            affected: List[int] = []
            for host_id in hosts:
                self.workers[host_id].shutdown_node()
                host_osds = self.cluster.topology.hosts[host_id].osd_ids
                affected.extend(host_osds)
                self.injected_osds |= set(host_osds)
        elif spec.level == "net_degrade":
            hosts = self._select_hosts(spec)
            degradation = spec.net_degradation()
            affected = []
            for host_id in hosts:
                self.workers[host_id].degrade_network(degradation)
                host_osds = self.cluster.topology.hosts[host_id].osd_ids
                affected.extend(host_osds)
                self.injected_osds |= set(host_osds)
        elif spec.level == "region_outage":
            regions = self._select_regions(spec)
            affected = []
            for region in regions:
                for host in sorted(
                    self.cluster.topology.hosts_in_region(region),
                    key=lambda h: h.host_id,
                ):
                    self.workers[host.host_id].shutdown_node()
                    affected.extend(host.osd_ids)
                    self.injected_osds |= set(host.osd_ids)
        elif spec.level == "correlated_crash":
            buckets = self._select_correlated_buckets(spec)
            affected = []
            for bucket in sorted(buckets):
                # The shared switch/PDU dies: every host in the bucket
                # goes down as one event, not a staggered sequence.
                hosts = sorted(
                    {
                        self.cluster.topology.osds[osd_id].host_id
                        for osd_id in self.cluster.topology.osds_in_bucket(
                            bucket, spec.domain
                        )
                    }
                )
                for host_id in hosts:
                    self.workers[host_id].shutdown_node()
                    host_osds = self.cluster.topology.hosts[host_id].osd_ids
                    affected.extend(host_osds)
                    self.injected_osds |= set(host_osds)
        elif spec.level == "wan_partition":
            regions = self._select_regions(spec)
            wan = self.cluster.topology.wan
            affected = []
            for region in regions:
                wan.partition_region(region)
                self.partitioned_regions.add(region)
                # Hosts behind a severed uplink stay up, but their
                # shards are unreachable for cross-region repair — they
                # count against the tolerance budget like a partition.
                for host in self.cluster.topology.hosts_in_region(region):
                    affected.extend(host.osd_ids)
                    self.injected_osds |= set(host.osd_ids)
        elif spec.level == "flap":
            devices = self._select_devices(spec)
            affected = []
            for osd_id in devices:
                host_id = self.cluster.topology.osds[osd_id].host_id
                # One seeded stream per target keeps flap phasing
                # deterministic and independent across OSDs.
                self.workers[host_id].start_flap(
                    osd_id, spec.flap_interval, self.seeds.stream(f"flap-{osd_id}")
                )
                affected.append(osd_id)
                self.injected_osds.add(osd_id)
        else:
            devices = self._select_devices(spec)
            affected = []
            for osd_id in devices:
                host_id = self.cluster.topology.osds[osd_id].host_id
                self.workers[host_id].remove_device(osd_id)
                affected.append(osd_id)
                self.injected_osds.add(osd_id)
        return sorted(affected)

    def restore_all(self) -> None:
        """Undo every injected fault via the owning workers.

        Idempotent and partial-failure safe: each worker only rolls back
        what it actually applied, and an OSD leaves ``injected_osds`` the
        moment its worker restored it — so a restore that raises half-way
        can simply be called again, and a double restore is a no-op.
        """
        wan = self.cluster.topology.wan
        if wan is not None:
            for region in sorted(self.partitioned_regions):
                wan.restore_region(region)
                # The uplink is whole again: its hosts' OSDs stop
                # counting against the budget (unless a worker-level
                # fault still holds them, which the loop below owns).
                for host in self.cluster.topology.hosts_in_region(region):
                    self.injected_osds -= set(host.osd_ids)
            self.partitioned_regions.clear()
        for worker in self.workers.values():
            worker.restore()
            self.injected_osds -= set(worker.host.osd_ids)
            self.slowed_osds -= set(worker.host.osd_ids)
        # Adversary-installed daemon state clears with the restart too: a
        # restored OSD re-fetches the osdmap, ending any stale-map lie
        # (counted as an epoch detection).  Data-plane lies — forged
        # checksums, false acks — survive, mirroring how worker.restore
        # never heals silent corruption; scrub and peering own those.
        byz = getattr(self.cluster, "byzantine", None)
        if byz is not None:
            byz.on_restore(self.cluster.env.now)
