"""EC-aware, topology-aware fault injection (§3.2).

The Fault Injector is *white-box*: it knows the pool's EC parameters and
failure domain from the experiment profile and refuses to inject more
than the guaranteed fault-tolerance capacity (n - k failures within the
failure domain), so every injected fault exercises EC recovery rather
than causing data loss.  It is *topology-aware*: concurrent device
failures can be forced onto the same storage node or spread across
different nodes — the Figure 2d axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..cluster.ceph import CephCluster
from ..cluster.scrub import CorruptionModel
from ..sim.rng import SeedSequence
from .worker import Worker

__all__ = [
    "Colocation",
    "CorruptionModel",
    "FaultSpec",
    "FaultToleranceError",
    "FaultInjector",
]

#: The fault levels the injector understands.
FAULT_LEVELS = ("node", "device", "corrupt")


class Colocation:
    """Placement constraint for concurrent device faults (Fig 2d x-axis)."""

    SAME_HOST = "same_host"
    DIFFERENT_HOSTS = "diff_hosts"
    ANY = "any"
    ALL = (SAME_HOST, DIFFERENT_HOSTS, ANY)


@dataclass(frozen=True)
class FaultSpec:
    """A fault-injection request.

    ``level`` is ``"node"`` (shut a host down), ``"device"`` (remove NVMe
    subsystems) or ``"corrupt"`` (silently damage stored chunks — found
    only by deep scrub).  ``count`` is how many targets; ``colocation``
    constrains device faults; ``corruption`` picks the damage model for
    corrupt-level faults; explicit ``targets`` (host ids for node faults,
    OSD ids for device faults, stripe shard indices for corrupt faults)
    override selection.
    """

    level: str = "node"
    count: int = 1
    colocation: str = Colocation.ANY
    targets: Optional[Sequence[int]] = None
    corruption: str = CorruptionModel.BIT_ROT

    def __post_init__(self):
        if self.level not in FAULT_LEVELS:
            raise ValueError(
                f"unknown fault level {self.level!r}; "
                f"allowed levels: {', '.join(FAULT_LEVELS)}"
            )
        if self.count < 1:
            raise ValueError(f"fault count must be >= 1, got {self.count}")
        if self.colocation not in Colocation.ALL:
            raise ValueError(
                f"unknown colocation {self.colocation!r}; "
                f"allowed colocations: {', '.join(Colocation.ALL)}"
            )
        if self.colocation == Colocation.SAME_HOST and self.level == "node":
            raise ValueError(
                "same-host colocation applies to device faults, "
                f"not level={self.level!r}"
            )
        if self.corruption not in CorruptionModel.ALL:
            raise ValueError(
                f"unknown corruption model {self.corruption!r}; "
                f"allowed models: {', '.join(CorruptionModel.ALL)}"
            )


class FaultToleranceError(ValueError):
    """The requested faults would exceed the code's guaranteed capacity."""


class FaultInjector:
    """Selects fault targets and applies them through the Workers."""

    def __init__(
        self,
        cluster: CephCluster,
        workers: Dict[int, Worker],
        seeds: Optional[SeedSequence] = None,
    ):
        self.cluster = cluster
        self.workers = workers
        self.seeds = seeds or SeedSequence(0)
        self.injected_osds: Set[int] = set()

    # -- white-box validation ---------------------------------------------------------

    def validate(self, spec: FaultSpec) -> None:
        """Refuse faults beyond n - k failures within the failure domain.

        Counts the *failure-domain buckets* the spec would take out, plus
        any already-injected ones, against the pool's tolerance m = n - k.
        """
        pool = self.cluster.pool
        tolerance = pool.code.fault_tolerance()
        if spec.level == "corrupt":
            if spec.count > tolerance:
                raise FaultToleranceError(
                    f"{spec.count} corrupted chunks in one stripe would "
                    f"exceed the guaranteed tolerance m={tolerance} of "
                    f"{pool.code.plugin_name}({pool.code.n},{pool.code.k})"
                )
            return
        domain = pool.failure_domain
        hit = {
            self.cluster.topology.bucket_of(osd_id, domain)
            for osd_id in self._osds_for(spec) | self.injected_osds
        }
        if len(hit) > tolerance:
            raise FaultToleranceError(
                f"{len(hit)} failed {domain} buckets would exceed the "
                f"guaranteed tolerance m={tolerance} of "
                f"{pool.code.plugin_name}({pool.code.n},{pool.code.k})"
            )
        # Crash-over-corruption guard, the converse of the stripe guard in
        # _corrupt_victims: each crashed bucket can take one more shard
        # from the stripe already carrying the most unrepaired silent
        # corruption, and the combined damage must stay guaranteed-
        # recoverable.
        corrupt = self.cluster.integrity.max_corrupt_per_stripe()
        if corrupt and len(hit) + corrupt > tolerance:
            raise FaultToleranceError(
                f"{len(hit)} failed {domain} buckets on top of {corrupt} "
                f"unrepaired corrupt chunks in one stripe would exceed the "
                f"guaranteed tolerance m={tolerance} of "
                f"{pool.code.plugin_name}({pool.code.n},{pool.code.k})"
            )

    def _osds_for(self, spec: FaultSpec) -> Set[int]:
        """OSDs a spec will take down (resolving target selection)."""
        if spec.level == "node":
            hosts = self._select_hosts(spec)
            out: Set[int] = set()
            for host_id in hosts:
                out |= set(self.cluster.topology.hosts[host_id].osd_ids)
            return out
        return set(self._select_devices(spec))

    # -- target selection ----------------------------------------------------------------

    def _healthy_data_osds(self) -> List[int]:
        """Candidate OSDs: hold chunks, still up, not already injected."""
        return [
            osd_id
            for osd_id in self.cluster.osds_with_data()
            if osd_id not in self.injected_osds
            and self.cluster.osds[osd_id].is_up()
        ]

    def _data_hosts(self) -> List[int]:
        """Hosts that store chunks (so faults actually trigger recovery)."""
        return sorted(
            {
                self.cluster.topology.osds[o].host_id
                for o in self._healthy_data_osds()
            }
        )

    def _select_hosts(self, spec: FaultSpec) -> List[int]:
        if spec.targets is not None:
            return list(spec.targets)[: spec.count]
        rng = self.seeds.stream("fault-hosts")
        candidates = self._data_hosts()
        if len(candidates) < spec.count:
            raise ValueError(
                f"only {len(candidates)} hosts hold data, need {spec.count}"
            )
        return rng.sample(candidates, spec.count)

    def _select_devices(self, spec: FaultSpec) -> List[int]:
        """Pick device-fault targets, EC-aware.

        Multi-device faults are chosen *within one placement group's
        acting set* whenever possible, so that "f concurrent failures"
        actually exercises f-erasure EC recovery on shared stripes rather
        than f unrelated single-failure recoveries — the systematic
        exploration §3.2 describes.  The colocation constraint (same
        host vs different hosts) is applied within the acting set.
        """
        if spec.targets is not None:
            return list(spec.targets)[: spec.count]
        rng = self.seeds.stream("fault-devices")
        healthy = set(self._healthy_data_osds())
        if spec.count > 1:
            chosen = self._co_occurring_targets(spec, healthy, rng)
            if chosen is not None:
                return chosen
        by_host: Dict[int, List[int]] = {}
        for osd_id in sorted(healthy):
            by_host.setdefault(
                self.cluster.topology.osds[osd_id].host_id, []
            ).append(osd_id)
        if spec.colocation == Colocation.SAME_HOST:
            hosts = [h for h, osds in by_host.items() if len(osds) >= spec.count]
            if not hosts:
                raise ValueError(
                    f"no host has {spec.count} data-bearing OSDs for a "
                    "same-host fault"
                )
            host = rng.choice(sorted(hosts))
            return rng.sample(by_host[host], spec.count)
        if spec.colocation == Colocation.DIFFERENT_HOSTS:
            hosts = sorted(by_host)
            if len(hosts) < spec.count:
                raise ValueError(
                    f"only {len(hosts)} data-bearing hosts, need {spec.count}"
                )
            chosen_hosts = rng.sample(hosts, spec.count)
            return [rng.choice(sorted(by_host[h])) for h in chosen_hosts]
        if len(healthy) < spec.count:
            raise ValueError(
                f"only {len(healthy)} data-bearing OSDs, need {spec.count}"
            )
        return rng.sample(sorted(healthy), spec.count)

    def _co_occurring_targets(self, spec: FaultSpec, healthy: Set[int], rng):
        """Targets from a single PG's acting set honouring colocation.

        Returns None when no acting set satisfies the constraint; the
        caller falls back to topology-only selection.
        """
        topology = self.cluster.topology
        candidates = []
        for pg in self.cluster.pool.pgs.values():
            if not pg.objects:
                continue
            usable = [o for o in pg.acting if o in healthy]
            if spec.colocation == Colocation.SAME_HOST:
                by_host: Dict[int, List[int]] = {}
                for osd_id in usable:
                    by_host.setdefault(topology.osds[osd_id].host_id, []).append(osd_id)
                for host in sorted(by_host):
                    if len(by_host[host]) >= spec.count:
                        candidates.append((pg.pg_id, by_host[host][: spec.count]))
                        break
            elif spec.colocation == Colocation.DIFFERENT_HOSTS:
                picked: List[int] = []
                seen_hosts: Set[int] = set()
                for osd_id in usable:
                    host = topology.osds[osd_id].host_id
                    if host not in seen_hosts:
                        picked.append(osd_id)
                        seen_hosts.add(host)
                    if len(picked) == spec.count:
                        candidates.append((pg.pg_id, picked))
                        break
            else:
                if len(usable) >= spec.count:
                    candidates.append((pg.pg_id, usable[: spec.count]))
        if not candidates:
            return None
        return rng.choice(sorted(candidates))[1]

    def _corrupt_victims(self, spec: FaultSpec):
        """Pick the stripe and shard set a corrupt-level fault damages.

        White-box stripe guard: unavailable shards (down OSDs), already
        corrupted shards and the new victims together must stay within
        the code's guaranteed tolerance — a corruption the code could not
        repair would be injected data loss, not a fault experiment.
        """
        pool = self.cluster.pool
        integrity = self.cluster.integrity
        if not integrity.config.enabled:
            raise ValueError(
                "corrupt-level faults need write-time checksums; "
                "enable IntegrityConfig(enabled=True) on the cluster"
            )
        populated = [pg for pg in pool.pgs.values() if pg.objects]
        if not populated:
            raise ValueError("no stored objects to corrupt")
        rng = self.seeds.stream("fault-corrupt")
        if spec.targets is not None:
            shards = list(spec.targets)[: spec.count]
            bad = [s for s in shards if not 0 <= s < pool.code.n]
            if bad:
                raise ValueError(
                    f"corrupt targets are stripe shard indices; {bad} "
                    f"outside [0, {pool.code.n})"
                )
            pg = populated[0]
            obj = pg.objects[0]
        else:
            pg = rng.choice(populated)
            obj = rng.choice(pg.objects)
            shards = rng.sample(range(pool.code.n), spec.count)
        tolerance = pool.code.fault_tolerance()
        unavailable = {
            s
            for s, osd_id in enumerate(pg.acting)
            if not self.cluster.osds[osd_id].is_up()
        }
        damaged = unavailable | integrity.corrupt_shards(pg.pgid, obj.name) | set(shards)
        if len(damaged) > tolerance:
            raise FaultToleranceError(
                f"{len(damaged)} damaged chunks in stripe {pg.pgid}/{obj.name} "
                f"would exceed the guaranteed tolerance m={tolerance} of "
                f"{pool.code.plugin_name}({pool.code.n},{pool.code.k})"
            )
        return pg, obj, shards, rng

    # -- application --------------------------------------------------------------------

    def inject(self, spec: FaultSpec) -> List[int]:
        """Validate and apply a fault; returns the affected OSD ids."""
        self.validate(spec)
        if spec.level == "corrupt":
            pg, obj, shards, rng = self._corrupt_victims(spec)
            affected = []
            for shard in sorted(shards):
                osd_id = pg.acting[shard]
                host_id = self.cluster.topology.osds[osd_id].host_id
                self.workers[host_id].corrupt_chunk(
                    pg.pgid, obj.name, shard, spec.corruption, rng
                )
                affected.append(osd_id)
            # Corrupted OSDs stay up (the fault is silent), so they are
            # not added to injected_osds — crash faults may still target
            # them, and the stripe guard above bounds combined damage.
            return sorted(affected)
        # injected_osds is updated per target as each fault lands, not in
        # one batch after the loop: if a multi-target inject dies half-way
        # (bad explicit target, missing subsystem), the OSDs already taken
        # down must still count against the tolerance budget — otherwise a
        # later validate() under-counts live damage and can authorise a
        # fault combination that exceeds the code's guarantee.
        if spec.level == "node":
            hosts = self._select_hosts(spec)
            affected: List[int] = []
            for host_id in hosts:
                self.workers[host_id].shutdown_node()
                host_osds = self.cluster.topology.hosts[host_id].osd_ids
                affected.extend(host_osds)
                self.injected_osds |= set(host_osds)
        else:
            devices = self._select_devices(spec)
            affected = []
            for osd_id in devices:
                host_id = self.cluster.topology.osds[osd_id].host_id
                self.workers[host_id].remove_device(osd_id)
                affected.append(osd_id)
                self.injected_osds.add(osd_id)
        return sorted(affected)

    def restore_all(self) -> None:
        """Undo every injected fault via the owning workers.

        Idempotent and partial-failure safe: each worker only rolls back
        what it actually applied, and an OSD leaves ``injected_osds`` the
        moment its worker restored it — so a restore that raises half-way
        can simply be called again, and a double restore is a no-op.
        """
        for worker in self.workers.values():
            worker.restore()
            self.injected_osds -= set(worker.host.osd_ids)
