"""Gray-failure experiments: degrade the DSS, measure what clients pay.

Crash experiments (:func:`~repro.core.experiment.run_experiment`) ask
"how long until redundancy is restored?".  Gray experiments ask the
*other* question the paper's fault axis leaves open: what do slow disks,
flaky networks, and flapping daemons cost while the cluster is neither
healthy nor failed — and how much do the defenses (flap dampening, op
timeouts, retry/backoff, hedged reads) buy back?

:func:`run_gray_experiment` drives one cycle: ingest the workload, warm
up, inject the gray (and/or crash) faults, run an open-loop client read
load through the degraded window, restore, and settle until health
converges.  The returned :class:`GrayOutcome` carries client latency
samples, defense counters, monitor dampening counters, and a canonical
:meth:`~GrayOutcome.digest` that is byte-identical across same-seed runs
— the determinism contract the examples assert.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..cluster.client import (
    WRITE_STAT_KEYS,
    ClientLoadGenerator,
    ClientOpStats,
    RadosClient,
    ReadStats,
    WriteStats,
)
from ..cluster.health import HealthStatus, check_health
from ..cluster.recovery import (
    CASCADE_STAT_KEYS,
    DELTA_STAT_KEYS,
    GEO_STAT_KEYS,
    RecoveryStats,
)
from ..workload.generator import Workload
from .controller import Controller
from .fault_injector import FaultSpec
from .logger import LogCollector
from .profile import ExperimentProfile
from .timeline import FlapTimeline, TimelineError, build_flap_timeline

__all__ = ["GrayOutcome", "run_gray_experiment"]

#: Sim-seconds between settle-phase polls of the convergence predicate.
SETTLE_POLL = 25.0


@dataclass
class GrayOutcome:
    """Everything one gray-failure experiment produced."""

    read_stats: ReadStats
    client_stats: ClientOpStats
    recovery_stats: RecoveryStats
    #: OSDs the injected faults made (intermittently) unavailable.
    injected_osds: List[int]
    #: OSDs whose devices were merely slowed (never counted as damage).
    slowed_osds: List[int]
    #: Monitor-side dampening counters over the whole run.
    markdowns: int
    pins: int
    health: str
    converged: bool
    finished_at: float
    collector: LogCollector
    flap_timeline: Optional[FlapTimeline] = None
    write_stats: Optional[WriteStats] = None

    def digest(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable snapshot (the determinism contract).

        Write-path keys appear only when the run actually wrote: the
        new counters are pruned at zero and the write-sample section is
        omitted entirely, so read-only digests stay byte-identical to
        the pre-write-path model.  The geo and cascade recovery
        counters get the same treatment (gray runs never exercise
        cross-region repair or risk accounting, so they are always
        zero here) — the same pruning the chaos engine's outcome
        digest applies.
        """
        client = asdict(self.client_stats)
        for key in WRITE_STAT_KEYS:
            if client.get(key) == 0:
                del client[key]
        recovery = asdict(self.recovery_stats)
        for key in DELTA_STAT_KEYS + GEO_STAT_KEYS + CASCADE_STAT_KEYS:
            if recovery.get(key) == 0:
                del recovery[key]
        payload = {
            "finished_at": self.finished_at,
            "health": str(self.health),
            "converged": self.converged,
            "injected_osds": list(self.injected_osds),
            "slowed_osds": list(self.slowed_osds),
            "markdowns": self.markdowns,
            "pins": self.pins,
            "client": client,
            "recovery": recovery,
            "read_failures": self.read_stats.failures,
            "samples": [
                [s.object_name, s.issued_at, s.latency, s.degraded,
                 s.bytes_read, s.attempts, s.hedged]
                for s in self.read_stats.samples
            ],
        }
        writes = self.write_stats
        if writes is not None and (writes.samples or writes.failures):
            payload["write_failures"] = writes.failures
            payload["write_samples"] = [
                [s.object_name, s.issued_at, s.latency, s.kind, s.degraded,
                 s.bytes_written, s.attempts]
                for s in writes.samples
            ]
        return payload

    def digest_json(self) -> str:
        """The digest as canonical JSON — byte-comparable across runs."""
        return json.dumps(
            self.digest(), sort_keys=True, separators=(",", ":"),
            ensure_ascii=True,
        )


def run_gray_experiment(
    profile: ExperimentProfile,
    workload: Workload,
    faults: Sequence[FaultSpec],
    seed: int = 0,
    warmup: float = 50.0,
    fault_duration: float = 600.0,
    load_interval: float = 2.0,
    settle_time: float = 20_000.0,
    write_fraction: float = 0.0,
    rmw_fraction: float = 0.5,
) -> GrayOutcome:
    """Run one gray-failure cycle and return its outcome.

    The client load runs open-loop for ``fault_duration`` seconds while
    the faults are active, then every fault is restored and the cluster
    given ``settle_time`` to converge (pins expire, flapped daemons are
    marked back up, recovery drains).  Defenses are configured through
    ``profile.ceph`` (``client_op_timeout``, ``client_hedge_delay``,
    retry knobs); all of them default off.

    ``write_fraction`` of client ops are writes (``rmw_fraction`` of
    those partial-stripe RMWs, the rest full overwrites); at the default
    0.0 the load is pure reads and the run is byte-identical to the
    read-only model.
    """
    if fault_duration <= 0:
        raise ValueError("fault_duration must be positive")
    controller = Controller(profile, seed=seed)
    env = controller.env
    cluster = controller.cluster
    coordinator = controller.coordinator

    coordinator.ingest_workload(workload)
    client = RadosClient(cluster, seeds=controller.seeds)
    load = ClientLoadGenerator(
        client, interval=load_interval, seeds=controller.seeds,
        write_fraction=write_fraction, rmw_fraction=rmw_fraction,
    )

    env.run(until=env.now + warmup)
    injected: List[int] = []
    for spec in faults:
        injected.extend(controller.fault_injector.inject(spec))
    slowed = sorted(controller.fault_injector.slowed_osds)

    load_proc = load.run_for(fault_duration)
    env.run(until=env.now + fault_duration)
    controller.fault_injector.restore_all()
    # Drain in-flight reads (their retries may outlive the fault window).
    env.run_until_process(load_proc)

    deadline = env.now + settle_time
    converged = _converged(cluster)
    while not converged and env.now < deadline:
        env.run(until=min(env.now + SETTLE_POLL, deadline))
        converged = _converged(cluster)

    for logger in coordinator.loggers:
        logger.flush()
    coordinator.collector.collect()
    flap_timeline: Optional[FlapTimeline] = None
    try:
        flap_timeline = build_flap_timeline(coordinator.collector)
    except TimelineError:
        pass

    return GrayOutcome(
        read_stats=load.stats,
        client_stats=client.stats,
        recovery_stats=cluster.recovery.stats,
        injected_osds=sorted(injected),
        slowed_osds=slowed,
        markdowns=cluster.monitor.markdowns_total,
        pins=cluster.monitor.pins_total,
        health=str(check_health(cluster).status),
        converged=converged,
        finished_at=env.now,
        collector=coordinator.collector,
        flap_timeline=flap_timeline,
        write_stats=load.write_stats,
    )


def _converged(cluster) -> bool:
    """Same convergence bar as the chaos engine: everything healed."""
    if not all(osd.is_up() for osd in cluster.osds.values()):
        return False
    if cluster.monitor.out_osds:
        return False
    if cluster.monitor.active_pins():
        return False
    if not cluster.recovery.idle:
        return False
    # Staleness with no down->up trigger (an OSD restored within the
    # heartbeat grace never went down in the monitor's eyes) is caught
    # here: kick delta recovery for any dirty pg_log before judging.
    if cluster.recovery.kick_stale():
        return False
    return check_health(cluster).status == HealthStatus.OK
