"""Experiment profiles — the EC Manager of the paper's Controller (§3).

An :class:`ExperimentProfile` captures "all EC-related configurations in
an experimental profile": the EC plugin and its parameters, the basic
encoding unit (``stripe_unit``), pool settings (``pg_num``, failure
domain), and the system features that affect EC operations (backend,
caching scheme, device class, interface) — i.e., one row through Table 1.
Profiles validate against the same option space Table 1 lists and know
how to instantiate their erasure code and cache configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict

from ..cluster.bluestore import CACHE_SCHEMES, CacheConfig
from ..cluster.osd import CephConfig
from ..cluster.scrub import IntegrityConfig, ScrubConfig
from ..cluster.topology import FailureDomain
from ..ec.base import ErasureCode, available_plugins, create_plugin
from ..geo.rules import RegionRule
from ..geo.wan import DEFAULT_WAN, WanSpec

__all__ = ["ExperimentProfile", "PAPER_RS_PROFILE", "PAPER_CLAY_PROFILE"]

_BACKENDS = ("bluestore", "filestore")
_INTERFACES = ("rados", "rgw", "rbd", "cephfs")
_DEVICE_CLASSES = ("ssd", "hdd")

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class ExperimentProfile:
    """One complete EC experiment configuration (Table 1 coverage).

    ``ec_params`` is passed verbatim to the plugin: RS takes ``k``, ``m``
    and optionally ``technique``; Clay takes ``k``, ``m``, ``d``; LRC
    takes ``k``, ``l``, ``r``; SHEC takes ``k``, ``m``, ``l``.
    """

    name: str = "default"
    # Ceph storage backend + cache (Table 1 rows 1-2).
    backend: str = "bluestore"
    cache_scheme: str = "autotune"
    # Interface (row 3) — recorded for the profile; the object workload
    # model is interface-agnostic.
    interface: str = "rados"
    # Pool configuration (row 4).
    pg_num: int = 256
    # EC plugin / technique / parameters (rows 5, 6, 9).
    ec_plugin: str = "jerasure"
    ec_params: Dict[str, Any] = field(
        default_factory=lambda: {"k": 9, "m": 3}
    )
    #: Default encoding unit.  The paper sweeps 4KB/4MB/64MB in Fig 2c;
    #: its other panels are only mutually consistent with a default in
    #: the megabyte range (Clay at 4KB is 4.26x slower in Fig 2c yet on
    #: par with RS in Figs 2a/2b), so the baseline profile uses 4 MB.
    stripe_unit: int = 4 * MB
    # Failure domain and device class (rows 7-8).
    failure_domain: str = FailureDomain.HOST
    device_class: str = "ssd"
    # Daemon/monitor tunables.
    ceph: CephConfig = field(default_factory=CephConfig)
    # Cluster shape (§4.1: 30 OSD hosts x 2 OSDs; 3 for failure modes).
    num_hosts: int = 30
    osds_per_host: int = 2
    num_racks: int = 1
    # Stretch-cluster shape.  ``num_regions=1`` is the classic single
    # site: no WAN fabric is built and every digest stays byte-identical
    # to pre-geo profiles.  With more regions hosts are dealt round-robin
    # across regions and inter-region transfers ride a WAN uplink.
    num_regions: int = 1
    wan_egress_bandwidth: float = DEFAULT_WAN.egress_bandwidth
    wan_ingress_bandwidth: float = DEFAULT_WAN.ingress_bandwidth
    wan_latency: float = DEFAULT_WAN.latency
    wan_egress_cost_per_gib: float = DEFAULT_WAN.egress_cost_per_gib
    # Scrub & integrity subsystem (the silent-corruption axis).  A zero
    # ``scrub_interval`` disables scrubbing *and* write-time checksums,
    # keeping the baseline experiments byte-for-byte unperturbed.
    scrub_interval: float = 0.0
    scrub_pgs_per_batch: int = 4
    csum_block_size: int = 4096
    integrity_data_plane: bool = False

    def __post_init__(self):
        if self.backend not in _BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; options: {_BACKENDS}")
        if self.interface not in _INTERFACES:
            raise ValueError(
                f"unknown interface {self.interface!r}; options: {_INTERFACES}"
            )
        if self.device_class not in _DEVICE_CLASSES:
            raise ValueError(f"unknown device class {self.device_class!r}")
        if self.failure_domain not in FailureDomain.ALL:
            raise ValueError(f"unknown failure domain {self.failure_domain!r}")
        if self.cache_scheme not in CACHE_SCHEMES:
            raise ValueError(
                f"unknown cache scheme {self.cache_scheme!r}; "
                f"options: {sorted(CACHE_SCHEMES)}"
            )
        if self.ec_plugin not in available_plugins():
            raise ValueError(
                f"unknown EC plugin {self.ec_plugin!r}; "
                f"options: {available_plugins()}"
            )
        if self.pg_num < 1:
            raise ValueError("pg_num must be >= 1")
        if self.stripe_unit <= 0:
            raise ValueError("stripe_unit must be positive")
        if self.num_hosts < 1 or self.osds_per_host < 1:
            raise ValueError("cluster shape must be positive")
        if not 1 <= self.num_racks <= self.num_hosts:
            raise ValueError("num_racks must be in 1..num_hosts")
        if not 1 <= self.num_regions <= self.num_hosts:
            raise ValueError("num_regions must be in 1..num_hosts")
        if self.wan_egress_bandwidth <= 0 or self.wan_ingress_bandwidth <= 0:
            raise ValueError("WAN bandwidths must be positive")
        if self.wan_latency < 0 or self.wan_egress_cost_per_gib < 0:
            raise ValueError("WAN latency and egress cost must be >= 0")
        if self.scrub_interval < 0:
            raise ValueError(
                f"scrub_interval must be >= 0 (0 disables scrubbing), "
                f"got {self.scrub_interval}"
            )
        if self.scrub_pgs_per_batch < 1:
            raise ValueError(
                f"scrub_pgs_per_batch must be >= 1, got {self.scrub_pgs_per_batch}"
            )
        if self.csum_block_size <= 0:
            raise ValueError(
                f"csum_block_size must be positive, got {self.csum_block_size}"
            )
        # Fail early on bad EC parameters rather than at cluster build.
        self.create_code()

    # -- factories ----------------------------------------------------------------

    def create_code(self) -> ErasureCode:
        """Instantiate the profile's erasure code."""
        return create_plugin(self.ec_plugin, **self.ec_params)

    def disk_spec(self):
        """The device model matching the profile's device class."""
        from ..cluster.devices import GP_SSD, NEARLINE_HDD

        return NEARLINE_HDD if self.device_class == "hdd" else GP_SSD

    def cache_config(self) -> CacheConfig:
        """Resolve the cache scheme (FileStore gets no BlueStore cache:
        modelled as a fixed minimal split, documented in DESIGN.md)."""
        if self.backend == "filestore":
            return CacheConfig("filestore-pagecache", 0.10, 0.10, 0.80)
        return CACHE_SCHEMES[self.cache_scheme]

    def integrity_config(self) -> IntegrityConfig:
        """Write-time checksum settings implied by the scrub knobs."""
        return IntegrityConfig(
            enabled=self.scrub_interval > 0 or self.integrity_data_plane,
            data_plane=self.integrity_data_plane,
            csum_block_size=self.csum_block_size,
        )

    def scrub_config(self) -> ScrubConfig:
        """Scrub scheduler settings (disabled at ``scrub_interval=0``)."""
        if self.scrub_interval <= 0:
            return ScrubConfig(enabled=False)
        return ScrubConfig(
            enabled=True,
            interval=self.scrub_interval,
            pgs_per_batch=self.scrub_pgs_per_batch,
        )

    def wan_spec(self) -> "WanSpec | None":
        """The profile's WAN link model (None for single-region runs)."""
        if self.num_regions <= 1:
            return None
        return WanSpec(
            name=f"wan-{self.name}",
            egress_bandwidth=self.wan_egress_bandwidth,
            ingress_bandwidth=self.wan_ingress_bandwidth,
            latency=self.wan_latency,
            egress_cost_per_gib=self.wan_egress_cost_per_gib,
        )

    def region_rule(self) -> "RegionRule | None":
        """Region-spanning placement contract for stretch clusters.

        Every region gets a shard share, capped at ``ceil(n / regions)``
        per region so no single region outage can strand more shards
        than the code's fault tolerance covers (when the EC geometry is
        chosen accordingly — the profile does not enforce that pairing).
        """
        if self.num_regions <= 1:
            return None
        return RegionRule(spread=self.num_regions)

    def with_overrides(self, **changes) -> "ExperimentProfile":
        """A copy of the profile with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Human-readable one-liner used in logs and reports."""
        params = ",".join(f"{k}={v}" for k, v in sorted(self.ec_params.items()))
        return (
            f"{self.name}: {self.ec_plugin}({params}) "
            f"stripe_unit={self.stripe_unit} pg_num={self.pg_num} "
            f"cache={self.cache_scheme} domain={self.failure_domain}"
        )


#: The paper's two §4.1 baselines: RS(12,9) and Clay(12,9,11).
PAPER_RS_PROFILE = ExperimentProfile(
    name="rs-12-9", ec_plugin="jerasure", ec_params={"k": 9, "m": 3}
)
PAPER_CLAY_PROFILE = ExperimentProfile(
    name="clay-12-9-11", ec_plugin="clay", ec_params={"k": 9, "m": 3, "d": 11}
)
