"""Byzantine OSD faults: daemons that *lie* instead of dying.

Three fault levels, each modelled after a real Ceph failure family and
each caught by a different existing detection path:

``byz_corrupt_data``
    Chunk bytes rewritten *with* a matching recomputed local checksum
    (crc32c forged alongside the data), so BlueStore-style local verify
    passes.  Only the deep-scrub EC-decode cross-check — reconstructing
    the shard from its peers and comparing — reveals the lie.

``byz_stale_map``
    An OSD gossips an old osdmap epoch in its heartbeats.  The monitor's
    epoch-mismatch rejection detects it on the next delivered heartbeat
    and pushes a fresh map, ending the lie.

``byz_false_ack``
    A write was acked but never durably applied: the OSD's pg_log claims
    a version its store does not hold.  Peering (or the scrub version
    cross-check) compares claimed versions and flags the divergent
    shard, which then heals through normal log-based delta recovery.

All three are **white-box guarded**: a lying shard counts against the
code's per-stripe tolerance ``m`` exactly like a crashed or corrupted
one, so durability claims stay provable while the adversary is active.
The ``byzantine-containment`` chaos invariant asserts the contract:
zero wrong reads served before detection, and every injected lie
eventually detected (with time-to-detection recorded in the digest).

``ByzantineState`` is attached lazily (``ensure_byzantine``) so that
clusters which never see a byz fault carry no new state and produce
byte-identical outcome digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

BYZ_LEVELS = ("byz_corrupt_data", "byz_stale_map", "byz_false_ack")

#: detection mechanisms, in the order they appear in digests
DETECTED_BY = ("scrub", "peering", "epoch")


@dataclass
class ByzFaultRecord:
    """One injected lie and (eventually) its detection."""

    level: str
    osd_id: int
    injected_at: float
    pgid: str = ""
    object_name: str = ""
    shard: int = -1
    detected_at: Optional[float] = None
    detected_by: Optional[str] = None

    @property
    def detected(self) -> bool:
        return self.detected_at is not None

    def mark_detected(self, at: float, by: str) -> None:
        if self.detected_at is None:
            self.detected_at = at
            self.detected_by = by


class ByzantineState:
    """Book-keeping for every active and historical Byzantine lie.

    Lives on ``cluster.byzantine`` (``None`` until the first byz fault
    is injected).  The monitor, scrub manager, and recovery manager each
    hold a duck-typed ``.byzantine`` reference so their detection hooks
    stay one ``is not None`` check away from free.
    """

    def __init__(self) -> None:
        self.records: List[ByzFaultRecord] = []
        # osd_id -> claimed (stale) epoch, while the lie is active
        self.stale_epochs: Dict[int, int] = {}
        # (pgid, name) -> shard -> records, while the false ack is
        # undetected; detection hands accounting over to pg_log staleness.
        # A list per shard: re-injecting on the same shard is the same
        # lie continued, and detection exposes every record at once.
        self.false_acks: Dict[
            Tuple[str, str], Dict[int, List[ByzFaultRecord]]
        ] = {}
        # (pgid, name, shard) -> records for undetected forged-csum chunks
        self._corrupt: Dict[Tuple[str, str, int], List[ByzFaultRecord]] = {}
        self.wrong_reads_served = 0
        self.epoch_rejections = 0
        self.detections: Dict[str, int] = {by: 0 for by in DETECTED_BY}

    # -- injection ------------------------------------------------------------

    def add_corrupt(self, osd_id: int, pgid: str, name: str, shard: int,
                    at: float) -> ByzFaultRecord:
        record = ByzFaultRecord("byz_corrupt_data", osd_id, at,
                                pgid=pgid, object_name=name, shard=shard)
        self.records.append(record)
        self._corrupt.setdefault((pgid, name, shard), []).append(record)
        return record

    def add_stale_map(self, osd_id: int, epoch: int,
                      at: float) -> ByzFaultRecord:
        record = ByzFaultRecord("byz_stale_map", osd_id, at)
        self.records.append(record)
        self.stale_epochs[osd_id] = epoch
        return record

    def add_false_ack(self, osd_id: int, pgid: str, name: str, shard: int,
                      at: float) -> ByzFaultRecord:
        record = ByzFaultRecord("byz_false_ack", osd_id, at,
                                pgid=pgid, object_name=name, shard=shard)
        self.records.append(record)
        shards = self.false_acks.setdefault((pgid, name), {})
        shards.setdefault(shard, []).append(record)
        return record

    # -- queries --------------------------------------------------------------

    def gossiping_stale(self, osd_id: int) -> bool:
        return osd_id in self.stale_epochs

    def claimed_epoch(self, osd_id: int) -> Optional[int]:
        return self.stale_epochs.get(osd_id)

    def damaged_shards(self, pgid: str, name: str) -> Set[int]:
        """Shards of (pgid, name) holding *undetected* false-ack damage.

        Forged-checksum corruption is deliberately excluded: the
        integrity store already counts those shards in ``_corrupted``,
        so unioning them here would double-count against tolerance.
        """
        return set(self.false_acks.get((pgid, name), ()))

    def false_ack_items(self) -> Iterator[Tuple[str, str, Set[int]]]:
        for (pgid, name), shards in self.false_acks.items():
            yield pgid, name, set(shards)

    def lying_shards(self, pgid: str, name: str) -> Set[int]:
        """All undetected lying shards for one object (any byz level)."""
        shards = set(self.false_acks.get((pgid, name), ()))
        for (r_pgid, r_name, shard), _ in self._corrupt.items():
            if r_pgid == pgid and r_name == name:
                shards.add(shard)
        return shards

    def corrupt_items(self) -> Iterator[Tuple[str, str, int, ByzFaultRecord]]:
        for (pgid, name, shard), records in list(self._corrupt.items()):
            yield pgid, name, shard, records[-1]

    # -- detection ------------------------------------------------------------

    def on_epoch_rejection(self, osd_id: int, now: float) -> None:
        """Monitor saw a stale epoch in a heartbeat and pushed a fresh map."""
        if osd_id not in self.stale_epochs:
            return
        del self.stale_epochs[osd_id]
        self.epoch_rejections += 1
        for record in self.records:
            if (record.level == "byz_stale_map" and record.osd_id == osd_id
                    and not record.detected):
                record.mark_detected(now, "epoch")
                self.detections["epoch"] += 1

    def detect_corrupt(self, pgid: str, name: str, shard: int, now: float,
                       by: str = "scrub") -> None:
        for record in self._corrupt.pop((pgid, name, shard), ()):
            if not record.detected:
                record.mark_detected(now, by)
                self.detections[by] += 1

    def reveal_false_acks(self, pg, now: float, by: str) -> int:
        """Version cross-check over one PG: every undetected false ack on
        it becomes ordinary pg_log staleness (healed by delta recovery)."""
        revealed = 0
        for (pgid, name) in [key for key in self.false_acks
                             if key[0] == pg.pgid]:
            shards = self.false_acks.pop((pgid, name))
            for shard, records in shards.items():
                for record in records:
                    record.mark_detected(now, by)
                    self.detections[by] += 1
                if pg.log is not None:
                    pg.log.note_divergent(name, shard)
                revealed += 1
        return revealed

    def note_read(self, pgid: str, name: str, shards, now: float) -> None:
        """A client read was served from ``shards``; any overlap with an
        undetected lying shard is a wrong read (the containment breach)."""
        if set(shards) & self.lying_shards(pgid, name):
            self.wrong_reads_served += 1

    # -- lifecycle ------------------------------------------------------------

    def on_restore(self, now: float) -> None:
        """Adversary daemons restarted: re-fetching the osdmap ends every
        stale-map lie (detected via the epoch path).  Data-plane lies
        (forged csums, false acks) persist until scrub/peering finds
        them, mirroring how ``Worker.restore`` never heals corruption.
        Idempotent."""
        for osd_id in list(self.stale_epochs):
            self.on_epoch_rejection(osd_id, now)

    def quiescent(self) -> bool:
        return not self.stale_epochs and all(
            record.detected for record in self.records
        )

    # -- digest ---------------------------------------------------------------

    def digest_section(self) -> dict:
        return {
            "records": [
                {
                    "level": record.level,
                    "osd": record.osd_id,
                    "pgid": record.pgid,
                    "object": record.object_name,
                    "shard": record.shard,
                    "injected_at": record.injected_at,
                    "detected_at": record.detected_at,
                    "detected_by": record.detected_by,
                }
                for record in self.records
            ],
            "wrong_reads_served": self.wrong_reads_served,
            "epoch_rejections": self.epoch_rejections,
            "detections": dict(self.detections),
        }


def ensure_byzantine(cluster) -> ByzantineState:
    """Attach (once) and return the cluster's ByzantineState.

    Also plants the duck-typed references the detection hooks poll, so
    monitor/scrub/recovery never import this module.
    """
    state = getattr(cluster, "byzantine", None)
    if state is None:
        state = ByzantineState()
        cluster.byzantine = state
        cluster.monitor.byzantine = state
        cluster.recovery.byzantine = state
        cluster.scrub.byzantine = state
    return state
