"""Write-amplification measurement and estimation (§4.4).

Two sides of Table 3 live here:

* :func:`measure_wa` — the *Actual WA Factor*: OSD-level storage usage
  (allocations + metadata, straight from the BlueStore accounting)
  divided by the client write volume.
* :func:`estimate_wa` — the paper's estimation formula built on the
  division-and-padding policy::

      S_chunk = S_unit * ceil(S_object / (k * S_unit))
      WA      = (n * S_chunk + S_meta) / S_object

  which lower-bounds the actual WA more tightly than the theoretical
  n/k.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cluster.ceph import CephCluster

__all__ = [
    "WaReport",
    "theoretical_wa",
    "chunk_stored_size",
    "estimate_wa",
    "measure_wa",
    "overwrite_amplification",
]


@dataclass(frozen=True)
class WaReport:
    """One WA measurement: the Table 3 row plus its inputs."""

    code_label: str
    n: int
    k: int
    stripe_unit: int
    workload_bytes: int
    used_bytes: int

    @property
    def theoretical(self) -> float:
        """n/k, the factor "widely used for calculating EC storage overhead"."""
        return self.n / self.k

    @property
    def actual(self) -> float:
        """The Actual WA Factor: OSD usage / client write volume."""
        if self.workload_bytes == 0:
            return 0.0
        return self.used_bytes / self.workload_bytes

    @property
    def excess_percent(self) -> float:
        """The Table 3 "Diff. %": how far actual exceeds theoretical."""
        return (self.actual / self.theoretical - 1.0) * 100.0


def theoretical_wa(n: int, k: int) -> float:
    """The theoretical amplification factor n/k."""
    if not 0 < k < n:
        raise ValueError(f"need 0 < k < n, got k={k}, n={n}")
    return n / k


def chunk_stored_size(object_size: int, k: int, stripe_unit: int) -> int:
    """The paper's S_chunk = S_unit * ceil(S_object / (k * S_unit))."""
    if object_size < 0 or k < 1 or stripe_unit < 1:
        raise ValueError("invalid geometry")
    return stripe_unit * max(1, math.ceil(object_size / (k * stripe_unit)))


def estimate_wa(
    object_size: int,
    n: int,
    k: int,
    stripe_unit: int,
    meta_bytes: int = 0,
) -> float:
    """The paper's WA estimate (n * S_chunk + S_meta) / S_object.

    With ``meta_bytes`` unknown (the common case — "the value of S_meta
    may not be readily available"), the result is a lower bound on the
    actual WA that is still tighter than n/k.
    """
    if not 0 < k < n:
        raise ValueError(f"need 0 < k < n, got k={k}, n={n}")
    if object_size <= 0:
        raise ValueError("object_size must be positive")
    if meta_bytes < 0:
        raise ValueError("meta_bytes must be non-negative")
    s_chunk = chunk_stored_size(object_size, k, stripe_unit)
    return (n * s_chunk + meta_bytes) / object_size


def overwrite_amplification(cluster: CephCluster) -> float:
    """Device bytes rewritten per logical overwrite byte.

    Overwrites are ledgered separately from ingest (they change no
    allocation, so they are excluded from the conservation identity);
    this is their amplification factor.  A full-stripe overwrite pays
    ~n/k like ingest; a partial-stripe RMW of one stripe unit rewrites
    the unit plus every parity unit, amplifying by ~(1 + m).  Returns
    0.0 when the workload never overwrote anything.
    """
    ledger = cluster.ledger
    if ledger.overwrite_client_bytes == 0:
        return 0.0
    return ledger.overwrite_stored_bytes / ledger.overwrite_client_bytes


def measure_wa(cluster: CephCluster, workload_bytes: int, label: str = "") -> WaReport:
    """Measure the Actual WA Factor on a cluster after workload ingest.

    Reads the OSD-level usage (the sum of every OSD's allocations and
    metadata) — the same measurement point as the paper's Table 3.
    """
    if workload_bytes < 0:
        raise ValueError("workload_bytes must be non-negative")
    code = cluster.pool.code
    return WaReport(
        code_label=label or f"{code.plugin_name}({code.n},{code.k})",
        n=code.n,
        k=code.k,
        stripe_unit=cluster.pool.stripe_unit,
        workload_bytes=workload_bytes,
        used_bytes=cluster.used_bytes_total(),
    )
