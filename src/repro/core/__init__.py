"""ECFault — the paper's framework: Controller, Workers, Loggers.

The public experiment API most users want is
:func:`~repro.core.experiment.run_experiment` plus
:class:`~repro.core.profile.ExperimentProfile` and
:class:`~repro.core.fault_injector.FaultSpec`.
"""

from .controller import Controller
from .coordinator import Coordinator, ExperimentOutcome, ExperimentTimeout
from .experiment import RepeatedResult, repeat_experiment, run_experiment
from .fault_injector import (
    FAULT_LEVELS,
    GRAY_LEVELS,
    Colocation,
    CorruptionModel,
    FaultInjector,
    FaultSpec,
    FaultToleranceError,
)
from .gray import GrayOutcome, run_gray_experiment
from .logbus import BusMessage, LogBus
from .logger import ClassifiedRecord, LogCollector, NodeLogger, classify
from .profile import PAPER_CLAY_PROFILE, PAPER_RS_PROFILE, ExperimentProfile
from .report import Series, format_grouped_bars, format_table, normalise
from .sweep import SweepRunner, SweepSpec, SweepResult, run_cell
from .timeline import (
    FlapTimeline,
    RecoveryTimeline,
    ScrubTimeline,
    TimelineError,
    build_flap_timeline,
    build_scrub_timeline,
    build_timeline,
)
from .trace import (
    Anomaly,
    PgSpan,
    export_logs_jsonl,
    export_timeline_csv,
    find_anomalies,
    pg_recovery_spans,
)
from .wa import WaReport, chunk_stored_size, estimate_wa, measure_wa, theoretical_wa
from .worker import Worker, deploy_workers

__all__ = [
    "Controller",
    "Coordinator",
    "ExperimentOutcome",
    "ExperimentTimeout",
    "RepeatedResult",
    "repeat_experiment",
    "run_experiment",
    "FAULT_LEVELS",
    "GRAY_LEVELS",
    "Colocation",
    "CorruptionModel",
    "FaultInjector",
    "FaultSpec",
    "FaultToleranceError",
    "GrayOutcome",
    "run_gray_experiment",
    "BusMessage",
    "LogBus",
    "ClassifiedRecord",
    "LogCollector",
    "NodeLogger",
    "classify",
    "PAPER_CLAY_PROFILE",
    "PAPER_RS_PROFILE",
    "ExperimentProfile",
    "SweepRunner",
    "run_cell",
    "SweepSpec",
    "SweepResult",
    "Series",
    "format_grouped_bars",
    "format_table",
    "normalise",
    "Anomaly",
    "PgSpan",
    "export_logs_jsonl",
    "export_timeline_csv",
    "find_anomalies",
    "pg_recovery_spans",
    "FlapTimeline",
    "RecoveryTimeline",
    "ScrubTimeline",
    "TimelineError",
    "build_timeline",
    "build_scrub_timeline",
    "build_flap_timeline",
    "WaReport",
    "chunk_stored_size",
    "estimate_wa",
    "measure_wa",
    "theoretical_wa",
    "Worker",
    "deploy_workers",
]
