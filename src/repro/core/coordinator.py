"""The Coordinator — orchestration of one EC experiment (§3).

"Coordinator orchestrates all the activities in the target DSS including
workloads execution, fault injection, and log collection."  Concretely,
one experiment cycle is:

1. ingest the workload into the erasure-coded pool;
2. let the cluster settle (heartbeats flowing, cache warm);
3. apply the fault specs through the Fault Injector;
4. wait for the monitor to mark the victims out and for every affected
   PG to finish recovery;
5. flush the per-node Loggers, drain the log bus, and hand the merged
   record stream to the timeline analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from ..cluster.ceph import CephCluster
from ..cluster.recovery import RecoveryStats
from ..cluster.scrub import ScrubStats
from ..sim.rng import SeedSequence
from ..workload.generator import Workload
from ..workload.iostat import IostatCollector
from .fault_injector import FaultInjector, FaultSpec
from .logbus import LogBus
from .logger import LogCollector, NodeLogger
from .timeline import (
    RecoveryTimeline,
    ScrubTimeline,
    build_scrub_timeline,
    build_timeline,
)
from .wa import WaReport, measure_wa

__all__ = ["ExperimentOutcome", "ExperimentTimeout", "Coordinator"]


class ExperimentTimeout(RuntimeError):
    """Recovery did not complete within the experiment's time budget."""


@dataclass
class ExperimentOutcome:
    """Everything one experiment produced."""

    timeline: Optional[RecoveryTimeline]
    recovery_stats: RecoveryStats
    wa: WaReport
    injected_osds: List[int]
    collector: LogCollector
    iostat: Optional[IostatCollector]
    workload_bytes: int
    finished_at: float
    scrub_timeline: Optional[ScrubTimeline] = None
    scrub_stats: Optional[ScrubStats] = None

    @property
    def total_recovery_time(self) -> float:
        """The headline metric: detection -> recovery finished."""
        if self.timeline is None:
            raise RuntimeError("experiment produced no recovery timeline")
        return self.timeline.total_recovery


class Coordinator:
    """Drives one experiment cycle on an assembled cluster."""

    #: Poll period while waiting for monitor state transitions.
    POLL = 5.0

    def __init__(
        self,
        cluster: CephCluster,
        injector: FaultInjector,
        bus: Optional[LogBus] = None,
        seeds: Optional[SeedSequence] = None,
    ):
        self.cluster = cluster
        self.injector = injector
        self.bus = bus or LogBus()
        self.seeds = seeds or SeedSequence(0)
        self.loggers = [
            NodeLogger(node_log, self.bus) for node_log in cluster.all_logs()
        ]
        self.collector = LogCollector(self.bus)

    def run(
        self,
        workload: Workload,
        faults: List[FaultSpec],
        settle_time: float = 60.0,
        max_sim_time: float = 200_000.0,
        iostat_interval: float = 10.0,
    ) -> ExperimentOutcome:
        """Execute the full cycle and return its outcome (blocking)."""
        env = self.cluster.env
        disks = {
            osd.name: osd.disk for osd in self.cluster.osds.values()
        }
        iostat = IostatCollector(env, disks, interval=iostat_interval)
        driver = env.process(
            self._drive(workload, faults, settle_time, max_sim_time)
        )
        env.run_until_process(driver)
        outcome: ExperimentOutcome = driver.value
        outcome.iostat = iostat
        return outcome

    def ingest_workload(self, workload: Workload) -> int:
        """Run the workload phase: place every write, return client bytes.

        Shared by the standard experiment cycle and the chaos harness,
        which drives the rest of a campaign step-by-step itself.
        """
        workload_bytes = 0
        for write in workload.writes(self.seeds):
            self.cluster.ingest_object(write.name, write.size)
            workload_bytes += write.size
        return workload_bytes

    # -- the experiment cycle as a simulation process --------------------------------

    def _drive(
        self,
        workload: Workload,
        faults: List[FaultSpec],
        settle_time: float,
        max_sim_time: float,
    ) -> Generator:
        env = self.cluster.env
        # Phase 1: workload execution (state ingestion; see CephCluster).
        workload_bytes = self.ingest_workload(workload)
        wa = measure_wa(self.cluster, workload_bytes)

        # Phase 2: settle — heartbeats establish steady state.
        yield env.timeout(settle_time)

        # Phase 3: fault injection.  Crash faults (node/device) take the
        # victims down and are tracked through the monitor; corrupt
        # faults leave every daemon up — only deep scrub will find them.
        # Gray faults degrade without a guaranteed mark-out (a flapping
        # or partitioned OSD may never *stay* out), so the cycle does not
        # block on them.
        injected: List[int] = []
        crash_victims: List[int] = []
        has_corrupt = False
        for spec in faults:
            affected = self.injector.inject(spec)
            injected.extend(affected)
            if spec.level == "corrupt":
                has_corrupt = True
            elif spec.level in ("node", "device"):
                crash_victims.extend(affected)
        if has_corrupt and not self.cluster.scrub.config.enabled:
            raise ValueError(
                "corrupt faults were injected but scrubbing is disabled; "
                "nothing would ever detect them (set a scrub interval)"
            )

        timeline = None
        stats = self.cluster.recovery.stats
        if crash_victims:
            # Phase 4a: wait until the monitor marks every victim out.
            deadline = env.now + max_sim_time
            while not all(self.cluster.monitor.is_out(o) for o in crash_victims):
                if env.now > deadline:
                    raise ExperimentTimeout(
                        f"victims not marked out by t={env.now:.0f}s"
                    )
                yield env.timeout(self.POLL)
            # Phase 4b: wait for every queued PG to recover.
            yield self.cluster.recovery.wait_all_recovered()
        if has_corrupt:
            # Phase 4c: wait for scrub to find and repair every corruption.
            deadline = env.now + max_sim_time
            while not self.cluster.scrub.quiescent():
                if env.now > deadline:
                    raise ExperimentTimeout(
                        f"scrub repair incomplete by t={env.now:.0f}s"
                    )
                yield env.timeout(self.POLL)

        # Phase 5: log collection and analysis.
        for logger in self.loggers:
            logger.flush()
        self.collector.collect()
        if crash_victims and stats.pgs_queued:
            timeline = build_timeline(self.collector)
        scrub_timeline = None
        if has_corrupt:
            scrub_timeline = build_scrub_timeline(self.collector)

        return ExperimentOutcome(
            timeline=timeline,
            recovery_stats=stats,
            wa=wa,
            injected_osds=injected,
            collector=self.collector,
            iostat=None,  # attached by run()
            workload_bytes=workload_bytes,
            finished_at=env.now,
            scrub_timeline=scrub_timeline,
            scrub_stats=self.cluster.scrub.stats,
        )
