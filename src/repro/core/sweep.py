"""Configuration sweeps: grids of profiles run through one harness.

The paper's method is inherently a sweep — "systematically inject faults
to trigger EC recovery under various configurations" — and its §6 future
work asks for broader coverage.  This module provides the machinery the
benchmarks and the sensitivity analysis build on:

* :class:`SweepSpec` — a base profile plus per-axis value lists; the
  cartesian product defines the experiment grid.
* :class:`SweepRunner` — runs every cell (optionally repeated over
  seeds), collects :class:`SweepResult` rows, and can persist/reload
  them as JSON so long sweeps are resumable and results are shareable.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from ..workload.generator import Workload
from .experiment import run_experiment
from .fault_injector import FaultSpec
from .profile import ExperimentProfile

__all__ = ["SweepSpec", "SweepResult", "SweepRunner", "run_cell"]


@dataclass(frozen=True)
class SweepSpec:
    """A grid of configurations around a base profile.

    ``axes`` maps a profile field name (e.g. ``"pg_num"``,
    ``"stripe_unit"``, ``"cache_scheme"``) to the values to sweep; the
    grid is the cartesian product.  ``ec_variants`` optionally sweeps
    whole (plugin, params) pairs as an extra axis.
    """

    base: ExperimentProfile
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    ec_variants: Sequence[tuple] = ()

    def __post_init__(self):
        for axis in self.axes:
            if not hasattr(self.base, axis):
                raise ValueError(f"unknown profile field {axis!r}")
            if not self.axes[axis]:
                raise ValueError(f"axis {axis!r} has no values")

    def cells(self) -> Iterator[ExperimentProfile]:
        """Yield one profile per grid cell."""
        axis_names = sorted(self.axes)
        value_lists = [self.axes[name] for name in axis_names]
        ec_list = list(self.ec_variants) or [
            (self.base.ec_plugin, dict(self.base.ec_params))
        ]
        for plugin, params in ec_list:
            for values in itertools.product(*value_lists):
                overrides = dict(zip(axis_names, values))
                overrides["ec_plugin"] = plugin
                overrides["ec_params"] = dict(params)
                label_parts = [plugin] + [
                    f"{name}={value}" for name, value in overrides.items()
                    if name not in ("ec_plugin", "ec_params")
                ]
                overrides["name"] = "/".join(label_parts)
                yield self.base.with_overrides(**overrides)

    def size(self) -> int:
        """Number of grid cells."""
        cells = 1
        for values in self.axes.values():
            cells *= len(values)
        return cells * max(1, len(self.ec_variants) or 1)


@dataclass(frozen=True)
class SweepResult:
    """One grid cell's measurements (averaged over seeds)."""

    label: str
    settings: Dict[str, Any]
    recovery_time: float
    checking_fraction: float
    wa_actual: float
    runs: int

    def to_json(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "settings": self.settings,
            "recovery_time": self.recovery_time,
            "checking_fraction": self.checking_fraction,
            "wa_actual": self.wa_actual,
            "runs": self.runs,
        }

    @classmethod
    def from_json(cls, blob: Mapping[str, Any]) -> "SweepResult":
        return cls(
            label=blob["label"],
            settings=dict(blob["settings"]),
            recovery_time=blob["recovery_time"],
            checking_fraction=blob["checking_fraction"],
            wa_actual=blob["wa_actual"],
            runs=blob["runs"],
        )


def run_cell(
    profile: ExperimentProfile,
    workload: Workload,
    faults: List[FaultSpec],
    runs: int,
    base_seed: int,
) -> SweepResult:
    """Run one grid cell: ``runs`` experiments averaged into a result row.

    This is the single-configuration quantum both the sweep grid and the
    tuner's budgeted evaluator are built from (module-level so worker
    processes can pickle it).
    """
    times: List[float] = []
    fractions: List[float] = []
    was: List[float] = []
    for run in range(runs):
        outcome = run_experiment(
            profile, workload, faults,
            seed=base_seed + run,
        )
        was.append(outcome.wa.actual)
        if outcome.timeline is not None:
            times.append(outcome.timeline.total_recovery)
            fractions.append(outcome.timeline.checking_fraction)
    settings = {
        "ec_plugin": profile.ec_plugin,
        "ec_params": dict(profile.ec_params),
        "pg_num": profile.pg_num,
        "stripe_unit": profile.stripe_unit,
        "cache_scheme": profile.cache_scheme,
        "failure_domain": profile.failure_domain,
    }
    return SweepResult(
        label=profile.name,
        settings=settings,
        recovery_time=sum(times) / len(times) if times else 0.0,
        checking_fraction=sum(fractions) / len(fractions) if fractions else 0.0,
        wa_actual=sum(was) / len(was),
        runs=runs,
    )


def _cell_worker(args) -> SweepResult:
    """Unpack one (profile, workload, faults, runs, seed) work item."""
    return run_cell(*args)


class SweepRunner:
    """Executes a sweep, one fresh cluster per cell per seed.

    With ``workers > 1`` grid cells run in a
    :class:`~concurrent.futures.ProcessPoolExecutor`.  Results are
    collected via ``executor.map`` — keyed by grid index, never by
    completion order — and every cell derives its seeds from
    ``base_seed`` alone, so a parallel sweep is bit-identical to a
    serial one on the same spec and seeds.
    """

    def __init__(
        self,
        workload: Workload,
        faults: Optional[Sequence[FaultSpec]] = None,
        runs: int = 1,
        base_seed: int = 0,
        progress: Optional[Callable[[str, int, int], None]] = None,
        workers: int = 1,
    ):
        if runs < 1:
            raise ValueError("runs must be >= 1")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workload = workload
        self.faults = list(faults) if faults is not None else [FaultSpec(level="node")]
        self.runs = runs
        self.base_seed = base_seed
        self.progress = progress
        self.workers = workers

    def run(self, spec: SweepSpec) -> List[SweepResult]:
        """Run every cell; returns results in grid order."""
        cells = list(spec.cells())
        if self.workers == 1:
            results: List[SweepResult] = []
            for index, profile in enumerate(cells):
                if self.progress is not None:
                    self.progress(profile.name, index, len(cells))
                results.append(self._run_cell(profile))
            return results
        items = [
            (profile, self.workload, self.faults, self.runs, self.base_seed)
            for profile in cells
        ]
        if self.progress is not None:
            for index, profile in enumerate(cells):
                self.progress(profile.name, index, len(cells))
        with ProcessPoolExecutor(max_workers=self.workers) as executor:
            return list(executor.map(_cell_worker, items))

    def _run_cell(self, profile: ExperimentProfile) -> SweepResult:
        return run_cell(
            profile, self.workload, self.faults, self.runs, self.base_seed
        )

    # -- persistence ---------------------------------------------------------------

    @staticmethod
    def save(results: Sequence[SweepResult], path) -> None:
        """Write results as a JSON document (atomically).

        The document lands via a temp file in the destination directory
        plus ``os.replace``, so a sweep killed mid-write never leaves a
        truncated, unresumable results file behind.
        """
        blob = {"version": 1, "results": [r.to_json() for r in results]}
        target = pathlib.Path(path)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{target.name}.", suffix=".tmp", dir=target.parent or "."
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(blob, indent=2))
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @staticmethod
    def load(path) -> List[SweepResult]:
        """Reload results written by :meth:`save`."""
        blob = json.loads(pathlib.Path(path).read_text())
        if blob.get("version") != 1:
            raise ValueError(f"unsupported sweep file version: {blob.get('version')!r}")
        return [SweepResult.from_json(r) for r in blob["results"]]
