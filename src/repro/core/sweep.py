"""Configuration sweeps: grids of profiles run through one harness.

The paper's method is inherently a sweep — "systematically inject faults
to trigger EC recovery under various configurations" — and its §6 future
work asks for broader coverage.  This module provides the machinery the
benchmarks and the sensitivity analysis build on:

* :class:`SweepSpec` — a base profile plus per-axis value lists; the
  cartesian product defines the experiment grid.
* :class:`SweepRunner` — runs every cell (optionally repeated over
  seeds), collects :class:`SweepResult` rows, and can persist/reload
  them as JSON so long sweeps are resumable and results are shareable.
"""

from __future__ import annotations

import itertools
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from ..workload.generator import Workload
from .experiment import run_experiment
from .fault_injector import FaultSpec
from .profile import ExperimentProfile

__all__ = ["SweepSpec", "SweepResult", "SweepRunner"]


@dataclass(frozen=True)
class SweepSpec:
    """A grid of configurations around a base profile.

    ``axes`` maps a profile field name (e.g. ``"pg_num"``,
    ``"stripe_unit"``, ``"cache_scheme"``) to the values to sweep; the
    grid is the cartesian product.  ``ec_variants`` optionally sweeps
    whole (plugin, params) pairs as an extra axis.
    """

    base: ExperimentProfile
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    ec_variants: Sequence[tuple] = ()

    def __post_init__(self):
        for axis in self.axes:
            if not hasattr(self.base, axis):
                raise ValueError(f"unknown profile field {axis!r}")
            if not self.axes[axis]:
                raise ValueError(f"axis {axis!r} has no values")

    def cells(self) -> Iterator[ExperimentProfile]:
        """Yield one profile per grid cell."""
        axis_names = sorted(self.axes)
        value_lists = [self.axes[name] for name in axis_names]
        ec_list = list(self.ec_variants) or [
            (self.base.ec_plugin, dict(self.base.ec_params))
        ]
        for plugin, params in ec_list:
            for values in itertools.product(*value_lists):
                overrides = dict(zip(axis_names, values))
                overrides["ec_plugin"] = plugin
                overrides["ec_params"] = dict(params)
                label_parts = [plugin] + [
                    f"{name}={value}" for name, value in overrides.items()
                    if name not in ("ec_plugin", "ec_params")
                ]
                overrides["name"] = "/".join(label_parts)
                yield self.base.with_overrides(**overrides)

    def size(self) -> int:
        """Number of grid cells."""
        cells = 1
        for values in self.axes.values():
            cells *= len(values)
        return cells * max(1, len(self.ec_variants) or 1)


@dataclass(frozen=True)
class SweepResult:
    """One grid cell's measurements (averaged over seeds)."""

    label: str
    settings: Dict[str, Any]
    recovery_time: float
    checking_fraction: float
    wa_actual: float
    runs: int

    def to_json(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "settings": self.settings,
            "recovery_time": self.recovery_time,
            "checking_fraction": self.checking_fraction,
            "wa_actual": self.wa_actual,
            "runs": self.runs,
        }

    @classmethod
    def from_json(cls, blob: Mapping[str, Any]) -> "SweepResult":
        return cls(
            label=blob["label"],
            settings=dict(blob["settings"]),
            recovery_time=blob["recovery_time"],
            checking_fraction=blob["checking_fraction"],
            wa_actual=blob["wa_actual"],
            runs=blob["runs"],
        )


class SweepRunner:
    """Executes a sweep, one fresh cluster per cell per seed."""

    def __init__(
        self,
        workload: Workload,
        faults: Optional[Sequence[FaultSpec]] = None,
        runs: int = 1,
        base_seed: int = 0,
        progress: Optional[Callable[[str, int, int], None]] = None,
    ):
        if runs < 1:
            raise ValueError("runs must be >= 1")
        self.workload = workload
        self.faults = list(faults) if faults is not None else [FaultSpec(level="node")]
        self.runs = runs
        self.base_seed = base_seed
        self.progress = progress

    def run(self, spec: SweepSpec) -> List[SweepResult]:
        """Run every cell; returns results in grid order."""
        results: List[SweepResult] = []
        cells = list(spec.cells())
        for index, profile in enumerate(cells):
            if self.progress is not None:
                self.progress(profile.name, index, len(cells))
            results.append(self._run_cell(profile))
        return results

    def _run_cell(self, profile: ExperimentProfile) -> SweepResult:
        times: List[float] = []
        fractions: List[float] = []
        was: List[float] = []
        for run in range(self.runs):
            outcome = run_experiment(
                profile, self.workload, self.faults,
                seed=self.base_seed + run,
            )
            was.append(outcome.wa.actual)
            if outcome.timeline is not None:
                times.append(outcome.timeline.total_recovery)
                fractions.append(outcome.timeline.checking_fraction)
        settings = {
            "ec_plugin": profile.ec_plugin,
            "ec_params": dict(profile.ec_params),
            "pg_num": profile.pg_num,
            "stripe_unit": profile.stripe_unit,
            "cache_scheme": profile.cache_scheme,
            "failure_domain": profile.failure_domain,
        }
        return SweepResult(
            label=profile.name,
            settings=settings,
            recovery_time=sum(times) / len(times) if times else 0.0,
            checking_fraction=sum(fractions) / len(fractions) if fractions else 0.0,
            wa_actual=sum(was) / len(was),
            runs=self.runs,
        )

    # -- persistence ---------------------------------------------------------------

    @staticmethod
    def save(results: Sequence[SweepResult], path) -> None:
        """Write results as a JSON document."""
        blob = {"version": 1, "results": [r.to_json() for r in results]}
        pathlib.Path(path).write_text(json.dumps(blob, indent=2))

    @staticmethod
    def load(path) -> List[SweepResult]:
        """Reload results written by :meth:`save`."""
        blob = json.loads(pathlib.Path(path).read_text())
        if blob.get("version") != 1:
            raise ValueError(f"unsupported sweep file version: {blob.get('version')!r}")
        return [SweepResult.from_json(r) for r in blob["results"]]
