"""Trace export and anomaly spotting over collected experiment data.

§3.3 gives the Logger pipeline its purpose: "to facilitate fine-grained
measurements and in-depth analysis of potential anomalies and
bottlenecks".  This module is that analysis end of the pipeline:

* :func:`export_logs_jsonl` / :func:`export_timeline_csv` — durable,
  tool-friendly dumps of an experiment's classified logs and phases;
* :func:`pg_recovery_spans` — per-PG recovery durations recovered from
  the logs alone (no simulator internals);
* :func:`find_anomalies` — straggler PGs and outlier devices, the
  "potential anomalies and bottlenecks" the paper wants surfaced.
"""

from __future__ import annotations

import json
import pathlib
import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..workload.iostat import IostatCollector
from .coordinator import ExperimentOutcome
from .logger import LogCollector

__all__ = [
    "export_logs_jsonl",
    "export_timeline_csv",
    "PgSpan",
    "pg_recovery_spans",
    "Anomaly",
    "find_anomalies",
]


def export_logs_jsonl(collector: LogCollector, path) -> int:
    """Write every classified record as one JSON object per line."""
    lines = []
    for classified in collector.records:
        record = classified.record
        lines.append(
            json.dumps(
                {
                    "time": record.time,
                    "node": record.node,
                    "subsystem": record.subsystem,
                    "class": classified.keyword_class,
                    "message": record.message,
                    "fields": dict(record.fields),
                },
                sort_keys=True,
            )
        )
    pathlib.Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def export_timeline_csv(outcome: ExperimentOutcome, path) -> None:
    """Write the recovery phases as a small CSV (phase, start, end)."""
    timeline = outcome.timeline
    if timeline is None:
        raise ValueError("experiment has no recovery timeline to export")
    rows = [
        ("checking", timeline.failure_detected, timeline.ec_recovery_started),
        ("ec_recovery", timeline.ec_recovery_started, timeline.ec_recovery_finished),
    ]
    lines = ["phase,start_s,end_s,duration_s"]
    for phase, start, end in rows:
        lines.append(f"{phase},{start:.3f},{end:.3f},{end - start:.3f}")
    pathlib.Path(path).write_text("\n".join(lines) + "\n")


@dataclass(frozen=True)
class PgSpan:
    """One PG's recovery window, reconstructed from logs."""

    pgid: str
    queued_at: float
    completed_at: float

    @property
    def duration(self) -> float:
        return self.completed_at - self.queued_at


def pg_recovery_spans(collector: LogCollector) -> List[PgSpan]:
    """Per-PG queue->complete spans from the classified recovery logs."""
    queued: Dict[str, float] = {}
    spans: List[PgSpan] = []
    for classified in collector.of_class("recovery"):
        record = classified.record
        pgid = record.field("pg")
        if pgid is None:
            continue
        message = record.message.lower()
        if "queueing recovery" in message:
            queued.setdefault(pgid, record.time)
        elif message == "recovery completed" and pgid in queued:
            spans.append(
                PgSpan(pgid=pgid, queued_at=queued.pop(pgid),
                       completed_at=record.time)
            )
    return sorted(spans, key=lambda span: span.duration, reverse=True)


@dataclass(frozen=True)
class Anomaly:
    """One flagged anomaly: what, where, and how far off it is."""

    kind: str  # "straggler-pg" | "hot-device"
    subject: str
    value: float
    median: float

    @property
    def factor(self) -> float:
        return self.value / self.median if self.median else float("inf")

    def describe(self) -> str:
        return (
            f"{self.kind}: {self.subject} at {self.value:.1f} "
            f"({self.factor:.1f}x the median {self.median:.1f})"
        )


def find_anomalies(
    collector: LogCollector,
    iostat: Optional[IostatCollector] = None,
    threshold: float = 3.0,
) -> List[Anomaly]:
    """Straggler PGs (by recovery duration) and hot devices (by bytes).

    Anything beyond ``threshold`` times the median is flagged — the
    simple robust rule the paper's bottleneck analysis needs.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must exceed 1.0")
    anomalies: List[Anomaly] = []
    spans = pg_recovery_spans(collector)
    if len(spans) >= 3:
        median = statistics.median(span.duration for span in spans)
        if median > 0:
            anomalies.extend(
                Anomaly("straggler-pg", span.pgid, span.duration, median)
                for span in spans
                if span.duration > threshold * median
            )
    if iostat is not None and iostat.samples:
        totals: Dict[str, int] = {}
        for sample in iostat.samples:
            totals[sample.device] = (
                totals.get(sample.device, 0)
                + sample.read_bytes
                + sample.written_bytes
            )
        busy = {d: b for d, b in totals.items() if b > 0}
        if len(busy) >= 3:
            median = statistics.median(busy.values())
            if median > 0:
                anomalies.extend(
                    Anomaly("hot-device", device, float(total), float(median))
                    for device, total in sorted(busy.items())
                    if total > threshold * median
                )
    return anomalies
