"""Result formatting: the rows/series the paper's tables and figures show.

The benchmarks print through these helpers so every experiment emits the
same normalised presentation the paper uses (Figure 2 normalises each
panel to its fastest configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

__all__ = ["normalise", "Series", "format_grouped_bars", "format_table"]


def normalise(values: Mapping[str, float], baseline: Optional[str] = None) -> Dict[str, float]:
    """Divide every value by the baseline (default: the minimum value).

    Matches Figure 2's presentation, where the fastest configuration in
    each panel reads 1.0.
    """
    if not values:
        return {}
    base = values[baseline] if baseline is not None else min(values.values())
    if base <= 0:
        raise ValueError("baseline value must be positive")
    return {key: value / base for key, value in values.items()}


@dataclass(frozen=True)
class Series:
    """One bar series: a label (e.g. "RS(12,9)") and per-group values."""

    label: str
    values: Mapping[str, float]


def format_grouped_bars(
    title: str,
    groups: Sequence[str],
    series: Sequence[Series],
    unit: str = "x",
    width: int = 40,
) -> str:
    """ASCII rendition of a grouped bar chart (one Figure 2 panel)."""
    lines = [title, "=" * len(title)]
    peak = max(
        (s.values[g] for s in series for g in groups if g in s.values),
        default=1.0,
    )
    for group in groups:
        lines.append(group)
        for s in series:
            if group not in s.values:
                continue
            value = s.values[group]
            bar = "#" * max(1, round(width * value / peak))
            lines.append(f"  {s.label:<16} {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Plain-text table with aligned columns (Table 2/3 style)."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(columns[i])), *(len(r[i]) for r in rendered_rows))
        if rendered_rows
        else len(str(columns[i]))
        for i in range(len(columns))
    ]
    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [title, fmt([str(c) for c in columns]), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)
