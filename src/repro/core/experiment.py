"""High-level experiment API: one call per (profile, workload, faults).

This is the public entry point the examples and benchmarks use::

    result = run_experiment(profile, workload, [FaultSpec(level="node")])
    result.total_recovery_time

``repeat_experiment`` mirrors §4.1's "average recovery time of three
runs": same configuration, different seeds, averaged.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..workload.generator import Workload
from .controller import Controller
from .coordinator import ExperimentOutcome
from .fault_injector import FaultSpec
from .profile import ExperimentProfile

__all__ = ["run_experiment", "repeat_experiment", "RepeatedResult"]


def run_experiment(
    profile: ExperimentProfile,
    workload: Workload,
    faults: Optional[Sequence[FaultSpec]] = None,
    seed: int = 0,
    settle_time: float = 60.0,
    max_sim_time: float = 200_000.0,
) -> ExperimentOutcome:
    """Build a fresh target DSS for ``profile`` and run one experiment."""
    controller = Controller(profile, seed=seed)
    return controller.run_experiment(
        workload,
        list(faults or []),
        settle_time=settle_time,
        max_sim_time=max_sim_time,
    )


@dataclass(frozen=True)
class RepeatedResult:
    """Aggregate over repeated runs of one configuration."""

    outcomes: tuple

    @property
    def recovery_times(self) -> List[float]:
        return [o.total_recovery_time for o in self.outcomes]

    @property
    def mean_recovery_time(self) -> float:
        return statistics.fmean(self.recovery_times)

    @property
    def stdev_recovery_time(self) -> float:
        times = self.recovery_times
        return statistics.stdev(times) if len(times) > 1 else 0.0

    @property
    def mean_checking_fraction(self) -> float:
        return statistics.fmean(
            o.timeline.checking_fraction for o in self.outcomes
        )


def repeat_experiment(
    profile: ExperimentProfile,
    workload: Workload,
    faults: Sequence[FaultSpec],
    runs: int = 3,
    base_seed: int = 0,
    settle_time: float = 60.0,
    max_sim_time: float = 200_000.0,
) -> RepeatedResult:
    """Run the same configuration ``runs`` times with distinct seeds."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    outcomes = tuple(
        run_experiment(
            profile,
            workload,
            faults,
            seed=base_seed + run,
            settle_time=settle_time,
            max_sim_time=max_sim_time,
        )
        for run in range(runs)
    )
    return RepeatedResult(outcomes=outcomes)
