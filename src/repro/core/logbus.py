"""The log message bus between Loggers and the Coordinator (§3.3).

The paper ships classified log entries from per-node Loggers to the
Coordinator over Kafka.  This module models that pipeline: named topics,
per-topic FIFO delivery, and consumer offsets — enough structure that
the Logger's "filter locally, ship only relevant entries" behaviour and
the Coordinator's global merge are real data flows rather than function
calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

__all__ = ["BusMessage", "LogBus"]


@dataclass(frozen=True)
class BusMessage:
    """One message on a topic: producer, payload, and publish time."""

    topic: str
    producer: str
    time: float
    payload: Any


class LogBus:
    """A minimal Kafka-like bus: append-only topics plus consumer offsets."""

    def __init__(self):
        self._topics: Dict[str, List[BusMessage]] = {}
        self._offsets: Dict[tuple, int] = {}

    def topics(self) -> List[str]:
        return sorted(self._topics)

    def publish(self, topic: str, producer: str, time: float, payload: Any) -> BusMessage:
        """Append a message to a topic (topics auto-create)."""
        message = BusMessage(topic=topic, producer=producer, time=time, payload=payload)
        self._topics.setdefault(topic, []).append(message)
        return message

    def consume(self, topic: str, group: str = "coordinator") -> List[BusMessage]:
        """Fetch messages the group has not seen yet, advancing its offset."""
        log = self._topics.get(topic, [])
        key = (topic, group)
        offset = self._offsets.get(key, 0)
        new = log[offset:]
        self._offsets[key] = len(log)
        return new

    def peek_all(self, topic: str) -> List[BusMessage]:
        """Every message ever published on a topic (no offset change)."""
        return list(self._topics.get(topic, []))

    def depth(self, topic: str, group: str = "coordinator") -> int:
        """Unconsumed backlog for a consumer group."""
        return len(self._topics.get(topic, [])) - self._offsets.get((topic, group), 0)
