"""Deterministic discrete-event simulation kernel.

The kernel follows the classic event-list design: a priority queue of
``(time, priority, sequence, event)`` entries drives a virtual clock, and
*processes* are plain Python generators that ``yield`` events they want to
wait for.  The design is intentionally close to SimPy's core so that the
higher layers (disks, NICs, OSD daemons) read naturally, but it is
self-contained: the reproduction must not depend on packages that are not
installed in the evaluation environment.

Determinism matters here: every experiment in the paper is re-run and
averaged, and our tests assert exact recovery timelines.  The kernel breaks
time ties by insertion order, so a simulation with the same seed always
produces the same trace.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Environment",
]

# Scheduling priorities: URGENT events (resource releases) run before NORMAL
# events scheduled for the same instant, which keeps queue hand-offs at a
# single timestamp well defined.
URGENT = 0
NORMAL = 1


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries whatever object the interrupter passed,
    typically a short reason string such as ``"node shutdown"``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, schedules its callbacks, and freezes its value.  Waiting on
    an already-triggered event resumes the waiter immediately (at the current
    simulation time), which is what makes ``yield store.get()`` style code
    race-free.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """Whether the event has been succeeded or failed."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise RuntimeError("event value is not available before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, waking all waiters."""
        if self._ok is not None:
            raise RuntimeError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule_event(self, URGENT)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters see it raised."""
        if self._ok is not None:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule_event(self, URGENT)
        return self


class Timeout(Event):
    """An event that triggers automatically after ``delay`` time units."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule_event(self, NORMAL, delay)


class Process(Event):
    """Wraps a generator so it can run as a simulation process.

    The process itself is an event that triggers when the generator returns
    (successfully, carrying the return value) or raises (failed, carrying
    the exception).  This lets a parent do ``result = yield child``.
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off the generator at the current time.
        bootstrap = Event(env)
        bootstrap._ok = True
        bootstrap.callbacks = None
        env._schedule(env.now, URGENT, lambda: self._resume(bootstrap))

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        target = self._waiting_on
        if target is not None and not target.processed:
            # Detach from the event we were waiting on so a later trigger
            # does not resume a process that has already been interrupted.
            if target.callbacks is not None:
                target.callbacks = [
                    cb for cb in target.callbacks if getattr(cb, "__self__", None) is not self
                ]
        self._waiting_on = None
        self.env._schedule(
            self.env.now, URGENT, lambda: self._throw(Interrupt(cause))
        )

    # -- internal machinery -------------------------------------------------

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self.fail(exc)
            return
        self._wait_for(target)

    def _throw(self, exc: BaseException) -> None:
        if not self.is_alive:
            return
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as raised:  # noqa: BLE001
            self.fail(raised)
            return
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._throw(TypeError(f"process yielded a non-event: {target!r}"))
            return
        if target.env is not self.env:
            self._throw(RuntimeError("event belongs to a different environment"))
            return
        self._waiting_on = target
        if target.processed:
            # Already fired and its callback pass is done: resume now.
            self.env._schedule(self.env.now, URGENT, lambda: self._resume(target))
        else:
            target.callbacks.append(self._resume)


class AllOf(Event):
    """Triggers when every child event has succeeded.

    Fails fast with the first child failure.  The value is a list of child
    values in the order the children were given.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._children = list(events)
        self._pending = 0
        for child in self._children:
            if child.processed:
                if not child._ok:
                    raise RuntimeError("AllOf over an already-failed event")
                continue
            self._pending += 1
            child.callbacks.append(self._on_child)
        if self._pending == 0:
            self.succeed([c._value for c in self._children])

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child._ok:
            self.fail(child._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c._value for c in self._children])


class AnyOf(Event):
    """Triggers when the first child event triggers (success or failure)."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._children = list(events)
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        fired = [c for c in self._children if c.processed]
        if fired:
            first = fired[0]
            if first._ok:
                self.succeed(first._value)
            else:
                self.fail(first._value)
            return
        for child in self._children:
            child.callbacks.append(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child._ok:
            self.succeed(child._value)
        else:
            self.fail(child._value)


class Environment:
    """The simulation environment: clock, event list, and process factory."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List = []
        self._seq = 0
        self._steps = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def steps(self) -> int:
        """Total events executed so far.

        A determinism hook: two runs of the same seeded experiment must
        agree on (now, steps) at every observation point, so the chaos
        harness folds this counter into its outcome hash.
        """
        return self._steps

    # -- public API ----------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Launch ``generator`` as a process, returning its process event."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains or ``until`` is reached.

        Returns the simulation time at which execution stopped.
        """
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                return self._now
            self._step()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_until_process(self, process: Process) -> Any:
        """Run until ``process`` completes; return its value or re-raise."""
        while not process.triggered:
            if not self._queue:
                raise RuntimeError("deadlock: process never completed")
            self._step()
        # Drain the trigger's callback pass so resource state settles.
        while self._queue and self._queue[0][0] == self._now:
            self._step()
        if process._ok:
            return process._value
        raise process._value

    # -- internal scheduling ---------------------------------------------------

    def _schedule(self, when: float, priority: int, callback: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (when, priority, self._seq, callback))

    def _schedule_event(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._schedule(self._now + delay, priority, lambda: self._process_event(event))

    def _process_event(self, event: Event) -> None:
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif isinstance(event, Process) and event._ok is False:
            # A process died and nothing was waiting for it.  Silently
            # dropping the exception would leave the simulation hung or
            # subtly wrong, so surface it immediately (SimPy semantics).
            raise event._value

    def _step(self) -> None:
        when, _priority, _seq, callback = heapq.heappop(self._queue)
        if when < self._now:
            raise RuntimeError("event scheduled in the past")
        self._now = when
        self._steps += 1
        callback()
