"""Deterministic discrete-event simulation substrate.

This subpackage is the clock everything else runs on: a generator-based
event kernel (:mod:`repro.sim.engine`), contention primitives
(:mod:`repro.sim.resources`), and seeded random streams
(:mod:`repro.sim.rng`).
"""

from .engine import AllOf, AnyOf, Environment, Event, Interrupt, Process, Timeout
from .resources import Resource, ServiceCenter, Store
from .rng import SeedSequence, substream_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
    "Resource",
    "ServiceCenter",
    "Store",
    "SeedSequence",
    "substream_seed",
]
