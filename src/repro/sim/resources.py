"""Contention primitives built on the simulation kernel.

Three building blocks cover everything the cluster model needs:

* :class:`Resource` — a counted semaphore with a FIFO waiter queue.  OSD
  recovery slots (``osd_recovery_max_active``) and per-host backfill
  reservations are plain resources.
* :class:`ServiceCenter` — a multi-server FIFO queue where each job brings
  its own service time.  Disks and NICs are service centers: the device
  model converts an I/O (operation count + byte count) into a service time
  and the center serialises concurrent users, which is where queueing delay
  — the phenomenon behind most of the paper's configuration effects —
  comes from.
* :class:`Store` — an unbounded FIFO hand-off queue used by the Kafka-like
  log bus.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List

from .engine import Environment, Event

__all__ = ["Resource", "ServiceCenter", "Store"]


class Resource:
    """A counted resource with FIFO acquisition order.

    Usage from a process::

        yield resource.acquire()
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, env: Environment, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires once a slot is held by the caller."""
        event = self.env.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one held slot, handing it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching acquire()")
        if self._waiters:
            # Hand the slot directly to the next waiter: _in_use stays put.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class ServiceCenter:
    """A FIFO service center with ``servers`` parallel servers.

    ``request(service_time)`` returns a process event that completes when
    the job has waited for a server and then been served.  Total busy time
    is tracked so callers can compute utilisation.
    """

    def __init__(self, env: Environment, servers: int = 1, name: str = ""):
        self.env = env
        self.name = name
        self._slots = Resource(env, servers)
        self.busy_time = 0.0
        self.jobs_served = 0

    @property
    def queue_length(self) -> int:
        return self._slots.queue_length

    def request(self, service_time: float) -> Event:
        """Submit a job; the returned event fires when service completes."""
        if service_time < 0:
            raise ValueError(f"negative service time: {service_time!r}")
        return self.env.process(self._serve(service_time))

    def _serve(self, service_time: float) -> Generator:
        yield self._slots.acquire()
        try:
            yield self.env.timeout(service_time)
        finally:
            self._slots.release()
        self.busy_time += service_time
        self.jobs_served += 1

    def utilisation(self, elapsed: float) -> float:
        """Fraction of one server's time spent busy over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self._slots.capacity)


class Store:
    """Unbounded FIFO queue for message hand-off between processes."""

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event yielding the next item (blocks until one exists)."""
        event = self.env.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def drain(self) -> List[Any]:
        """Remove and return all queued items without blocking."""
        items = list(self._items)
        self._items.clear()
        return items
