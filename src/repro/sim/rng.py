"""Deterministic random-number management.

Every stochastic component (placement, workload, fault target selection,
latency jitter) draws from its own named stream derived from a single
experiment seed.  Component streams are independent of each other, so e.g.
changing the workload does not perturb placement — a property the paper's
controlled sweeps rely on implicitly and our tests rely on explicitly.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

__all__ = ["SeedSequence", "substream_seed"]

T = TypeVar("T")


def substream_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for the named component stream."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeedSequence:
    """Factory of independent, reproducible :class:`random.Random` streams."""

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def stream(self, name: str) -> random.Random:
        """Return a fresh RNG for the named component."""
        return random.Random(substream_seed(self.root_seed, name))

    def derive(self, name: str) -> "SeedSequence":
        """A child sequence whose streams are independent of this one's.

        Used by the chaos harness to give every campaign its own seed
        universe derived from one run-level seed.
        """
        return SeedSequence(substream_seed(self.root_seed, name))

    def choice_stream(self, name: str, population: Sequence[T]) -> T:
        """Convenience: one deterministic choice from ``population``."""
        return self.stream(name).choice(list(population))
