"""Configuration-sensitivity analysis and tuning recommendations.

The paper closes (§6) hoping its quantitative analysis can "help create
more intelligent mechanisms for tuning EC-based DSS automatically".  This
module is that step: given sweep results it quantifies each
configuration axis's impact on recovery time, ranks the axes, and
recommends a configuration under a write-amplification budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.sweep import SweepResult

__all__ = [
    "AxisImpact",
    "axis_impacts",
    "rank_axes",
    "Recommendation",
    "recommend_configuration",
]


@dataclass(frozen=True)
class AxisImpact:
    """How much one configuration axis moves recovery time.

    ``impact_percent`` follows the paper's convention: the worst value's
    recovery time over the best value's, in percent (101% = a 1% swing).
    ``best``/``worst`` are the axis values achieving the extremes, with
    other axes marginalised by averaging.
    """

    axis: str
    impact_percent: float
    best: object
    worst: object
    mean_by_value: Dict[object, float]


def _axis_values(results: Sequence[SweepResult], axis: str) -> List[object]:
    values = []
    for result in results:
        if axis not in result.settings:
            raise KeyError(f"axis {axis!r} missing from sweep settings")
        value = result.settings[axis]
        key = str(value) if isinstance(value, dict) else value
        if key not in values:
            values.append(key)
    return values


def axis_impacts(
    results: Sequence[SweepResult], axes: Sequence[str]
) -> List[AxisImpact]:
    """Marginal impact of each axis on mean recovery time."""
    if not results:
        raise ValueError("no sweep results")
    impacts = []
    for axis in axes:
        by_value: Dict[object, List[float]] = {}
        for result in results:
            value = result.settings[axis]
            key = str(value) if isinstance(value, dict) else value
            by_value.setdefault(key, []).append(result.recovery_time)
        means = {
            value: sum(times) / len(times) for value, times in by_value.items()
        }
        if len(means) < 2:
            impacts.append(
                AxisImpact(axis=axis, impact_percent=100.0,
                           best=next(iter(means)), worst=next(iter(means)),
                           mean_by_value=means)
            )
            continue
        best = min(means, key=means.get)
        worst = max(means, key=means.get)
        if means[best] <= 0:
            raise ValueError(f"non-positive recovery time on axis {axis!r}")
        impacts.append(
            AxisImpact(
                axis=axis,
                impact_percent=means[worst] / means[best] * 100.0,
                best=best,
                worst=worst,
                mean_by_value=means,
            )
        )
    return impacts


def rank_axes(
    results: Sequence[SweepResult], axes: Sequence[str]
) -> List[AxisImpact]:
    """Axes sorted by descending impact — "what should I tune first?"."""
    return sorted(
        axis_impacts(results, axes),
        key=lambda impact: impact.impact_percent,
        reverse=True,
    )


@dataclass(frozen=True)
class Recommendation:
    """A tuning recommendation derived from sweep data."""

    chosen: SweepResult
    rejected_faster: Tuple[SweepResult, ...]
    wa_budget: Optional[float]

    @property
    def label(self) -> str:
        return self.chosen.label

    def summary(self) -> str:
        lines = [
            f"recommended configuration: {self.chosen.label}",
            f"  recovery time:      {self.chosen.recovery_time:.1f}s",
            f"  write amplification: {self.chosen.wa_actual:.3f}",
        ]
        if self.wa_budget is not None:
            lines.append(f"  WA budget:           {self.wa_budget:.3f}")
        if self.rejected_faster:
            lines.append(
                f"  ({len(self.rejected_faster)} faster configuration(s) "
                "rejected for exceeding the WA budget)"
            )
        return "\n".join(lines)


def recommend_configuration(
    results: Sequence[SweepResult],
    wa_budget: Optional[float] = None,
) -> Recommendation:
    """Pick the fastest-recovering configuration within a WA budget.

    With no budget this is simply the recovery-time argmin; with one, the
    fastest configuration whose measured Actual WA Factor stays within
    budget (raising if none qualifies).
    """
    if not results:
        raise ValueError("no sweep results")
    ordered = sorted(results, key=lambda r: r.recovery_time)
    if wa_budget is None:
        return Recommendation(chosen=ordered[0], rejected_faster=(), wa_budget=None)
    rejected = []
    for result in ordered:
        if result.wa_actual <= wa_budget:
            return Recommendation(
                chosen=result,
                rejected_faster=tuple(rejected),
                wa_budget=wa_budget,
            )
        rejected.append(result)
    raise ValueError(
        f"no configuration satisfies WA budget {wa_budget:.3f} "
        f"(best available: {min(r.wa_actual for r in results):.3f})"
    )
