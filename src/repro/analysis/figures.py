"""Text renderings of the paper's figures.

Each ``render_*`` function takes measured data in the shape the matching
benchmark produces and returns the figure as plain text: grouped bars
for the four Figure 2 panels and an annotated timeline for Figure 3.
The benchmarks print these so ``pytest benchmarks/ --benchmark-only``
output reads like the paper's evaluation section.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

from ..core.report import Series, format_grouped_bars, format_table
from ..core.timeline import RecoveryTimeline

__all__ = [
    "render_figure2_panel",
    "render_figure3_timeline",
    "render_table",
    "render_paper_vs_measured",
]


def render_figure2_panel(
    panel: str,
    groups: Sequence[str],
    rs_values: Mapping[str, float],
    clay_values: Mapping[str, float],
    rs_label: str = "RS(12,9)",
    clay_label: str = "Clay(12,9,11)",
) -> str:
    """One Figure 2 panel: normalised recovery time, RS vs Clay bars."""
    return format_grouped_bars(
        f"Figure 2{panel}: Normalized Recovery Time",
        groups,
        [Series(rs_label, rs_values), Series(clay_label, clay_values)],
    )


def render_figure3_timeline(timeline: RecoveryTimeline, width: int = 60) -> str:
    """Figure 3: the annotated system-recovery timeline."""
    total = timeline.total_recovery
    if total <= 0:
        raise ValueError("timeline has no duration")
    check_cols = round(width * timeline.checking_period / total)
    lines = [
        "Figure 3: Timeline of System Recovery",
        "=" * 38,
        f"|{'=' * check_cols}{'-' * (width - check_cols)}|",
        f"|<-- System Checking Period ({timeline.checking_period:.0f}s) -->"
        f"<-- EC Recovery Period ({timeline.ec_recovery_period:.0f}s) -->|",
        "",
    ]
    for t, label in timeline.annotations():
        lines.append(f"  t={t:8.1f}s  {label}")
    lines.append(
        f"  checking period = {timeline.checking_fraction * 100:.1f}% of "
        f"overall system recovery time"
    )
    return "\n".join(lines)


def render_table(title: str, columns: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table, Table 2/3 style."""
    return format_table(title, columns, rows)


def render_paper_vs_measured(
    title: str,
    rows: Sequence[Tuple[str, object, object]],
) -> str:
    """The EXPERIMENTS.md-style record: metric, paper value, measured."""
    return format_table(
        title,
        ["metric", "paper", "measured"],
        [list(row) for row in rows],
    )
