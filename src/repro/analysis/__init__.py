"""Result analysis: statistics and text renderings of the paper's figures."""

from .figures import (
    render_figure2_panel,
    render_figure3_timeline,
    render_paper_vs_measured,
    render_table,
)
from .sensitivity import (
    AxisImpact,
    Recommendation,
    axis_impacts,
    rank_axes,
    recommend_configuration,
)
from .stats import (
    crossover_points,
    impact_range_percent,
    mean_and_stdev,
    normalised_series,
    percentile,
    spearman,
)

__all__ = [
    "render_figure2_panel",
    "render_figure3_timeline",
    "render_paper_vs_measured",
    "render_table",
    "AxisImpact",
    "Recommendation",
    "axis_impacts",
    "rank_axes",
    "recommend_configuration",
    "crossover_points",
    "impact_range_percent",
    "mean_and_stdev",
    "normalised_series",
    "percentile",
    "spearman",
]
