"""Statistics helpers for sweep results.

Small, dependency-light aggregation used by the benchmarks: normalised
series (Figure 2's presentation), configuration-impact ranges (the
"101% to 426%" headline), and mean/stdev over repeated runs.
"""

from __future__ import annotations

import math
import statistics
from typing import Dict, List, Mapping, Sequence, Tuple

__all__ = [
    "percentile",
    "mean_and_stdev",
    "normalised_series",
    "impact_range_percent",
    "crossover_points",
    "spearman",
]


def percentile(values: Sequence[float], pct: float) -> float:
    """Ceil-based nearest-rank percentile of ``values``.

    The nearest-rank definition: the smallest value such that at least
    ``pct`` percent of the sample is <= it, i.e. index
    ``ceil(pct/100 * n) - 1`` into the sorted sample.  (A ``round()``
    based rank is biased low for small samples — p99 of 50 values would
    read the 50th value's *predecessor* half the time.)  This is the one
    audited implementation; client and tenant latency accounting both
    delegate here.
    """
    if not 0 < pct <= 100:
        raise ValueError("percentile must be in (0, 100]")
    if not values:
        raise ValueError("no values")
    ordered = sorted(values)
    index = max(0, math.ceil(pct / 100 * len(ordered)) - 1)
    return ordered[index]


def mean_and_stdev(values: Sequence[float]) -> Tuple[float, float]:
    """(mean, sample stdev); stdev is 0.0 for fewer than two values."""
    if not values:
        raise ValueError("no values")
    mean = statistics.fmean(values)
    stdev = statistics.stdev(values) if len(values) > 1 else 0.0
    return mean, stdev


def normalised_series(values: Mapping[str, float]) -> Dict[str, float]:
    """Every value divided by the minimum (fastest config reads 1.0)."""
    if not values:
        return {}
    base = min(values.values())
    if base <= 0:
        raise ValueError("values must be positive")
    return {key: value / base for key, value in values.items()}


def impact_range_percent(values: Mapping[str, float]) -> float:
    """Largest configuration impact as a percentage of the best config.

    The paper's headline metric: "configurations may affect the EC
    recovery time by up to 426%" means max/min * 100.
    """
    if not values:
        raise ValueError("no values")
    lo, hi = min(values.values()), max(values.values())
    if lo <= 0:
        raise ValueError("values must be positive")
    return hi / lo * 100.0


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation with average ranks for ties.

    Hand-rolled (Pearson over midranks) because the toolchain has numpy
    but not scipy.  Returns 0.0 for degenerate inputs (fewer than two
    points, or a constant sequence).  The differential-validation
    harness (:mod:`repro.twin.validate`) uses this to assert the twin
    *orders* configurations the way the DES does.
    """
    if len(xs) != len(ys):
        raise ValueError("sequences must have equal length")
    n = len(xs)
    if n < 2:
        return 0.0

    def midranks(values: Sequence[float]) -> List[float]:
        order = sorted(range(n), key=lambda i: values[i])
        ranks = [0.0] * n
        i = 0
        while i < n:
            j = i
            while j + 1 < n and values[order[j + 1]] == values[order[i]]:
                j += 1
            rank = (i + j) / 2.0 + 1.0
            for t in range(i, j + 1):
                ranks[order[t]] = rank
            i = j + 1
        return ranks

    rx, ry = midranks(xs), midranks(ys)
    mean = (n + 1) / 2.0
    cov = sum((a - mean) * (b - mean) for a, b in zip(rx, ry))
    var_x = sum((a - mean) ** 2 for a in rx)
    var_y = sum((b - mean) ** 2 for b in ry)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def crossover_points(
    series_a: Mapping[str, float],
    series_b: Mapping[str, float],
    groups: Sequence[str],
) -> List[str]:
    """Groups where the winner flips relative to the previous group.

    Used to check the paper's qualitative findings, e.g. Clay beating RS
    for same-host triple failures but losing for different-host ones.
    """
    flips: List[str] = []
    previous = None
    for group in groups:
        if group not in series_a or group not in series_b:
            continue
        winner = "a" if series_a[group] < series_b[group] else "b"
        if previous is not None and winner != previous:
            flips.append(group)
        previous = winner
    return flips
