"""ECFault: configuration-sensitivity analysis of erasure-coded storage.

Reproduction of "Revisiting Erasure Codes: A Configuration Perspective"
(HotStorage '24).  See DESIGN.md for the system inventory, EXPERIMENTS.md
for the paper-vs-measured record, and docs/ARCHITECTURE.md for the
layering.

The most common entry points are re-exported here::

    from repro import ExperimentProfile, FaultSpec, Workload, run_experiment

    profile = ExperimentProfile(ec_plugin="clay",
                                ec_params={"k": 9, "m": 3, "d": 11})
    outcome = run_experiment(profile,
                             Workload(num_objects=2000),
                             [FaultSpec(level="node")])
"""

from .core.experiment import repeat_experiment, run_experiment
from .core.fault_injector import Colocation, FaultSpec
from .core.profile import ExperimentProfile
from .workload.generator import Workload

__version__ = "1.0.0"

__all__ = [
    "Colocation",
    "ExperimentProfile",
    "FaultSpec",
    "Workload",
    "repeat_experiment",
    "run_experiment",
    "__version__",
]
