"""Budget-accounted, memoising configuration evaluator.

The tuner's cost model is the simulation itself: evaluating a point at
:class:`Fidelity` ``(objects, runs)`` simulates ``objects * runs``
object-runs, and that product is what gets charged against the budget.
Low fidelity (few objects) is cheap and noisy; full fidelity matches
what an exhaustive :class:`~repro.core.sweep.SweepRunner` grid would
measure for the same base seed.

Guarantees the strategies and the resume logic rely on:

* **Memoisation** — results are cached by ``(config signature,
  fidelity)``; a configuration is never simulated twice at one fidelity,
  and cache hits charge nothing.
* **Determinism** — the seed of each evaluation derives from the base
  seed alone (exactly like ``SweepRunner``), never from evaluation
  order, so any strategy path reaching a point measures the same floats.
* **Serial/parallel equivalence** — with ``workers > 1`` a batch runs
  through a :class:`~concurrent.futures.ProcessPoolExecutor` keyed by
  input order, so artifacts are byte-identical to a ``workers=1`` run.
* **Hard budget** — an evaluation that would overrun the budget raises
  :class:`BudgetExhaustedError` *before* simulating anything.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster.ceph import CephCluster
from ..cluster.client import ClientLoadGenerator, RadosClient
from ..core.fault_injector import FaultSpec
from ..core.profile import ExperimentProfile
from ..core.sweep import SweepResult, run_cell
from ..sim import Environment
from ..sim.rng import SeedSequence
from ..tenancy.fleet import TenantFleet
from ..tenancy.spec import SloSpec, TenantFleetSpec, TenantSpec
from ..workload.generator import Workload
from .space import TuningSpace

__all__ = [
    "Fidelity",
    "ReadProbe",
    "TenantProbe",
    "Measurement",
    "BudgetExhaustedError",
    "Evaluator",
    "measure_degraded_p99",
    "measure_tenant_slo_p99",
]

MB = 1024 * 1024


class BudgetExhaustedError(RuntimeError):
    """The requested evaluation does not fit the remaining budget."""


@dataclass(frozen=True)
class Fidelity:
    """How much simulation one evaluation buys.

    ``cost`` — the budget charge — is ``objects * runs``: the number of
    simulated object-runs.  With ``backend="twin"`` the rung is served by
    the analytical twin (:mod:`repro.twin`) instead of the DES; twin
    evaluations are effectively free, so their cost is 0 and a
    twin-backed halving strategy charges the budget only on the DES
    rungs it promotes finalists to.
    """

    objects: int
    runs: int = 1
    label: str = ""
    backend: str = "des"

    def __post_init__(self):
        if self.objects < 1:
            raise ValueError("objects must be >= 1")
        if self.runs < 1:
            raise ValueError("runs must be >= 1")
        if self.backend not in ("des", "twin"):
            raise ValueError(f"backend must be 'des' or 'twin', got {self.backend!r}")

    @property
    def cost(self) -> int:
        if self.backend == "twin":
            return 0
        return self.objects * self.runs

    def key(self) -> str:
        """Cache-key identity (label excluded: it is cosmetic)."""
        # The backend suffix appears only for twin rungs so DES cache
        # keys — and resumed artifacts from pre-twin runs — are unchanged.
        base = f"objects={self.objects},runs={self.runs}"
        if self.backend != "des":
            base += f",backend={self.backend}"
        return base

    def to_dict(self) -> Dict[str, Any]:
        data = {"objects": self.objects, "runs": self.runs, "label": self.label}
        # Emitted only when analytical, keeping DES artifacts byte-stable.
        if self.backend != "des":
            data["backend"] = self.backend
        return data

    @classmethod
    def from_dict(cls, blob: Mapping[str, Any]) -> "Fidelity":
        return cls(
            objects=int(blob["objects"]),
            runs=int(blob["runs"]),
            label=str(blob.get("label", "")),
            backend=str(blob.get("backend", "des")),
        )


@dataclass(frozen=True)
class ReadProbe:
    """Settings for the degraded-read side measurement.

    When attached to an evaluator, every simulated point also runs a
    small fixed-size outage probe — ingest ``objects`` objects, fail one
    host, drive a :class:`ClientLoadGenerator` through the checking
    window — and records the degraded-read p99 latency.  The probe is
    fixed-scale on purpose: its cost does not depend on fidelity, so it
    is charged as ``cost`` extra object-runs per evaluation.
    """

    objects: int = 48
    object_size: int = 8 * MB
    window: float = 30.0
    interval: float = 0.25

    def __post_init__(self):
        if self.objects < 1 or self.object_size < 1:
            raise ValueError("probe objects and object_size must be positive")
        if self.window <= 0 or self.interval <= 0:
            raise ValueError("probe window and interval must be positive")

    @property
    def cost(self) -> int:
        return self.objects

    def to_dict(self) -> Dict[str, Any]:
        return {
            "objects": self.objects,
            "object_size": self.object_size,
            "window": self.window,
            "interval": self.interval,
        }


@dataclass(frozen=True)
class TenantProbe:
    """Settings for the multi-tenant QoS side measurement.

    When attached to an evaluator, every simulated point also runs a
    fixed-scale tenancy probe: ingest ``objects`` objects, fail one
    host, and drive a QoS-enabled two-tenant fleet — a reserved
    latency-sensitive tenant beside a saturating batch tenant — through
    the outage window.  The recorded metric is the latency tenant's p99
    read latency, i.e. how well this configuration (with mClock
    arbitration on) protects an SLO tenant during recovery pressure.
    Like :class:`ReadProbe`, the probe is fixed-scale and charged as
    ``cost`` extra object-runs per evaluation.
    """

    objects: int = 32
    object_size: int = 4 * MB
    window: float = 40.0
    interval: float = 0.5
    #: The latency tenant's mClock reservation (share of each OSD).
    reservation: float = 0.2

    def __post_init__(self):
        if self.objects < 1 or self.object_size < 1:
            raise ValueError("probe objects and object_size must be positive")
        if self.window <= 0 or self.interval <= 0:
            raise ValueError("probe window and interval must be positive")
        if not 0.0 < self.reservation <= 0.3:
            raise ValueError("reservation must be in (0, 0.3]")

    @property
    def cost(self) -> int:
        return self.objects

    def to_dict(self) -> Dict[str, Any]:
        return {
            "objects": self.objects,
            "object_size": self.object_size,
            "window": self.window,
            "interval": self.interval,
            "reservation": self.reservation,
        }


@dataclass(frozen=True)
class Measurement:
    """One evaluated configuration at one fidelity."""

    signature: str
    settings: Dict[str, Any]
    fidelity: Fidelity
    recovery_time: float
    checking_fraction: float
    wa_actual: float
    degraded_p99: Optional[float]
    cost: int
    #: The tenancy probe's metric: the reserved latency tenant's p99
    #: read latency during an outage with QoS arbitration on.  None when
    #: the evaluator carries no tenant probe.
    tenant_slo_p99: Optional[float] = None

    @property
    def label(self) -> str:
        params = ",".join(
            f"{k}={v}" for k, v in sorted(self.settings["ec_params"].items())
        )
        extras = [
            f"{name}={value}"
            for name, value in sorted(self.settings.items())
            if name not in ("ec_plugin", "ec_params")
        ]
        return "/".join([f"{self.settings['ec_plugin']}({params})"] + extras)

    def to_sweep_result(self) -> SweepResult:
        """Bridge to the sensitivity analysis (``rank_axes`` etc.)."""
        return SweepResult(
            label=self.label,
            settings=dict(self.settings),
            recovery_time=self.recovery_time,
            checking_fraction=self.checking_fraction,
            wa_actual=self.wa_actual,
            runs=self.fidelity.runs,
        )

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "signature": self.signature,
            "settings": self.settings,
            "fidelity": self.fidelity.to_dict(),
            "recovery_time": self.recovery_time,
            "checking_fraction": self.checking_fraction,
            "wa_actual": self.wa_actual,
            "degraded_p99": self.degraded_p99,
            "cost": self.cost,
        }
        # Pruned at None so artifacts from tenant-probe-free runs stay
        # byte-identical to the pre-tenancy schema.
        if self.tenant_slo_p99 is not None:
            data["tenant_slo_p99"] = self.tenant_slo_p99
        return data

    @classmethod
    def from_dict(cls, blob: Mapping[str, Any]) -> "Measurement":
        return cls(
            signature=blob["signature"],
            settings=dict(blob["settings"]),
            fidelity=Fidelity.from_dict(blob["fidelity"]),
            recovery_time=blob["recovery_time"],
            checking_fraction=blob["checking_fraction"],
            wa_actual=blob["wa_actual"],
            degraded_p99=blob["degraded_p99"],
            cost=int(blob["cost"]),
            tenant_slo_p99=blob.get("tenant_slo_p99"),
        )


def measure_degraded_p99(
    profile: ExperimentProfile, probe: ReadProbe, seed: int
) -> float:
    """Degraded-read p99 latency during the checking window.

    Builds a fresh cluster for ``profile``, ingests the probe's objects,
    fails one data-holding host, and drives an open-loop read load while
    the host is down-but-not-out.  Returns the p99 over degraded
    samples (over all samples if the load happened to dodge the outage).
    """
    seeds = SeedSequence(seed)
    env = Environment()
    cluster = CephCluster(
        env,
        profile.create_code(),
        profile.cache_config(),
        config=profile.ceph,
        num_hosts=profile.num_hosts,
        osds_per_host=profile.osds_per_host,
        num_racks=profile.num_racks,
        pg_num=profile.pg_num,
        stripe_unit=profile.stripe_unit,
        failure_domain=profile.failure_domain,
        disk_spec=profile.disk_spec(),
        placement_seed=seeds.stream("tuner-probe-crush").randrange(2**31),
    )
    for index in range(probe.objects):
        cluster.ingest_object(f"probe-{index}", probe.object_size)
    client = RadosClient(cluster)
    victim = cluster.topology.osds[cluster.pool.pgs[0].acting[0]].host_id
    for osd_id in cluster.topology.hosts[victim].osd_ids:
        cluster.osds[osd_id].host_running = False
    generator = ClientLoadGenerator(
        client,
        interval=probe.interval,
        seeds=SeedSequence(seeds.stream("tuner-probe-load").randrange(2**31)),
    )
    env.run_until_process(generator.run_for(probe.window))
    stats = generator.stats
    if stats.degraded_count:
        return stats.latency_percentile(99, degraded=True)
    return stats.latency_percentile(99)


def measure_tenant_slo_p99(
    profile: ExperimentProfile, probe: TenantProbe, seed: int
) -> float:
    """A reserved SLO tenant's p99 read latency through an outage.

    Builds a fresh cluster for ``profile``, ingests the probe's objects,
    fails one data-holding host, and drives a QoS-enabled two-tenant
    fleet — a latency tenant holding ``probe.reservation`` of every OSD
    beside a saturating poisson batch writer — through the outage
    window.  Returns the latency tenant's p99 over all its reads: how
    well mClock protects the SLO tenant under this configuration.
    """
    seeds = SeedSequence(seed)
    env = Environment()
    cluster = CephCluster(
        env,
        profile.create_code(),
        profile.cache_config(),
        config=profile.ceph,
        num_hosts=profile.num_hosts,
        osds_per_host=profile.osds_per_host,
        num_racks=profile.num_racks,
        pg_num=profile.pg_num,
        stripe_unit=profile.stripe_unit,
        failure_domain=profile.failure_domain,
        disk_spec=profile.disk_spec(),
        placement_seed=seeds.stream("tuner-tenant-crush").randrange(2**31),
    )
    for index in range(probe.objects):
        cluster.ingest_object(f"probe-{index}", probe.object_size)
    victim = cluster.topology.osds[cluster.pool.pgs[0].acting[0]].host_id
    for osd_id in cluster.topology.hosts[victim].osd_ids:
        cluster.osds[osd_id].host_running = False
    fleet_spec = TenantFleetSpec(
        tenants=(
            TenantSpec(
                name="latency",
                interval=probe.interval,
                reservation=probe.reservation,
                weight=4.0,
                slo=SloSpec(p99_latency=1.0),
            ),
            TenantSpec(
                name="batch",
                interval=probe.interval / 2,
                arrival="poisson",
                write_fraction=0.5,
                weight=1.0,
            ),
        ),
        qos_enabled=True,
    )
    fleet = TenantFleet(
        cluster,
        fleet_spec,
        seeds=SeedSequence(seeds.stream("tuner-tenant-load").randrange(2**31)),
    )
    env.run_until_process(fleet.run_for(probe.window))
    return fleet.tenants["latency"].load.stats.latency_percentile(99)


def _evaluate_item(
    args,
) -> Tuple[float, float, float, Optional[float], Optional[float]]:
    """One evaluation work item (module-level for process pools)."""
    (run_cell_fn, profile, object_size, faults, fidelity, probe,
     tenant_probe, seed) = args
    if fidelity.backend == "twin":
        # Analytical rung: same row shape and probe metrics, no DES.
        # Imported lazily so DES-only tuner runs never load the twin.
        from ..twin import (
            predict_degraded_p99,
            predict_tenant_slo_p99,
            twin_run_cell,
        )

        row = twin_run_cell(
            profile,
            Workload(num_objects=fidelity.objects, object_size=object_size),
            faults,
            fidelity.runs,
            seed,
        )
        degraded_p99 = (
            predict_degraded_p99(
                profile,
                objects=probe.objects,
                object_size=probe.object_size,
                interval=probe.interval,
            )
            if probe is not None
            else None
        )
        tenant_slo_p99 = (
            predict_tenant_slo_p99(
                profile,
                objects=tenant_probe.objects,
                object_size=tenant_probe.object_size,
                interval=tenant_probe.interval,
                reservation=tenant_probe.reservation,
            )
            if tenant_probe is not None
            else None
        )
        return (
            row.recovery_time,
            row.checking_fraction,
            row.wa_actual,
            degraded_p99,
            tenant_slo_p99,
        )
    row = run_cell_fn(
        profile,
        Workload(num_objects=fidelity.objects, object_size=object_size),
        faults,
        fidelity.runs,
        seed,
    )
    degraded_p99 = (
        measure_degraded_p99(profile, probe, seed) if probe is not None else None
    )
    tenant_slo_p99 = (
        measure_tenant_slo_p99(profile, tenant_probe, seed)
        if tenant_probe is not None
        else None
    )
    return (
        row.recovery_time,
        row.checking_fraction,
        row.wa_actual,
        degraded_p99,
        tenant_slo_p99,
    )


class Evaluator:
    """Runs points through the simulator under a budget, with memoisation.

    ``run_cell_fn`` defaults to the real single-cell simulation
    (:func:`repro.core.sweep.run_cell`); tests substitute a counting
    stub with the same signature.  ``on_result`` fires once per *fresh*
    measurement, in deterministic batch order — the artifact checkpoint
    hook.
    """

    def __init__(
        self,
        space: TuningSpace,
        *,
        object_size: int = 8 * MB,
        faults: Optional[Sequence[FaultSpec]] = None,
        base_seed: int = 0,
        budget: Optional[int] = None,
        workers: int = 1,
        probe: Optional[ReadProbe] = None,
        tenant_probe: Optional[TenantProbe] = None,
        run_cell_fn: Optional[Callable] = None,
        on_result: Optional[Callable[[Measurement], None]] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if budget is not None and budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if object_size < 1:
            raise ValueError("object_size must be positive")
        self.space = space
        self.object_size = object_size
        self.faults = list(faults) if faults is not None else [FaultSpec(level="node")]
        self.base_seed = base_seed
        self.budget = budget
        self.workers = workers
        self.probe = probe
        self.tenant_probe = tenant_probe
        self.run_cell_fn = run_cell_fn or run_cell
        self.on_result = on_result
        #: Object-runs charged so far (restored from artifacts on resume).
        self.spent = 0
        #: Fresh simulations actually executed by *this* evaluator.
        self.simulations = 0
        self._cache: Dict[Tuple[str, str], Measurement] = {}

    # -- budget ---------------------------------------------------------------------

    @property
    def remaining(self) -> Optional[int]:
        """Object-runs left, or None when unbudgeted."""
        return None if self.budget is None else max(0, self.budget - self.spent)

    def cost_of(self, fidelity: Fidelity) -> int:
        """Budget charge for one fresh evaluation at ``fidelity``."""
        if fidelity.backend == "twin":
            # Analytical all the way down — the probes run through the
            # twin's closed forms too, so nothing hits the simulator.
            return 0
        return (
            fidelity.cost
            + (self.probe.cost if self.probe is not None else 0)
            + (self.tenant_probe.cost if self.tenant_probe is not None else 0)
        )

    def affords(self, count: int, fidelity: Fidelity) -> bool:
        """Whether ``count`` fresh evaluations fit the remaining budget."""
        if self.budget is None:
            return True
        return self.cost_of(fidelity) * count <= self.budget - self.spent

    # -- cache ----------------------------------------------------------------------

    def seed_cache(self, measurements: Sequence[Measurement]) -> None:
        """Preload prior results (resume path).  Charges nothing."""
        for measurement in measurements:
            key = (measurement.signature, measurement.fidelity.key())
            self._cache[key] = measurement

    def cached(self, point: Mapping[str, Any], fidelity: Fidelity) -> Optional[Measurement]:
        return self._cache.get((self.space.signature(point), fidelity.key()))

    # -- evaluation -----------------------------------------------------------------

    def evaluate(self, point: Mapping[str, Any], fidelity: Fidelity) -> Measurement:
        return self.evaluate_many([point], fidelity)[0]

    def evaluate_many(
        self, points: Sequence[Mapping[str, Any]], fidelity: Fidelity
    ) -> List[Measurement]:
        """Evaluate a batch; returns measurements in input order.

        The whole batch is admitted or refused atomically: if the
        uncached portion would overrun the budget, nothing is simulated
        and :class:`BudgetExhaustedError` is raised.
        """
        keys = [(self.space.signature(point), fidelity.key()) for point in points]
        todo: List[Tuple[Tuple[str, str], Mapping[str, Any]]] = []
        seen: set = set()
        for key, point in zip(keys, points):
            if key in self._cache or key in seen:
                continue
            seen.add(key)
            todo.append((key, point))
        charge = len(todo) * self.cost_of(fidelity)
        if self.budget is not None and self.spent + charge > self.budget:
            raise BudgetExhaustedError(
                f"evaluating {len(todo)} fresh point(s) at {fidelity.key()} "
                f"costs {charge} object-runs; only "
                f"{self.budget - self.spent} of {self.budget} remain"
            )
        items = [
            (
                self.run_cell_fn,
                self.space.to_profile(point),
                self.object_size,
                self.faults,
                fidelity,
                self.probe,
                self.tenant_probe,
                self.base_seed,
            )
            for _, point in todo
        ]
        if self.workers == 1 or len(items) <= 1:
            raw = [_evaluate_item(item) for item in items]
        else:
            with ProcessPoolExecutor(max_workers=self.workers) as executor:
                raw = list(executor.map(_evaluate_item, items))
        for (key, point), (recovery, fraction, wa, p99, tenant_p99) in zip(
            todo, raw
        ):
            measurement = Measurement(
                signature=key[0],
                settings=self.space.settings(point),
                fidelity=fidelity,
                recovery_time=recovery,
                checking_fraction=fraction,
                wa_actual=wa,
                degraded_p99=p99,
                cost=self.cost_of(fidelity),
                tenant_slo_p99=tenant_p99,
            )
            self._cache[key] = measurement
            self.spent += measurement.cost
            self.simulations += 1
            if self.on_result is not None:
                self.on_result(measurement)
        return [self._cache[key] for key in keys]
