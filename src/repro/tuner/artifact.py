"""Resumable JSON tuning reports.

Every ``ecfault tune`` run checkpoints one JSON artifact after each
evaluation: the space fingerprint, seed, strategy, budget ledger, every
measurement so far, and — once the run completes — the Pareto front and
the recommendation.  Because the evaluator is deterministic and memoises
by configuration signature, a run resumed from a truncated artifact
replays the strategy's decision sequence against the cached
measurements, re-simulates nothing it already paid for, and lands on the
same final recommendation as an uninterrupted run.

Writes are atomic (temp file + ``os.replace``), so a tuning process
killed mid-checkpoint never leaves an unparseable artifact behind.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from .evaluator import Measurement
from .pareto import Objective

__all__ = [
    "TuningArtifact",
    "TuningArtifactError",
    "save_tuning_artifact",
    "load_tuning_artifact",
]

FORMAT = "ecfault-tuning-report"
VERSION = 1


class TuningArtifactError(ValueError):
    """The file is not a valid tuning report."""


@dataclass(frozen=True)
class TuningArtifact:
    """One tuning run's complete, replayable record."""

    seed: int
    strategy: str
    space: Dict[str, Any]
    budget: Optional[int]
    spent: int
    evaluations: Tuple[Measurement, ...]
    objectives: Tuple[Objective, ...] = ()
    #: Signatures of the non-dominated front (present when complete).
    front: Tuple[str, ...] = ()
    #: The scalarised pick's signature + label (present when complete).
    recommendation: Optional[Dict[str, Any]] = None
    complete: bool = False

    def with_evaluation(self, measurement: Measurement, spent: int) -> "TuningArtifact":
        return replace(
            self,
            evaluations=self.evaluations + (measurement,),
            spent=spent,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": FORMAT,
            "version": VERSION,
            "seed": self.seed,
            "strategy": self.strategy,
            "space": self.space,
            "budget": self.budget,
            "spent": self.spent,
            "evaluations": [m.to_dict() for m in self.evaluations],
            "objectives": [o.to_dict() for o in self.objectives],
            "front": list(self.front),
            "recommendation": self.recommendation,
            "complete": self.complete,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "TuningArtifact":
        if not isinstance(data, dict):
            raise TuningArtifactError("artifact root must be a JSON object")
        if data.get("format") != FORMAT:
            raise TuningArtifactError(
                f"not a {FORMAT} artifact (format={data.get('format')!r})"
            )
        if data.get("version") != VERSION:
            raise TuningArtifactError(
                f"unsupported artifact version {data.get('version')!r} "
                f"(supported: {VERSION})"
            )
        try:
            return cls(
                seed=int(data["seed"]),
                strategy=str(data["strategy"]),
                space=dict(data["space"]),
                budget=data["budget"],
                spent=int(data["spent"]),
                evaluations=tuple(
                    Measurement.from_dict(m) for m in data["evaluations"]
                ),
                objectives=tuple(
                    Objective.from_dict(o) for o in data.get("objectives", [])
                ),
                front=tuple(data.get("front", [])),
                recommendation=data.get("recommendation"),
                complete=bool(data.get("complete", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TuningArtifactError(f"malformed tuning artifact: {exc}") from exc


def save_tuning_artifact(artifact: TuningArtifact, path) -> pathlib.Path:
    """Atomically write an artifact as canonical JSON; returns the path."""
    target = pathlib.Path(path)
    if target.parent:
        target.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(artifact.to_dict(), indent=2, sort_keys=True) + "\n"
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=str(target.parent or ".")
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def load_tuning_artifact(path) -> TuningArtifact:
    """Read and validate a tuning artifact.

    Raises :class:`TuningArtifactError` on anything that is not a
    well-formed report (unreadable file, bad JSON, wrong format marker,
    missing fields).
    """
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except OSError as exc:
        raise TuningArtifactError(f"cannot read artifact {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TuningArtifactError(f"artifact {path} is not valid JSON: {exc}") from exc
    return TuningArtifact.from_dict(data)
