"""Multi-objective scoring: Pareto fronts and scalarised recommendations.

The paper's central finding is that no configuration wins every metric:
Clay repairs with less I/O but amplifies sub-chunked writes; more PGs
parallelise recovery but fragment the cache.  The tuner therefore scores
points against several :class:`Objective`\\ s at once — recovery time,
write amplification, degraded-read p99 — and returns the non-dominated
front, plus one scalarised pick honouring per-objective user budgets.

Dominance is the standard weak-Pareto relation: ``a`` dominates ``b``
when ``a`` is no worse on every objective and strictly better on at
least one.  It is irreflexive and antisymmetric by construction (the
property tests pin this down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .evaluator import Measurement

__all__ = [
    "Objective",
    "RECOVERY_TIME",
    "WRITE_AMPLIFICATION",
    "DEGRADED_P99",
    "TENANT_SLO_P99",
    "default_objectives",
    "dominates",
    "pareto_front",
    "ParetoRecommendation",
    "recommend",
]


@dataclass(frozen=True)
class Objective:
    """One scored dimension of a measurement.

    ``name`` is a :class:`Measurement` attribute; ``sense`` is ``"min"``
    or ``"max"``; ``budget`` (in the objective's native units) marks a
    point infeasible when exceeded; ``weight`` scales the objective's
    share of the scalarised score.
    """

    name: str
    sense: str = "min"
    budget: Optional[float] = None
    weight: float = 1.0

    def __post_init__(self):
        if self.sense not in ("min", "max"):
            raise ValueError(f"sense must be 'min' or 'max', got {self.sense!r}")
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    def value(self, measurement: Measurement) -> float:
        """The raw metric (raises when the measurement lacks it)."""
        value = getattr(measurement, self.name)
        if value is None:
            raise ValueError(
                f"measurement {measurement.label!r} has no {self.name!r} "
                "(was the evaluator's read probe enabled?)"
            )
        return float(value)

    def loss(self, measurement: Measurement) -> float:
        """The metric oriented so that smaller is always better."""
        value = self.value(measurement)
        return value if self.sense == "min" else -value

    def feasible(self, measurement: Measurement) -> bool:
        if self.budget is None:
            return True
        value = self.value(measurement)
        return value <= self.budget if self.sense == "min" else value >= self.budget

    def with_budget(self, budget: Optional[float]) -> "Objective":
        return Objective(self.name, self.sense, budget, self.weight)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "sense": self.sense,
            "budget": self.budget,
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, blob: Mapping[str, Any]) -> "Objective":
        return cls(
            name=blob["name"],
            sense=blob.get("sense", "min"),
            budget=blob.get("budget"),
            weight=blob.get("weight", 1.0),
        )


RECOVERY_TIME = Objective("recovery_time")
WRITE_AMPLIFICATION = Objective("wa_actual")
DEGRADED_P99 = Objective("degraded_p99")
TENANT_SLO_P99 = Objective("tenant_slo_p99")


def default_objectives(
    wa_budget: Optional[float] = None,
    p99_budget: Optional[float] = None,
    include_p99: bool = False,
    tenant_p99_budget: Optional[float] = None,
    include_tenant_p99: bool = False,
) -> Tuple[Objective, ...]:
    """The tuner's stock objective set (recovery first, WA second).

    The tenant objective — the reserved SLO tenant's p99 during an
    outage, from the evaluator's :class:`~.evaluator.TenantProbe` —
    joins the set when requested or budgeted, scoring how well each
    configuration lets mClock protect a latency tenant under recovery
    pressure.
    """
    objectives = [RECOVERY_TIME, WRITE_AMPLIFICATION.with_budget(wa_budget)]
    if include_p99 or p99_budget is not None:
        objectives.append(DEGRADED_P99.with_budget(p99_budget))
    if include_tenant_p99 or tenant_p99_budget is not None:
        objectives.append(TENANT_SLO_P99.with_budget(tenant_p99_budget))
    return tuple(objectives)


def dominates(
    a: Measurement, b: Measurement, objectives: Sequence[Objective]
) -> bool:
    """Weak Pareto dominance: a <= b everywhere, a < b somewhere."""
    if not objectives:
        raise ValueError("need at least one objective")
    strictly_better = False
    for objective in objectives:
        loss_a, loss_b = objective.loss(a), objective.loss(b)
        if loss_a > loss_b:
            return False
        if loss_a < loss_b:
            strictly_better = True
    return strictly_better


def pareto_front(
    measurements: Sequence[Measurement], objectives: Sequence[Objective]
) -> List[Measurement]:
    """The non-dominated subset, preserving input order.

    Duplicate configurations (same signature) collapse to their first
    occurrence before dominance filtering, so a re-evaluated point never
    competes with itself.
    """
    unique: List[Measurement] = []
    seen: set = set()
    for measurement in measurements:
        if measurement.signature not in seen:
            seen.add(measurement.signature)
            unique.append(measurement)
    return [
        candidate
        for candidate in unique
        if not any(
            dominates(other, candidate, objectives)
            for other in unique
            if other is not candidate
        )
    ]


@dataclass(frozen=True)
class ParetoRecommendation:
    """The front plus one scalarised pick under the user's budgets."""

    chosen: Measurement
    front: Tuple[Measurement, ...]
    objectives: Tuple[Objective, ...]
    #: False when no front member met every objective budget and the
    #: recommendation fell back to the best unconstrained trade-off.
    feasible: bool

    def summary(self) -> str:
        lines = [f"recommended configuration: {self.chosen.label}"]
        for objective in self.objectives:
            budget = (
                f"  (budget {objective.budget:g})" if objective.budget is not None else ""
            )
            lines.append(
                f"  {objective.name:<20} {objective.value(self.chosen):.4g}{budget}"
            )
        if not self.feasible:
            lines.append(
                "  WARNING: no configuration met every budget; this is the "
                "best unconstrained trade-off"
            )
        lines.append(
            f"  Pareto front: {len(self.front)} non-dominated configuration(s)"
        )
        return "\n".join(lines)


def recommend(
    measurements: Sequence[Measurement],
    objectives: Sequence[Objective],
) -> ParetoRecommendation:
    """Scalarised pick from the Pareto front.

    Budget-feasible front members are preferred; among candidates, each
    objective is min-max normalised over the front and the
    weighted sum decides (ties broken by signature for determinism).
    """
    if not measurements:
        raise ValueError("no measurements to recommend from")
    front = pareto_front(measurements, objectives)
    feasible = [
        m for m in front if all(o.feasible(m) for o in objectives)
    ]
    pool = feasible or front
    spans = {}
    for objective in objectives:
        losses = [objective.loss(m) for m in front]
        spans[objective.name] = (min(losses), max(losses))

    def score(measurement: Measurement) -> float:
        total = 0.0
        for objective in objectives:
            lo, hi = spans[objective.name]
            loss = objective.loss(measurement)
            total += objective.weight * ((loss - lo) / (hi - lo) if hi > lo else 0.0)
        return total

    chosen = min(pool, key=lambda m: (score(m), m.signature))
    return ParetoRecommendation(
        chosen=chosen,
        front=tuple(front),
        objectives=tuple(objectives),
        feasible=bool(feasible),
    )
