"""The tuning loop: strategy x evaluator x artifact, end to end.

:func:`tune` wires the pieces together: it builds the budgeted
evaluator, replays any prior artifact into its cache (resume), runs the
strategy, computes the Pareto front and scalarised recommendation over
the top-fidelity measurements, and checkpoints a resumable artifact
after every single evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.fault_injector import FaultSpec
from .artifact import (
    TuningArtifact,
    TuningArtifactError,
    load_tuning_artifact,
    save_tuning_artifact,
)
from .evaluator import Evaluator, Measurement, ReadProbe, TenantProbe
from .pareto import Objective, ParetoRecommendation, default_objectives, recommend
from .space import TuningSpace
from .strategies import Strategy

__all__ = ["TuningOutcome", "tune"]

MB = 1024 * 1024


@dataclass(frozen=True)
class TuningOutcome:
    """Everything one tuning run produced."""

    artifact: TuningArtifact
    evaluations: Tuple[Measurement, ...]
    front: Tuple[Measurement, ...]
    recommendation: Optional[ParetoRecommendation]
    spent: int
    simulations: int

    @property
    def budget(self) -> Optional[int]:
        return self.artifact.budget


def _top_fidelity_measurements(
    evaluations: Sequence[Measurement],
) -> List[Measurement]:
    """The measurements taken at the most expensive fidelity present.

    Fronts must compare like with like: recovery time scales with the
    simulated object count, so mixing rungs would crown low-fidelity
    noise.  The recommendation is therefore made only over the final
    (highest-cost) rung.
    """
    if not evaluations:
        return []
    top = max(m.fidelity.cost for m in evaluations)
    return [m for m in evaluations if m.fidelity.cost == top]


def tune(
    space: TuningSpace,
    strategy: Strategy,
    *,
    seed: int = 0,
    object_size: int = 8 * MB,
    faults: Optional[Sequence[FaultSpec]] = None,
    budget: Optional[int] = None,
    workers: int = 1,
    probe: Optional[ReadProbe] = None,
    tenant_probe: Optional[TenantProbe] = None,
    objectives: Optional[Sequence[Objective]] = None,
    artifact_path=None,
    resume: bool = False,
    run_cell_fn: Optional[Callable] = None,
    on_progress: Optional[Callable[[Measurement, Evaluator], None]] = None,
) -> TuningOutcome:
    """Run one budgeted tuning session; returns the full outcome.

    With ``resume=True`` and an existing ``artifact_path``, prior
    evaluations are replayed into the evaluator's cache and the budget
    ledger is restored, so the strategy re-traces its deterministic
    decision path without re-simulating anything already paid for.  The
    artifact must match this run's space, seed and strategy.
    """
    if objectives is None:
        objectives = default_objectives(
            include_p99=probe is not None,
            include_tenant_p99=tenant_probe is not None,
        )
    objectives = tuple(objectives)

    prior: Optional[TuningArtifact] = None
    if resume:
        if artifact_path is None:
            raise ValueError("resume=True requires an artifact_path")
        prior = load_tuning_artifact(artifact_path)
        if prior.space != space.describe():
            raise TuningArtifactError(
                "artifact was produced for a different tuning space"
            )
        if prior.seed != seed:
            raise TuningArtifactError(
                f"artifact seed {prior.seed} != requested seed {seed}"
            )
        if prior.strategy != strategy.name:
            raise TuningArtifactError(
                f"artifact strategy {prior.strategy!r} != {strategy.name!r}"
            )
        if prior.budget != budget:
            raise TuningArtifactError(
                f"artifact budget {prior.budget!r} != requested {budget!r}"
            )

    log: List[Measurement] = list(prior.evaluations) if prior else []
    artifact = TuningArtifact(
        seed=seed,
        strategy=strategy.name,
        space=space.describe(),
        budget=budget,
        spent=prior.spent if prior else 0,
        evaluations=tuple(log),
        objectives=objectives,
    )

    state = {"artifact": artifact}

    def record(measurement: Measurement) -> None:
        log.append(measurement)
        state["artifact"] = state["artifact"].with_evaluation(
            measurement, evaluator.spent
        )
        if artifact_path is not None:
            save_tuning_artifact(state["artifact"], artifact_path)
        if on_progress is not None:
            on_progress(measurement, evaluator)

    evaluator = Evaluator(
        space,
        object_size=object_size,
        faults=faults,
        base_seed=seed,
        budget=budget,
        workers=workers,
        probe=probe,
        tenant_probe=tenant_probe,
        run_cell_fn=run_cell_fn,
        on_result=record,
    )
    if prior is not None:
        evaluator.seed_cache(prior.evaluations)
        evaluator.spent = prior.spent

    strategy.search(space, evaluator, seed)

    finals = _top_fidelity_measurements(log)
    recommendation = recommend(finals, objectives) if finals else None
    final_artifact = state["artifact"]
    final_artifact = TuningArtifact(
        seed=final_artifact.seed,
        strategy=final_artifact.strategy,
        space=final_artifact.space,
        budget=final_artifact.budget,
        spent=evaluator.spent,
        evaluations=tuple(log),
        objectives=objectives,
        front=tuple(m.signature for m in recommendation.front)
        if recommendation
        else (),
        recommendation=(
            {
                "signature": recommendation.chosen.signature,
                "label": recommendation.chosen.label,
                "settings": recommendation.chosen.settings,
                "feasible": recommendation.feasible,
            }
            if recommendation
            else None
        ),
        complete=True,
    )
    if artifact_path is not None:
        save_tuning_artifact(final_artifact, artifact_path)
    return TuningOutcome(
        artifact=final_artifact,
        evaluations=tuple(log),
        front=tuple(recommendation.front) if recommendation else (),
        recommendation=recommendation,
        spent=evaluator.spent,
        simulations=evaluator.simulations,
    )
