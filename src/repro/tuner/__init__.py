"""Budgeted configuration auto-tuning (the paper's §6 "intelligent
mechanisms for tuning EC-based DSS automatically").

The subsystem turns the repo from "measure configurations" into "find
good configurations under a simulation budget":

* :mod:`~repro.tuner.space` — a typed parameter-space DSL with
  cross-axis constraints;
* :mod:`~repro.tuner.evaluator` — a budget-accounted, memoising,
  parallel-safe evaluator over the simulator;
* :mod:`~repro.tuner.strategies` — seeded random search, coordinate
  descent (axis order from the sensitivity analysis), and successive
  halving;
* :mod:`~repro.tuner.pareto` — multi-objective fronts and scalarised
  recommendations under user budgets;
* :mod:`~repro.tuner.artifact` / :mod:`~repro.tuner.runner` — resumable
  JSON tuning reports and the end-to-end :func:`tune` loop behind
  ``ecfault tune``.
"""

from .artifact import (
    TuningArtifact,
    TuningArtifactError,
    load_tuning_artifact,
    save_tuning_artifact,
)
from .evaluator import (
    BudgetExhaustedError,
    Evaluator,
    Fidelity,
    Measurement,
    ReadProbe,
    TenantProbe,
    measure_degraded_p99,
    measure_tenant_slo_p99,
)
from .pareto import (
    DEGRADED_P99,
    RECOVERY_TIME,
    TENANT_SLO_P99,
    WRITE_AMPLIFICATION,
    Objective,
    ParetoRecommendation,
    default_objectives,
    dominates,
    pareto_front,
    recommend,
)
from .runner import TuningOutcome, tune
from .space import (
    Axis,
    CategoricalAxis,
    Constraint,
    EcVariantAxis,
    IntRangeAxis,
    LogScaleAxis,
    PowerOfTwoAxis,
    TuningSpace,
    pool_width_fits,
    stripe_unit_divides,
)
from .strategies import (
    CoordinateDescent,
    RandomSearch,
    Strategy,
    SuccessiveHalving,
    by_recovery_time,
)

__all__ = [
    "TuningArtifact",
    "TuningArtifactError",
    "load_tuning_artifact",
    "save_tuning_artifact",
    "BudgetExhaustedError",
    "Evaluator",
    "Fidelity",
    "Measurement",
    "ReadProbe",
    "TenantProbe",
    "measure_degraded_p99",
    "measure_tenant_slo_p99",
    "DEGRADED_P99",
    "RECOVERY_TIME",
    "TENANT_SLO_P99",
    "WRITE_AMPLIFICATION",
    "Objective",
    "ParetoRecommendation",
    "default_objectives",
    "dominates",
    "pareto_front",
    "recommend",
    "TuningOutcome",
    "tune",
    "Axis",
    "CategoricalAxis",
    "Constraint",
    "EcVariantAxis",
    "IntRangeAxis",
    "LogScaleAxis",
    "PowerOfTwoAxis",
    "TuningSpace",
    "pool_width_fits",
    "stripe_unit_divides",
    "Strategy",
    "RandomSearch",
    "CoordinateDescent",
    "SuccessiveHalving",
    "by_recovery_time",
]
