"""Search strategies: how to spend a simulation budget on a space.

Three strategies behind one :class:`Strategy` interface, all seeded and
deterministic:

* :class:`RandomSearch` — the classic strong baseline: distinct valid
  points sampled uniformly, each evaluated at one fidelity.
* :class:`CoordinateDescent` — hill climbing one axis at a time.  The
  coordinate order is not fixed: an initial screening sample is ranked
  with the sensitivity analysis's :func:`~repro.analysis.rank_axes`, so
  the climb works the highest-impact axis first (pg_num before cache
  scheme, per the paper's Fig 2).
* :class:`SuccessiveHalving` — the multi-fidelity screen-and-promote
  loop: evaluate many configurations cheaply (few objects), keep the
  top ``1/eta`` per rung, re-evaluate survivors at the next fidelity,
  until the final rung runs at full fidelity.

Every strategy stops cleanly on :class:`BudgetExhaustedError`, returning
what it measured so far; the budget is a hard ceiling, never overdrawn.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.sensitivity import rank_axes
from .evaluator import BudgetExhaustedError, Evaluator, Fidelity, Measurement
from .space import EC_AXIS, TuningSpace

__all__ = [
    "by_recovery_time",
    "Strategy",
    "RandomSearch",
    "CoordinateDescent",
    "SuccessiveHalving",
]


def by_recovery_time(measurement: Measurement) -> float:
    """The default search objective: §4's headline metric."""
    return measurement.recovery_time


class Strategy:
    """One budgeted search policy over a tuning space."""

    name = "strategy"

    def __init__(self, objective: Callable[[Measurement], float] = by_recovery_time):
        self.objective = objective

    def search(
        self, space: TuningSpace, evaluator: Evaluator, seed: int
    ) -> List[Measurement]:
        """Run the search; returns fresh+cached measurements in use order."""
        raise NotImplementedError

    def _rank(self, measurements: Sequence[Measurement]) -> List[Measurement]:
        """Objective-ascending, signature-tiebroken (deterministic)."""
        return sorted(measurements, key=lambda m: (self.objective(m), m.signature))


class RandomSearch(Strategy):
    """Seeded uniform sampling of distinct valid points."""

    name = "random"

    def __init__(
        self,
        samples: int,
        fidelity: Fidelity,
        objective: Callable[[Measurement], float] = by_recovery_time,
    ):
        super().__init__(objective)
        if samples < 1:
            raise ValueError("samples must be >= 1")
        self.samples = samples
        self.fidelity = fidelity

    def search(
        self, space: TuningSpace, evaluator: Evaluator, seed: int
    ) -> List[Measurement]:
        from ..sim.rng import SeedSequence

        rng = SeedSequence(seed).stream("tuner-random")
        count = min(self.samples, len(space.enumerate()))
        points = space.sample(rng, count)
        measured: List[Measurement] = []
        for point in points:
            try:
                measured.append(evaluator.evaluate(point, self.fidelity))
            except BudgetExhaustedError:
                break
        return measured


class CoordinateDescent(Strategy):
    """Axis-at-a-time hill climbing, highest-impact axis first.

    A screening sample seeds both the climb's starting point (its best
    member) and the coordinate order: the sample is fed through
    :func:`repro.analysis.rank_axes` and axes are climbed in descending
    impact order.  Each climb step evaluates every value of one axis
    with the other coordinates pinned, moves to the best, and the loop
    repeats for ``rounds`` passes or until a full pass improves nothing.
    """

    name = "coordinate"

    def __init__(
        self,
        fidelity: Fidelity,
        screen: int = 6,
        rounds: int = 2,
        objective: Callable[[Measurement], float] = by_recovery_time,
    ):
        super().__init__(objective)
        if screen < 2:
            raise ValueError("screen must be >= 2 (impact ranking needs contrast)")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.fidelity = fidelity
        self.screen = screen
        self.rounds = rounds

    def _axis_order(
        self, space: TuningSpace, screened: Sequence[Measurement]
    ) -> List[str]:
        """Axis names in descending recovery-time impact."""
        multi_valued = [axis.name for axis in space.axes if len(axis) > 1]
        if len(screened) < 2 or len(multi_valued) < 2:
            return multi_valued
        # rank_axes speaks sweep settings, where the EC axis appears as
        # the plugin name.
        rank_names = [
            "ec_plugin" if name == EC_AXIS else name for name in multi_valued
        ]
        rows = [m.to_sweep_result() for m in screened]
        ranked = rank_axes(rows, rank_names)
        order = ["ec" if impact.axis == "ec_plugin" else impact.axis
                 for impact in ranked]
        return order

    def search(
        self, space: TuningSpace, evaluator: Evaluator, seed: int
    ) -> List[Measurement]:
        from ..sim.rng import SeedSequence

        rng = SeedSequence(seed).stream("tuner-coordinate")
        measured: List[Measurement] = []
        try:
            screen_count = min(self.screen, len(space.enumerate()))
            for point in space.sample(rng, screen_count):
                measured.append(evaluator.evaluate(point, self.fidelity))
        except BudgetExhaustedError:
            return measured
        order = self._axis_order(space, measured)
        best = self._rank(measured)[0]
        current: Dict[str, Any] = {
            axis.name: best.settings[axis.name]
            if axis.name != EC_AXIS
            else (best.settings["ec_plugin"],
                  tuple(sorted(best.settings["ec_params"].items())))
            for axis in space.axes
        }
        axes_by_name = {axis.name: axis for axis in space.axes}
        try:
            for _ in range(self.rounds):
                improved = False
                for name in order:
                    candidates = []
                    for value in axes_by_name[name].values():
                        candidate = dict(current, **{name: value})
                        if space.is_valid(candidate):
                            candidates.append(candidate)
                    step = [
                        evaluator.evaluate(candidate, self.fidelity)
                        for candidate in candidates
                    ]
                    known = {m.signature for m in measured}
                    measured.extend(
                        m for m in step if m.signature not in known
                    )
                    winner = self._rank(step)[0]
                    if self.objective(winner) < self.objective(
                        evaluator.evaluate(current, self.fidelity)
                    ):
                        improved = True
                    current = next(
                        c for c, m in zip(candidates, step)
                        if m.signature == winner.signature
                    )
                if not improved:
                    break
        except BudgetExhaustedError:
            pass
        return measured


class SuccessiveHalving(Strategy):
    """Multi-fidelity screening: evaluate broadly, promote the top 1/eta.

    ``fidelities`` is the rung ladder, cheapest first; the final rung is
    the full-fidelity measurement the recommendation is made at.  With
    ``initial=None`` rung 0 evaluates the whole (constraint-filtered)
    grid; an integer samples that many distinct points instead.
    """

    name = "halving"

    def __init__(
        self,
        fidelities: Sequence[Fidelity],
        eta: int = 4,
        initial: Optional[int] = None,
        objective: Callable[[Measurement], float] = by_recovery_time,
    ):
        super().__init__(objective)
        if not fidelities:
            raise ValueError("need at least one fidelity rung")
        costs = [fidelity.cost for fidelity in fidelities]
        if costs != sorted(costs):
            raise ValueError("fidelities must be ordered cheapest first")
        if eta < 2:
            raise ValueError("eta must be >= 2")
        if initial is not None and initial < 1:
            raise ValueError("initial must be >= 1")
        self.fidelities = tuple(fidelities)
        self.eta = eta
        self.initial = initial

    def rungs(self, population: int) -> List[int]:
        """Survivor counts per rung for an initial population."""
        counts = [population]
        for _ in self.fidelities[1:]:
            counts.append(max(1, math.ceil(counts[-1] / self.eta)))
        return counts

    def search(
        self, space: TuningSpace, evaluator: Evaluator, seed: int
    ) -> List[Measurement]:
        from ..sim.rng import SeedSequence

        if self.initial is None:
            survivors = space.enumerate()
        else:
            rng = SeedSequence(seed).stream("tuner-halving")
            count = min(self.initial, len(space.enumerate()))
            survivors = space.sample(rng, count)
        measured: List[Measurement] = []
        for rung, fidelity in enumerate(self.fidelities):
            if not evaluator.affords(
                len(survivors)
                - sum(
                    1 for p in survivors
                    if evaluator.cached(p, fidelity) is not None
                ),
                fidelity,
            ):
                break
            rung_results = evaluator.evaluate_many(survivors, fidelity)
            measured.extend(rung_results)
            if rung == len(self.fidelities) - 1:
                break
            keep = max(1, math.ceil(len(survivors) / self.eta))
            ranked = self._rank(rung_results)[:keep]
            keep_signatures = [m.signature for m in ranked]
            by_signature = {
                m.signature: p for p, m in zip(survivors, rung_results)
            }
            survivors = [by_signature[s] for s in keep_signatures]
        return measured
