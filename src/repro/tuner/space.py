"""Typed parameter-space DSL for the configuration tuner.

The paper sweeps hand-picked grids; the tuner searches *spaces*.  A
:class:`TuningSpace` pairs a base :class:`ExperimentProfile` with typed
axes — categorical values, integer ranges, powers of two, log-scale
grids, and whole EC variants — plus cross-axis :class:`Constraint`\\ s
(``k+m <= num_osds``, stripe-unit divisibility, ...).  The space can
enumerate every valid point, rejection-sample valid points from a seeded
RNG, validate arbitrary points, and render any point as a runnable
profile or as a canonical signature string the evaluator memoises by.

A *point* is a plain ``dict`` mapping axis names to values; the special
axis name ``"ec"`` carries a ``(plugin, params)`` pair and expands to the
profile's ``ec_plugin``/``ec_params`` fields.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, Sequence, Tuple

from ..core.profile import ExperimentProfile

__all__ = [
    "Axis",
    "CategoricalAxis",
    "IntRangeAxis",
    "PowerOfTwoAxis",
    "LogScaleAxis",
    "EcVariantAxis",
    "Constraint",
    "pool_width_fits",
    "stripe_unit_divides",
    "TuningSpace",
    "canonical_settings",
    "point_signature",
]

#: The reserved axis name that sweeps whole (plugin, params) EC variants.
EC_AXIS = "ec"


class Axis:
    """One searchable configuration dimension.

    Subclasses define the value set; the base class provides sampling
    and membership in terms of :meth:`values`.
    """

    name: str

    def values(self) -> Tuple[Any, ...]:
        """Every value this axis can take, in canonical order."""
        raise NotImplementedError

    def sample(self, rng) -> Any:
        """One uniformly random value from a seeded RNG stream."""
        options = self.values()
        return options[rng.randrange(len(options))]

    def contains(self, value: Any) -> bool:
        return value in self.values()

    def __len__(self) -> int:
        return len(self.values())


@dataclass(frozen=True)
class CategoricalAxis(Axis):
    """An unordered, explicitly-listed value set (e.g. cache schemes)."""

    name: str
    choices: Tuple[Any, ...]

    def __post_init__(self):
        object.__setattr__(self, "choices", tuple(self.choices))
        if not self.choices:
            raise ValueError(f"axis {self.name!r} has no values")
        if len(set(map(repr, self.choices))) != len(self.choices):
            raise ValueError(f"axis {self.name!r} has duplicate values")

    def values(self) -> Tuple[Any, ...]:
        return self.choices


@dataclass(frozen=True)
class IntRangeAxis(Axis):
    """Integers ``lo..hi`` inclusive, stepped by ``step``."""

    name: str
    lo: int
    hi: int
    step: int = 1

    def __post_init__(self):
        if self.step < 1:
            raise ValueError(f"axis {self.name!r}: step must be >= 1")
        if self.hi < self.lo:
            raise ValueError(f"axis {self.name!r}: hi < lo")

    def values(self) -> Tuple[int, ...]:
        return tuple(range(self.lo, self.hi + 1, self.step))


@dataclass(frozen=True)
class PowerOfTwoAxis(Axis):
    """Every power of two in ``[lo, hi]`` (pg_num-shaped axes)."""

    name: str
    lo: int
    hi: int

    def __post_init__(self):
        if self.lo < 1 or self.hi < self.lo:
            raise ValueError(f"axis {self.name!r}: need 1 <= lo <= hi")
        if not self.values():
            raise ValueError(f"axis {self.name!r}: no powers of two in range")

    def values(self) -> Tuple[int, ...]:
        out: List[int] = []
        power = 1
        while power <= self.hi:
            if power >= self.lo:
                out.append(power)
            power *= 2
        return tuple(out)


@dataclass(frozen=True)
class LogScaleAxis(Axis):
    """``points`` geometrically spaced integers from ``lo`` to ``hi``.

    Natural for byte-sized axes like ``stripe_unit`` where the paper
    itself sweeps 4KB/4MB/64MB — three decades, not three steps.
    """

    name: str
    lo: int
    hi: int
    points: int

    def __post_init__(self):
        if self.lo < 1 or self.hi < self.lo:
            raise ValueError(f"axis {self.name!r}: need 1 <= lo <= hi")
        if self.points < 2 and self.lo != self.hi:
            raise ValueError(f"axis {self.name!r}: need >= 2 points")

    def values(self) -> Tuple[int, ...]:
        if self.lo == self.hi:
            return (self.lo,)
        ratio = (self.hi / self.lo) ** (1.0 / (self.points - 1))
        out: List[int] = []
        for i in range(self.points):
            value = int(round(self.lo * ratio**i))
            if not out or value != out[-1]:
                out.append(value)
        out[-1] = self.hi
        return tuple(out)


@dataclass(frozen=True)
class EcVariantAxis(Axis):
    """Whole ``(plugin, params)`` erasure-code variants as one axis."""

    variants: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...]
    name: str = EC_AXIS

    def __post_init__(self):
        if self.name != EC_AXIS:
            raise ValueError(f"EC axis must be named {EC_AXIS!r}")
        frozen = tuple(
            (plugin, tuple(sorted(dict(params).items())))
            for plugin, params in self.variants
        )
        object.__setattr__(self, "variants", frozen)
        if not frozen:
            raise ValueError("EC axis has no variants")
        if len(set(frozen)) != len(frozen):
            raise ValueError("EC axis has duplicate variants")

    def values(self) -> Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...]:
        return self.variants


@dataclass(frozen=True)
class Constraint:
    """A named cross-axis validity predicate.

    ``predicate(settings, base)`` receives the *canonical settings* of a
    point (axis values with the EC axis expanded to ``ec_plugin`` /
    ``ec_params``, defaults filled from the base profile) plus the base
    profile, and returns True when the point is admissible.
    """

    name: str
    predicate: Callable[[Mapping[str, Any], ExperimentProfile], bool]
    description: str = ""

    def holds(self, settings: Mapping[str, Any], base: ExperimentProfile) -> bool:
        return bool(self.predicate(settings, base))


def _ec_width(params: Mapping[str, Any]) -> int:
    """Pool width (total chunks) from a plugin's parameters."""
    k = int(params["k"])
    if "m" in params:
        return k + int(params["m"])
    # LRC-style: l local + r global parities.
    return k + int(params.get("l", 0)) + int(params.get("r", 0))


def pool_width_fits() -> Constraint:
    """``k+m <= num_osds`` — and per-host placement needs one host per chunk."""

    def check(settings: Mapping[str, Any], base: ExperimentProfile) -> bool:
        width = _ec_width(settings["ec_params"])
        num_hosts = int(settings.get("num_hosts", base.num_hosts))
        per_host = int(settings.get("osds_per_host", base.osds_per_host))
        if width > num_hosts * per_host:
            return False
        domain = settings.get("failure_domain", base.failure_domain)
        if domain == "host" and width > num_hosts:
            return False
        return True

    return Constraint(
        name="pool-width-fits",
        predicate=check,
        description="EC width k+m must fit the cluster (and one host per "
                    "chunk under a host failure domain)",
    )


def stripe_unit_divides(object_size: int) -> Constraint:
    """``object_size % stripe_unit == 0`` — no ragged trailing stripe."""
    if object_size < 1:
        raise ValueError("object_size must be positive")

    def check(settings: Mapping[str, Any], base: ExperimentProfile) -> bool:
        stripe_unit = int(settings.get("stripe_unit", base.stripe_unit))
        return object_size % stripe_unit == 0

    return Constraint(
        name="stripe-unit-divides",
        predicate=check,
        description=f"stripe_unit must divide the {object_size}-byte objects",
    )


def canonical_settings(
    point: Mapping[str, Any], base: ExperimentProfile
) -> Dict[str, Any]:
    """A point's full, canonical settings dict.

    Always contains ``ec_plugin``, ``ec_params`` (a plain sorted dict)
    and the Table-1 fields the sensitivity analysis ranks, with defaults
    filled from the base profile; plus any extra axes the point sets.
    """
    settings: Dict[str, Any] = {
        "ec_plugin": base.ec_plugin,
        "ec_params": dict(sorted(base.ec_params.items())),
        "pg_num": base.pg_num,
        "stripe_unit": base.stripe_unit,
        "cache_scheme": base.cache_scheme,
        "failure_domain": base.failure_domain,
    }
    for name, value in point.items():
        if name == EC_AXIS:
            plugin, params = value
            settings["ec_plugin"] = plugin
            settings["ec_params"] = dict(sorted(dict(params).items()))
        else:
            settings[name] = value
    return settings


def point_signature(point: Mapping[str, Any], base: ExperimentProfile) -> str:
    """Canonical, order-independent identity of a configuration.

    Two points that resolve to the same full settings — regardless of
    dict ordering or tuple-vs-dict EC params — share a signature; the
    evaluator uses it as the memoisation key.
    """
    return json.dumps(canonical_settings(point, base), sort_keys=True)


class TuningSpace:
    """A searchable configuration space around a base profile."""

    def __init__(
        self,
        base: ExperimentProfile,
        axes: Sequence[Axis],
        constraints: Sequence[Constraint] = (),
    ):
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {names}")
        if not axes:
            raise ValueError("a tuning space needs at least one axis")
        for axis in axes:
            if axis.name != EC_AXIS and not hasattr(base, axis.name):
                raise ValueError(f"unknown profile field {axis.name!r}")
        self.base = base
        self.axes: Tuple[Axis, ...] = tuple(axes)
        self.constraints: Tuple[Constraint, ...] = tuple(constraints)

    # -- geometry -------------------------------------------------------------------

    def size(self) -> int:
        """Grid cardinality *before* constraint filtering."""
        cells = 1
        for axis in self.axes:
            cells *= len(axis)
        return cells

    def violated(self, point: Mapping[str, Any]) -> List[str]:
        """Names of every constraint the point breaks (empty = valid)."""
        for name in point:
            if name not in {axis.name for axis in self.axes}:
                raise KeyError(f"point sets unknown axis {name!r}")
        for axis in self.axes:
            if axis.name in point and not axis.contains(point[axis.name]):
                raise ValueError(
                    f"value {point[axis.name]!r} not on axis {axis.name!r}"
                )
        settings = canonical_settings(point, self.base)
        return [
            constraint.name
            for constraint in self.constraints
            if not constraint.holds(settings, self.base)
        ]

    def is_valid(self, point: Mapping[str, Any]) -> bool:
        return not self.violated(point)

    def enumerate(self) -> List[Dict[str, Any]]:
        """Every valid point, in deterministic grid order."""
        return list(self._iter_valid())

    def _iter_valid(self) -> Iterator[Dict[str, Any]]:
        def expand(index: int, partial: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
            if index == len(self.axes):
                if self.is_valid(partial):
                    yield dict(partial)
                return
            axis = self.axes[index]
            for value in axis.values():
                partial[axis.name] = value
                yield from expand(index + 1, partial)
            del partial[axis.name]

        yield from expand(0, {})

    def sample(self, rng, count: int, max_attempts: int = 10_000) -> List[Dict[str, Any]]:
        """``count`` distinct valid points by seeded rejection sampling.

        Deterministic for a given RNG stream.  Raises if the space
        cannot yield that many distinct valid points within
        ``max_attempts`` draws (dense constraint rejection or a space
        smaller than ``count``).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        points: List[Dict[str, Any]] = []
        seen: set = set()
        for _ in range(max_attempts):
            if len(points) >= count:
                return points
            point = {axis.name: axis.sample(rng) for axis in self.axes}
            signature = self.signature(point)
            if signature in seen or not self.is_valid(point):
                continue
            seen.add(signature)
            points.append(point)
        if len(points) >= count:
            return points
        raise ValueError(
            f"could not sample {count} distinct valid points in "
            f"{max_attempts} attempts (got {len(points)}; space size "
            f"{self.size()} before constraints)"
        )

    # -- rendering ------------------------------------------------------------------

    def signature(self, point: Mapping[str, Any]) -> str:
        return point_signature(point, self.base)

    def settings(self, point: Mapping[str, Any]) -> Dict[str, Any]:
        return canonical_settings(point, self.base)

    def to_profile(self, point: Mapping[str, Any]) -> ExperimentProfile:
        """Render a point as a runnable profile (labelled like sweep cells)."""
        overrides: Dict[str, Any] = {}
        for name, value in point.items():
            if name == EC_AXIS:
                plugin, params = value
                overrides["ec_plugin"] = plugin
                overrides["ec_params"] = dict(params)
            else:
                overrides[name] = value
        label_parts = [overrides.get("ec_plugin", self.base.ec_plugin)] + [
            f"{name}={value}"
            for name, value in sorted(overrides.items())
            if name not in ("ec_plugin", "ec_params")
        ]
        overrides["name"] = "/".join(label_parts)
        return self.base.with_overrides(**overrides)

    def describe(self) -> Dict[str, Any]:
        """A JSON-able fingerprint of the space (stored in artifacts)."""
        axes = [
            {
                "name": axis.name,
                "type": type(axis).__name__,
                "values": list(axis.values()),
            }
            for axis in self.axes
        ]
        # Round-trip through JSON so the fingerprint compares equal to a
        # reloaded artifact's copy (tuples normalise to lists).
        return json.loads(json.dumps({
            "base": self.base.name,
            "axes": axes,
            "constraints": [c.name for c in self.constraints],
        }, default=str))

    def fingerprint(self) -> str:
        return json.dumps(self.describe(), sort_keys=True, default=str)
