"""Virtual NVMe-oF disk provisioning (the paper's §3.1).

ECFault decouples OSD hosts from their storage by exporting virtual NVMe
namespaces over NVMe-oF and attaching them back as local devices — in the
real system via ``nvmetcli``.  This module models that control plane: a
per-host :class:`NvmeTarget` creates subsystems, the Worker attaches them
to OSDs, and *removing a subsystem is the device-level fault primitive*
(§3.2): the backing disk immediately fails all I/O, exactly what a
yanked NVMe namespace looks like to BlueStore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .devices import Disk

__all__ = ["NvmeSubsystem", "NvmeTarget", "SubsystemNotFoundError"]


class SubsystemNotFoundError(KeyError):
    """Operation on an NQN that is not exported by this target."""


@dataclass
class NvmeSubsystem:
    """One exported NVMe subsystem (a single-namespace model).

    ``nqn`` is the NVMe Qualified Name; ``backing`` is the simulated
    device serving the namespace; ``attached_osd`` records which OSD
    consumed it, if any.
    """

    nqn: str
    backing: Disk
    attached_osd: Optional[int] = None

    @property
    def connected(self) -> bool:
        return self.attached_osd is not None


class NvmeTarget:
    """The nvmet configuration of one DataNode (an nvmetcli stand-in)."""

    def __init__(self, host_name: str):
        self.host_name = host_name
        self.subsystems: Dict[str, NvmeSubsystem] = {}
        self.removed_nqns: list = []

    def create_subsystem(self, nqn: str, backing: Disk) -> NvmeSubsystem:
        """Export ``backing`` under ``nqn`` (``nvmetcli`` create)."""
        if nqn in self.subsystems:
            raise ValueError(f"subsystem {nqn!r} already exists on {self.host_name}")
        subsystem = NvmeSubsystem(nqn=nqn, backing=backing)
        self.subsystems[nqn] = subsystem
        return subsystem

    def connect(self, nqn: str, osd_id: int) -> Disk:
        """Attach the namespace to an OSD as its local device."""
        subsystem = self._lookup(nqn)
        if subsystem.connected:
            raise ValueError(f"subsystem {nqn!r} already attached to osd.{subsystem.attached_osd}")
        subsystem.attached_osd = osd_id
        return subsystem.backing

    def remove_subsystem(self, nqn: str) -> NvmeSubsystem:
        """Tear down the subsystem — the device-level fault injection.

        The backing disk fails instantly; the consuming OSD observes I/O
        errors on its next access, as with ``nvmetcli`` removal in the
        real framework.
        """
        subsystem = self._lookup(nqn)
        del self.subsystems[nqn]
        self.removed_nqns.append(nqn)
        subsystem.backing.fail()
        return subsystem

    def restore_subsystem(self, subsystem: NvmeSubsystem) -> None:
        """Re-export a previously removed subsystem (experiment teardown)."""
        if subsystem.nqn in self.subsystems:
            raise ValueError(f"subsystem {subsystem.nqn!r} already present")
        subsystem.backing.restore()
        self.subsystems[subsystem.nqn] = subsystem

    def degrade_subsystem(self, nqn: str, factor: float) -> NvmeSubsystem:
        """Gray device fault: the namespace limps instead of dying.

        Service times of the backing device inflate by ``factor`` while
        I/O keeps succeeding — the classic slow-disk gray failure.  The
        namespace stays exported and the consuming OSD keeps
        heartbeating, so nothing in the control plane reacts.
        """
        subsystem = self._lookup(nqn)
        subsystem.backing.set_slow_factor(factor)
        return subsystem

    def restore_subsystem_speed(self, nqn: str) -> NvmeSubsystem:
        """Clear a slow-device degradation (experiment teardown)."""
        subsystem = self._lookup(nqn)
        subsystem.backing.set_slow_factor(1.0)
        return subsystem

    def _lookup(self, nqn: str) -> NvmeSubsystem:
        try:
            return self.subsystems[nqn]
        except KeyError:
            raise SubsystemNotFoundError(
                f"no subsystem {nqn!r} on {self.host_name}"
            ) from None


def default_nqn(host_name: str, index: int) -> str:
    """The NQN naming convention ECFault provisions under."""
    return f"nqn.2024-07.io.ecfault:{host_name}:ns{index}"
