"""Pools, placement groups, and object placement state.

A :class:`Pool` owns ``pg_num`` placement groups; each PG's acting set
comes from CRUSH and every object hashes to exactly one PG.  Shard ``i``
of each object in a PG lives on acting-set position ``i``, so an OSD
failure translates directly into "these PGs lost shard s for all their
objects" — the unit of work the recovery state machine operates on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional

from ..ec.base import ErasureCode
from ..geo.rules import RegionRule
from .crush import CrushMap
from .objectstore import ChunkLayout, layout_object
from .pglog import PgLog

__all__ = ["StoredObject", "PlacementGroup", "Pool"]


@dataclass(frozen=True)
class StoredObject:
    """One RADOS object: name, size, and its stripe geometry."""

    name: str
    size: int
    layout: ChunkLayout


@dataclass
class PlacementGroup:
    """One PG: an ordered acting set plus the objects hashed to it."""

    pool_id: int
    pg_id: int
    acting: List[int]
    objects: List[StoredObject] = field(default_factory=list)
    #: Versioned write log driving delta recovery (None only for PGs
    #: constructed outside a Pool, e.g. in unit tests).
    log: Optional[PgLog] = None

    @property
    def pgid(self) -> str:
        return f"{self.pool_id}.{self.pg_id:x}"

    def shard_osd(self, shard: int) -> int:
        return self.acting[shard]

    def shards_on(self, osd_ids: Iterable[int]) -> List[int]:
        """Shard positions this PG maps onto any of the given OSDs."""
        targets = set(osd_ids)
        return [i for i, osd in enumerate(self.acting) if osd in targets]

    def stored_bytes(self) -> int:
        """Bytes stored per shard position (all shards are equal-size)."""
        return sum(obj.layout.chunk_stored_bytes for obj in self.objects)


class Pool:
    """An erasure-coded pool: EC profile + stripe_unit + pg_num.

    ``pg_num`` and ``stripe_unit`` are the two pool-level knobs the paper
    sweeps in Figures 2b and 2c.
    """

    def __init__(
        self,
        pool_id: int,
        name: str,
        code: ErasureCode,
        crush: CrushMap,
        pg_num: int = 256,
        stripe_unit: int = 4096,
        failure_domain: str = "host",
        pg_log_max_entries: int = 3000,
        pg_log_hard_limit: Optional[int] = None,
        region_rule: Optional[RegionRule] = None,
    ):
        if pg_num < 1:
            raise ValueError(f"pg_num must be >= 1, got {pg_num}")
        if stripe_unit <= 0:
            raise ValueError(f"stripe_unit must be positive")
        self.pool_id = pool_id
        self.name = name
        self.code = code
        self.crush = crush
        self.pg_num = pg_num
        self.stripe_unit = stripe_unit
        self.failure_domain = failure_domain
        #: Region-spanning placement contract (stretch clusters only).
        #: The code's placement affinity is folded in here so the CRUSH
        #: rule keeps sub-stripe repair sets (LRC local groups)
        #: region-coherent.
        if region_rule is not None and region_rule.affinity is None:
            hint = code.placement_affinity(region_rule.spread)
            if hint is not None:
                candidate = replace(region_rule, affinity=tuple(hint))
                try:
                    candidate.validate_width(code.n)
                except ValueError:
                    pass  # bad hint: keep the contiguous-block layout
                else:
                    region_rule = candidate
        self.region_rule = region_rule
        self.pgs: Dict[int, PlacementGroup] = {}
        for pg_id in range(pg_num):
            acting = crush.place_pg(
                pool_id, pg_id, code.n, failure_domain,
                region_rule=region_rule,
            )
            self.pgs[pg_id] = PlacementGroup(
                pool_id,
                pg_id,
                acting,
                log=PgLog(
                    code.n,
                    max_entries=pg_log_max_entries,
                    hard_limit=pg_log_hard_limit,
                ),
            )

    def pg_of(self, object_name: str) -> PlacementGroup:
        """Hash an object name to its placement group (stable)."""
        digest = hashlib.blake2b(
            f"{self.pool_id}:{object_name}".encode("utf-8"), digest_size=4
        ).digest()
        return self.pgs[int.from_bytes(digest, "big") % self.pg_num]

    def layout_for(self, object_size: int) -> ChunkLayout:
        return layout_object(
            object_size, self.code.n, self.code.k, self.stripe_unit
        )

    def put_object(self, name: str, size: int) -> PlacementGroup:
        """Record an object write; returns the PG it landed in.

        The caller (the coordinator's workload phase) is responsible for
        charging the corresponding chunk writes to the OSDs.
        """
        pg = self.pg_of(name)
        pg.objects.append(StoredObject(name=name, size=size, layout=self.layout_for(size)))
        return pg

    def pgs_using_osd(self, osd_ids: Iterable[int]) -> List[PlacementGroup]:
        """PGs whose acting set intersects the given OSDs."""
        targets = set(osd_ids)
        return [
            pg for pg in self.pgs.values() if targets & set(pg.acting)
        ]

    def total_objects(self) -> int:
        return sum(len(pg.objects) for pg in self.pgs.values())

    def total_logical_bytes(self) -> int:
        return sum(
            obj.size for pg in self.pgs.values() for obj in pg.objects
        )
