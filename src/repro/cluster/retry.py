"""Seeded exponential backoff with jitter (the gray-failure retry policy).

One tiny, pure policy shared by every defense layer — the client read
path, the recovery state machine, and scrub repair — so their retry
behaviour is uniform and testable in isolation.  Delays double per
attempt with a multiplicative jitter in ``[1.0, 1.5)`` drawn from the
caller's seeded stream; because the x2 growth dominates the jitter
range, schedules are *provably monotone non-decreasing* up to the cap,
and byte-identical for a fixed seed.
"""

from __future__ import annotations

import random
from typing import List

__all__ = ["DEFAULT_BACKOFF_CAP", "retry_backoff", "retry_schedule"]

#: Upper bound on a single backoff delay (seconds); keeps a long retry
#: chain from sleeping past the fault window it is waiting out.
DEFAULT_BACKOFF_CAP = 30.0


def retry_backoff(
    attempt: int,
    base: float,
    rng: random.Random,
    cap: float = DEFAULT_BACKOFF_CAP,
) -> float:
    """Delay before retry number ``attempt`` (1-based).

    ``base * 2^(attempt-1)`` stretched by a jitter factor in
    ``[1.0, 1.5)``, clamped to ``cap``.  Consecutive delays from one
    stream never shrink: the worst case ratio is
    ``2 * 1.0 / 1.5 = 4/3 > 1``.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    if base <= 0:
        raise ValueError(f"backoff base must be positive, got {base}")
    if cap <= 0:
        raise ValueError(f"backoff cap must be positive, got {cap}")
    delay = base * (2.0 ** (attempt - 1)) * (1.0 + 0.5 * rng.random())
    return min(delay, cap)


def retry_schedule(
    attempts: int,
    base: float,
    rng: random.Random,
    cap: float = DEFAULT_BACKOFF_CAP,
) -> List[float]:
    """The full delay schedule a retry loop would sleep through."""
    if attempts < 0:
        raise ValueError(f"attempts must be >= 0, got {attempts}")
    return [
        retry_backoff(attempt, base, rng, cap)
        for attempt in range(1, attempts + 1)
    ]
