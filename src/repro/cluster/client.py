"""Client read path: normal and degraded reads against the EC pool.

The paper measures how long the system takes to restore redundancy; this
module measures what the outage *costs clients meanwhile*.  During the
entire System Checking Period (§4.3) — ~600 s of down-but-not-out — every
read that needs a shard on the failed device is a **degraded read**: the
primary must fetch k surviving chunks (parity included) and decode on the
fly, instead of streaming the k data chunks directly.  Degraded reads are
slower, burn extra disk/network bandwidth, and compete with recovery I/O
once it starts — all visible through :class:`ClientLoadGenerator`'s
latency samples.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..sim import Event
from ..sim.rng import SeedSequence
from .ceph import CephCluster
from .pool import PlacementGroup

__all__ = ["ReadSample", "ReadStats", "RadosClient", "ClientLoadGenerator"]


class ObjectNotFoundError(KeyError):
    """Read of an object the pool does not hold."""


class ReadFailedError(RuntimeError):
    """Too few shards available to serve the read at all."""


@dataclass(frozen=True)
class ReadSample:
    """One completed client read."""

    object_name: str
    issued_at: float
    latency: float
    degraded: bool
    bytes_read: int


@dataclass
class ReadStats:
    """Aggregate over a load generator's samples."""

    samples: List[ReadSample] = field(default_factory=list)

    def add(self, sample: ReadSample) -> None:
        self.samples.append(sample)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def degraded_count(self) -> int:
        return sum(1 for s in self.samples if s.degraded)

    @property
    def degraded_fraction(self) -> float:
        return self.degraded_count / self.count if self.samples else 0.0

    def latency_percentile(self, percentile: float, degraded: Optional[bool] = None) -> float:
        """p50/p99-style latency; optionally filtered by degraded flag."""
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        values = sorted(
            s.latency
            for s in self.samples
            if degraded is None or s.degraded == degraded
        )
        if not values:
            raise ValueError("no samples match the filter")
        index = max(0, round(percentile / 100 * len(values)) - 1)
        return values[index]

    def mean_latency(self, degraded: Optional[bool] = None) -> float:
        values = [
            s.latency
            for s in self.samples
            if degraded is None or s.degraded == degraded
        ]
        if not values:
            raise ValueError("no samples match the filter")
        return statistics.fmean(values)


class RadosClient:
    """Reads whole objects from the cluster's EC pool.

    A normal read streams the k data shards; a degraded read falls back
    to any k surviving shards plus an on-the-fly decode at the primary.
    Client I/O shares the same disks and NICs as recovery, so the two
    interfere exactly as they would in the real system.
    """

    #: Client-visible protocol overhead per read.
    request_overhead = 0.001

    def __init__(self, cluster: CephCluster, name: str = "client.0"):
        self.cluster = cluster
        self.name = name

    def read_object(self, object_name: str) -> Event:
        """Read one object; the event's value is a :class:`ReadSample`."""
        return self.cluster.env.process(self._read(object_name))

    # -- internals --------------------------------------------------------------

    def _lookup(self, object_name: str):
        pg = self.cluster.pool.pg_of(object_name)
        for obj in pg.objects:
            if obj.name == object_name:
                return pg, obj
        raise ObjectNotFoundError(f"object {object_name!r} not in pool")

    def _read(self, object_name: str) -> Generator:
        env = self.cluster.env
        issued_at = env.now
        pg, obj = self._lookup(object_name)
        code = self.cluster.pool.code
        layout = obj.layout

        data_shards = list(range(code.k))
        up = [
            shard
            for shard in range(code.n)
            if self.cluster.osds[pg.acting[shard]].is_up()
        ]
        degraded = any(shard not in up for shard in data_shards)
        if degraded:
            shards = up[: code.k]
            if len(shards) < code.k:
                raise ReadFailedError(
                    f"object {object_name!r}: only {len(up)} shards up"
                )
        else:
            shards = data_shards

        primary_osd = next(
            pg.acting[s] for s in range(code.n) if s in up
        )
        primary = self.cluster.osds[primary_osd]
        yield env.timeout(self.request_overhead)
        yield env.all_of(
            [
                env.process(self._fetch_shard(pg, shard, primary, layout))
                for shard in shards
            ]
        )
        if degraded:
            # On-the-fly decode of the missing data shards at the primary.
            decode = primary.decode_time(
                output_bytes=layout.chunk_stored_bytes,
                decode_work=1.0,
                fragments=layout.units * code.sub_chunk_count,
                cpu_cost_factor=getattr(code, "cpu_cost_factor", 1.0),
            )
            yield primary.cpu.request(decode)
        return ReadSample(
            object_name=object_name,
            issued_at=issued_at,
            latency=env.now - issued_at,
            degraded=degraded,
            bytes_read=obj.size,
        )

    def _fetch_shard(self, pg: PlacementGroup, shard: int, primary, layout) -> Generator:
        source = self.cluster.osds[pg.acting[shard]]
        nbytes = layout.chunk_stored_bytes
        yield source.disk.submit(
            source.sequential_ops(nbytes), nbytes, write=False
        )
        yield self.cluster.topology.fabric.transfer(
            self.cluster.topology.nic_of(source.osd_id),
            self.cluster.topology.nic_of(primary.osd_id),
            nbytes,
        )


class ClientLoadGenerator:
    """Open-loop read load over the pool's objects.

    Issues one read every ``interval`` seconds at uniformly random
    objects, for ``duration`` seconds, collecting the latency/degraded
    samples into :attr:`stats`.
    """

    def __init__(
        self,
        client: RadosClient,
        interval: float,
        seeds: Optional[SeedSequence] = None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.client = client
        self.interval = interval
        self.rng = (seeds or SeedSequence(0)).stream("client-load")
        self.stats = ReadStats()
        self._running = False

    def run_for(self, duration: float) -> Event:
        """Start issuing reads for ``duration`` simulated seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return self.client.cluster.env.process(self._run(duration))

    def _object_names(self) -> List[str]:
        return [
            obj.name
            for pg in self.client.cluster.pool.pgs.values()
            for obj in pg.objects
        ]

    def _run(self, duration: float) -> Generator:
        env = self.client.cluster.env
        names = self._object_names()
        if not names:
            raise RuntimeError("pool holds no objects to read")
        deadline = env.now + duration
        pending = []
        while env.now < deadline:
            name = self.rng.choice(names)
            pending.append(env.process(self._one_read(name)))
            yield env.timeout(self.interval)
        if pending:
            yield env.all_of(pending)

    def _one_read(self, name: str) -> Generator:
        sample = yield self.client.read_object(name)
        self.stats.add(sample)
