"""Client I/O paths: reads (normal + degraded) and writes (full + RMW).

The paper measures how long the system takes to restore redundancy; this
module measures what the outage *costs clients meanwhile*.  During the
entire System Checking Period (§4.3) — ~600 s of down-but-not-out — every
read that needs a shard on the failed device is a **degraded read**: the
primary must fetch k surviving chunks (parity included) and decode on the
fly, instead of streaming the k data chunks directly.  Degraded reads are
slower, burn extra disk/network bandwidth, and compete with recovery I/O
once it starts — all visible through :class:`ClientLoadGenerator`'s
latency samples.

The gray-failure defenses live here too:

* **Per-op timeouts + retry/backoff** — when ``client_op_timeout`` is
  set, a read attempt that outlives it is abandoned and retried with
  seeded exponential backoff + jitter, up to ``client_retry_max`` times
  (:func:`repro.cluster.retry.retry_backoff`).
* **Hedged reads** — when ``client_hedge_delay`` is set, a shard fetch
  still in flight after the delay is *re-issued* to another surviving
  shard; whichever copy arrives first serves the read, and the loser's
  bytes are accounted as hedge waste (:class:`ClientOpStats`).  The
  abandoned fetch still drains its disk/NIC resources — exactly the
  duplicated I/O cost real hedging pays.

All defenses default OFF and the retry RNG is consumed only on actual
retries, so healthy baseline runs are byte-identical to the undefended
model.

**The write path** (the transient-failure axis's other half) also lives
here.  :meth:`RadosClient.write_object` encodes a full stripe at the
coordinating primary and pushes every shard; :meth:`write_stripe_unit`
is the partial-stripe read-modify-write (read old units, re-encode the
parity deltas, write the touched shards in place).  Writes succeed
*degraded* — shards may be down, up to the code's guaranteed fault
tolerance (``fault_tolerance()``) — and every commit appends a
:class:`~repro.cluster.pglog.PgLog` entry recording exactly which shards
missed the write, which is what makes pg_log delta recovery possible
when the absent OSD returns.  A write that exhausts its retry budget
rolls its staged log entry back and undoes (or marks divergent) its
partial pushes, so an abandoned op never leaves a torn stripe.  Stale
shards never serve reads or RMW source fetches; a *full* overwrite may
land on a stale shard (refreshing it).  Write RNG streams and stats
fields are consumed/emitted only when writes actually run, so read-only
runs stay byte-identical to the read-only model.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from ..sim import Event
from ..sim.rng import SeedSequence
from .ceph import CephCluster
from .devices import DiskFailedError
from .network import TransferDroppedError
from .pool import PlacementGroup, StoredObject
from .retry import retry_backoff

__all__ = [
    "ReadSample",
    "ReadStats",
    "WriteSample",
    "WriteStats",
    "ClientOpStats",
    "RadosClient",
    "ClientLoadGenerator",
    "WRITE_STAT_KEYS",
]


class ObjectNotFoundError(KeyError):
    """Read of an object the pool does not hold."""


class ReadFailedError(RuntimeError):
    """The read could not be served within the client's retry budget."""


class WriteFailedError(RuntimeError):
    """The write could not commit within the client's retry budget."""


@dataclass(frozen=True)
class ReadSample:
    """One completed client read."""

    object_name: str
    issued_at: float
    latency: float
    degraded: bool
    bytes_read: int
    #: 1 for a first-try success; grows with timeout/drop retries.
    attempts: int = 1
    #: True when a hedged duplicate fetch was issued for this read.
    hedged: bool = False


@dataclass
class ReadStats:
    """Aggregate over a load generator's samples."""

    samples: List[ReadSample] = field(default_factory=list)
    #: Reads abandoned after the retry budget (no sample recorded).
    failures: int = 0

    def add(self, sample: ReadSample) -> None:
        self.samples.append(sample)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def degraded_count(self) -> int:
        return sum(1 for s in self.samples if s.degraded)

    @property
    def degraded_fraction(self) -> float:
        return self.degraded_count / self.count if self.samples else 0.0

    def latency_percentile(self, pct: float, degraded: Optional[bool] = None) -> float:
        """p50/p99-style latency; optionally filtered by degraded flag.

        Delegates to the audited ceil-based nearest-rank implementation
        in :func:`repro.analysis.stats.percentile`.
        """
        # Imported at call time: the analysis package pulls in the sweep
        # machinery, which imports the cluster back (a top-level import
        # here would be a cycle).
        from ..analysis.stats import percentile

        values = [
            s.latency
            for s in self.samples
            if degraded is None or s.degraded == degraded
        ]
        if not values:
            raise ValueError("no samples match the filter")
        return percentile(values, pct)

    def mean_latency(self, degraded: Optional[bool] = None) -> float:
        values = [
            s.latency
            for s in self.samples
            if degraded is None or s.degraded == degraded
        ]
        if not values:
            raise ValueError("no samples match the filter")
        return statistics.fmean(values)


@dataclass(frozen=True)
class WriteSample:
    """One committed client write."""

    object_name: str
    issued_at: float
    latency: float
    #: ``create`` / ``full`` (whole-stripe overwrite) / ``rmw``.
    kind: str
    #: True when the commit recorded missing shards (degraded write).
    degraded: bool
    #: Logical bytes the client handed over (object size, or one
    #: stripe unit for an RMW) — not the encoded/stored volume.
    bytes_written: int
    attempts: int = 1
    #: Physical bytes this commit put on devices (allocations plus
    #: in-place rewrites) — the per-tenant WA-attribution numerator.
    #: Stays 0 only for a degraded write that landed nothing new.
    stored_bytes: int = 0


@dataclass
class WriteStats:
    """Aggregate over a load generator's write samples."""

    samples: List[WriteSample] = field(default_factory=list)
    #: Writes abandoned after the retry budget (no sample recorded).
    failures: int = 0

    def add(self, sample: WriteSample) -> None:
        self.samples.append(sample)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def degraded_count(self) -> int:
        return sum(1 for s in self.samples if s.degraded)

    @property
    def degraded_fraction(self) -> float:
        return self.degraded_count / self.count if self.samples else 0.0

    @property
    def logical_bytes(self) -> int:
        """Total logical volume committed (the outage-write workload size)."""
        return sum(s.bytes_written for s in self.samples)

    @property
    def stored_bytes(self) -> int:
        """Total physical volume committed (WA-attribution numerator)."""
        return sum(s.stored_bytes for s in self.samples)

    def mean_latency(self, kind: Optional[str] = None) -> float:
        values = [
            s.latency for s in self.samples if kind is None or s.kind == kind
        ]
        if not values:
            raise ValueError("no samples match the filter")
        return statistics.fmean(values)


@dataclass
class ClientOpStats:
    """Defense-layer counters of one client (retries, hedges, waste)."""

    reads_ok: int = 0
    reads_failed: int = 0
    retries: int = 0
    timeouts: int = 0
    drops_seen: int = 0
    hedges_issued: int = 0
    hedges_won: int = 0
    #: Retry attempts served through a different primary than the first
    #: choice (the read was *redirected* around a degraded coordinator).
    redirects: int = 0
    #: Bytes of duplicate shard fetches whose result went unused — the
    #: price of hedging.  Never enters ReadSample.bytes_read or the WA
    #: ledger (reads allocate nothing), so client-visible byte counts
    #: are not double-counted.
    hedge_wasted_bytes: int = 0
    #: Write-path counters (stay zero on read-only runs and are pruned
    #: from digests then — see :data:`WRITE_STAT_KEYS`).
    writes_ok: int = 0
    writes_failed: int = 0
    write_retries: int = 0
    #: Write attempts that blocked on the monitor's full-ratio pause
    #: (capacity backpressure).  Zero — and digest-pruned — unless some
    #: OSD actually hit ``mon_osd_full_ratio``.
    writes_paused: int = 0


#: ClientOpStats fields added with the write path — pruned from digests
#: when zero so read-only runs hash identically to the prior model.
WRITE_STAT_KEYS = ("writes_ok", "writes_failed", "write_retries", "writes_paused")


@dataclass(frozen=True)
class _FetchResult:
    """Outcome of one guarded shard fetch (processes never fail)."""

    ok: bool
    shard: int
    reason: str = ""


@dataclass(frozen=True)
class _AttemptResult:
    """Outcome of one full read attempt."""

    ok: bool
    degraded: bool = False
    hedged: bool = False
    needs_decode: bool = False
    reason: str = ""


@dataclass(frozen=True)
class _PushResult:
    """Outcome of one guarded chunk/unit push (processes never fail)."""

    ok: bool
    shard: int
    reason: str = ""


@dataclass(frozen=True)
class _WriteAttempt:
    """Outcome of one full write attempt."""

    ok: bool
    reason: str = ""


class RadosClient:
    """Reads whole objects from the cluster's EC pool.

    A normal read streams the k data shards; a degraded read falls back
    to any k surviving shards plus an on-the-fly decode at the primary.
    Client I/O shares the same disks and NICs as recovery, so the two
    interfere exactly as they would in the real system.
    """

    #: Client-visible protocol overhead per read.
    request_overhead = 0.001

    def __init__(
        self,
        cluster: CephCluster,
        name: str = "client.0",
        seeds: Optional[SeedSequence] = None,
        qos_class: Optional[str] = None,
    ):
        self.cluster = cluster
        self.name = name
        #: QoS class this client's shard I/O is tagged with at each OSD
        #: (``tenant:<name>`` for fleet tenants).  ``None`` — or an OSD
        #: without an attached scheduler — skips admission entirely, so
        #: non-tenant runs stay byte-identical to the pre-QoS model.
        self.qos_class = qos_class
        self.stats = ClientOpStats()
        #: Consumed only when a retry actually backs off, so healthy
        #: runs never draw from it.
        self._retry_rng = (seeds or SeedSequence(0)).stream("client-retry")

    def _admit(self, osd, nbytes: int, write: bool) -> Optional[Event]:
        """The QoS admission grant for one shard I/O, or None when off."""
        if self.qos_class is None:
            return None
        qos = osd.qos_writes if write else osd.qos_reads
        if qos is None:
            return None
        return qos.submit(self.qos_class, qos.client_cost(nbytes))

    def read_object(self, object_name: str) -> Event:
        """Read one object; the event's value is a :class:`ReadSample`."""
        return self.cluster.env.process(self._read(object_name))

    def write_object(self, object_name: str, size: Optional[int] = None) -> Event:
        """Full-stripe write; the event's value is a :class:`WriteSample`.

        Creates the object (``size`` required) if the pool does not hold
        it, otherwise overwrites every shard in place.  Succeeds degraded
        with missing shards up to the code's guaranteed fault tolerance;
        the commit records the missing set in the PG's write log.
        """
        return self.cluster.env.process(
            self._write(object_name, size=size, data_shard=None)
        )

    def write_stripe_unit(self, object_name: str, data_shard: int = 0) -> Event:
        """Partial-stripe read-modify-write of one stripe unit.

        Reads the old data/parity units, re-encodes the ``m`` parity
        deltas at the primary, and writes the touched shards (the data
        shard plus every parity) in place.  The event's value is a
        :class:`WriteSample`.
        """
        return self.cluster.env.process(
            self._write(object_name, size=None, data_shard=data_shard)
        )

    # -- internals --------------------------------------------------------------

    def _lookup(self, object_name: str):
        pg = self.cluster.pool.pg_of(object_name)
        for obj in pg.objects:
            if obj.name == object_name:
                return pg, obj
        raise ObjectNotFoundError(f"object {object_name!r} not in pool")

    def _read(self, object_name: str) -> Generator:
        """Retry loop around read attempts (timeouts, drops, flaps)."""
        env = self.cluster.env
        config = self.cluster.config
        issued_at = env.now
        pg, obj = self._lookup(object_name)
        attempt = 0
        while True:
            result = yield from self._read_attempt(pg, obj, attempt)
            if result.ok:
                self.stats.reads_ok += 1
                return ReadSample(
                    object_name=object_name,
                    issued_at=issued_at,
                    latency=env.now - issued_at,
                    degraded=result.degraded,
                    bytes_read=obj.size,
                    attempts=attempt + 1,
                    hedged=result.hedged,
                )
            attempt += 1
            if attempt > config.client_retry_max:
                self.stats.reads_failed += 1
                raise ReadFailedError(
                    f"object {object_name!r}: {result.reason} "
                    f"(gave up after {attempt} attempts)"
                )
            self.stats.retries += 1
            yield env.timeout(
                retry_backoff(attempt, config.client_retry_base, self._retry_rng)
            )

    def _read_attempt(self, pg: PlacementGroup, obj, attempt: int = 0) -> Generator:
        env = self.cluster.env
        config = self.cluster.config
        code = self.cluster.pool.code
        layout = obj.layout

        data_shards = list(range(code.k))
        # Stale shards (missed a write while briefly down) hold old
        # content: they never serve reads, exactly like down shards.
        stale = pg.log.stale_shards(obj.name) if pg.log is not None else set()
        up = [
            shard
            for shard in range(code.n)
            if shard not in stale
            and self.cluster.osds[pg.acting[shard]].is_up()
        ]
        degraded = any(shard not in up for shard in data_shards)
        if degraded:
            shards = up[: code.k]
            if len(shards) < code.k:
                return _AttemptResult(
                    ok=False, degraded=True,
                    reason=f"only {len(up)} shards up",
                )
        else:
            shards = data_shards
        #: Surviving shards not already being read — the hedge targets.
        spares = [s for s in up if s not in shards]

        # Redirect: a retry rotates the coordinating primary to the next
        # surviving shard, so a read stuck behind a degraded primary's NIC
        # does not time out against the same path forever.  Attempt 0
        # always picks the first up shard — byte-identical to the
        # undefended model on healthy runs (retries never happen there).
        primary_shard = up[attempt % len(up)]
        if primary_shard != up[0]:
            self.stats.redirects += 1
        primary = self.cluster.osds[pg.acting[primary_shard]]
        yield env.timeout(self.request_overhead)
        fetches = [
            env.process(
                self._fetch_with_hedge(pg, shard, primary, layout, spares)
            )
            for shard in shards
        ]
        gather = env.all_of(fetches)
        if config.client_op_timeout > 0:
            timer = env.timeout(config.client_op_timeout)
            yield env.any_of([gather, timer])
            if not gather.triggered:
                # Abandon the attempt; the in-flight fetches drain on
                # their own (guarded processes never fail the engine).
                self.stats.timeouts += 1
                return _AttemptResult(
                    ok=False, degraded=degraded,
                    reason=f"op timed out after {config.client_op_timeout:g}s",
                )
            results = gather.value
        else:
            results = yield gather
        hedged = any(r.shard not in shards for r in results)
        bad = [r for r in results if not r.ok]
        if bad:
            return _AttemptResult(
                ok=False, degraded=degraded, hedged=hedged,
                reason=bad[0].reason,
            )
        served = {r.shard for r in results}
        byz = getattr(self.cluster, "byzantine", None)
        if byz is not None:
            # Containment accounting: a read served from a shard that is
            # still lying (undetected forged checksum or false-acked
            # write) is a *wrong read* — the byzantine-containment
            # invariant requires this count to stay zero pre-detection.
            byz.note_read(pg.pgid, obj.name, served, env.now)
        needs_decode = degraded or served != set(data_shards)
        if needs_decode:
            # On-the-fly decode of the missing data shards at the primary.
            decode = primary.decode_time(
                output_bytes=layout.chunk_stored_bytes,
                decode_work=1.0,
                fragments=layout.units * code.sub_chunk_count,
                cpu_cost_factor=getattr(code, "cpu_cost_factor", 1.0),
            )
            yield primary.cpu.request(decode)
        return _AttemptResult(
            ok=True, degraded=degraded, hedged=hedged,
            needs_decode=needs_decode,
        )

    def _fetch_with_hedge(
        self, pg: PlacementGroup, shard: int, primary, layout, spares: List[int]
    ) -> Generator:
        """One shard fetch, re-issued to a spare survivor if it straggles.

        The loser of the race is *abandoned*, not interrupted: it keeps
        draining its disk and NIC time (the true cost of hedging) but its
        result is discarded and its bytes counted as hedge waste.
        """
        env = self.cluster.env
        hedge_delay = self.cluster.config.client_hedge_delay
        proc = env.process(self._guarded_fetch(pg, shard, primary, layout))
        if hedge_delay <= 0:
            result = yield proc
            return result
        timer = env.timeout(hedge_delay)
        yield env.any_of([proc, timer])
        if proc.triggered:
            return proc.value
        spare = spares.pop(0) if spares else None
        if spare is None:
            result = yield proc
            return result
        self.stats.hedges_issued += 1
        hedge = env.process(self._guarded_fetch(pg, spare, primary, layout))
        first = yield env.any_of([proc, hedge])
        if first.ok:
            winner = first
        else:
            # First arrival failed (drop); fall back to the other copy.
            other = hedge if proc.triggered else proc
            winner = yield other
        # Exactly one copy serves the read; the duplicate's bytes are
        # waste whether it already landed or is still in flight.
        self.stats.hedge_wasted_bytes += layout.chunk_stored_bytes
        if winner.ok and winner.shard == spare:
            self.stats.hedges_won += 1
        return winner

    def _guarded_fetch(self, pg: PlacementGroup, shard: int, primary, layout) -> Generator:
        """Fetch one shard; never fails the process (returns a result).

        Every failure mode — source down (flap), failed disk, dropped or
        partitioned transfer — is caught here and reported by value, so
        abandoned fetches can safely drain without a waiter.
        """
        source = self.cluster.osds[pg.acting[shard]]
        nbytes = layout.chunk_stored_bytes
        try:
            if not source.is_up():
                return _FetchResult(
                    ok=False, shard=shard,
                    reason=f"shard {shard} source {source.name} is down",
                )
            grant = self._admit(source, nbytes, write=False)
            if grant is not None:
                yield grant
            yield source.disk.submit(
                source.sequential_ops(nbytes), nbytes, write=False
            )
            yield self.cluster.topology.fabric.transfer(
                self.cluster.topology.nic_of(source.osd_id),
                self.cluster.topology.nic_of(primary.osd_id),
                nbytes,
            )
        except TransferDroppedError as exc:
            self.stats.drops_seen += 1
            return _FetchResult(ok=False, shard=shard, reason=str(exc))
        except DiskFailedError as exc:
            return _FetchResult(ok=False, shard=shard, reason=str(exc))
        return _FetchResult(ok=True, shard=shard)

    # -- write path -------------------------------------------------------------

    def _write(
        self, object_name: str, size: Optional[int], data_shard: Optional[int]
    ) -> Generator:
        """Retry loop shared by full-stripe writes and RMWs.

        The write is *staged* on the PG log before any I/O and either
        commits exactly once (assigning the next PG version) or rolls
        back: allocations made for chunks that never existed are undone,
        and in-place pushes that landed before the abort are marked
        divergent so repair re-syncs them — the rollback rule that keeps
        an abandoned op from leaving a torn stripe.
        """
        env = self.cluster.env
        config = self.cluster.config
        pool = self.cluster.pool
        issued_at = env.now
        pg = pool.pg_of(object_name)
        log = pg.log
        if log is None:
            raise RuntimeError("pool has no pg_log; writes are unsupported")
        obj = next((o for o in pg.objects if o.name == object_name), None)
        rmw = data_shard is not None
        if rmw:
            if obj is None:
                raise ObjectNotFoundError(
                    f"object {object_name!r} not in pool"
                )
            if not 0 <= data_shard < pool.code.k:
                raise ValueError(
                    f"data_shard must be in [0, {pool.code.k}), got {data_shard}"
                )
            layout = obj.layout
            kind = "rmw"
            logical = layout.stripe_unit
        elif obj is None:
            if size is None:
                raise ValueError(
                    f"size required to create object {object_name!r}"
                )
            layout = pool.layout_for(size)
            kind = "create"
            logical = size
        else:
            layout = obj.layout
            size = obj.size
            kind = "full"
            logical = size
        log.stage()
        #: Shards persisted by this write (survives across attempts).
        landed: Set[int] = set()
        #: shard -> (allocated, metadata, csum_blocks) for chunks this
        #: write brought into existence — the abort rollback set.
        allocs: Dict[int, Tuple[int, int, int]] = {}
        attempt = 0
        while True:
            # Capacity backpressure: while any OSD is at the full ratio
            # the monitor pauses client writes cluster-wide.  The gate is
            # None when unpaused (no yield, no event perturbation), so
            # runs that never fill a device are byte-identical.
            gate = self.cluster.monitor.write_gate()
            if gate is not None:
                self.stats.writes_paused += 1
                yield gate
            if rmw:
                result = yield from self._rmw_attempt(
                    pg, obj, data_shard, landed, attempt
                )
            else:
                result = yield from self._full_write_attempt(
                    pg, object_name, layout, kind == "create",
                    landed, allocs, attempt,
                )
            if result.ok:
                sample = self._commit_write(
                    pg, object_name, kind, size, layout,
                    data_shard, landed, allocs, issued_at, attempt + 1,
                )
                self.stats.writes_ok += 1
                return sample
            attempt += 1
            if attempt > config.client_write_retry_max:
                self._abort_write(pg, object_name, kind, layout, landed, allocs)
                self.stats.writes_failed += 1
                raise WriteFailedError(
                    f"object {object_name!r}: {result.reason} "
                    f"(gave up after {attempt} attempts)"
                )
            self.stats.write_retries += 1
            yield env.timeout(
                retry_backoff(attempt, config.client_retry_base, self._retry_rng)
            )

    def _full_write_attempt(
        self,
        pg: PlacementGroup,
        object_name: str,
        layout,
        create: bool,
        landed: Set[int],
        allocs: Dict[int, Tuple[int, int, int]],
        attempt: int,
    ) -> Generator:
        """Encode the stripe at the primary and push every reachable shard.

        A stale shard *is* a valid target — the full overwrite refreshes
        it.  Fails (retryably) only when more shards would end up without
        the write than the code's *guaranteed* fault tolerance (``m``
        for RS/Clay, ``r + 1`` for LRC, 1 for SHEC) — acking beyond that
        could leave an object the recovery path cannot promise to heal.
        """
        env = self.cluster.env
        code = self.cluster.pool.code
        up = [
            shard for shard in range(code.n)
            if self.cluster.osds[pg.acting[shard]].is_up()
        ]
        if not up:
            return _WriteAttempt(ok=False, reason="no shards up")
        missing_now = [
            s for s in range(code.n) if s not in landed and s not in up
        ]
        if len(missing_now) > code.fault_tolerance():
            return _WriteAttempt(
                ok=False, reason=f"only {len(up)} shards up"
            )
        primary_shard = up[attempt % len(up)]
        if primary_shard != up[0]:
            self.stats.redirects += 1
        primary = self.cluster.osds[pg.acting[primary_shard]]
        yield env.timeout(self.request_overhead)
        encode = primary.encode_time(
            parity_bytes=layout.chunk_stored_bytes * code.m,
            fragments=layout.units * code.sub_chunk_count * code.m,
            cpu_cost_factor=getattr(code, "cpu_cost_factor", 1.0),
        )
        yield primary.cpu.request(encode)
        targets = [s for s in up if s not in landed]
        pushes = [
            env.process(
                self._guarded_push(
                    pg, shard, primary, layout, object_name, create, allocs
                )
            )
            for shard in targets
        ]
        results = yield env.all_of(pushes)
        for result in results:
            if result.ok:
                landed.add(result.shard)
        still_missing = [s for s in range(code.n) if s not in landed]
        if len(still_missing) > code.fault_tolerance():
            bad = [r for r in results if not r.ok]
            return _WriteAttempt(
                ok=False,
                reason=bad[0].reason if bad else "too many shards missing",
            )
        return _WriteAttempt(ok=True)

    def _rmw_attempt(
        self,
        pg: PlacementGroup,
        obj: StoredObject,
        data_shard: int,
        landed: Set[int],
        attempt: int,
    ) -> Generator:
        """Read-modify-write one stripe unit: read, re-encode, push deltas.

        Sources and targets are restricted to clean (up, non-stale)
        shards — a partial write landing on stale content would tear the
        stripe.  The preferred read set is the old data unit plus the
        parities (the classic RMW); when any of those is unavailable the
        old unit is reconstructed from ``k`` clean shards instead.
        """
        env = self.cluster.env
        code = self.cluster.pool.code
        log = pg.log
        layout = obj.layout
        unit = layout.stripe_unit
        stale = log.stale_shards(obj.name)
        clean_up = [
            shard for shard in range(code.n)
            if shard not in stale
            and self.cluster.osds[pg.acting[shard]].is_up()
        ]
        if len(clean_up) < code.k:
            return _WriteAttempt(
                ok=False, reason=f"only {len(clean_up)} clean shards up"
            )
        touched = [data_shard, *range(code.k, code.n)]
        targets = [
            s for s in touched if s not in landed and s in clean_up
        ]
        prospective = stale | {
            s for s in touched if s not in landed and s not in targets
        }
        if len(prospective) > code.fault_tolerance():
            return _WriteAttempt(
                ok=False, reason="write would exceed parity tolerance"
            )
        primary_shard = clean_up[attempt % len(clean_up)]
        if primary_shard != clean_up[0]:
            self.stats.redirects += 1
        primary = self.cluster.osds[pg.acting[primary_shard]]
        yield env.timeout(self.request_overhead)
        if all(s in clean_up for s in touched):
            sources, needs_decode = list(touched), False
        else:
            sources, needs_decode = clean_up[: code.k], True
        fetches = [
            env.process(self._guarded_unit_io(pg, s, primary, unit, write=False))
            for s in sources
        ]
        results = yield env.all_of(fetches)
        bad = [r for r in results if not r.ok]
        if bad:
            return _WriteAttempt(ok=False, reason=bad[0].reason)
        cost_factor = getattr(code, "cpu_cost_factor", 1.0)
        if needs_decode:
            decode = primary.decode_time(
                output_bytes=unit,
                decode_work=1.0,
                fragments=code.sub_chunk_count,
                cpu_cost_factor=cost_factor,
            )
            yield primary.cpu.request(decode)
        encode = primary.encode_time(
            parity_bytes=unit * code.m,
            fragments=code.sub_chunk_count * code.m,
            cpu_cost_factor=cost_factor,
        )
        yield primary.cpu.request(encode)
        pushes = [
            env.process(self._guarded_unit_io(pg, s, primary, unit, write=True))
            for s in targets
        ]
        write_results = yield env.all_of(pushes)
        for result in write_results:
            if result.ok:
                landed.add(result.shard)
        still_missing = {s for s in touched if s not in landed}
        if len(stale | still_missing) > code.fault_tolerance():
            bad = [r for r in write_results if not r.ok]
            return _WriteAttempt(
                ok=False,
                reason=bad[0].reason if bad else "too many shards missing",
            )
        return _WriteAttempt(ok=True)

    def _guarded_push(
        self,
        pg: PlacementGroup,
        shard: int,
        primary,
        layout,
        object_name: str,
        create: bool,
        allocs: Dict[int, Tuple[int, int, int]],
    ) -> Generator:
        """Push one full chunk to its target; never fails the process.

        Chunks that do not physically exist yet (a create, or a shard a
        degraded create skipped) are allocated — with the space reserved
        and the ledger credited synchronously, so the byte-conservation
        invariant holds at every instant mid-write.  Existing chunks are
        overwritten in place (no allocation change).  A push lost to a
        gray fault rolls its speculative allocation back.
        """
        target = self.cluster.osds[pg.acting[shard]]
        nbytes = layout.chunk_stored_bytes
        if not target.is_up():
            return _PushResult(
                ok=False, shard=shard,
                reason=f"shard {shard} target {target.name} is down",
            )
        log = pg.log
        allocate = create or log.is_unstored(object_name, shard)
        allocated = metadata = csum_blocks = 0
        if allocate:
            integrity = self.cluster.integrity
            if integrity.config.enabled:
                csum_blocks = integrity.csum_blocks_for(nbytes)
            allocated, metadata = target.backend.chunk_allocation(
                nbytes, layout.units, csum_blocks
            )
            if (
                target.disk.used_bytes + allocated + metadata
                > target.disk.spec.capacity_bytes
            ):
                return _PushResult(
                    ok=False, shard=shard,
                    reason=f"target {target.name} toofull",
                )
            # Reserve synchronously with the headroom check, and credit
            # the ledger in the same instant (commit reclassifies).
            target.store_chunk(nbytes, layout.units, csum_blocks)
            self.cluster.ledger.credit_chunk(allocated, metadata)
            allocs[shard] = (allocated, metadata, csum_blocks)
        try:
            grant = self._admit(target, nbytes, write=True)
            if grant is not None:
                yield grant
            yield self.cluster.topology.fabric.transfer(
                self.cluster.topology.nic_of(primary.osd_id),
                self.cluster.topology.nic_of(target.osd_id),
                nbytes,
            )
            yield target.write_chunk(nbytes, layout.units)
        except (TransferDroppedError, DiskFailedError) as exc:
            if isinstance(exc, TransferDroppedError):
                self.stats.drops_seen += 1
            if allocate:
                target.remove_chunk(nbytes, layout.units, csum_blocks)
                self.cluster.ledger.debit_chunk(allocated, metadata)
                allocs.pop(shard, None)
            return _PushResult(ok=False, shard=shard, reason=str(exc))
        return _PushResult(ok=True, shard=shard)

    def _guarded_unit_io(
        self, pg: PlacementGroup, shard: int, primary, unit: int, write: bool
    ) -> Generator:
        """One stripe-unit read or in-place write for an RMW; never fails."""
        osd = self.cluster.osds[pg.acting[shard]]
        try:
            if not osd.is_up():
                return _PushResult(
                    ok=False, shard=shard,
                    reason=f"shard {shard} osd {osd.name} is down",
                )
            grant = self._admit(osd, unit, write=write)
            if grant is not None:
                yield grant
            if write:
                yield self.cluster.topology.fabric.transfer(
                    self.cluster.topology.nic_of(primary.osd_id),
                    self.cluster.topology.nic_of(osd.osd_id),
                    unit,
                )
                yield osd.disk.submit(1, unit, write=True)
            else:
                yield osd.disk.submit(1, unit, write=False)
                yield self.cluster.topology.fabric.transfer(
                    self.cluster.topology.nic_of(osd.osd_id),
                    self.cluster.topology.nic_of(primary.osd_id),
                    unit,
                )
        except TransferDroppedError as exc:
            self.stats.drops_seen += 1
            return _PushResult(ok=False, shard=shard, reason=str(exc))
        except DiskFailedError as exc:
            return _PushResult(ok=False, shard=shard, reason=str(exc))
        return _PushResult(ok=True, shard=shard)

    def _commit_write(
        self,
        pg: PlacementGroup,
        object_name: str,
        kind: str,
        size: Optional[int],
        layout,
        data_shard: Optional[int],
        landed: Set[int],
        allocs: Dict[int, Tuple[int, int, int]],
        issued_at: float,
        attempts: int,
    ) -> WriteSample:
        """Assign the next PG version and settle all the bookkeeping."""
        env = self.cluster.env
        code = self.cluster.pool.code
        log = pg.log
        if kind == "rmw":
            touched = tuple(sorted((data_shard, *range(code.k, code.n))))
            unit = layout.stripe_unit
            logical = unit
        else:
            touched = tuple(range(code.n))
            logical = size
        missing = tuple(s for s in touched if s not in landed)
        log.commit(object_name, kind, touched=touched, missing=missing, at=env.now)
        ledger = self.cluster.ledger
        #: Physical bytes this commit put on devices: fresh allocations
        #: (data + metadata) plus in-place rewrites of existing chunks.
        stored = sum(a + m for a, m, _ in allocs.values())
        if kind == "full":
            stored += layout.chunk_stored_bytes * (len(landed) - len(allocs))
        elif kind == "rmw":
            stored += layout.stripe_unit * len(landed)
        if kind == "create":
            obj = StoredObject(name=object_name, size=size, layout=layout)
            pg.objects.append(obj)
            for shard in missing:
                log.note_unstored(object_name, shard)
            # Per-chunk credits parked the landed bytes in the padding
            # bucket; the committed logical volume moves to the client
            # bucket (device totals untouched — conservation is exact).
            ledger.reclassify_ingest(size)
            self._refresh_checksums(pg, obj, landed)
        elif kind == "full":
            # In-place rewrites allocate nothing; chunks brought into
            # existence by this write (previously unstored) were already
            # credited as allocations.
            overwritten = len(landed) - len(allocs)
            ledger.credit_overwrite(size, layout.chunk_stored_bytes * overwritten)
            obj = next(o for o in pg.objects if o.name == object_name)
            self._refresh_checksums(pg, obj, landed)
        else:
            ledger.credit_overwrite(logical, unit * len(landed))
        return WriteSample(
            object_name=object_name,
            issued_at=issued_at,
            latency=env.now - issued_at,
            kind=kind,
            degraded=bool(missing),
            bytes_written=logical,
            attempts=attempts,
            stored_bytes=stored,
        )

    def _refresh_checksums(
        self, pg: PlacementGroup, obj: StoredObject, landed: Set[int]
    ) -> None:
        """(Re)register write-time crc32c arrays for the landed shards.

        Only the shards the write physically reached are re-registered:
        a chunk the write rewrote whole also sheds any silent corruption
        it carried (the bad bytes are physically gone), while missing
        shards keep their old integrity state for scrub to judge.
        """
        integrity = self.cluster.integrity
        if not integrity.config.enabled:
            return
        csums = integrity.register_object(pg, obj, shards=landed)
        for shard in landed:
            if shard in csums:
                self.cluster.osds[pg.acting[shard]].backend.put_chunk_checksums(
                    (pg.pgid, obj.name, shard), csums[shard]
                )

    def _abort_write(
        self,
        pg: PlacementGroup,
        object_name: str,
        kind: str,
        layout,
        landed: Set[int],
        allocs: Dict[int, Tuple[int, int, int]],
    ) -> None:
        """Roll the staged write back without ever entering the log.

        Chunks this write allocated are removed (space and ledger
        credits undone).  In-place pushes that landed on pre-existing
        chunks cannot be physically unwritten — those shards are marked
        *divergent* (stale at the committed version) so repair re-syncs
        them; the log itself never learns the write happened.
        """
        log = pg.log
        log.rollback()
        for shard, (allocated, metadata, csum_blocks) in allocs.items():
            osd = self.cluster.osds[pg.acting[shard]]
            osd.remove_chunk(layout.chunk_stored_bytes, layout.units, csum_blocks)
            self.cluster.ledger.debit_chunk(allocated, metadata)
        if kind != "create":
            for shard in landed:
                if shard not in allocs:
                    log.note_divergent(object_name, shard)


class ClientLoadGenerator:
    """Open-loop (by default read-only) load over the pool's objects.

    Issues one op every ``interval`` seconds at uniformly random
    objects, for ``duration`` seconds, collecting the latency/degraded
    samples into :attr:`stats` (reads) and :attr:`write_stats` (writes).
    Ops that exhaust the client's retry budget are counted in the
    respective ``failures`` instead of killing the generator — under
    gray faults some failures are expected.

    With ``write_fraction > 0`` each op is a write with that
    probability; a write is an RMW of a random data shard's stripe unit
    with probability ``rmw_fraction`` and a full-stripe overwrite
    otherwise.  The write draws happen *after* the object-name draw and
    only when the respective fraction is positive, so a read-only
    generator consumes exactly the same RNG stream as before the write
    path existed (digest compatibility).
    """

    def __init__(
        self,
        client: RadosClient,
        interval: float,
        seeds: Optional[SeedSequence] = None,
        write_fraction: float = 0.0,
        rmw_fraction: float = 0.5,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if not 0.0 <= rmw_fraction <= 1.0:
            raise ValueError("rmw_fraction must be in [0, 1]")
        self.client = client
        self.interval = interval
        self.write_fraction = write_fraction
        self.rmw_fraction = rmw_fraction
        self.rng = (seeds or SeedSequence(0)).stream("client-load")
        self.stats = ReadStats()
        self.write_stats = WriteStats()
        self._running = False

    def run_for(self, duration: float) -> Event:
        """Start issuing reads for ``duration`` simulated seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return self.client.cluster.env.process(self._run(duration))

    def _object_names(self) -> List[str]:
        return [
            obj.name
            for pg in self.client.cluster.pool.pgs.values()
            for obj in pg.objects
        ]

    def _run(self, duration: float) -> Generator:
        env = self.client.cluster.env
        names = self._object_names()
        if not names:
            raise RuntimeError("pool holds no objects to read")
        deadline = env.now + duration
        pending = []
        while env.now < deadline:
            name = self.rng.choice(names)
            if (
                self.write_fraction > 0.0
                and self.rng.random() < self.write_fraction
            ):
                if (
                    self.rmw_fraction > 0.0
                    and self.rng.random() < self.rmw_fraction
                ):
                    shard = self.rng.randrange(self.client.cluster.pool.code.k)
                    pending.append(env.process(self._one_rmw(name, shard)))
                else:
                    pending.append(env.process(self._one_write(name)))
            else:
                pending.append(env.process(self._one_read(name)))
            yield env.timeout(self.interval)
        if pending:
            yield env.all_of(pending)

    def _one_read(self, name: str) -> Generator:
        try:
            sample = yield self.client.read_object(name)
        except ReadFailedError:
            self.stats.failures += 1
            return
        self.stats.add(sample)

    def _one_write(self, name: str) -> Generator:
        try:
            sample = yield self.client.write_object(name)
        except WriteFailedError:
            self.write_stats.failures += 1
            return
        self.write_stats.add(sample)

    def _one_rmw(self, name: str, shard: int) -> Generator:
        try:
            sample = yield self.client.write_stripe_unit(name, data_shard=shard)
        except WriteFailedError:
            self.write_stats.failures += 1
            return
        self.write_stats.add(sample)
