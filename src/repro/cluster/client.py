"""Client read path: normal and degraded reads against the EC pool.

The paper measures how long the system takes to restore redundancy; this
module measures what the outage *costs clients meanwhile*.  During the
entire System Checking Period (§4.3) — ~600 s of down-but-not-out — every
read that needs a shard on the failed device is a **degraded read**: the
primary must fetch k surviving chunks (parity included) and decode on the
fly, instead of streaming the k data chunks directly.  Degraded reads are
slower, burn extra disk/network bandwidth, and compete with recovery I/O
once it starts — all visible through :class:`ClientLoadGenerator`'s
latency samples.

The gray-failure defenses live here too:

* **Per-op timeouts + retry/backoff** — when ``client_op_timeout`` is
  set, a read attempt that outlives it is abandoned and retried with
  seeded exponential backoff + jitter, up to ``client_retry_max`` times
  (:func:`repro.cluster.retry.retry_backoff`).
* **Hedged reads** — when ``client_hedge_delay`` is set, a shard fetch
  still in flight after the delay is *re-issued* to another surviving
  shard; whichever copy arrives first serves the read, and the loser's
  bytes are accounted as hedge waste (:class:`ClientOpStats`).  The
  abandoned fetch still drains its disk/NIC resources — exactly the
  duplicated I/O cost real hedging pays.

All defenses default OFF and the retry RNG is consumed only on actual
retries, so healthy baseline runs are byte-identical to the undefended
model.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..sim import Event
from ..sim.rng import SeedSequence
from .ceph import CephCluster
from .devices import DiskFailedError
from .network import TransferDroppedError
from .pool import PlacementGroup
from .retry import retry_backoff

__all__ = [
    "ReadSample",
    "ReadStats",
    "ClientOpStats",
    "RadosClient",
    "ClientLoadGenerator",
]


class ObjectNotFoundError(KeyError):
    """Read of an object the pool does not hold."""


class ReadFailedError(RuntimeError):
    """The read could not be served within the client's retry budget."""


@dataclass(frozen=True)
class ReadSample:
    """One completed client read."""

    object_name: str
    issued_at: float
    latency: float
    degraded: bool
    bytes_read: int
    #: 1 for a first-try success; grows with timeout/drop retries.
    attempts: int = 1
    #: True when a hedged duplicate fetch was issued for this read.
    hedged: bool = False


@dataclass
class ReadStats:
    """Aggregate over a load generator's samples."""

    samples: List[ReadSample] = field(default_factory=list)
    #: Reads abandoned after the retry budget (no sample recorded).
    failures: int = 0

    def add(self, sample: ReadSample) -> None:
        self.samples.append(sample)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def degraded_count(self) -> int:
        return sum(1 for s in self.samples if s.degraded)

    @property
    def degraded_fraction(self) -> float:
        return self.degraded_count / self.count if self.samples else 0.0

    def latency_percentile(self, percentile: float, degraded: Optional[bool] = None) -> float:
        """p50/p99-style latency; optionally filtered by degraded flag."""
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        values = sorted(
            s.latency
            for s in self.samples
            if degraded is None or s.degraded == degraded
        )
        if not values:
            raise ValueError("no samples match the filter")
        index = max(0, round(percentile / 100 * len(values)) - 1)
        return values[index]

    def mean_latency(self, degraded: Optional[bool] = None) -> float:
        values = [
            s.latency
            for s in self.samples
            if degraded is None or s.degraded == degraded
        ]
        if not values:
            raise ValueError("no samples match the filter")
        return statistics.fmean(values)


@dataclass
class ClientOpStats:
    """Defense-layer counters of one client (retries, hedges, waste)."""

    reads_ok: int = 0
    reads_failed: int = 0
    retries: int = 0
    timeouts: int = 0
    drops_seen: int = 0
    hedges_issued: int = 0
    hedges_won: int = 0
    #: Retry attempts served through a different primary than the first
    #: choice (the read was *redirected* around a degraded coordinator).
    redirects: int = 0
    #: Bytes of duplicate shard fetches whose result went unused — the
    #: price of hedging.  Never enters ReadSample.bytes_read or the WA
    #: ledger (reads allocate nothing), so client-visible byte counts
    #: are not double-counted.
    hedge_wasted_bytes: int = 0


@dataclass(frozen=True)
class _FetchResult:
    """Outcome of one guarded shard fetch (processes never fail)."""

    ok: bool
    shard: int
    reason: str = ""


@dataclass(frozen=True)
class _AttemptResult:
    """Outcome of one full read attempt."""

    ok: bool
    degraded: bool = False
    hedged: bool = False
    needs_decode: bool = False
    reason: str = ""


class RadosClient:
    """Reads whole objects from the cluster's EC pool.

    A normal read streams the k data shards; a degraded read falls back
    to any k surviving shards plus an on-the-fly decode at the primary.
    Client I/O shares the same disks and NICs as recovery, so the two
    interfere exactly as they would in the real system.
    """

    #: Client-visible protocol overhead per read.
    request_overhead = 0.001

    def __init__(
        self,
        cluster: CephCluster,
        name: str = "client.0",
        seeds: Optional[SeedSequence] = None,
    ):
        self.cluster = cluster
        self.name = name
        self.stats = ClientOpStats()
        #: Consumed only when a retry actually backs off, so healthy
        #: runs never draw from it.
        self._retry_rng = (seeds or SeedSequence(0)).stream("client-retry")

    def read_object(self, object_name: str) -> Event:
        """Read one object; the event's value is a :class:`ReadSample`."""
        return self.cluster.env.process(self._read(object_name))

    # -- internals --------------------------------------------------------------

    def _lookup(self, object_name: str):
        pg = self.cluster.pool.pg_of(object_name)
        for obj in pg.objects:
            if obj.name == object_name:
                return pg, obj
        raise ObjectNotFoundError(f"object {object_name!r} not in pool")

    def _read(self, object_name: str) -> Generator:
        """Retry loop around read attempts (timeouts, drops, flaps)."""
        env = self.cluster.env
        config = self.cluster.config
        issued_at = env.now
        pg, obj = self._lookup(object_name)
        attempt = 0
        while True:
            result = yield from self._read_attempt(pg, obj, attempt)
            if result.ok:
                self.stats.reads_ok += 1
                return ReadSample(
                    object_name=object_name,
                    issued_at=issued_at,
                    latency=env.now - issued_at,
                    degraded=result.degraded,
                    bytes_read=obj.size,
                    attempts=attempt + 1,
                    hedged=result.hedged,
                )
            attempt += 1
            if attempt > config.client_retry_max:
                self.stats.reads_failed += 1
                raise ReadFailedError(
                    f"object {object_name!r}: {result.reason} "
                    f"(gave up after {attempt} attempts)"
                )
            self.stats.retries += 1
            yield env.timeout(
                retry_backoff(attempt, config.client_retry_base, self._retry_rng)
            )

    def _read_attempt(self, pg: PlacementGroup, obj, attempt: int = 0) -> Generator:
        env = self.cluster.env
        config = self.cluster.config
        code = self.cluster.pool.code
        layout = obj.layout

        data_shards = list(range(code.k))
        up = [
            shard
            for shard in range(code.n)
            if self.cluster.osds[pg.acting[shard]].is_up()
        ]
        degraded = any(shard not in up for shard in data_shards)
        if degraded:
            shards = up[: code.k]
            if len(shards) < code.k:
                return _AttemptResult(
                    ok=False, degraded=True,
                    reason=f"only {len(up)} shards up",
                )
        else:
            shards = data_shards
        #: Surviving shards not already being read — the hedge targets.
        spares = [s for s in up if s not in shards]

        # Redirect: a retry rotates the coordinating primary to the next
        # surviving shard, so a read stuck behind a degraded primary's NIC
        # does not time out against the same path forever.  Attempt 0
        # always picks the first up shard — byte-identical to the
        # undefended model on healthy runs (retries never happen there).
        primary_shard = up[attempt % len(up)]
        if primary_shard != up[0]:
            self.stats.redirects += 1
        primary = self.cluster.osds[pg.acting[primary_shard]]
        yield env.timeout(self.request_overhead)
        fetches = [
            env.process(
                self._fetch_with_hedge(pg, shard, primary, layout, spares)
            )
            for shard in shards
        ]
        gather = env.all_of(fetches)
        if config.client_op_timeout > 0:
            timer = env.timeout(config.client_op_timeout)
            yield env.any_of([gather, timer])
            if not gather.triggered:
                # Abandon the attempt; the in-flight fetches drain on
                # their own (guarded processes never fail the engine).
                self.stats.timeouts += 1
                return _AttemptResult(
                    ok=False, degraded=degraded,
                    reason=f"op timed out after {config.client_op_timeout:g}s",
                )
            results = gather.value
        else:
            results = yield gather
        hedged = any(r.shard not in shards for r in results)
        bad = [r for r in results if not r.ok]
        if bad:
            return _AttemptResult(
                ok=False, degraded=degraded, hedged=hedged,
                reason=bad[0].reason,
            )
        served = {r.shard for r in results}
        needs_decode = degraded or served != set(data_shards)
        if needs_decode:
            # On-the-fly decode of the missing data shards at the primary.
            decode = primary.decode_time(
                output_bytes=layout.chunk_stored_bytes,
                decode_work=1.0,
                fragments=layout.units * code.sub_chunk_count,
                cpu_cost_factor=getattr(code, "cpu_cost_factor", 1.0),
            )
            yield primary.cpu.request(decode)
        return _AttemptResult(
            ok=True, degraded=degraded, hedged=hedged,
            needs_decode=needs_decode,
        )

    def _fetch_with_hedge(
        self, pg: PlacementGroup, shard: int, primary, layout, spares: List[int]
    ) -> Generator:
        """One shard fetch, re-issued to a spare survivor if it straggles.

        The loser of the race is *abandoned*, not interrupted: it keeps
        draining its disk and NIC time (the true cost of hedging) but its
        result is discarded and its bytes counted as hedge waste.
        """
        env = self.cluster.env
        hedge_delay = self.cluster.config.client_hedge_delay
        proc = env.process(self._guarded_fetch(pg, shard, primary, layout))
        if hedge_delay <= 0:
            result = yield proc
            return result
        timer = env.timeout(hedge_delay)
        yield env.any_of([proc, timer])
        if proc.triggered:
            return proc.value
        spare = spares.pop(0) if spares else None
        if spare is None:
            result = yield proc
            return result
        self.stats.hedges_issued += 1
        hedge = env.process(self._guarded_fetch(pg, spare, primary, layout))
        first = yield env.any_of([proc, hedge])
        if first.ok:
            winner = first
        else:
            # First arrival failed (drop); fall back to the other copy.
            other = hedge if proc.triggered else proc
            winner = yield other
        # Exactly one copy serves the read; the duplicate's bytes are
        # waste whether it already landed or is still in flight.
        self.stats.hedge_wasted_bytes += layout.chunk_stored_bytes
        if winner.ok and winner.shard == spare:
            self.stats.hedges_won += 1
        return winner

    def _guarded_fetch(self, pg: PlacementGroup, shard: int, primary, layout) -> Generator:
        """Fetch one shard; never fails the process (returns a result).

        Every failure mode — source down (flap), failed disk, dropped or
        partitioned transfer — is caught here and reported by value, so
        abandoned fetches can safely drain without a waiter.
        """
        source = self.cluster.osds[pg.acting[shard]]
        nbytes = layout.chunk_stored_bytes
        try:
            if not source.is_up():
                return _FetchResult(
                    ok=False, shard=shard,
                    reason=f"shard {shard} source {source.name} is down",
                )
            yield source.disk.submit(
                source.sequential_ops(nbytes), nbytes, write=False
            )
            yield self.cluster.topology.fabric.transfer(
                self.cluster.topology.nic_of(source.osd_id),
                self.cluster.topology.nic_of(primary.osd_id),
                nbytes,
            )
        except TransferDroppedError as exc:
            self.stats.drops_seen += 1
            return _FetchResult(ok=False, shard=shard, reason=str(exc))
        except DiskFailedError as exc:
            return _FetchResult(ok=False, shard=shard, reason=str(exc))
        return _FetchResult(ok=True, shard=shard)


class ClientLoadGenerator:
    """Open-loop read load over the pool's objects.

    Issues one read every ``interval`` seconds at uniformly random
    objects, for ``duration`` seconds, collecting the latency/degraded
    samples into :attr:`stats`.  Reads that exhaust the client's retry
    budget are counted in ``stats.failures`` instead of killing the
    generator — under gray faults some failures are expected.
    """

    def __init__(
        self,
        client: RadosClient,
        interval: float,
        seeds: Optional[SeedSequence] = None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.client = client
        self.interval = interval
        self.rng = (seeds or SeedSequence(0)).stream("client-load")
        self.stats = ReadStats()
        self._running = False

    def run_for(self, duration: float) -> Event:
        """Start issuing reads for ``duration`` simulated seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return self.client.cluster.env.process(self._run(duration))

    def _object_names(self) -> List[str]:
        return [
            obj.name
            for pg in self.client.cluster.pool.pgs.values()
            for obj in pg.objects
        ]

    def _run(self, duration: float) -> Generator:
        env = self.client.cluster.env
        names = self._object_names()
        if not names:
            raise RuntimeError("pool holds no objects to read")
        deadline = env.now + duration
        pending = []
        while env.now < deadline:
            name = self.rng.choice(names)
            pending.append(env.process(self._one_read(name)))
            yield env.timeout(self.interval)
        if pending:
            yield env.all_of(pending)

    def _one_read(self, name: str) -> Generator:
        try:
            sample = yield self.client.read_object(name)
        except ReadFailedError:
            self.stats.failures += 1
            return
        self.stats.add(sample)
