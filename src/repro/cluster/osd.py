"""OSD daemon model: chunk storage, liveness, and recovery throttles.

Each OSD binds a virtual NVMe device (see :mod:`repro.cluster.nvme`) to a
BlueStore backend and exposes the throttled I/O entry points the recovery
state machine uses.  Liveness is derived, not stored: an OSD is *up* iff
its host is running and its device still answers — exactly how the two
fault levels of the paper (node shutdown, device removal) become visible
to the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Environment, Event, Resource, ServiceCenter
from .bluestore import BlueStore, CacheConfig
from .devices import Disk
from .topology import OsdDevice

__all__ = [
    "CephConfig",
    "OsdDaemon",
    "SubchunkReadProfile",
    "sequential_ops",
    "resolve_subchunk_read",
]


@dataclass(frozen=True)
class CephConfig:
    """The daemon/monitor tunables relevant to the paper's timeline.

    Defaults are Ceph Quincy defaults; ``mon_osd_down_out_interval`` (600 s)
    is the dominant term of the paper's System Checking Period.
    """

    osd_heartbeat_interval: float = 6.0
    osd_heartbeat_grace: float = 20.0
    mon_osd_down_out_interval: float = 600.0
    mon_tick_interval: float = 5.0
    osd_recovery_max_active: int = 3
    osd_max_backfills: int = 1
    osd_recovery_sleep: float = 0.0
    #: Peering cost: fixed per-PG latency plus a per-object census scan.
    peering_base: float = 0.5
    peering_per_object: float = 0.0015
    #: Recovery QoS: the share of device throughput the scheduler grants
    #: recovery I/O per OSD (Quincy's mClock profiles cap recovery well
    #: below raw device speed so client I/O keeps priority).
    recovery_read_rate: float = 40e6
    recovery_write_rate: float = 22e6
    #: Fixed messaging/commit cost per object recovery op (pull + push
    #: round trips through the op queue).
    recovery_op_overhead: float = 0.03
    #: CPU cost of one metadata (onode/extent) fetch that misses cache.
    metadata_op_cost: float = 0.0004
    #: Decode throughput of one OSD worker (bytes/second of output data)
    #: and the fixed CPU cost per (encoding unit x plane) fragment, which
    #: is what punishes sub-packetised codes at small stripe units.
    decode_bandwidth: float = 1.2e9
    decode_fragment_overhead: float = 90e-6
    #: Software cost per scattered sub-chunk range read on the OSD.
    subchunk_range_overhead: float = 4e-6
    #: Scheduler-side cost per contiguous sub-chunk run: scattered reads
    #: get a worse effective rate than sequential ones, which is why
    #: Clay's fractional reads do not translate 1:1 into time savings.
    recovery_range_cost: float = 0.006
    #: Disk transfer size for sequential recovery I/O.
    max_io_bytes: int = 131072
    #: Smallest disk read; sub-chunk reads below this are rounded up.
    min_io_bytes: int = 4096
    #: Per-OSD BlueStore cache (autotuned or ratio-split per profile).
    osd_cache_bytes: float = 2.5e9
    #: Flap dampening (Ceph's ``osd_max_markdown_*``): an OSD marked
    #: down more than ``count`` times within ``period`` seconds is
    #: *pinned* down for ``pin`` seconds — the monitor stops believing
    #: its heartbeats instead of thrashing osdmap epochs.
    mon_osd_markdown_count: int = 5
    mon_osd_markdown_period: float = 600.0
    mon_osd_markdown_pin: float = 120.0
    #: Client-side defenses: per-op timeout (0 disables), bounded
    #: exponential-backoff retries, and the hedge delay after which a
    #: straggling shard fetch is re-issued to another survivor
    #: (0 disables hedging).
    client_op_timeout: float = 0.0
    client_retry_max: int = 5
    client_retry_base: float = 0.25
    client_hedge_delay: float = 0.0
    #: Recovery-side retry budget for transient gray windows
    #: (dropped transfers, flapped helper sources).
    recovery_retry_max: int = 6
    recovery_retry_base: float = 0.5
    #: PG write log bound (Ceph's ``osd_min_pg_log_entries`` family):
    #: the log trims to ``osd_pg_log_max_entries`` but never past the
    #: oldest entry a stale shard still needs for delta recovery —
    #: unless it would exceed the hard limit, at which point the shard
    #: is marked backfill-required and delta falls back to backfill.
    osd_pg_log_max_entries: int = 3000
    osd_pg_log_hard_limit: int = 6000
    #: Client write retry budget (mirrors the read-side defenses; the
    #: write path shares client_op_timeout and client_retry_base).
    client_write_retry_max: int = 5
    #: Stretch clusters: steer repair reads toward helpers in the
    #: primary's region (and round-robin the rest across surviving
    #: hosts) whenever the code accepts the substitution at equal cost.
    #: No effect on single-region topologies.  Disable to measure the
    #: naive helper choice (the geo benchmark's baseline).
    recovery_locality_aware: bool = True
    #: Capacity backpressure thresholds (Ceph's ``mon_osd_*_ratio``
    #: family) on each OSD's allocated fraction: nearfull warns,
    #: backfillfull stops new backfill targets landing on the OSD, full
    #: pauses cluster-wide client writes until usage drops back below.
    mon_osd_nearfull_ratio: float = 0.85
    mon_osd_backfillfull_ratio: float = 0.90
    mon_osd_full_ratio: float = 0.95
    #: PG recovery servicing order: ``fifo`` keeps the historical
    #: pool-iteration order (byte-identical to the pre-cascade model);
    #: ``risk`` admits PGs through a priority queue ordered by
    #: redundancy margin (fewest surviving parity shards first), ties
    #: broken by bytes-at-risk, degraded-object count, then pg id.
    osd_recovery_priority: str = "fifo"
    #: Track per-PG time spent at minimum redundancy (margin zero — one
    #: more loss is data loss) into ``RecoveryStats``.  Off by default
    #: so pre-cascade digests stay byte-identical; cascade campaigns,
    #: the cascade CLI, and the cascade benchmark turn it on.
    osd_track_risk_exposure: bool = False

    def __post_init__(self):
        if self.osd_heartbeat_interval <= 0 or self.osd_heartbeat_grace <= 0:
            raise ValueError("heartbeat settings must be positive")
        if self.mon_osd_down_out_interval < 0:
            raise ValueError("down/out interval must be non-negative")
        if self.osd_recovery_max_active < 1 or self.osd_max_backfills < 1:
            raise ValueError("recovery throttles must be >= 1")
        if self.mon_osd_markdown_count < 1:
            raise ValueError("markdown count must be >= 1")
        if self.mon_osd_markdown_period <= 0 or self.mon_osd_markdown_pin <= 0:
            raise ValueError("markdown period/pin must be positive")
        if self.client_op_timeout < 0 or self.client_hedge_delay < 0:
            raise ValueError("client timeout/hedge delay must be non-negative")
        if self.client_retry_max < 0 or self.recovery_retry_max < 0:
            raise ValueError("retry budgets must be non-negative")
        if self.client_retry_base <= 0 or self.recovery_retry_base <= 0:
            raise ValueError("retry backoff bases must be positive")
        if self.osd_pg_log_max_entries < 1:
            raise ValueError("pg log max entries must be >= 1")
        if self.osd_pg_log_hard_limit < self.osd_pg_log_max_entries:
            raise ValueError("pg log hard limit must be >= max entries")
        if self.client_write_retry_max < 0:
            raise ValueError("retry budgets must be non-negative")
        if not (
            0.0
            < self.mon_osd_nearfull_ratio
            <= self.mon_osd_backfillfull_ratio
            <= self.mon_osd_full_ratio
            <= 1.0
        ):
            raise ValueError(
                "capacity ratios must satisfy "
                "0 < nearfull <= backfillfull <= full <= 1"
            )
        if self.osd_recovery_priority not in ("fifo", "risk"):
            raise ValueError(
                f"unknown recovery priority {self.osd_recovery_priority!r}"
            )


@dataclass(frozen=True)
class SubchunkReadProfile:
    """Resolved geometry of one fractional helper read.

    ``disk_bytes``/``disk_ops`` is what the device sees; ``scatter_runs``
    feeds the recovery scheduler's per-run penalty (zero when the read
    degenerated to sequential full extents).
    """

    disk_bytes: int
    disk_ops: int
    scatter_runs: int
    degenerate: bool


def sequential_ops(config: CephConfig, nbytes: int) -> int:
    """Disk operations for a sequential transfer of ``nbytes``."""
    return max(1, -(-nbytes // config.max_io_bytes))


def resolve_subchunk_read(
    config: CephConfig,
    units: int,
    unit_bytes: int,
    fraction: float,
    runs_per_unit: int,
) -> SubchunkReadProfile:
    """Resolve a fractional (sub-packetised) read against min-IO.

    Every stripe-unit extent contributes ``unit_bytes * fraction`` wanted
    bytes spread over ``runs_per_unit`` contiguous runs.  A run reads at
    least ``min_io_bytes``; when the runs would cover the whole extent
    anyway, the read *degenerates* to a full sequential extent read —
    Clay's bandwidth saving evaporates at small stripe units, which is
    the §4.2 "subpacketization overhead" effect.

    Pure function of the config so the analytical twin
    (:mod:`repro.twin`) resolves sub-chunk geometry with the identical
    rule the simulator charges to devices.
    """
    if units < 1 or unit_bytes <= 0 or not 0.0 < fraction <= 1.0:
        raise ValueError("invalid sub-chunk read geometry")
    wanted_per_unit = unit_bytes * fraction
    run_len = wanted_per_unit / max(1, runs_per_unit)
    effective_run = max(run_len, float(config.min_io_bytes))
    per_unit_bytes = runs_per_unit * effective_run
    if fraction >= 0.5:
        # Dense request: readahead makes one sequential full-extent
        # read cheaper than dozens of scattered ranges.
        per_unit_bytes = float(unit_bytes)
    if per_unit_bytes >= unit_bytes:
        return SubchunkReadProfile(
            disk_bytes=units * unit_bytes,
            disk_ops=units * sequential_ops(config, unit_bytes),
            scatter_runs=0,
            degenerate=True,
        )
    return SubchunkReadProfile(
        disk_bytes=int(units * per_unit_bytes),
        disk_ops=units * runs_per_unit,
        scatter_runs=units * runs_per_unit,
        degenerate=False,
    )


class OsdDaemon:
    """One ceph-osd: device + backend + recovery reservations."""

    def __init__(
        self,
        env: Environment,
        device: OsdDevice,
        cache_config: CacheConfig,
        config: CephConfig,
    ):
        self.env = env
        self.device = device
        self.config = config
        self.backend = BlueStore(cache_config, cache_bytes=config.osd_cache_bytes)
        self.host_running = True
        #: Gray-failure state: a flapping daemon oscillates this flag
        #: while its host and device stay healthy (flap fault level).
        self.daemon_up = True
        #: Throttles mirroring Ceph's: concurrent recovery ops and the
        #: per-OSD backfill reservation that caps simultaneous PGs.
        self.recovery_ops = Resource(env, config.osd_recovery_max_active)
        self.backfill_slots = Resource(env, config.osd_max_backfills)
        #: CPU worker pool for decode and sub-chunk range processing.
        self.cpu = ServiceCenter(env, servers=2, name=f"{device.name}.cpu")
        #: Recovery QoS limiters: the scheduler grants recovery a bounded
        #: share of this OSD's read/write throughput (mClock-style).
        self.recovery_reads = ServiceCenter(
            env, servers=1, name=f"{device.name}.rec-rd"
        )
        self.recovery_writes = ServiceCenter(
            env, servers=1, name=f"{device.name}.rec-wr"
        )
        #: Optional mClock QoS schedulers, attached externally by the
        #: tenancy layer (``repro.tenancy.install_qos``).  When attached,
        #: the grant methods below route admission through them instead
        #: of the plain per-purpose service centers, so client, recovery
        #: and scrub I/O compete under reservation/limit/weight tags.
        #: ``None`` (the default) keeps the pre-tenancy model
        #: byte-identical.
        self.qos_reads = None
        self.qos_writes = None

    @property
    def osd_id(self) -> int:
        return self.device.osd_id

    @property
    def name(self) -> str:
        return self.device.name

    @property
    def disk(self) -> Disk:
        return self.device.disk

    def is_up(self) -> bool:
        """Daemon answers heartbeats: host running, daemon alive, device healthy."""
        return self.host_running and self.daemon_up and not self.disk.failed

    # -- durable state ---------------------------------------------------------

    def store_chunk(self, stored_bytes: int, units: int, csum_blocks: int = 0) -> int:
        """Account a chunk landing on this OSD; returns bytes consumed."""
        consumed = self.backend.store_chunk(stored_bytes, units, csum_blocks)
        self.disk.allocate(consumed)
        return consumed

    def remove_chunk(self, stored_bytes: int, units: int, csum_blocks: int = 0) -> int:
        released = self.backend.remove_chunk(stored_bytes, units, csum_blocks)
        self.disk.free(released)
        return released

    @property
    def used_bytes(self) -> int:
        """OSD-level storage usage (the paper's WA measurement point)."""
        return self.backend.used_bytes

    # -- recovery I/O ------------------------------------------------------------

    def sequential_ops(self, nbytes: int) -> int:
        """Disk operations for a sequential transfer of ``nbytes``."""
        return sequential_ops(self.config, nbytes)

    def read_chunk(self, nbytes: int, units: int) -> Event:
        """Sequential recovery read of a full chunk, plus metadata misses."""
        ops = self.sequential_ops(nbytes) + self.backend.read_overhead_ops(nbytes)
        return self.disk.submit(max(1, round(ops)), nbytes, write=False)

    def subchunk_profile(
        self, units: int, unit_bytes: int, fraction: float, runs_per_unit: int
    ) -> "SubchunkReadProfile":
        """Resolve a fractional (sub-packetised) read against min-IO.

        Every stripe-unit extent contributes ``unit_bytes * fraction``
        wanted bytes spread over ``runs_per_unit`` contiguous runs.  A run
        reads at least ``min_io_bytes``; when the runs would cover the
        whole extent anyway, the read *degenerates* to a full sequential
        extent read — Clay's bandwidth saving evaporates at small stripe
        units, which is the §4.2 "subpacketization overhead" effect.
        """
        return resolve_subchunk_read(
            self.config, units, unit_bytes, fraction, runs_per_unit
        )

    def read_subchunks(
        self, units: int, unit_bytes: int, fraction: float, runs_per_unit: int
    ) -> Event:
        """Scattered sub-chunk recovery read (Clay single-failure repair)."""
        profile = self.subchunk_profile(units, unit_bytes, fraction, runs_per_unit)
        ops = profile.disk_ops + self.backend.read_overhead_ops(
            profile.disk_bytes, profile.scatter_runs
        )
        return self.disk.submit(max(1, round(ops)), profile.disk_bytes, write=False)

    def write_chunk(self, nbytes: int, units: int) -> Event:
        """Recovery write of a rebuilt chunk, after deferred coalescing."""
        ops = self.sequential_ops(nbytes) * self.backend.write_coalescing()
        return self.disk.submit(max(1, round(ops)), nbytes, write=True)

    # -- recovery QoS (the binding constraint on recovery speed) ------------------

    def recovery_read_grant(self, nbytes: int, runs: int = 0) -> Event:
        """Wait for the recovery scheduler to admit a helper read.

        Service time is the QoS-rate transfer time plus the CPU-side cost
        of metadata misses (onode/csum/extent fetches) — which is where
        the cache-scheme sensitivity of Figure 2a enters the read path —
        plus a per-run penalty for scattered sub-chunk reads.
        """
        base = nbytes / self.config.recovery_read_rate
        meta = (
            self.backend.read_overhead_ops(nbytes, runs)
            * self.config.metadata_op_cost
        )
        scatter = runs * self.config.recovery_range_cost
        if self.qos_reads is not None:
            return self.qos_reads.submit("recovery", base + meta + scatter)
        return self.recovery_reads.request(base + meta + scatter)

    def scrub_read_grant(self, nbytes: int, rate: float) -> Event:
        """Wait for the recovery scheduler to admit a deep-scrub read.

        Scrub shares the recovery-read QoS centre with crash repair — on a
        degraded cluster the two visibly compete for the same bounded
        repair-read bandwidth (the scarce resource of Rashmi et al.'s
        Facebook study), which is exactly the interaction the scrub axis
        benchmark measures.
        """
        if self.qos_reads is not None:
            return self.qos_reads.submit("scrub", nbytes / rate)
        return self.recovery_reads.request(nbytes / rate)

    def recovery_write_grant(self, nbytes: int) -> Event:
        """Wait for the recovery scheduler to admit a rebuilt-chunk write.

        Deferred-write coalescing (data-cache dependent) stretches or
        shrinks the effective write cost — the write-side Figure 2a
        mechanism.
        """
        base = nbytes / self.config.recovery_write_rate
        service = base * self.backend.write_coalescing()
        if self.qos_writes is not None:
            return self.qos_writes.submit("recovery", service)
        return self.recovery_writes.request(service)

    def encode_time(
        self, parity_bytes: int, fragments: int, cpu_cost_factor: float,
    ) -> float:
        """CPU time to encode ``parity_bytes`` of parity for one write.

        Encoding and decoding run the same GF(256) kernels, so the cost
        model is shared: parity output through the decode bandwidth plus
        the per-(unit x plane) fragment overhead that punishes
        sub-packetised codes at small stripe units.
        """
        byte_time = parity_bytes * cpu_cost_factor / self.config.decode_bandwidth
        fragment_time = fragments * self.config.decode_fragment_overhead
        return byte_time + fragment_time

    def decode_time(
        self, output_bytes: int, decode_work: float, fragments: int,
        cpu_cost_factor: float,
    ) -> float:
        """CPU time to decode one lost chunk of ``output_bytes``.

        ``fragments`` counts (unit x plane) decode fragments — 1 per unit
        for scalar codes, alpha per unit for sub-packetised ones.
        """
        byte_time = output_bytes * decode_work * cpu_cost_factor / self.config.decode_bandwidth
        fragment_time = fragments * self.config.decode_fragment_overhead
        return byte_time + fragment_time
