"""Storage device performance and capacity model.

Disks are modelled as FIFO service centers fed by *aggregate* I/O
requests: an (operation count, byte count) pair whose service time is the
max of the IOPS-limited and bandwidth-limited completion times plus a
fixed submission latency.  Aggregation keeps the discrete-event simulation
tractable at paper scale (millions of 4 KB extents) while preserving the
two regimes that drive Figure 2c: small stripe units are IOPS-bound,
large ones bandwidth-bound.

The default spec approximates the paper's testbed volumes (AWS General
Purpose SSD attached to m5.xlarge hosts).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Environment, Event, ServiceCenter

__all__ = ["DiskSpec", "GP_SSD", "Disk", "DiskFailedError"]


@dataclass(frozen=True)
class DiskSpec:
    """Static performance/capacity envelope of one device."""

    name: str
    capacity_bytes: int
    read_bandwidth: float  # bytes/second, sequential
    write_bandwidth: float  # bytes/second, sequential
    read_iops: float
    write_iops: float
    latency: float  # seconds, per aggregate request submission

    def __post_init__(self):
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        for attr in ("read_bandwidth", "write_bandwidth", "read_iops", "write_iops"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")


#: The paper's 100 GB General Purpose SSD (NVMe) volumes: gp-class volumes
#: deliver ~250 MB/s streaming and ~3000 IOPS with sub-millisecond latency.
GP_SSD = DiskSpec(
    name="gp-ssd-100g",
    capacity_bytes=100 * 1024**3,
    read_bandwidth=250e6,
    write_bandwidth=220e6,
    read_iops=3000.0,
    write_iops=3000.0,
    latency=0.0006,
)

#: A nearline HDD for the Table-1 ``device class = hdd`` option: similar
#: streaming bandwidth but two orders of magnitude fewer IOPS and
#: millisecond seeks — the class where small-I/O recovery patterns hurt.
NEARLINE_HDD = DiskSpec(
    name="nearline-hdd-4t",
    capacity_bytes=4 * 1024**4,
    read_bandwidth=180e6,
    write_bandwidth=160e6,
    read_iops=180.0,
    write_iops=160.0,
    latency=0.008,
)


class DiskFailedError(RuntimeError):
    """I/O submitted to a failed (removed) device."""


class Disk:
    """A live disk: a service center plus usage/failure state.

    ``used_bytes`` tracks allocations (data + padding + metadata) for the
    write-amplification measurements; ``written_bytes``/``read_bytes``
    accumulate I/O volume for the iostat-style collectors.
    """

    def __init__(self, env: Environment, spec: DiskSpec, name: str = "",
                 queue_depth: int = 4):
        self.env = env
        self.spec = spec
        self.name = name or spec.name
        self.center = ServiceCenter(env, servers=queue_depth, name=self.name)
        self.failed = False
        #: Gray-failure state: a limping disk serves every request xN
        #: slower than its spec without ever failing I/O (slow_device
        #: fault level).  1.0 means healthy.
        self.slow_factor = 1.0
        self.used_bytes = 0
        self.read_bytes = 0
        self.written_bytes = 0
        self.read_ops = 0
        self.write_ops = 0

    def set_slow_factor(self, factor: float) -> None:
        """Inflate (or restore, factor=1.0) this disk's service times."""
        if factor < 1.0:
            raise ValueError(f"slow factor must be >= 1.0, got {factor}")
        self.slow_factor = factor

    def service_time(self, ops: int, nbytes: int, write: bool) -> float:
        """Completion time of an aggregate request on an idle device."""
        if ops < 1:
            raise ValueError(f"ops must be >= 1, got {ops}")
        if nbytes < 0:
            raise ValueError("negative byte count")
        bandwidth = self.spec.write_bandwidth if write else self.spec.read_bandwidth
        iops = self.spec.write_iops if write else self.spec.read_iops
        base = self.spec.latency + max(nbytes / bandwidth, ops / iops)
        return base * self.slow_factor

    def submit(self, ops: int, nbytes: int, write: bool) -> Event:
        """Queue an aggregate I/O; the event fires on completion."""
        if self.failed:
            raise DiskFailedError(f"I/O to failed disk {self.name}")
        if write:
            self.write_ops += ops
            self.written_bytes += nbytes
        else:
            self.read_ops += ops
            self.read_bytes += nbytes
        return self.center.request(self.service_time(ops, nbytes, write))

    @property
    def usage_ratio(self) -> float:
        """Fraction of capacity allocated — the backpressure input.

        The nearfull/backfillfull/full thresholds in
        :class:`~repro.cluster.osd.CephConfig` are compared against this
        ratio by the monitor and by recovery's backfill target selection.
        """
        return self.used_bytes / self.spec.capacity_bytes

    def headroom_bytes(self) -> int:
        """Unallocated capacity left on the device."""
        return self.spec.capacity_bytes - self.used_bytes

    def allocate(self, nbytes: int) -> None:
        """Account ``nbytes`` of durable allocation (WA measurement)."""
        if nbytes < 0:
            raise ValueError("negative allocation")
        if self.used_bytes + nbytes > self.spec.capacity_bytes:
            raise RuntimeError(
                f"disk {self.name} full: {self.used_bytes + nbytes} "
                f"> {self.spec.capacity_bytes}"
            )
        self.used_bytes += nbytes

    def free(self, nbytes: int) -> None:
        """Release a durable allocation."""
        if nbytes < 0 or nbytes > self.used_bytes:
            raise ValueError(f"invalid free of {nbytes} (used {self.used_bytes})")
        self.used_bytes -= nbytes

    def fail(self) -> None:
        """Mark the device failed; subsequent I/O raises DiskFailedError."""
        self.failed = True

    def restore(self) -> None:
        self.failed = False
