"""Placement-group autoscaling (Table 1: "customized, autoscale").

Ceph's pg_autoscaler sizes ``pg_num`` so each OSD carries a healthy
number of PG replicas (the usual target is ~100 PG-shards per OSD),
rounded to a power of two.  The paper's Fig 2b shows *why* that matters:
too few PGs serialise recovery.  This module implements the autoscaler's
sizing rule plus the health check that flags misconfigured pools, so
profiles can use ``pg_num="auto"``-style behaviour and the analysis can
point at pg_num as the culprit it is in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["AutoscaleAdvice", "recommended_pg_num", "autoscale_advice"]

#: Ceph's mon_target_pg_per_osd-style default.
TARGET_PG_SHARDS_PER_OSD = 100
#: Bounds Ceph enforces per pool.
MIN_PG_NUM = 1
MAX_PG_NUM = 32768


def _round_power_of_two(value: float) -> int:
    """Nearest power of two, at least 1 (Ceph rounds pg_num this way)."""
    if value <= 1:
        return 1
    power = 1
    while power * 2 <= value:
        power *= 2
    # Round up when the value is past the geometric midpoint of
    # [power, 2*power], i.e. sqrt(2)*power ~= 1.414*power; the midpoint
    # itself rounds down.
    return power * 2 if value / power > math.sqrt(2.0) else power


def recommended_pg_num(
    num_osds: int,
    pool_width: int,
    target_shards_per_osd: int = TARGET_PG_SHARDS_PER_OSD,
) -> int:
    """The autoscaler's pg_num for a pool of EC width ``pool_width``.

    Sized so that pg_num * width / num_osds ~= the per-OSD shard target,
    rounded to a power of two within Ceph's bounds.
    """
    if num_osds < 1 or pool_width < 1:
        raise ValueError("num_osds and pool_width must be positive")
    if target_shards_per_osd < 1:
        raise ValueError("target_shards_per_osd must be positive")
    raw = num_osds * target_shards_per_osd / pool_width
    return max(MIN_PG_NUM, min(MAX_PG_NUM, _round_power_of_two(raw)))


@dataclass(frozen=True)
class AutoscaleAdvice:
    """The autoscaler's verdict on a pool's current pg_num."""

    current: int
    recommended: int
    shards_per_osd: float

    @property
    def should_scale(self) -> bool:
        """Ceph only acts when the correction is at least ~4x off."""
        ratio = self.recommended / self.current
        return ratio >= 4.0 or ratio <= 0.25

    def summary(self) -> str:
        verdict = "SCALE" if self.should_scale else "ok"
        return (
            f"pg_num={self.current} -> recommended {self.recommended} "
            f"({self.shards_per_osd:.1f} PG shards/OSD) [{verdict}]"
        )


def autoscale_advice(
    current_pg_num: int,
    num_osds: int,
    pool_width: int,
    target_shards_per_osd: int = TARGET_PG_SHARDS_PER_OSD,
) -> AutoscaleAdvice:
    """Evaluate a pool's pg_num the way Ceph's autoscaler would."""
    if current_pg_num < 1:
        raise ValueError("current_pg_num must be positive")
    recommended = recommended_pg_num(num_osds, pool_width, target_shards_per_osd)
    return AutoscaleAdvice(
        current=current_pg_num,
        recommended=recommended,
        shards_per_osd=current_pg_num * pool_width / num_osds,
    )
